//! # meshsort — two-dimensional bubble sorting on a mesh of processors
//!
//! A production-quality reproduction of
//! **Serap A. Savari, “Average Case Analysis of Five Two-Dimensional
//! Bubble Sorting Algorithms”, SPAA 1993**: the five generalizations of
//! the odd-even transposition sort to a `√N × √N` mesh, the synchronous
//! mesh simulator they run on, the 0–1 analysis machinery of the paper's
//! proofs, exact combinatorics for every closed-form quantity, and an
//! experiment harness that validates every theorem, lemma and corollary
//! empirically.
//!
//! ## Quick start
//!
//! ```
//! use meshsort::prelude::*;
//!
//! // An 8×8 mesh holding a random-ish permutation (here: reversed).
//! let mut grid = Grid::from_rows(8, (0..64u32).rev().collect()).unwrap();
//!
//! // Sort it with the first row-major algorithm (wrap-around wires).
//! let run = SortJob::new(AlgorithmId::RowMajorRowFirst, 8).run(&mut grid).unwrap();
//! assert!(run.sorted());
//! assert!(grid.is_sorted(TargetOrder::RowMajor));
//!
//! // The paper's headline: Θ(N) steps even on average.
//! assert!(run.steps as usize > 8); // far above the √N diameter scale
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`mesh`] | grid, comparators, step plans, engine, schedules |
//! | [`linear`] | 1D odd-even transposition + reverse bubble sort |
//! | [`core`] | the five algorithms (R1, R2, S1, S2, S3) and runners |
//! | [`zeroone`] | column stats, travel lemmas, Z/Y trackers, bounds |
//! | [`exact`] | bignum rationals + every paper formula, exactly |
//! | [`stats`] | seeding, Welford, CIs, tails, parallel Monte Carlo |
//! | [`workloads`] | permutations, 0–1 matrices, adversaries |
//! | [`baselines`] | Shearsort |
//! | [`experiments`] | the E01–E15 harness (see DESIGN.md §4) |
//! | [`analyze`] | `meshcheck`: static schedule certification (structure, kernel IR, 0-1) |
//! | [`serve`] | `meshsortd`: the sorting/certification service and its load generator |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use meshsort_analyze as analyze;
pub use meshsort_baselines as baselines;
pub use meshsort_core as core;
pub use meshsort_exact as exact;
pub use meshsort_experiments as experiments;
pub use meshsort_linear as linear;
pub use meshsort_mesh as mesh;
pub use meshsort_serve as serve;
pub use meshsort_stats as stats;
pub use meshsort_workloads as workloads;
pub use meshsort_zeroone as zeroone;

/// Command-line interface building blocks for the `meshsort` binary.
pub mod cli;

/// The most common imports, one `use` away.
pub mod prelude {
    pub use meshsort_core::runner::SortRun;
    #[allow(deprecated)] // legacy shims stay importable while downstream migrates
    pub use meshsort_core::runner::{sort_to_completion, sort_with_cap};
    pub use meshsort_core::{AlgorithmId, Budget, Engine, RunOutcome, SortJob};
    pub use meshsort_mesh::{Grid, Pos, TargetOrder};
    pub use meshsort_workloads::permutation::random_permutation_grid;
    pub use meshsort_workloads::zero_one::random_balanced_zero_one_grid;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_reexports_work() {
        let mut g = Grid::from_rows(4, (0..16u32).rev().collect()).unwrap();
        let run = SortJob::new(AlgorithmId::SnakeAlternating, 4).run(&mut g).unwrap();
        assert!(run.sorted());
        assert!(g.is_sorted(TargetOrder::Snake));
        assert_eq!(Pos::new(0, 0).flat(4), 0);
    }
}
