//! The `meshsort` command-line interface: each subcommand is a pure
//! function from parsed options to a report string, so the logic is unit
//! tested and `main` stays a thin dispatcher.

use meshsort_core::instrument::run_instrumented;
use meshsort_core::min_tracker::track_min;
use meshsort_core::{runner, AlgorithmId, Convergence, SortJob};
use meshsort_exact::thresholds::ConcentrationTheorem;
use meshsort_mesh::viz::render_plan;
use meshsort_mesh::FaultSpec;
use meshsort_workloads::permutation::random_permutation_grid;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Parses an algorithm name: the short ids `r1 r2 s1 s2 s3` or the full
/// display names.
pub fn parse_algorithm(s: &str) -> Option<AlgorithmId> {
    match s.to_ascii_lowercase().as_str() {
        "r1" | "row-major/row-first" => Some(AlgorithmId::RowMajorRowFirst),
        "r2" | "row-major/col-first" => Some(AlgorithmId::RowMajorColFirst),
        "s1" | "snake/alternating" => Some(AlgorithmId::SnakeAlternating),
        "s2" | "snake/staggered-cols" => Some(AlgorithmId::SnakeStaggeredCols),
        "s3" | "snake/phase-aligned" => Some(AlgorithmId::SnakePhaseAligned),
        _ => None,
    }
}

/// `meshsort sort`: one run, optionally with a sampled metric timeline.
pub fn cmd_sort(
    algorithm: AlgorithmId,
    side: usize,
    seed: u64,
    trace: bool,
) -> Result<String, String> {
    if !algorithm.supports_side(side) {
        return Err(format!("{algorithm} is not defined on side {side} (needs an even side)"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut grid = random_permutation_grid(side, &mut rng);
    let mut out = String::new();
    let n = side * side;
    if trace {
        let tl = run_instrumented(
            algorithm,
            &mut grid,
            (n as u64 / 8).max(1),
            runner::default_step_cap(side),
        )
        .map_err(|e| e.to_string())?;
        writeln!(out, "{algorithm} on a {side}x{side} mesh (seed {seed})").unwrap();
        writeln!(
            out,
            "{:>8} {:>12} {:>14} {:>10}",
            "step", "inversions", "displacement", "dirty rows"
        )
        .unwrap();
        for s in &tl.samples {
            writeln!(
                out,
                "{:>8} {:>12} {:>14} {:>10}",
                s.step, s.inversions, s.displacement, s.dirty_rows
            )
            .unwrap();
        }
        writeln!(
            out,
            "sorted in {} steps ({:.3} steps/cell)",
            tl.steps,
            tl.steps as f64 / n as f64
        )
        .unwrap();
    } else {
        let run = SortJob::new(algorithm, side).run(&mut grid).map_err(|e| e.to_string())?;
        writeln!(
            out,
            "{algorithm}: sorted {n} values in {} steps ({} swaps, {:.3} steps/cell)",
            run.steps,
            run.swaps,
            run.steps as f64 / n as f64
        )
        .unwrap();
    }
    Ok(out)
}

/// `meshsort race`: all five algorithms plus Shearsort on one input.
pub fn cmd_race(side: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = random_permutation_grid(side, &mut rng);
    let n = side * side;
    let mut out = format!("race on a {side}x{side} mesh (N = {n}, seed = {seed})\n");
    writeln!(out, "{:<22} {:>9} {:>9}", "algorithm", "steps", "steps/N").unwrap();
    for alg in AlgorithmId::ALL {
        if !alg.supports_side(side) {
            writeln!(out, "{:<22} {:>9}", alg.name(), "n/a").unwrap();
            continue;
        }
        let mut grid = input.clone();
        let run = SortJob::new(alg, side).run(&mut grid).expect("side checked");
        writeln!(out, "{:<22} {:>9} {:>9.3}", alg.name(), run.steps, run.steps as f64 / n as f64)
            .unwrap();
    }
    let mut grid = input.clone();
    let shear = meshsort_baselines::shearsort_until_sorted(&mut grid);
    writeln!(out, "{:<22} {:>9} {:>9.3}", "shearsort", shear.steps, shear.steps as f64 / n as f64)
        .unwrap();
    out
}

/// `meshsort min-walk`: Theorem 12's observable.
pub fn cmd_min_walk(side: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut grid = random_permutation_grid(side, &mut rng);
    let path = track_min(AlgorithmId::SnakePhaseAligned, &mut grid, runner::default_step_cap(side))
        .expect("snake supports all sides");
    let m = path.initial_rank();
    let home = path.steps_until_home();
    let lemmas = path.verify_rank_lemmas();
    format!(
        "S3 min walk on {side}x{side}: start rank m = {m}, floor 2m-3 = {}, home after {:?} steps, \
         Lemmas 12/13: {}\n",
        (2 * m).saturating_sub(3),
        home,
        if lemmas.is_ok() { "hold" } else { "VIOLATED" }
    )
}

/// `meshsort schedule`: render one algorithm's cycle.
///
/// The schedule is passed through the `meshcheck` structural pass before
/// rendering, so a malformed schedule is reported instead of drawn. With
/// `optimized`, the dead-wire-stripped plan the runners execute is drawn
/// instead, after its equivalence certificate
/// ([`meshsort_mesh::opt::certify`]) is re-checked, and the certificate
/// summary (stripped wires, dead fraction, static convergence bound) is
/// appended.
pub fn cmd_schedule(
    algorithm: AlgorithmId,
    side: usize,
    optimized: bool,
) -> Result<String, String> {
    let schedule = algorithm.schedule(side).map_err(|e| e.to_string())?;
    let policy = algorithm.schedule_policy(side);
    meshsort_mesh::verify::verify_schedule_structural(&schedule, &policy)
        .map_err(|e| format!("schedule failed structural verification: {e}"))?;
    if optimized {
        let plan = meshsort_core::optimized_for(algorithm, side).map_err(|e| e.to_string())?;
        meshsort_mesh::opt::certify(&schedule, &plan, &policy)
            .map_err(|e| format!("optimized plan failed certification: {e}"))?;
        let mut out = format!("{algorithm} optimized cycle on side {side}:\n");
        for (i, step) in plan.schedule.plans().iter().enumerate() {
            writeln!(out, "--- step 4i+{} ({} comparators) ---", i + 1, step.len()).unwrap();
            out.push_str(&render_plan(step, side));
        }
        writeln!(
            out,
            "certificate: OK — {} of {} comparators/cycle stripped as provably dead \
             ({:.1}%), static convergence bound {} steps (default budget {})",
            plan.stripped.len(),
            plan.raw_comparators_per_cycle(),
            100.0 * plan.dead_fraction(),
            plan.static_bound,
            meshsort_mesh::fault::default_step_budget(side)
        )
        .unwrap();
        return Ok(out);
    }
    let mut out = format!("{algorithm} cycle on side {side}:\n");
    for (i, plan) in schedule.plans().iter().enumerate() {
        writeln!(out, "--- step 4i+{} ({} comparators) ---", i + 1, plan.len()).unwrap();
        out.push_str(&render_plan(plan, side));
    }
    Ok(out)
}

/// `meshsort analyze`: the `meshcheck` static certification report.
///
/// Returns the JSON report on success; on any failing pass the error
/// carries a per-failure summary followed by the full report, and the
/// binary exits non-zero.
pub fn cmd_analyze(sides: &[usize]) -> Result<String, String> {
    if sides.is_empty() {
        return Err("analyze needs at least one side".to_string());
    }
    let report = meshsort_analyze::analyze(sides);
    let json = report.to_json();
    if report.all_passed() {
        Ok(json)
    } else {
        let mut msg = String::from("meshcheck found violations:\n");
        for entry in report.failures() {
            for (name, outcome) in entry.passes() {
                if outcome.is_failure() {
                    writeln!(
                        msg,
                        "  {} side {}: {name}: {}",
                        entry.algorithm,
                        entry.side,
                        outcome.note()
                    )
                    .unwrap();
                }
            }
        }
        msg.push_str(&json);
        Err(msg)
    }
}

/// `meshsort chaos`: resilient runs under injected transient faults.
///
/// Sweeps every algorithm over the requested sides, rates, and seed
/// count with recovery scrubbing on. Each (algorithm, side) runs under
/// its *static* budget ([`runner::resilient_policy_for`]): the watchdog
/// and step budget derive from the proven convergence bound where the
/// fixpoint is affordable, falling back to the Θ(N)
/// [`meshsort_mesh::ResilientPolicy::for_side`] default above that.
/// Rate-0 runs are differentially checked against the fault-free engine:
/// any step-count mismatch, non-convergence, or integrity violation is a
/// hard error, because it indicts the runner, not the faults.
pub fn cmd_chaos(sides: &[usize], seeds: u64, rates: &[f64]) -> Result<String, String> {
    if sides.is_empty() {
        return Err("chaos needs at least one side".to_string());
    }
    if seeds == 0 {
        return Err("chaos needs at least one seed".to_string());
    }
    if rates.is_empty() {
        return Err("chaos needs at least one rate".to_string());
    }
    let mut out = String::from(
        "chaos: resilient runs under transient comparator misfires \
         (recovery scrubbing on, static convergence budgets where proven)\n",
    );
    writeln!(
        out,
        "{:<6} {:<22} {:>6} {:>8} {:>10} {:>11} {:>12} {:>11}",
        "side",
        "algorithm",
        "rate",
        "budget",
        "converged",
        "mean steps",
        "dropped/run",
        "recoveries"
    )
    .unwrap();
    for &side in sides {
        for alg in AlgorithmId::ALL {
            if !alg.supports_side(side) {
                writeln!(out, "{side:<6} {:<22} {:>6}", alg.name(), "n/a").unwrap();
                continue;
            }
            let policy = runner::resilient_policy_for(alg, side);
            for &rate in rates {
                let mut converged = 0u64;
                let mut steps_sum = 0u64;
                let mut dropped = 0u64;
                let mut recoveries = 0u64;
                for s in 0..seeds {
                    let mut rng = StdRng::seed_from_u64(s);
                    let mut grid = random_permutation_grid(side, &mut rng);
                    let spec = FaultSpec::transient(s.wrapping_add(1), rate);
                    let baseline = if rate == 0.0 {
                        let mut clone = grid.clone();
                        Some(SortJob::new(alg, side).run(&mut clone).map_err(|e| e.to_string())?)
                    } else {
                        None
                    };
                    let run = SortJob::new(alg, side)
                        .fault_spec(spec)
                        .resilient_policy(policy)
                        .run(&mut grid)
                        .map_err(|e| e.to_string())?;
                    let faults = run.faults.expect("resilient runs report fault stats");
                    dropped += faults.dropped;
                    recoveries += faults.recovery_attempts;
                    match run.convergence {
                        Convergence::Converged { steps } => {
                            converged += 1;
                            steps_sum += run.steps + faults.recovery_steps;
                            if let Some(base) = &baseline {
                                if steps != base.steps {
                                    return Err(format!(
                                        "rate-0 mismatch: {} side {side} seed {s}: resilient \
                                         {steps} steps vs engine {}",
                                        alg.name(),
                                        base.steps
                                    ));
                                }
                            }
                        }
                        Convergence::IntegrityViolation { .. } => {
                            return Err(format!(
                                "integrity violation (value multiset changed): {} side {side} \
                                 rate {rate} seed {s}",
                                alg.name()
                            ));
                        }
                        _ if baseline.is_some() => {
                            return Err(format!(
                                "rate-0 run failed to converge: {} side {side} seed {s} ({})",
                                alg.name(),
                                run.convergence.label()
                            ));
                        }
                        _ => {}
                    }
                }
                let mean_steps = if converged == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", steps_sum as f64 / converged as f64)
                };
                writeln!(
                    out,
                    "{side:<6} {:<22} {rate:>6} {:>8} {:>10} {mean_steps:>11} {:>12.1} \
                     {recoveries:>11}",
                    alg.name(),
                    policy.step_budget,
                    format!("{converged}/{seeds}"),
                    dropped as f64 / seeds as f64
                )
                .unwrap();
            }
        }
    }
    Ok(out)
}

/// `meshsort bench`: the perf trajectory behind `BENCH_meshsort.json`.
///
/// Runs the timer-based harness in `meshsort_bench::perf` (cycles/element
/// per engine and side, plus the many-grid kernel-vs-batch throughput
/// comparison), validates the report — malformed numbers or an aggregate
/// batch speedup below the worker-aware floor (`perf::required_floor`)
/// are hard errors, which is what the CI bench-smoke job leans on — and
/// returns the JSON document.
pub fn cmd_bench(quick: bool) -> Result<String, String> {
    use meshsort_bench::perf;
    let report = perf::run_bench(quick);
    let floor = perf::required_floor(quick, report.throughput.threads);
    perf::validate(&report, floor)?;
    Ok(report.to_json())
}

/// `meshsort loadgen`: open-loop load against a running `meshsortd`.
///
/// Drives the generator in [`meshsort_serve::loadgen`] — request `j` is
/// due at `j/rate` seconds after start regardless of how fast the
/// server answers, so queueing delay shows up in the latency quantiles
/// instead of silently throttling the offered load. Writes the JSON
/// report to `config.report_path` when set, and splices it into
/// `BENCH_meshsort.json` as the `"serve"` section when
/// `config.bench_json` points at one.
pub fn cmd_loadgen(config: &meshsort_serve::loadgen::LoadgenConfig) -> Result<String, String> {
    let report = meshsort_serve::loadgen::run(config)
        .map_err(|e| format!("loadgen against {}: {e}", config.addr))?;
    let json = report.to_json();
    if let Some(path) = &config.report_path {
        meshsort_stats::write_atomic(path, &json)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &config.bench_json {
        let existing = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let merged = meshsort_serve::loadgen::merge_serve_section(&existing, &json);
        meshsort_stats::write_atomic(path, &merged)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    let mut out = format!(
        "loadgen: {} requests at {:.0}/s over {} connections to {} (side {}, optimized {})\n",
        config.requests,
        config.rate,
        config.connections,
        config.addr,
        config.side,
        config.optimized
    );
    writeln!(
        out,
        "  completed {} ({} errors, {} protocol errors) in {:.2}s — {:.0} sorted grids/s",
        report.completed,
        report.errors,
        report.protocol_errors,
        report.elapsed_secs,
        report.throughput
    )
    .unwrap();
    writeln!(
        out,
        "  latency p50 {:.3} ms, p99 {:.3} ms, mean {:.3} ms",
        report.p50_ms, report.p99_ms, report.mean_ms
    )
    .unwrap();
    writeln!(
        out,
        "  resilience: {} retries, {} reconnects, {} gave up, {} duplicates — accounted {}/{}",
        report.retries,
        report.reconnects,
        report.gave_up,
        report.duplicates,
        report.accounted(),
        report.requests
    )
    .unwrap();
    writeln!(out, "  server plan-cache hit rate {:.4}", report.plan_cache_hit_rate).unwrap();
    writeln!(out, "  {json}").unwrap();
    Ok(out)
}

/// `meshsort chaosproxy`: a deterministic network-chaos proxy in front
/// of a running `meshsortd`.
///
/// Binds `listen`, forwards every framed byte to `upstream`, and injects
/// faults (connection resets, truncated frames, duplicated frames,
/// bounded delays) decided purely by hashing `(seed, connection,
/// direction, frame index)` — the same splitmix64 construction the mesh
/// fault injector uses — so a given seed replays a bit-identical fault
/// trace over the same traffic shape. Returns the banner line and the
/// live [`meshsort_serve::chaos::ChaosProxyHandle`]; the binary prints
/// the banner, then stops the proxy on stdin EOF.
pub fn cmd_chaosproxy(
    listen: &str,
    upstream: &str,
    spec: meshsort_serve::chaos::ChaosSpec,
) -> Result<(String, meshsort_serve::chaos::ChaosProxyHandle), String> {
    use std::net::ToSocketAddrs;
    spec.validate()?;
    let upstream_addr = upstream
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve upstream {upstream}: {e}"))?
        .next()
        .ok_or_else(|| format!("upstream {upstream} resolves to no address"))?;
    let handle = meshsort_serve::chaos::ChaosProxyHandle::bind(
        listen,
        meshsort_serve::chaos::ChaosProxyConfig { upstream: upstream_addr, spec },
    )
    .map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let banner = format!(
        "chaosproxy listening on {} -> {} (seed {}, rates: reset {} truncate {} dup {} \
         delay {}, max delay {} ms)\n",
        handle.local_addr(),
        upstream_addr,
        spec.seed,
        spec.reset_rate,
        spec.truncate_rate,
        spec.dup_rate,
        spec.delay_rate,
        spec.max_delay_ms
    );
    Ok((banner, handle))
}

/// `meshsort witness`: N₀ witnesses for the concentration theorems.
pub fn cmd_witness(theorem: u32, gamma: f64, delta: f64) -> Result<String, String> {
    let t = match theorem {
        3 => ConcentrationTheorem::Theorem3,
        5 => ConcentrationTheorem::Theorem5,
        8 => ConcentrationTheorem::Theorem8,
        _ => return Err("theorem must be 3, 5 or 8".to_string()),
    };
    if gamma >= t.constant() {
        return Err(format!("gamma {gamma} must be below the theorem's constant {}", t.constant()));
    }
    match t.witness_n0(gamma, delta, 100_000_000) {
        Some(n0) => Ok(format!(
            "Theorem {theorem}: for gamma = {gamma}, delta = {delta}: n0 = {n0} (N0 = {}) — \
             Chebyshev bound {:.3e} at n0\n",
            4 * n0 * n0,
            t.probability_bound(n0, gamma)
        )),
        None => Err("no witness within the scan cap".to_string()),
    }
}

/// `meshsort formulas`: the exact quantities at one `n`.
pub fn cmd_formulas(n: u64) -> String {
    use meshsort_exact::paper;
    let mut out =
        format!("exact paper quantities at n = {n} (side {}, N = {}):\n", 2 * n, 4 * n * n);
    let rows: Vec<(&str, meshsort_exact::Ratio)> = vec![
        ("Lemma 4   E[Z1]", paper::r1_expected_z1(n)),
        ("Theorem 3 Var(Z1)", paper::r1_var_z1(n)),
        ("Theorem 4 E[Z1]", paper::r2_expected_z1(n)),
        ("Theorem 5 Var(Z1)", paper::r2_var_z1(n)),
        ("Lemma 9   E[Z1(0)]", paper::s1_expected_z10(n)),
        ("Theorem 8 Var[Z1(0)] (corrected)", paper::s1_var_z10(n)),
        ("Lemma 11  E[Y1(0)]", paper::s2_expected_y10(n)),
        ("Theorem 2 bound", paper::thm2_lower_bound(n)),
        ("Theorem 7 bound", paper::thm7_lower_bound(n)),
    ];
    for (label, v) in rows {
        writeln!(out, "  {label:<34} = {v}  (≈ {:.6})", v.to_f64()).unwrap();
    }
    out
}

/// Top-level usage text.
pub fn usage() -> &'static str {
    "meshsort — five 2D bubble sorting algorithms (Savari, SPAA 1993)\n\
     \n\
     usage:\n\
       meshsort sort --algorithm <r1|r2|s1|s2|s3> [--side N] [--seed S] [--trace]\n\
       meshsort race [--side N] [--seed S]\n\
       meshsort min-walk [--side N] [--seed S]\n\
       meshsort schedule --algorithm <id> [--side N] [--optimized]\n\
       meshsort analyze [--sides N1,N2,...]\n\
       meshsort chaos [--sides N1,N2,...] [--seeds K] [--rates P1,P2,...] [--out PATH]\n\
       meshsort bench [--quick] [--out PATH]\n\
       meshsort loadgen [--addr HOST:PORT] [--connections C] [--rate R] [--requests N]\n\
      \x20                [--side N] [--seed S] [--deadline-ms D] [--retries K]\n\
      \x20                [--backoff-base-ms B] [--backoff-cap-ms C]\n\
      \x20                [--report PATH] [--bench-json PATH] [--drain]\n\
       meshsort chaosproxy [--listen HOST:PORT] [--upstream HOST:PORT] [--seed S]\n\
      \x20                   [--fault-rate R] [--reset-rate R] [--truncate-rate R]\n\
      \x20                   [--dup-rate R] [--delay-rate R] [--max-delay-ms M]\n\
       meshsort witness --theorem <3|5|8> --gamma G --delta D\n\
       meshsort formulas [--n N]\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_parsing() {
        assert_eq!(parse_algorithm("r1"), Some(AlgorithmId::RowMajorRowFirst));
        assert_eq!(parse_algorithm("S3"), Some(AlgorithmId::SnakePhaseAligned));
        assert_eq!(parse_algorithm("snake/alternating"), Some(AlgorithmId::SnakeAlternating));
        assert_eq!(parse_algorithm("bogus"), None);
    }

    #[test]
    fn sort_reports_steps() {
        let out = cmd_sort(AlgorithmId::SnakeAlternating, 8, 1, false).unwrap();
        assert!(out.contains("sorted 64 values"));
        assert!(out.contains("steps/cell"));
    }

    #[test]
    fn sort_rejects_odd_side_for_row_major() {
        let err = cmd_sort(AlgorithmId::RowMajorRowFirst, 5, 1, false).unwrap_err();
        assert!(err.contains("even side"));
    }

    #[test]
    fn sort_trace_has_timeline() {
        let out = cmd_sort(AlgorithmId::SnakeAlternating, 6, 2, true).unwrap();
        assert!(out.contains("inversions"));
        assert!(out.lines().count() > 4);
        assert!(out.contains("sorted in"));
    }

    #[test]
    fn race_lists_all_competitors() {
        let out = cmd_race(8, 3);
        for alg in AlgorithmId::ALL {
            assert!(out.contains(alg.name()), "{out}");
        }
        assert!(out.contains("shearsort"));
        // Odd side: row-major shows n/a.
        let out = cmd_race(5, 3);
        assert!(out.contains("n/a"));
    }

    #[test]
    fn min_walk_reports_lemmas() {
        let out = cmd_min_walk(8, 4);
        assert!(out.contains("Lemmas 12/13: hold"), "{out}");
    }

    #[test]
    fn schedule_renders() {
        let out = cmd_schedule(AlgorithmId::RowMajorRowFirst, 4, false).unwrap();
        assert!(out.contains("step 4i+1"));
        assert!(out.contains("o<>o"));
        assert!(out.contains('@'), "wrap wires missing: {out}");
        assert!(cmd_schedule(AlgorithmId::RowMajorRowFirst, 3, false).is_err());
    }

    #[test]
    fn schedule_optimized_renders_certificate() {
        let out = cmd_schedule(AlgorithmId::SnakePhaseAligned, 4, true).unwrap();
        assert!(out.contains("optimized cycle"), "{out}");
        assert!(out.contains("certificate: OK"), "{out}");
        assert!(out.contains("3 of 24 comparators/cycle stripped"), "{out}");
        assert!(out.contains("static convergence bound 31 steps"), "{out}");
        // A fully live schedule renders an identity certificate.
        let out = cmd_schedule(AlgorithmId::SnakeAlternating, 4, true).unwrap();
        assert!(out.contains("0 of 24 comparators/cycle stripped"), "{out}");
    }

    #[test]
    fn analyze_certifies_small_sides() {
        let out = cmd_analyze(&[2, 3]).unwrap();
        assert!(out.contains("\"tool\": \"meshcheck\""), "{out}");
        assert!(out.contains("\"all_passed\": true"), "{out}");
        assert!(out.contains("snake/phase-aligned"));
        // All eight passes are reported, including the static-analysis
        // passes added by the dataflow analyzer and the lifting pass
        // (skipped below its side-4 window floor).
        assert!(out.contains("\"dataflow\": {\"status\": \"passed\""), "{out}");
        assert!(out.contains("\"dataflow_lifted\": {\"status\": \"skipped\""), "{out}");
        assert!(out.contains("\"zero_one_symbolic\": {\"status\": \"passed\""), "{out}");
        // Row-major on the odd side is skipped, not failed.
        assert!(out.contains("\"status\": \"skipped\""));
    }

    #[test]
    fn analyze_rejects_empty_sides() {
        assert!(cmd_analyze(&[]).is_err());
    }

    #[test]
    fn chaos_sweeps_and_recovers() {
        let out = cmd_chaos(&[6], 2, &[0.0, 0.2]).unwrap();
        assert!(out.contains("recovery scrubbing on"), "{out}");
        for alg in AlgorithmId::ALL {
            assert!(out.contains(alg.name()), "{out}");
        }
        // With recovery enabled, transient misfires at 0.2 still converge.
        assert!(out.contains("2/2"), "{out}");
        assert!(!out.contains("0/2"), "{out}");
    }

    #[test]
    fn chaos_skips_unsupported_sides() {
        let out = cmd_chaos(&[5], 1, &[0.1]).unwrap();
        assert!(out.contains("n/a"), "{out}");
    }

    #[test]
    fn chaos_rejects_degenerate_requests() {
        assert!(cmd_chaos(&[], 2, &[0.1]).is_err());
        assert!(cmd_chaos(&[4], 0, &[0.1]).is_err());
        assert!(cmd_chaos(&[4], 2, &[]).is_err());
        // An out-of-range rate is rejected by spec validation, not a panic.
        assert!(cmd_chaos(&[4], 1, &[1.5]).is_err());
    }

    #[test]
    fn bench_quick_emits_valid_report() {
        let json = cmd_bench(true).unwrap();
        assert!(json.contains("\"schema\": \"meshsort-bench-v1\""), "{json}");
        assert!(json.contains("\"batch_throughput\""), "{json}");
        assert!(json.contains("\"engine\": \"batch\""), "{json}");
    }

    #[test]
    fn loadgen_drives_a_live_server() {
        use meshsort_serve::server::{ServerConfig, ServerHandle};
        let handle =
            ServerHandle::bind("127.0.0.1:0", ServerConfig::default()).expect("bind free port");
        let config = meshsort_serve::loadgen::LoadgenConfig {
            addr: handle.local_addr().to_string(),
            connections: 2,
            rate: 5000.0,
            requests: 40,
            side: 4,
            drain: true,
            ..Default::default()
        };
        let out = cmd_loadgen(&config).unwrap();
        assert!(out.contains("completed 40 (0 errors, 0 protocol errors)"), "{out}");
        assert!(out.contains("accounted 40/40"), "{out}");
        assert!(out.contains("plan-cache hit rate"), "{out}");
        assert!(out.contains("\"p99_ms\""), "{out}");
        handle.wait();
    }

    #[test]
    fn chaosproxy_fronts_a_live_server() {
        use meshsort_serve::chaos::ChaosSpec;
        use meshsort_serve::server::{ServerConfig, ServerHandle};
        use meshsort_serve::wire::{self, Request, Response};
        let server =
            ServerHandle::bind("127.0.0.1:0", ServerConfig::default()).expect("bind server");
        let (banner, proxy) =
            cmd_chaosproxy("127.0.0.1:0", &server.local_addr().to_string(), ChaosSpec::none(1993))
                .unwrap();
        assert!(banner.starts_with("chaosproxy listening on "), "{banner}");
        assert!(banner.contains("seed 1993"), "{banner}");

        let mut conn = std::net::TcpStream::connect(proxy.local_addr()).expect("connect via proxy");
        wire::write_frame(&mut conn, &wire::encode_request(1, &Request::Ping)).expect("send");
        let frame = wire::read_frame(&mut conn).expect("read").expect("frame");
        assert_eq!(wire::decode_response(&frame).expect("decode"), Response::Pong);
        drop(conn);

        proxy.stop();
        proxy.wait();
        server.request_drain();
        server.wait();
    }

    #[test]
    fn chaosproxy_rejects_bad_specs_and_upstreams() {
        use meshsort_serve::chaos::ChaosSpec;
        let bad_spec = ChaosSpec { reset_rate: 1.5, ..ChaosSpec::none(1) };
        assert!(cmd_chaosproxy("127.0.0.1:0", "127.0.0.1:1", bad_spec).is_err());
        assert!(cmd_chaosproxy("127.0.0.1:0", "not an address", ChaosSpec::none(1)).is_err());
    }

    #[test]
    fn witness_solves() {
        let out = cmd_witness(3, 0.25, 0.05).unwrap();
        assert!(out.contains("n0 = "));
        assert!(cmd_witness(3, 0.6, 0.05).is_err());
        assert!(cmd_witness(4, 0.2, 0.05).is_err());
    }

    #[test]
    fn formulas_prints_erratum_label() {
        let out = cmd_formulas(3);
        assert!(out.contains("corrected"));
        assert!(out.contains("Lemma 4"));
        assert!(out.contains('/')); // exact rationals visible
    }
}
