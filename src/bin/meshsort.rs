//! The `meshsort` binary: a thin dispatcher over [`meshsort::cli`].

#![forbid(unsafe_code)]

use meshsort::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprint!("{}", cli::usage());
        std::process::exit(2);
    }
    let command = args[0].as_str();

    // Flag parsing: --key value pairs after the subcommand.
    let mut side = 16usize;
    let mut side_set = false;
    let mut sides: Vec<usize> = vec![4, 5, 8];
    let mut seed = 1993u64;
    let mut n_param = 4u64;
    let mut algorithm = None;
    let mut trace = false;
    let mut quick = false;
    let mut optimized = false;
    let mut theorem = 3u32;
    let mut gamma = 0.25f64;
    let mut delta = 0.05f64;
    let mut seeds = 8u64;
    let mut rates: Vec<f64> = vec![0.0, 0.01, 0.05];
    let mut out_path: Option<String> = None;
    let mut addr = "127.0.0.1:7465".to_string();
    let mut connections = 4usize;
    let mut rate = 2000.0f64;
    let mut requests = 10_000u64;
    let mut report: Option<String> = None;
    let mut bench_json: Option<String> = None;
    let mut drain = false;
    let mut deadline_ms = 0u32;
    let mut retries: Option<u32> = None;
    let mut backoff_base_ms: Option<u64> = None;
    let mut backoff_cap_ms: Option<u64> = None;
    let mut listen = "127.0.0.1:7464".to_string();
    let mut upstream = "127.0.0.1:7465".to_string();
    let mut fault_rate: Option<f64> = None;
    let mut reset_rate: Option<f64> = None;
    let mut truncate_rate: Option<f64> = None;
    let mut dup_rate: Option<f64> = None;
    let mut delay_rate: Option<f64> = None;
    let mut max_delay_ms: Option<u64> = None;
    let mut i = 1;
    let bad = |msg: &str| -> ! {
        eprintln!("error: {msg}\n");
        eprint!("{}", cli::usage());
        std::process::exit(2);
    };
    while i < args.len() {
        match args[i].as_str() {
            "--side" => {
                i += 1;
                side =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --side"));
                side_set = true;
            }
            "--sides" => {
                i += 1;
                let raw = args.get(i).unwrap_or_else(|| bad("missing --sides"));
                sides = raw
                    .split(',')
                    .map(|p| p.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
                    .unwrap_or_else(|_| bad("bad --sides (expected e.g. 4,5,8)"));
                if sides.is_empty() {
                    bad("bad --sides (expected e.g. 4,5,8)");
                }
            }
            "--seed" => {
                i += 1;
                seed =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --seed"));
            }
            "--n" => {
                i += 1;
                n_param =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --n"));
            }
            "--algorithm" => {
                i += 1;
                let name = args.get(i).unwrap_or_else(|| bad("missing algorithm"));
                algorithm =
                    Some(cli::parse_algorithm(name).unwrap_or_else(|| bad("unknown algorithm")));
            }
            "--trace" => trace = true,
            "--quick" => quick = true,
            "--optimized" => optimized = true,
            "--theorem" => {
                i += 1;
                theorem = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad("bad --theorem"));
            }
            "--gamma" => {
                i += 1;
                gamma =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --gamma"));
            }
            "--delta" => {
                i += 1;
                delta =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --delta"));
            }
            "--seeds" => {
                i += 1;
                seeds =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --seeds"));
            }
            "--rates" => {
                i += 1;
                let raw = args.get(i).unwrap_or_else(|| bad("missing --rates"));
                rates = raw
                    .split(',')
                    .map(|p| p.trim().parse::<f64>())
                    .collect::<Result<Vec<f64>, _>>()
                    .unwrap_or_else(|_| bad("bad --rates (expected e.g. 0,0.01,0.05)"));
                if rates.is_empty() {
                    bad("bad --rates (expected e.g. 0,0.01,0.05)");
                }
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).unwrap_or_else(|| bad("missing --out")).clone());
            }
            "--addr" => {
                i += 1;
                addr = args.get(i).unwrap_or_else(|| bad("missing --addr")).clone();
            }
            "--connections" => {
                i += 1;
                connections = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&c: &usize| c > 0)
                    .unwrap_or_else(|| bad("bad --connections"));
            }
            "--rate" => {
                i += 1;
                rate = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&r: &f64| r > 0.0)
                    .unwrap_or_else(|| bad("bad --rate"));
            }
            "--requests" => {
                i += 1;
                requests = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad("bad --requests"));
            }
            "--report" => {
                i += 1;
                report = Some(args.get(i).unwrap_or_else(|| bad("missing --report")).clone());
            }
            "--bench-json" => {
                i += 1;
                bench_json =
                    Some(args.get(i).unwrap_or_else(|| bad("missing --bench-json")).clone());
            }
            "--drain" => drain = true,
            "--deadline-ms" => {
                i += 1;
                deadline_ms = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad("bad --deadline-ms"));
            }
            "--retries" => {
                i += 1;
                retries = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad("bad --retries")),
                );
            }
            "--backoff-base-ms" => {
                i += 1;
                backoff_base_ms = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad("bad --backoff-base-ms")),
                );
            }
            "--backoff-cap-ms" => {
                i += 1;
                backoff_cap_ms = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad("bad --backoff-cap-ms")),
                );
            }
            "--listen" => {
                i += 1;
                listen = args.get(i).unwrap_or_else(|| bad("missing --listen")).clone();
            }
            "--upstream" => {
                i += 1;
                upstream = args.get(i).unwrap_or_else(|| bad("missing --upstream")).clone();
            }
            "--fault-rate" => {
                i += 1;
                fault_rate = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad("bad --fault-rate")),
                );
            }
            "--reset-rate" => {
                i += 1;
                reset_rate = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad("bad --reset-rate")),
                );
            }
            "--truncate-rate" => {
                i += 1;
                truncate_rate = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad("bad --truncate-rate")),
                );
            }
            "--dup-rate" => {
                i += 1;
                dup_rate = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad("bad --dup-rate")),
                );
            }
            "--delay-rate" => {
                i += 1;
                delay_rate = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad("bad --delay-rate")),
                );
            }
            "--max-delay-ms" => {
                i += 1;
                max_delay_ms = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad("bad --max-delay-ms")),
                );
            }
            other => bad(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let result = match command {
        "sort" => {
            let alg = algorithm.unwrap_or_else(|| bad("sort needs --algorithm"));
            cli::cmd_sort(alg, side, seed, trace)
        }
        "race" => Ok(cli::cmd_race(side, seed)),
        "min-walk" => Ok(cli::cmd_min_walk(side, seed)),
        "schedule" => {
            let alg = algorithm.unwrap_or_else(|| bad("schedule needs --algorithm"));
            cli::cmd_schedule(alg, side.min(12), optimized)
        }
        "analyze" => cli::cmd_analyze(&sides),
        "chaos" => cli::cmd_chaos(&sides, seeds, &rates),
        "bench" => cli::cmd_bench(quick),
        "loadgen" => {
            let defaults = meshsort_serve::loadgen::LoadgenConfig::default();
            let config = meshsort_serve::loadgen::LoadgenConfig {
                addr,
                connections,
                rate,
                requests,
                // The loadgen default is the paper's benchmark side 8,
                // not the 16 the offline subcommands default to.
                side: if side_set { side } else { 8 },
                seed,
                deadline_ms,
                max_attempts: retries.unwrap_or(defaults.max_attempts),
                backoff_base_ms: backoff_base_ms.unwrap_or(defaults.backoff_base_ms),
                backoff_cap_ms: backoff_cap_ms.unwrap_or(defaults.backoff_cap_ms),
                report_path: report.map(std::path::PathBuf::from),
                bench_json: bench_json.map(std::path::PathBuf::from),
                drain,
                ..defaults
            };
            cli::cmd_loadgen(&config)
        }
        "chaosproxy" => {
            use meshsort_serve::chaos::ChaosSpec;
            let mut spec = match fault_rate {
                Some(r) => ChaosSpec::uniform(seed, r),
                None => ChaosSpec::none(seed),
            };
            if let Some(r) = reset_rate {
                spec.reset_rate = r;
            }
            if let Some(r) = truncate_rate {
                spec.truncate_rate = r;
            }
            if let Some(r) = dup_rate {
                spec.dup_rate = r;
            }
            if let Some(r) = delay_rate {
                spec.delay_rate = r;
                if spec.max_delay_ms == 0 {
                    spec.max_delay_ms = 20;
                }
            }
            if let Some(ms) = max_delay_ms {
                spec.max_delay_ms = ms;
            }
            match cli::cmd_chaosproxy(&listen, &upstream, spec) {
                Ok((banner, handle)) => {
                    print!("{banner}");
                    // Mirror meshsortd: stdin EOF is the shutdown signal
                    // for supervisors that cannot speak the protocol.
                    let stopper = handle.stopper();
                    std::thread::spawn(move || {
                        let mut sink = [0u8; 256];
                        let mut stdin = std::io::stdin();
                        loop {
                            use std::io::Read as _;
                            match stdin.read(&mut sink) {
                                Ok(0) | Err(_) => break,
                                Ok(_) => {}
                            }
                        }
                        eprintln!("chaosproxy: stdin closed, stopping");
                        stopper();
                    });
                    eprintln!("chaosproxy: stopped ({})", handle.wait_with_summary());
                    return;
                }
                Err(msg) => Err(msg),
            }
        }
        "witness" => cli::cmd_witness(theorem, gamma, delta),
        "formulas" => Ok(cli::cmd_formulas(n_param)),
        "help" | "--help" | "-h" => {
            print!("{}", cli::usage());
            return;
        }
        other => bad(&format!("unknown command {other}")),
    };

    match result {
        Ok(text) => match out_path {
            Some(path) => {
                meshsort_stats::write_atomic(std::path::Path::new(&path), &text)
                    .unwrap_or_else(|e| bad(&format!("cannot write {path}: {e}")));
                eprintln!("wrote {path}");
            }
            None => print!("{text}"),
        },
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
