//! The `meshsort` binary: a thin dispatcher over [`meshsort::cli`].

#![forbid(unsafe_code)]

use meshsort::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprint!("{}", cli::usage());
        std::process::exit(2);
    }
    let command = args[0].as_str();

    // Flag parsing: --key value pairs after the subcommand.
    let mut side = 16usize;
    let mut side_set = false;
    let mut sides: Vec<usize> = vec![4, 5, 8];
    let mut seed = 1993u64;
    let mut n_param = 4u64;
    let mut algorithm = None;
    let mut trace = false;
    let mut quick = false;
    let mut optimized = false;
    let mut theorem = 3u32;
    let mut gamma = 0.25f64;
    let mut delta = 0.05f64;
    let mut seeds = 8u64;
    let mut rates: Vec<f64> = vec![0.0, 0.01, 0.05];
    let mut out_path: Option<String> = None;
    let mut addr = "127.0.0.1:7465".to_string();
    let mut connections = 4usize;
    let mut rate = 2000.0f64;
    let mut requests = 10_000u64;
    let mut report: Option<String> = None;
    let mut bench_json: Option<String> = None;
    let mut drain = false;
    let mut i = 1;
    let bad = |msg: &str| -> ! {
        eprintln!("error: {msg}\n");
        eprint!("{}", cli::usage());
        std::process::exit(2);
    };
    while i < args.len() {
        match args[i].as_str() {
            "--side" => {
                i += 1;
                side =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --side"));
                side_set = true;
            }
            "--sides" => {
                i += 1;
                let raw = args.get(i).unwrap_or_else(|| bad("missing --sides"));
                sides = raw
                    .split(',')
                    .map(|p| p.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
                    .unwrap_or_else(|_| bad("bad --sides (expected e.g. 4,5,8)"));
                if sides.is_empty() {
                    bad("bad --sides (expected e.g. 4,5,8)");
                }
            }
            "--seed" => {
                i += 1;
                seed =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --seed"));
            }
            "--n" => {
                i += 1;
                n_param =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --n"));
            }
            "--algorithm" => {
                i += 1;
                let name = args.get(i).unwrap_or_else(|| bad("missing algorithm"));
                algorithm =
                    Some(cli::parse_algorithm(name).unwrap_or_else(|| bad("unknown algorithm")));
            }
            "--trace" => trace = true,
            "--quick" => quick = true,
            "--optimized" => optimized = true,
            "--theorem" => {
                i += 1;
                theorem = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad("bad --theorem"));
            }
            "--gamma" => {
                i += 1;
                gamma =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --gamma"));
            }
            "--delta" => {
                i += 1;
                delta =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --delta"));
            }
            "--seeds" => {
                i += 1;
                seeds =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| bad("bad --seeds"));
            }
            "--rates" => {
                i += 1;
                let raw = args.get(i).unwrap_or_else(|| bad("missing --rates"));
                rates = raw
                    .split(',')
                    .map(|p| p.trim().parse::<f64>())
                    .collect::<Result<Vec<f64>, _>>()
                    .unwrap_or_else(|_| bad("bad --rates (expected e.g. 0,0.01,0.05)"));
                if rates.is_empty() {
                    bad("bad --rates (expected e.g. 0,0.01,0.05)");
                }
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).unwrap_or_else(|| bad("missing --out")).clone());
            }
            "--addr" => {
                i += 1;
                addr = args.get(i).unwrap_or_else(|| bad("missing --addr")).clone();
            }
            "--connections" => {
                i += 1;
                connections = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&c: &usize| c > 0)
                    .unwrap_or_else(|| bad("bad --connections"));
            }
            "--rate" => {
                i += 1;
                rate = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&r: &f64| r > 0.0)
                    .unwrap_or_else(|| bad("bad --rate"));
            }
            "--requests" => {
                i += 1;
                requests = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad("bad --requests"));
            }
            "--report" => {
                i += 1;
                report = Some(args.get(i).unwrap_or_else(|| bad("missing --report")).clone());
            }
            "--bench-json" => {
                i += 1;
                bench_json =
                    Some(args.get(i).unwrap_or_else(|| bad("missing --bench-json")).clone());
            }
            "--drain" => drain = true,
            other => bad(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let result = match command {
        "sort" => {
            let alg = algorithm.unwrap_or_else(|| bad("sort needs --algorithm"));
            cli::cmd_sort(alg, side, seed, trace)
        }
        "race" => Ok(cli::cmd_race(side, seed)),
        "min-walk" => Ok(cli::cmd_min_walk(side, seed)),
        "schedule" => {
            let alg = algorithm.unwrap_or_else(|| bad("schedule needs --algorithm"));
            cli::cmd_schedule(alg, side.min(12), optimized)
        }
        "analyze" => cli::cmd_analyze(&sides),
        "chaos" => cli::cmd_chaos(&sides, seeds, &rates),
        "bench" => cli::cmd_bench(quick),
        "loadgen" => {
            let config = meshsort_serve::loadgen::LoadgenConfig {
                addr,
                connections,
                rate,
                requests,
                // The loadgen default is the paper's benchmark side 8,
                // not the 16 the offline subcommands default to.
                side: if side_set { side } else { 8 },
                seed,
                report_path: report.map(std::path::PathBuf::from),
                bench_json: bench_json.map(std::path::PathBuf::from),
                drain,
                ..Default::default()
            };
            cli::cmd_loadgen(&config)
        }
        "witness" => cli::cmd_witness(theorem, gamma, delta),
        "formulas" => Ok(cli::cmd_formulas(n_param)),
        "help" | "--help" | "-h" => {
            print!("{}", cli::usage());
            return;
        }
        other => bad(&format!("unknown command {other}")),
    };

    match result {
        Ok(text) => match out_path {
            Some(path) => {
                meshsort_stats::write_atomic(std::path::Path::new(&path), &text)
                    .unwrap_or_else(|e| bad(&format!("cannot write {path}: {e}")));
                eprintln!("wrote {path}");
            }
            None => print!("{text}"),
        },
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
