//! Property-based integration tests: the five algorithms sort *every*
//! input (0–1 principle plus direct permutation checks), conserve the
//! value multiset, respect their step caps, and treat their sorted
//! states as fixed points.

use meshsort::core::runner;
use meshsort::prelude::*;
use proptest::prelude::*;

fn arb_side(min: usize, max: usize) -> impl Strategy<Value = usize> {
    (min..=max).prop_filter("non-empty", |s| *s >= 1)
}

fn arb_permutation(side: usize) -> impl Strategy<Value = Vec<u32>> {
    Just((0..(side * side) as u32).collect::<Vec<u32>>()).prop_shuffle()
}

fn supported_sides(alg: AlgorithmId) -> impl Strategy<Value = usize> {
    match alg {
        AlgorithmId::RowMajorRowFirst | AlgorithmId::RowMajorColFirst => {
            arb_side(1, 5).prop_map(|k| 2 * k).boxed()
        }
        _ => arb_side(2, 9).boxed(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn r1_sorts_any_permutation(
        (side, data) in supported_sides(AlgorithmId::RowMajorRowFirst)
            .prop_flat_map(|s| (Just(s), arb_permutation(s)))
    ) {
        let mut grid = Grid::from_rows(side, data).unwrap();
        let run = SortJob::new(AlgorithmId::RowMajorRowFirst, side).run(&mut grid).unwrap();
        prop_assert!(run.sorted());
        prop_assert!(grid.is_sorted(TargetOrder::RowMajor));
        prop_assert_eq!(grid.into_vec(), (0..(side * side) as u32).collect::<Vec<_>>());
    }

    #[test]
    fn r2_sorts_any_permutation(
        (side, data) in supported_sides(AlgorithmId::RowMajorColFirst)
            .prop_flat_map(|s| (Just(s), arb_permutation(s)))
    ) {
        let mut grid = Grid::from_rows(side, data).unwrap();
        let run = SortJob::new(AlgorithmId::RowMajorColFirst, side).run(&mut grid).unwrap();
        prop_assert!(run.sorted());
        prop_assert!(grid.is_sorted(TargetOrder::RowMajor));
    }

    #[test]
    fn snakes_sort_any_permutation_any_side(
        (alg, side) in prop::sample::select(&AlgorithmId::SNAKE[..])
            .prop_flat_map(|a| (Just(a), supported_sides(a))),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut grid = random_permutation_grid(side, &mut rng);
        let run = SortJob::new(alg, side).run(&mut grid).unwrap();
        prop_assert!(run.sorted(), "{alg} side {side}");
        prop_assert!(grid.is_sorted(TargetOrder::Snake));
    }

    #[test]
    fn zero_one_inputs_sort_with_duplicates(
        side in 2usize..=7,
        bits in prop::collection::vec(0u8..=1, 4..=49),
    ) {
        // 0-1 principle inputs with arbitrary zero counts.
        let cells = side * side;
        let data: Vec<u8> = (0..cells).map(|i| bits[i % bits.len()]).collect();
        for alg in AlgorithmId::ALL {
            if !alg.supports_side(side) {
                continue;
            }
            let mut grid = Grid::from_rows(side, data.clone()).unwrap();
            let before_zeros = data.iter().filter(|&&v| v == 0).count();
            let run = SortJob::new(alg, side).run(&mut grid).unwrap();
            prop_assert!(run.sorted(), "{alg}");
            let after_zeros = grid.as_slice().iter().filter(|&&v| v == 0).count();
            prop_assert_eq!(before_zeros, after_zeros, "{alg} lost zeros");
        }
    }

    #[test]
    fn steps_within_theta_n_cap(
        side in 2usize..=8,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for alg in AlgorithmId::ALL {
            if !alg.supports_side(side) {
                continue;
            }
            let mut grid = random_permutation_grid(side, &mut rng);
            let run = SortJob::new(alg, side).run(&mut grid).unwrap();
            prop_assert!(run.sorted());
            // Far below the safety cap: worst case is Θ(N) with a small
            // constant (~2 for the row-major, ~2 for S3).
            prop_assert!(
                run.steps <= 4 * (side * side) as u64 + 16,
                "{}: {} steps on side {}",
                alg, run.steps, side
            );
        }
    }

    #[test]
    fn sorted_state_is_fixed_point_for_every_algorithm(
        side in 2usize..=8,
        cycles in 1u64..4,
    ) {
        for alg in AlgorithmId::ALL {
            if !alg.supports_side(side) {
                continue;
            }
            let mut grid = meshsort::mesh::grid::sorted_permutation_grid(side, alg.order());
            let schedule = alg.schedule(side).unwrap();
            let out = schedule.run_steps(&mut grid, 0, 4 * cycles);
            prop_assert_eq!(out.swaps, 0, "{alg} moved a sorted grid");
        }
    }

    #[test]
    fn run_is_deterministic(
        side in 2usize..=6,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        for alg in AlgorithmId::ALL {
            if !alg.supports_side(side) {
                continue;
            }
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut a = random_permutation_grid(side, &mut rng);
            let mut b = a.clone();
            let ra = SortJob::new(alg, side).run(&mut a).unwrap();
            let rb = SortJob::new(alg, side).run(&mut b).unwrap();
            prop_assert_eq!(ra.steps, rb.steps);
            prop_assert_eq!(ra.swaps, rb.swaps);
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn caps_are_generous_relative_to_observed_worst() {
    // Deterministic sanity anchor for the proptest cap above.
    for side in [4usize, 6, 8] {
        for alg in AlgorithmId::ALL {
            if !alg.supports_side(side) {
                continue;
            }
            let cap = runner::default_step_cap(side);
            assert!(cap >= 8 * (side * side) as u64);
        }
    }
}
