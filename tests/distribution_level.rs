//! Distribution-level validation: the Monte-Carlo simulator against the
//! *exact laws* derived in `meshsort-exact::distribution` — a chi-square
//! goodness-of-fit across the full pmf, much stronger than matching
//! means and variances.

use meshsort::core::AlgorithmId;
use meshsort::exact::distribution::{pmf_mean, pmf_variance, r1_z1_distribution};
use meshsort::mesh::apply_plan;
use meshsort::stats::gof::chi_square_test;
use meshsort::workloads::zero_one::random_balanced_zero_one_grid;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_z1_counts(side: usize, trials: u64, seed: u64) -> Vec<u64> {
    let schedule = AlgorithmId::RowMajorRowFirst.schedule(side).unwrap();
    let mut counts = vec![0u64; side + 1];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..trials {
        let mut grid = random_balanced_zero_one_grid(side, &mut rng);
        apply_plan(&mut grid, schedule.plan_at(0));
        let z1 = grid.column(0).filter(|&&v| v == 0).count();
        counts[z1] += 1;
    }
    counts
}

#[test]
fn z1_samples_match_exact_law() {
    for n in [2u64, 4, 8] {
        let side = (2 * n) as usize;
        let pmf = r1_z1_distribution(n);
        let probs: Vec<f64> = pmf.iter().map(|p| p.to_f64()).collect();
        let counts = sample_z1_counts(side, 40_000, 0xD157 + n);
        let t = chi_square_test(&counts, &probs, 5.0);
        // A correct simulator should not be rejected at the 0.1% level.
        assert!(t.p_value > 0.001, "n={n}: χ² = {:.2}, p = {:.6}", t.statistic, t.p_value);
    }
}

#[test]
fn exact_law_detects_a_broken_simulator() {
    // Negative control: sample Z₁ from the *wrong* algorithm (R2's first
    // two steps) and check the R1 law rejects it decisively.
    let n = 4u64;
    let side = 8usize;
    let pmf = r1_z1_distribution(n);
    let probs: Vec<f64> = pmf.iter().map(|p| p.to_f64()).collect();
    let schedule = AlgorithmId::RowMajorColFirst.schedule(side).unwrap();
    let mut counts = vec![0u64; side + 1];
    let mut rng = StdRng::seed_from_u64(0xBAD);
    for _ in 0..40_000 {
        let mut grid = random_balanced_zero_one_grid(side, &mut rng);
        apply_plan(&mut grid, schedule.plan_at(0));
        apply_plan(&mut grid, schedule.plan_at(1));
        counts[grid.column(0).filter(|&&v| v == 0).count()] += 1;
    }
    let t = chi_square_test(&counts, &probs, 5.0);
    assert!(t.p_value < 1e-9, "wrong law not rejected: {t:?}");
}

#[test]
fn exact_law_moments_match_paper_module() {
    for n in [1u64, 3, 6, 10] {
        let pmf = r1_z1_distribution(n);
        assert_eq!(pmf_mean(&pmf), meshsort::exact::paper::r1_expected_z1(n), "mean n={n}");
        assert_eq!(pmf_variance(&pmf), meshsort::exact::paper::r1_var_z1(n), "var n={n}");
    }
}

#[test]
fn support_is_concentrated_in_upper_half() {
    // Lemma 4's message, distribution edition: Z₁ lives around 3n/2;
    // mass below n is tiny already at n = 8.
    let n = 8u64;
    let pmf = r1_z1_distribution(n);
    let below_n: f64 = pmf.iter().take(n as usize + 1).map(|p| p.to_f64()).sum();
    assert!(below_n < 0.03, "P(Z1 <= n) = {below_n}");
}
