//! Reproducibility guarantees across the workspace: fixed seeds produce
//! identical workloads, runs, statistics and experiment reports,
//! independent of thread count.

use meshsort::prelude::*;
use meshsort::stats::{run_trials, RunningStats, SeedSequence};

#[test]
fn workloads_reproduce_from_seeds() {
    use rand::SeedableRng;
    let g1 = random_permutation_grid(10, &mut rand::rngs::StdRng::seed_from_u64(5));
    let g2 = random_permutation_grid(10, &mut rand::rngs::StdRng::seed_from_u64(5));
    assert_eq!(g1, g2);
    let z1 = random_balanced_zero_one_grid(9, &mut rand::rngs::StdRng::seed_from_u64(6));
    let z2 = random_balanced_zero_one_grid(9, &mut rand::rngs::StdRng::seed_from_u64(6));
    assert_eq!(z1, z2);
}

#[test]
fn parallel_monte_carlo_is_thread_count_invariant() {
    let measure = |threads: usize| -> RunningStats {
        run_trials(
            SeedSequence::new(0xDE7),
            40,
            threads,
            RunningStats::new,
            |_i, rng, acc: &mut RunningStats| {
                let mut grid = random_permutation_grid(8, rng);
                let run = SortJob::new(AlgorithmId::SnakeStaggeredCols, 8).run(&mut grid).unwrap();
                acc.push(run.steps as f64);
            },
            |a, b| a.merge(&b),
        )
    };
    let baseline = measure(1);
    for threads in [2usize, 4, 8] {
        let s = measure(threads);
        assert_eq!(s.count(), baseline.count());
        assert!((s.mean() - baseline.mean()).abs() < 1e-12, "threads {threads}");
        assert_eq!(s.min(), baseline.min());
        assert_eq!(s.max(), baseline.max());
    }
}

#[test]
fn experiment_reports_reproduce() {
    use meshsort::experiments::{run_by_id, Config};
    let mut cfg = Config::quick();
    cfg.seed = 123;
    let a = run_by_id("e01", &cfg).unwrap();
    let b = run_by_id("e01", &cfg).unwrap();
    assert_eq!(a.rows, b.rows);
    // And a different thread count must not change the numbers.
    let mut cfg2 = cfg.clone();
    cfg2.threads = (cfg.threads % 4) + 1;
    let c = run_by_id("e01", &cfg2).unwrap();
    assert_eq!(a.rows, c.rows);
    // A different seed must.
    cfg.seed = 124;
    let d = run_by_id("e01", &cfg).unwrap();
    assert_ne!(a.rows, d.rows);
}

#[test]
fn algorithm_runs_are_pure_functions_of_input() {
    use rand::SeedableRng;
    for alg in AlgorithmId::ALL {
        let side = 6;
        if !alg.supports_side(side) {
            continue;
        }
        let input = random_permutation_grid(side, &mut rand::rngs::StdRng::seed_from_u64(0xF00D));
        let mut a = input.clone();
        let mut b = input.clone();
        let ra = SortJob::new(alg, side).run(&mut a).unwrap();
        let rb = SortJob::new(alg, side).run(&mut b).unwrap();
        assert_eq!(ra.steps, rb.steps, "{alg}");
        assert_eq!(ra.comparisons, rb.comparisons, "{alg}");
        assert_eq!(a, b, "{alg}");
    }
}
