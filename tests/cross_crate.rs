//! Cross-crate integration: the exact crate's derivations against the
//! live simulator, the `A ↦ A^01` reduction's lower-bound property, the
//! Shearsort baseline against the bubble sorts, and the experiment
//! registry end-to-end.

use meshsort::mesh::{apply_plan, TargetOrder};
use meshsort::prelude::*;
use meshsort::workloads::zero_one::reduce_to_zero_one;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The exact crate simulates R2's 2×2 block mapping internally
/// (Theorem 4). Verify that mapping against the *real* mesh schedule:
/// run R2's first two steps on a full mesh and check every block matches
/// the canonical form predicted from its zero pattern.
#[test]
fn exact_block_mapping_matches_live_schedule() {
    let side = 6;
    let schedule = AlgorithmId::RowMajorColFirst.schedule(side).unwrap();
    let mut rng = StdRng::seed_from_u64(0xB10C);
    for _ in 0..200 {
        let input = meshsort::workloads::zero_one::random_balanced_zero_one_grid(side, &mut rng);
        let mut grid = input.clone();
        apply_plan(&mut grid, schedule.plan_at(0));
        apply_plan(&mut grid, schedule.plan_at(1));
        for bh in 0..side / 2 {
            for bj in 0..side / 2 {
                let (r, c) = (2 * bh, 2 * bj);
                let pattern = [
                    *input.get(r, c),
                    *input.get(r, c + 1),
                    *input.get(r + 1, c),
                    *input.get(r + 1, c + 1),
                ];
                let zeros = pattern.iter().filter(|&&v| v == 0).count();
                // Count zeros in the block's left column after the sort.
                let left_zeros =
                    (*grid.get(r, c) == 0) as usize + (*grid.get(r + 1, c) == 0) as usize;
                // The paper's canonical mapping by zero count:
                let expected = match (zeros, pattern) {
                    (4, _) => 2,
                    (3, _) => 2,
                    (2, [0, 1, 0, 1]) | (2, [1, 0, 1, 0]) => 2,
                    (2, _) => 1,
                    (1, _) => 1,
                    _ => 0,
                };
                assert_eq!(left_zeros, expected, "block ({bh},{bj}) pattern {pattern:?}");
            }
        }
    }
}

/// The `A ↦ A^01` reduction is a lower bound: sorting the 0–1 image
/// never takes longer than sorting the original permutation (same
/// comparator network, 0–1 principle direction used by the paper).
#[test]
fn zero_one_reduction_lower_bounds_permutation_steps() {
    let mut rng = StdRng::seed_from_u64(0x10E);
    for alg in AlgorithmId::ALL {
        for side in [4usize, 6, 8] {
            if !alg.supports_side(side) {
                continue;
            }
            for _ in 0..20 {
                let perm = random_permutation_grid(side, &mut rng);
                let mut reduced = reduce_to_zero_one(&perm);
                let mut full = perm.clone();
                let r_reduced = SortJob::new(alg, side).run(&mut reduced).unwrap();
                let r_full = SortJob::new(alg, side).run(&mut full).unwrap();
                assert!(
                    r_reduced.steps <= r_full.steps,
                    "{alg} side {side}: 0-1 image took {} > {}",
                    r_reduced.steps,
                    r_full.steps
                );
            }
        }
    }
}

/// Running an algorithm on the 0–1 image step-by-step alongside the
/// permutation shows the image is exactly the thresholded permutation at
/// *every* step (obliviousness: comparators act identically through the
/// monotone 0–1 projection).
#[test]
fn zero_one_projection_commutes_with_steps() {
    let side = 6;
    let alg = AlgorithmId::SnakeAlternating;
    let schedule = alg.schedule(side).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0);
    let perm = random_permutation_grid(side, &mut rng);
    let mut image = reduce_to_zero_one(&perm);
    let mut full = perm.clone();
    for t in 0..100u64 {
        apply_plan(&mut full, schedule.plan_at(t));
        apply_plan(&mut image, schedule.plan_at(t));
        let reprojected = reduce_to_zero_one(&full);
        assert_eq!(image, reprojected, "diverged at step {t}");
    }
}

/// Shearsort and every bubble sort agree on the *result* (the sorted
/// snake arrangement) even though their step counts differ wildly.
#[test]
fn all_snake_sorters_agree_on_final_arrangement() {
    let mut rng = StdRng::seed_from_u64(0xA9EE);
    let side = 8;
    let input = random_permutation_grid(side, &mut rng);
    let expected = input.sorted_copy(TargetOrder::Snake);

    for alg in AlgorithmId::SNAKE {
        let mut grid = input.clone();
        SortJob::new(alg, side).run(&mut grid).unwrap();
        assert_eq!(grid, expected, "{alg}");
    }
    let mut grid = input.clone();
    meshsort::baselines::shearsort_until_sorted(&mut grid);
    assert_eq!(grid, expected, "shearsort");
}

/// The experiment registry runs end-to-end in quick mode with nothing
/// failing — the same check the CLI's exit code performs.
#[test]
fn experiment_registry_quick_smoke() {
    use meshsort::experiments::{run_by_id, Config};
    let cfg = Config::quick();
    // A representative cross-section (the full set runs in the
    // experiments crate's own tests; E01/E11/E15 are the cheapest of
    // each kind: statistic, deterministic, 1D).
    for id in ["e01", "e11", "e15"] {
        let report = run_by_id(id, &cfg).expect("known id");
        assert!(report.overall().acceptable(), "{id}: {}", report.render());
    }
}

/// Corollary 2's chain across crates: measure M via `meshsort-zeroone`,
/// bound via `meshsort-exact`, reality via `meshsort-core`.
#[test]
fn corollary2_chain_holds_on_random_inputs() {
    let side = 8;
    let n = (side / 2) as u64;
    let schedule = AlgorithmId::RowMajorRowFirst.schedule(side).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC02);
    for _ in 0..50 {
        let mut grid = meshsort::workloads::zero_one::random_balanced_zero_one_grid(side, &mut rng);
        apply_plan(&mut grid, schedule.plan_at(0));
        let m = meshsort::zeroone::m_statistic(&grid);
        // Continue the run to completion, counting total steps (the first
        // row sort already happened).
        let mut t = 1u64;
        while !grid.is_sorted(TargetOrder::RowMajor) && t < 10_000 {
            apply_plan(&mut grid, schedule.plan_at(t));
            t += 1;
        }
        if m > 0 {
            let bound = meshsort::exact::paper::corollary2_steps_bound(m as u64, n);
            assert!(t > bound, "steps {t} <= 4nM = {bound} (M = {m})");
        }
    }
}
