//! The paper's headline figure, as a terminal sweep: mean sorting steps
//! per cell (steps/N) for all five algorithms across mesh sizes, against
//! the diameter bound `2√N − 2` and Shearsort. The bubble sorts flatline
//! at a constant (Θ(N) average); the alternatives sink toward zero.
//!
//! ```text
//! cargo run --release --example average_vs_diameter [trials]
//! ```

use meshsort::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mean_steps(alg: AlgorithmId, side: usize, trials: u64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0u64;
    for _ in 0..trials {
        let mut grid = random_permutation_grid(side, &mut rng);
        total += SortJob::new(alg, side).run(&mut grid).unwrap().steps;
    }
    total as f64 / trials as f64
}

fn main() {
    let trials: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(48);
    let sides = [8usize, 12, 16, 24, 32];

    println!("mean steps / N on random permutations ({trials} trials per cell)\n");
    print!("{:<22}", "algorithm");
    for side in sides {
        print!("  {:>8}", format!("{side}x{side}"));
    }
    println!();
    println!("{}", "-".repeat(22 + sides.len() * 10));

    for alg in AlgorithmId::ALL {
        print!("{:<22}", alg.name());
        for side in sides {
            let per_n = mean_steps(alg, side, trials, 0xD1A) / (side * side) as f64;
            print!("  {per_n:>8.3}");
        }
        println!();
    }

    print!("{:<22}", "shearsort");
    for side in sides {
        let mut rng = StdRng::seed_from_u64(0xD1A);
        let mut total = 0u64;
        for _ in 0..trials {
            let mut grid = random_permutation_grid(side, &mut rng);
            total += meshsort::baselines::shearsort_until_sorted(&mut grid).steps;
        }
        print!("  {:>8.3}", total as f64 / trials as f64 / (side * side) as f64);
    }
    println!();

    print!("{:<22}", "diameter bound");
    for side in sides {
        let d = meshsort::mesh::pos::mesh_diameter(side) as f64;
        print!("  {:>8.3}", d / (side * side) as f64);
    }
    println!();

    println!(
        "\nreading: the five bubble sorts hold a CONSTANT steps/N (Θ(N) average — the paper's\nresult), while shearsort and the diameter bound vanish as N grows."
    );
}
