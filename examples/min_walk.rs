//! Theorem 12 live: track the smallest element under the third snakelike
//! algorithm. Its final snake rank decreases by at most one per two
//! steps (Lemmas 12/13), so starting from rank `m` it needs at least
//! `2m − 3` steps to reach the top-left cell — the mechanism that makes
//! S3 Θ(N) with high probability.
//!
//! ```text
//! cargo run --release --example min_walk [side] [seed]
//! ```

use meshsort::core::min_tracker::{theorem12_lower_bound, track_min, MinPath};
use meshsort::core::{runner, AlgorithmId};
use meshsort::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut grid = random_permutation_grid(side, &mut rng);
    let start = grid.enumerate().min_by_key(|(_, &v)| v).map(|(p, _)| p).expect("non-empty grid");
    let m = MinPath::snake_rank(start, side);

    println!("min walk under snake/phase-aligned on a {side}x{side} mesh");
    println!("smallest element starts at {start} = snake rank m = {m}");
    println!(
        "Theorem 12 floor: needs >= 2m-3 = {} steps to reach (0,0)\n",
        theorem12_lower_bound(m)
    );

    let path = track_min(AlgorithmId::SnakePhaseAligned, &mut grid, runner::default_step_cap(side))
        .expect("snake supports all sides");
    assert!(path.sorted);
    path.verify_rank_lemmas().expect("Lemmas 12/13 hold on every trajectory");

    let walk = path.rank_walk();
    print!("rank walk (sampled every 2 steps): ");
    for (i, r) in walk.iter().enumerate() {
        if i > 0 {
            print!(" > ");
        }
        print!("{r}");
        if *r == 1 {
            break;
        }
    }
    println!();

    let home = path.steps_until_home().expect("sorted => min is home");
    println!("\nmin reached (0,0) after {home} steps (floor was {})", theorem12_lower_bound(m));
    println!("grid fully sorted after {} steps (N = {})", path.positions.len() - 1, side * side);

    // Contrast: the same input under S1 — its min is NOT rank-locked and
    // typically arrives in O(sqrt(N)) steps.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut grid = random_permutation_grid(side, &mut rng);
    let p1 = track_min(AlgorithmId::SnakeAlternating, &mut grid, runner::default_step_cap(side))
        .expect("snake supports all sides");
    if let Some(h1) = p1.steps_until_home() {
        println!("\nfor contrast, snake/alternating brought its min home in {h1} steps");
    }
}
