//! Print the paper's closed-form quantities exactly — as rationals, not
//! floats — for a range of `n`, including the `o(1)` corrections the
//! asymptotic statements hide, and the Theorem 8 erratum discovered by
//! this reproduction.
//!
//! ```text
//! cargo run --release --example exact_formulas [max_n]
//! ```

use meshsort::exact::paper;

fn main() {
    let max_n: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(6);

    println!("exact paper quantities (side 2n, N = 4n^2)\n");
    for n in 2..=max_n {
        let nn = 4 * n * n;
        println!("n = {n} (side {}, N = {nn}):", 2 * n);
        println!("  Lemma 4   E[Z1]      = {}", paper::r1_expected_z1(n));
        println!("  Theorem 3 Var(Z1)    = {}", paper::r1_var_z1(n));
        println!("  Theorem 4 E[Z1]      = {}", paper::r2_expected_z1(n));
        println!("  Theorem 5 Var(Z1)    = {}", paper::r2_var_z1(n));
        println!("  Lemma 9   E[Z1(0)]   = {}", paper::s1_expected_z10(n));
        println!(
            "  Theorem 8 Var[Z1(0)] = {}  (corrected; paper prints 17n^2/8+...)",
            paper::s1_var_z10(n)
        );
        println!("  Lemma 11  E[Y1(0)]   = {}", paper::s2_expected_y10(n));
        println!("  Theorem 2 bound      = {}", paper::thm2_lower_bound(n));
        println!("  Theorem 4 bound      = {}", paper::thm4_lower_bound(n));
        println!("  Theorem 7 bound      = {}", paper::thm7_lower_bound(n));
        println!("  Theorem 10 bound     = {}", paper::thm10_lower_bound(n));
        println!("  odd side 2n+1: Lemma 14 E[Z1(0)] = {}", paper::s1_expected_z10_odd(n));
        println!("                 Corollary 4 bound = {}", paper::corollary4_lower_bound(n));
        println!();
    }

    println!("block distribution for R2 (Theorem 4), n = {max_n}:");
    let d = paper::r2_block_z1_distribution(max_n);
    for (z, p) in d.iter().enumerate() {
        println!("  P(z1 = {z}) = {p}  ≈ {:.6}", p.to_f64());
    }
}
