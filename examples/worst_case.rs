//! Corollary 1's adversary: put the smallest `√N` values in one column
//! and watch the wrap-around wires drain them around the mesh edge —
//! at a cost of at least `2N − 4√N` steps. Also demonstrates *why* the
//! wires exist: without them this input would never sort.
//!
//! ```text
//! cargo run --release --example worst_case [side]
//! ```

use meshsort::core::{AlgorithmId, SortJob};
use meshsort::exact::paper::corollary1_worst_case;
use meshsort::mesh::TargetOrder;
use meshsort::workloads::adversarial::smallest_in_one_column;

fn main() {
    let side: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    assert!(side % 2 == 0, "the row-major algorithms need an even side");
    let n = side * side;
    let bound = corollary1_worst_case(side as u64);

    println!("Corollary 1 adversary on a {side}x{side} mesh (N = {n})");
    println!("the smallest {side} values start stacked in column 1");
    println!("predicted minimum: 2N - 4*sqrt(N) = {bound} steps\n");

    for alg in AlgorithmId::ROW_MAJOR {
        let mut grid = smallest_in_one_column(side, 0);
        let run = SortJob::new(alg, side).run(&mut grid).expect("even side");
        assert!(run.sorted());
        assert!(grid.is_sorted(TargetOrder::RowMajor));
        println!(
            "{:<22} {:>8} steps  ({:.2}x the bound, {:.2} steps per cell)",
            alg.name(),
            run.steps,
            run.steps as f64 / bound as f64,
            run.steps as f64 / n as f64
        );
    }

    // Compare with the average case on the same mesh size.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBAD);
    let trials = 32;
    let mut total = 0u64;
    for _ in 0..trials {
        let mut grid = meshsort::workloads::permutation::random_permutation_grid(side, &mut rng);
        total += SortJob::new(AlgorithmId::RowMajorRowFirst, side).run(&mut grid).unwrap().steps;
    }
    println!(
        "\nfor scale: {} random permutations averaged {:.0} steps — the paper's point is that\nthis average is itself Θ(N), only a small constant below the adversary",
        trials,
        total as f64 / trials as f64
    );
}
