//! Watch the paper's §2 analysis happen: run the first row-major
//! algorithm on a random balanced 0–1 mesh and print, cycle by cycle,
//! the per-column zero counts — the zeros of heavy odd columns visibly
//! *travel* leftward one column per row-sorting step, wrapping from
//! column 1 to column 2n, exactly as Lemmas 2–3 describe. Also prints the
//! `M` statistic and Theorem 1's predicted minimum remaining steps.
//!
//! ```text
//! cargo run --release --example zero_one_dynamics [side] [seed]
//! ```

use meshsort::core::AlgorithmId;
use meshsort::mesh::{apply_plan, TargetOrder};
use meshsort::workloads::zero_one::random_balanced_zero_one_grid;
use meshsort::zeroone::column_stats::{m_statistic, ColumnStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    assert!(side % 2 == 0, "the row-major algorithms need an even side");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut grid = random_balanced_zero_one_grid(side, &mut rng);
    let schedule = AlgorithmId::RowMajorRowFirst.schedule(side).unwrap();
    let alpha = (side * side / 2) as u64;

    println!("zero/one travel on a {side}x{side} balanced 0-1 mesh (alpha = {alpha} zeros)\n");
    println!("per-column zero counts after each row-sorting step:");
    println!("  (odd paper columns shown [bracketed] — Lemma 2/3 shift zeros toward them)\n");

    let render = |stats: &ColumnStats| -> String {
        stats
            .zeros
            .iter()
            .enumerate()
            .map(|(k, z)| if k % 2 == 0 { format!("[{z:>2}]") } else { format!(" {z:>2} ") })
            .collect::<Vec<_>>()
            .join("")
    };

    println!("t=  0 (input)      {}", render(&ColumnStats::of(&grid)));

    // First row sort: the measurement point of Lemma 4 / Corollary 2.
    apply_plan(&mut grid, schedule.plan_at(0));
    let stats = ColumnStats::of(&grid);
    let m = m_statistic(&grid);
    let x = stats.max_zeros_odd_columns();
    println!("t=  1 (row odd)    {}", render(&stats));
    println!(
        "\n  M statistic = {m} -> Corollary 2 floor: > {} steps",
        meshsort::exact::paper::corollary2_steps_bound(m.max(0) as u64, (side / 2) as u64)
    );
    println!(
        "  max zeros in an odd column x = {x} -> Theorem 1: >= {} more steps\n",
        meshsort::exact::paper::theorem1_extra_steps(x, alpha, side as u64)
    );

    let mut t = 1u64;
    let cap = 16 * (side * side) as u64;
    while !grid.is_sorted(TargetOrder::RowMajor) && t < cap {
        apply_plan(&mut grid, schedule.plan_at(t));
        t += 1;
        // Report after every row-sorting step (cycle steps 1 and 3).
        if t % 4 == 1 || t % 4 == 3 {
            let label = if t % 4 == 1 { "row odd " } else { "row even" };
            println!("t={t:>3} ({label})   {}", render(&ColumnStats::of(&grid)));
        }
    }
    println!(
        "\nsorted after {t} steps (N = {}, steps/N = {:.2})",
        side * side,
        t as f64 / (side * side) as f64
    );
}
