//! The concentration theorems, constructively: for a grid of `γ` and
//! `δ` values, print the smallest witness `N₀` such that the probability
//! of sorting in fewer than `γN` steps is provably below `δ` for all
//! `N ≥ N₀` (Theorems 3, 5 and 8, via their own Chebyshev bounds).
//!
//! ```text
//! cargo run --release --example concentration
//! ```

use meshsort::exact::thresholds::ConcentrationTheorem;

fn main() {
    let theorems = [
        (ConcentrationTheorem::Theorem3, "Thm 3 (R1)"),
        (ConcentrationTheorem::Theorem5, "Thm 5 (R2)"),
        (ConcentrationTheorem::Theorem8, "Thm 8 (S1)"),
    ];
    let deltas = [0.1f64, 0.01, 0.001];

    println!("witness N0 for 'P[steps < gamma*N] <= delta for all N >= N0'\n");
    println!(
        "{:<12} {:>7} {:>9} {:>14} {:>14} {:>14}",
        "theorem", "c", "gamma", "delta 0.1", "delta 0.01", "delta 0.001"
    );
    println!("{}", "-".repeat(75));
    for (theorem, label) in theorems {
        let c = theorem.constant();
        for frac in [0.5f64, 0.8, 0.95] {
            let gamma = frac * c;
            print!("{label:<12} {c:>7.3} {gamma:>9.4}");
            for &delta in &deltas {
                match theorem.witness_n0(gamma, delta, 1_000_000_000) {
                    Some(n0) => print!(" {:>14}", format!("N0={}", 4 * n0 * n0)),
                    None => print!(" {:>14}", "> cap"),
                }
            }
            println!();
        }
    }
    println!(
        "\nreading: Theorem 8's witnesses are far smaller — its statistic concentrates at\n\
         scale n^2 with variance Θ(n^2) (the corrected constant 1/8; see EXPERIMENTS.md),\n\
         so its Chebyshev bound decays like 1/N instead of 1/sqrt(N)."
    );
}
