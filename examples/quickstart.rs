//! Quickstart: sort one random permutation with each of the paper's five
//! algorithms and report the step counts.
//!
//! ```text
//! cargo run --release --example quickstart [side] [seed]
//! ```

use meshsort::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1993);
    let n = side * side;

    println!("meshsort quickstart — {side}x{side} mesh, N = {n}, seed = {seed}");
    println!(
        "(paper: every algorithm needs Θ(N) steps on average; diameter is only {})\n",
        meshsort::mesh::pos::mesh_diameter(side)
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let input = random_permutation_grid(side, &mut rng);

    println!("{:<22} {:>10} {:>10} {:>8}", "algorithm", "steps", "swaps", "steps/N");
    for alg in AlgorithmId::ALL {
        if !alg.supports_side(side) {
            println!("{:<22} {:>10}", alg.name(), "(needs an even side)");
            continue;
        }
        let mut grid = input.clone();
        let run = SortJob::new(alg, side).run(&mut grid).expect("side supported");
        assert!(run.sorted(), "{alg} failed to sort");
        assert!(grid.is_sorted(alg.order()));
        println!(
            "{:<22} {:>10} {:>10} {:>8.3}",
            alg.name(),
            run.steps,
            run.swaps,
            run.steps as f64 / n as f64
        );
    }

    let mut grid = input.clone();
    let shear = meshsort::baselines::shearsort_until_sorted(&mut grid);
    println!(
        "{:<22} {:>10} {:>10} {:>8.3}   <- the O(sqrt(N) log sqrt(N)) baseline",
        "shearsort",
        shear.steps,
        shear.swaps,
        shear.steps as f64 / n as f64
    );
}
