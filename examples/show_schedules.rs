//! Print the 4-step comparator cycle of each of the paper's five
//! algorithms as ASCII diagrams — the step definitions of §1, visible.
//!
//! ```text
//! cargo run --example show_schedules [side]
//! ```

use meshsort::core::AlgorithmId;
use meshsort::mesh::viz::render_plan;

fn main() {
    let side: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(6);

    for alg in AlgorithmId::ALL {
        println!("==================================================================");
        println!("{alg}  (target: {}, side {side})", alg.order().label());
        println!("==================================================================");
        let schedule = match alg.schedule(side) {
            Ok(s) => s,
            Err(e) => {
                println!("  not defined on side {side}: {e}\n");
                continue;
            }
        };
        let labels = ["step 4i+1", "step 4i+2", "step 4i+3", "step 4i+4"];
        for (label, plan) in labels.iter().zip(schedule.plans()) {
            println!("--- {label} ({} comparators) ---", plan.len());
            println!("{}", render_plan(plan, side));
        }
    }
    println!("legend: o<>o forward row comparator (min left)   o><o reverse (min right)");
    println!("        v column comparator (min up)             @ wrap-around exit");
}
