//! Signed arbitrary-precision integers: a sign wrapped around [`BigUint`].

use crate::biguint::BigUint;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Sign of a [`BigInt`]. Zero is always [`Sign::Zero`] (canonical form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// An arbitrary-precision signed integer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BigInt {
    sign: Sign,
    magnitude: BigUint,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, magnitude: BigUint::zero() }
    }

    /// One.
    pub fn one() -> Self {
        BigInt { sign: Sign::Positive, magnitude: BigUint::one() }
    }

    /// From a signed primitive.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Self::zero(),
            Ordering::Greater => {
                BigInt { sign: Sign::Positive, magnitude: BigUint::from_u64(v as u64) }
            }
            Ordering::Less => {
                BigInt { sign: Sign::Negative, magnitude: BigUint::from_u64(v.unsigned_abs()) }
            }
        }
    }

    /// From an unsigned magnitude (non-negative result).
    pub fn from_biguint(magnitude: BigUint) -> Self {
        if magnitude.is_zero() {
            Self::zero()
        } else {
            BigInt { sign: Sign::Positive, magnitude }
        }
    }

    /// Builds from an explicit sign and magnitude (canonicalizing zero).
    pub fn new(sign: Sign, magnitude: BigUint) -> Self {
        if magnitude.is_zero() || sign == Sign::Zero {
            Self::zero()
        } else {
            BigInt { sign, magnitude }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value.
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        match self.sign {
            Sign::Zero => Self::zero(),
            Sign::Positive => BigInt { sign: Sign::Negative, magnitude: self.magnitude.clone() },
            Sign::Negative => BigInt { sign: Sign::Positive, magnitude: self.magnitude.clone() },
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt { sign: a, magnitude: self.magnitude.add(&other.magnitude) },
            _ => {
                // Opposite signs: subtract the smaller magnitude.
                match self.magnitude.cmp(&other.magnitude) {
                    Ordering::Equal => Self::zero(),
                    Ordering::Greater => {
                        BigInt::new(self.sign, self.magnitude.sub(&other.magnitude))
                    }
                    Ordering::Less => BigInt::new(other.sign, other.magnitude.sub(&self.magnitude)),
                }
            }
        }
    }

    /// `self − other`.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// `self · other`.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        let sign = match (self.sign, other.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => return Self::zero(),
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        BigInt { sign, magnitude: self.magnitude.mul(&other.magnitude) }
    }

    /// Best-effort conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude.to_f64();
        match self.sign {
            Sign::Negative => -m,
            _ => m,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.magnitude.cmp(&other.magnitude),
                Sign::Negative => other.magnitude.cmp(&self.magnitude),
            },
            ord => ord,
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-{}", self.magnitude)
        } else {
            write!(f, "{}", self.magnitude)
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from_i64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> BigInt {
        BigInt::from_i64(v)
    }

    #[test]
    fn canonical_zero() {
        assert!(int(0).is_zero());
        assert_eq!(int(0).sign(), Sign::Zero);
        assert_eq!(BigInt::new(Sign::Negative, BigUint::zero()), BigInt::zero());
        assert_eq!(int(5).sub(&int(5)), BigInt::zero());
    }

    #[test]
    fn signed_addition_table() {
        assert_eq!(int(3).add(&int(4)), int(7));
        assert_eq!(int(-3).add(&int(-4)), int(-7));
        assert_eq!(int(3).add(&int(-4)), int(-1));
        assert_eq!(int(-3).add(&int(4)), int(1));
        assert_eq!(int(3).add(&int(0)), int(3));
        assert_eq!(int(0).add(&int(-4)), int(-4));
    }

    #[test]
    fn signed_subtraction() {
        assert_eq!(int(3).sub(&int(10)), int(-7));
        assert_eq!(int(-3).sub(&int(-10)), int(7));
        assert_eq!(int(0).sub(&int(9)), int(-9));
    }

    #[test]
    fn signed_multiplication() {
        assert_eq!(int(3).mul(&int(-4)), int(-12));
        assert_eq!(int(-3).mul(&int(-4)), int(12));
        assert_eq!(int(-3).mul(&int(0)), int(0));
    }

    #[test]
    fn ordering() {
        let mut v = vec![int(5), int(-10), int(0), int(-2), int(3)];
        v.sort();
        assert_eq!(v, vec![int(-10), int(-2), int(0), int(3), int(5)]);
    }

    #[test]
    fn display() {
        assert_eq!(int(-42).to_string(), "-42");
        assert_eq!(int(42).to_string(), "42");
        assert_eq!(int(0).to_string(), "0");
    }

    #[test]
    fn to_f64_signed() {
        assert_eq!(int(-1000).to_f64(), -1000.0);
        assert_eq!(int(1000).to_f64(), 1000.0);
    }

    #[test]
    fn i64_min_round_trips() {
        let v = BigInt::from_i64(i64::MIN);
        assert!(v.is_negative());
        assert_eq!(v.magnitude().to_u64(), Some(1u64 << 63));
    }

    #[test]
    fn neg_involution() {
        for x in [-7i64, 0, 3] {
            assert_eq!(int(x).neg().neg(), int(x));
        }
    }
}
