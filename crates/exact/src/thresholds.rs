//! The existential content of the concentration theorems, made
//! constructive.
//!
//! Theorems 3, 5 and 8 each say: *given `γ < c` and `δ > 0`, there
//! exists `N₀` such that `Prob{E[γ, N]} ≤ δ` for all `N ≥ N₀`* — where
//! `E[γ, N]` is the event that sorting needs fewer than `γN` steps. The
//! proofs are effective: the probability is bounded by an explicit
//! Chebyshev expression. This module evaluates those bounds for every
//! `n` and solves for the smallest witness `n₀` (hence `N₀ = 4n₀²`).
//!
//! Scanning to large `n₀` with exact rationals would require binomials
//! over `4n²` cells, so the bounds here are evaluated in `f64` via
//! falling-factorial products (each a handful of multiplications, exact
//! to ~1 ulp); tests pin the `f64` path against the exact rationals of
//! [`crate::paper`] for every small `n`.

use crate::paper;

/// `P(c specific cells all ones)` as an f64 product:
/// `∏_{i<c} (ones − i)/(total − i)`.
fn q_ones_f64(total: u64, zeros: u64, c: u64) -> f64 {
    let ones = total - zeros;
    if c > ones {
        return 0.0;
    }
    let mut p = 1.0;
    for i in 0..c {
        p *= (ones - i) as f64 / (total - i) as f64;
    }
    p
}

/// `P(a specific assignment of c cells with z zeros)` in f64:
/// `(zeros)_z · (ones)_{c−z} / (total)_c` (falling factorials).
fn assignment_f64(total: u64, zeros: u64, c: u64, z: u64) -> f64 {
    let ones = total - zeros;
    if z > zeros || c - z > ones || z > c {
        return 0.0;
    }
    let mut p = 1.0;
    for i in 0..z {
        p *= (zeros - i) as f64;
    }
    for i in 0..(c - z) {
        p *= (ones - i) as f64;
    }
    for i in 0..c {
        p /= (total - i) as f64;
    }
    p
}

fn balanced(n: u64) -> (u64, u64) {
    (4 * n * n, 2 * n * n)
}

/// f64 `E[Z₁]` for R1 (Lemma 4).
pub fn r1_mean_f64(n: u64) -> f64 {
    let (t, z) = balanced(n);
    2.0 * n as f64 * (1.0 - q_ones_f64(t, z, 2))
}

/// f64 `Var(Z₁)` for R1 (Theorem 3).
pub fn r1_var_f64(n: u64) -> f64 {
    let (t, z) = balanced(n);
    let e1 = 1.0 - q_ones_f64(t, z, 2);
    let e12 = 1.0 - 2.0 * q_ones_f64(t, z, 2) + q_ones_f64(t, z, 4);
    let nn = 2.0 * n as f64;
    nn * e1 + nn * (nn - 1.0) * e12 - (nn * e1) * (nn * e1)
}

fn r2_block_dist_f64(n: u64) -> [f64; 3] {
    let (t, z) = balanced(n);
    // z1 = 2 for: the 4-zero pattern, the four 3-zero patterns, and two
    // of the 2-zero patterns; z1 = 1 for four 2-zero and four 1-zero
    // patterns; z1 = 0 for the all-ones pattern (paper Theorem 4 map).
    let p = |zz: u64| assignment_f64(t, z, 4, zz);
    [p(0), 4.0 * p(2) + 4.0 * p(1), p(4) + 4.0 * p(3) + 2.0 * p(2)]
}

/// f64 `E[Z₁]` for R2 (Theorem 4).
pub fn r2_mean_f64(n: u64) -> f64 {
    let d = r2_block_dist_f64(n);
    n as f64 * (d[1] + 2.0 * d[2])
}

/// f64 `Var(Z₁)` for R2 (Theorem 5), with the joint term from the
/// 256-pattern enumeration structure collapsed to falling factorials.
pub fn r2_var_f64(n: u64) -> f64 {
    let (t, z) = balanced(n);
    let d = r2_block_dist_f64(n);
    let e1 = d[1] + 2.0 * d[2];
    let e1sq = d[1] + 4.0 * d[2];
    // E[z1 z2] over two stacked blocks: enumerate the 256 patterns with
    // f64 assignment probabilities (fast: 256 × O(8) multiplies).
    let mut e12 = 0.0;
    for mask in 0u32..256 {
        let za = block_z1_of_mask(mask & 0xF);
        let zb = block_z1_of_mask(mask >> 4);
        if za == 0 || zb == 0 {
            continue;
        }
        let zeros_in_pattern = 8 - u64::from(mask.count_ones());
        e12 += (za * zb) as f64 * assignment_f64(t, z, 8, zeros_in_pattern);
    }
    let nf = n as f64;
    nf * e1sq + nf * (nf - 1.0) * e12 - (nf * e1) * (nf * e1)
}

// Mask bit set ⇒ cell holds a ONE (so the zero count is 4 − popcount).
fn block_z1_of_mask(mask: u32) -> u64 {
    let cell = |i: u32| ((mask >> i) & 1) as u8; // 1 = one, 0 = zero
    let [a, b, c, d] = [cell(0), cell(1), cell(2), cell(3)];
    // Column odd sort then row odd sort (same as paper::r2_sort_block).
    let (a, c) = (a.min(c), a.max(c));
    let (b, d) = (b.min(d), b.max(d));
    let (a, _b) = (a.min(b), a.max(b));
    let (c, _d) = (c.min(d), c.max(d));
    u64::from(a == 0) + u64::from(c == 0)
}

/// f64 `E[Z₁(0)]` for S1 (Lemma 9).
pub fn s1_mean_f64(n: u64) -> f64 {
    let (t, z) = balanced(n);
    let pair_cells = (2 * n * n - n) as f64;
    pair_cells * (1.0 - q_ones_f64(t, z, 2)) + (2 * n) as f64 * 0.5
}

/// f64 `Var[Z₁(0)]` for S1 (Theorem 8, corrected — see the erratum note
/// on [`paper::s1_var_z10`]).
pub fn s1_var_f64(n: u64) -> f64 {
    let (t, z) = balanced(n);
    let a = (2 * n * n - n) as f64;
    let b = (2 * n) as f64;
    let q2 = q_ones_f64(t, z, 2);
    let q3 = q_ones_f64(t, z, 3);
    let q4 = q_ones_f64(t, z, 4);
    let e_pair = 1.0 - q2;
    let e_pp = 1.0 - 2.0 * q2 + q4;
    let e_pc = 1.0 - q2 - 0.5 + q3;
    let e_cc = assignment_f64(t, z, 2, 2);
    let mean = s1_mean_f64(n);
    a * e_pair + a * (a - 1.0) * e_pp + 2.0 * a * b * e_pc + b * 0.5 + b * (b - 1.0) * e_cc
        - mean * mean
}

/// Which concentration theorem's bound to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcentrationTheorem {
    /// Theorem 3 — R1, constant `c = 1/2`, statistic `Z₁`,
    /// threshold `(γ+1)n + 1`.
    Theorem3,
    /// Theorem 5 — R2, constant `c = 3/8`, same threshold shape.
    Theorem5,
    /// Theorem 8 — S1, constant `c = 1/2`, statistic `Z₁(0)`,
    /// threshold `n²(γ+1) + n/2 + 1`.
    Theorem8,
}

impl ConcentrationTheorem {
    /// The constant `c` below which `γ` must lie.
    pub fn constant(self) -> f64 {
        match self {
            ConcentrationTheorem::Theorem3 | ConcentrationTheorem::Theorem8 => 0.5,
            ConcentrationTheorem::Theorem5 => 0.375,
        }
    }

    /// The Chebyshev bound on `Prob{E[γ, N]}` at parameter `n`
    /// (`N = 4n²`): `Var(X)/(E[X] − threshold)²`, clamped to 1 when the
    /// threshold is at or above the mean.
    pub fn probability_bound(self, n: u64, gamma: f64) -> f64 {
        let nf = n as f64;
        let (mean, var, threshold) = match self {
            ConcentrationTheorem::Theorem3 => {
                (r1_mean_f64(n), r1_var_f64(n), (gamma + 1.0) * nf + 1.0)
            }
            ConcentrationTheorem::Theorem5 => {
                (r2_mean_f64(n), r2_var_f64(n), (gamma + 1.0) * nf + 1.0)
            }
            ConcentrationTheorem::Theorem8 => {
                (s1_mean_f64(n), s1_var_f64(n), nf * nf * (gamma + 1.0) + nf / 2.0 + 1.0)
            }
        };
        if threshold >= mean {
            return 1.0;
        }
        (var / ((mean - threshold) * (mean - threshold))).min(1.0)
    }

    /// The smallest `n₀` such that the Chebyshev bound is ≤ `δ` at `n₀`
    /// and for the next 8 values of `n` (a practical monotonicity
    /// check), or `None` if no `n ≤ n_cap` works.
    ///
    /// # Panics
    ///
    /// Panics when `γ ≥ c` (the theorem does not apply) or `δ ≤ 0`.
    pub fn witness_n0(self, gamma: f64, delta: f64, n_cap: u64) -> Option<u64> {
        assert!(gamma < self.constant(), "gamma must be below the theorem's constant");
        assert!(delta > 0.0, "delta must be positive");
        let verify_tail = 8u64;
        (1..=n_cap)
            .find(|&n| (n..=n + verify_tail).all(|m| self.probability_bound(m, gamma) <= delta))
    }
}

/// Cross-check helper: the f64 means/variances against the exact crate
/// (used by tests; exposed for the bench ablation).
pub fn f64_exact_agreement(n: u64) -> f64 {
    let checks = [
        (r1_mean_f64(n), paper::r1_expected_z1(n)),
        (r1_var_f64(n), paper::r1_var_z1(n)),
        (r2_mean_f64(n), paper::r2_expected_z1(n)),
        (r2_var_f64(n), paper::r2_var_z1(n)),
        (s1_mean_f64(n), paper::s1_expected_z10(n)),
        (s1_var_f64(n), paper::s1_var_z10(n)),
    ];
    checks
        .iter()
        .map(|(f, e)| {
            let e = e.to_f64();
            ((f - e) / e.abs().max(1.0)).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_path_matches_exact_rationals() {
        for n in [1u64, 2, 4, 8, 16, 32] {
            let err = f64_exact_agreement(n);
            assert!(err < 1e-9, "n={n}: relative error {err}");
        }
    }

    #[test]
    fn bounds_decrease_in_n() {
        for theorem in [
            ConcentrationTheorem::Theorem3,
            ConcentrationTheorem::Theorem5,
            ConcentrationTheorem::Theorem8,
        ] {
            let gamma = 0.5 * theorem.constant();
            let mut prev = f64::INFINITY;
            for n in [8u64, 16, 32, 64, 128] {
                let b = theorem.probability_bound(n, gamma);
                assert!(b <= prev + 1e-12, "{theorem:?} n={n}: {b} > {prev}");
                prev = b;
            }
            assert!(prev < 0.2, "{theorem:?}: bound at n=128 is {prev}");
        }
    }

    #[test]
    fn theorem8_decays_faster() {
        // Thm 8's statistic concentrates at scale n² with variance Θ(n²):
        // the bound decays like 1/n², vs 1/n for Theorems 3/5.
        let t3 = ConcentrationTheorem::Theorem3.probability_bound(64, 0.25);
        let t8 = ConcentrationTheorem::Theorem8.probability_bound(64, 0.25);
        assert!(t8 < t3 / 10.0, "t8={t8} t3={t3}");
    }

    #[test]
    fn witnesses_exist_and_certify() {
        let n0 = ConcentrationTheorem::Theorem3.witness_n0(0.4, 0.05, 1_000_000).unwrap();
        for n in [n0, n0 + 17, 2 * n0] {
            assert!(ConcentrationTheorem::Theorem3.probability_bound(n, 0.4) <= 0.05);
        }
        let n0_tight = ConcentrationTheorem::Theorem3.witness_n0(0.4, 0.005, 10_000_000).unwrap();
        assert!(n0_tight > n0, "{n0_tight} vs {n0}");
    }

    #[test]
    fn gamma_closer_to_constant_needs_larger_n0() {
        let d = 0.05;
        let easy = ConcentrationTheorem::Theorem5.witness_n0(0.125, d, 10_000_000).unwrap();
        let hard = ConcentrationTheorem::Theorem5.witness_n0(1.0 / 3.0, d, 10_000_000).unwrap();
        assert!(hard > easy, "{hard} vs {easy}");
    }

    #[test]
    fn theorem8_witness_is_small() {
        let n0 = ConcentrationTheorem::Theorem8.witness_n0(0.4, 0.01, 100_000).unwrap();
        assert!(n0 < 200, "{n0}");
    }

    #[test]
    #[should_panic(expected = "below the theorem's constant")]
    fn gamma_at_constant_rejected() {
        let _ = ConcentrationTheorem::Theorem3.witness_n0(0.5, 0.1, 100);
    }

    #[test]
    fn vacuous_region_returns_one() {
        let b = ConcentrationTheorem::Theorem3.probability_bound(1, 0.4);
        assert!(b >= 0.99, "{b}");
    }

    #[test]
    fn block_mask_mapping_consistent_with_paper_module() {
        // The f64 block map (mask bit = one) must agree with the exact
        // module's distribution at a small n.
        let d_f64 = r2_block_dist_f64(3);
        let d_exact = paper::r2_block_z1_distribution(3);
        for i in 0..3 {
            assert!((d_f64[i] - d_exact[i].to_f64()).abs() < 1e-12, "i={i}");
        }
        assert!((d_f64[0] + d_f64[1] + d_f64[2] - 1.0).abs() < 1e-12);
    }
}
