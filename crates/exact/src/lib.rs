//! # meshsort-exact — exact combinatorics for the paper's analysis
//!
//! Every expectation, variance, probability, and lower bound in
//! Savari (SPAA 1993) is a *rational* function of `n` built from binomial
//! coefficients such as `C(4n², 2n²)`. Floating point would lose the
//! `o(1)` terms the paper tracks (e.g. `n/(8n² − 2)` in Lemma 4), so this
//! crate implements exact arithmetic from scratch:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers (the approved
//!   dependency list has no bignum crate; this is the substitute substrate
//!   documented in DESIGN.md);
//! * [`BigInt`] — signed wrapper;
//! * [`Ratio`] — normalized rationals with exact comparison and `f64`
//!   extraction;
//! * [`binomial`](binomial::binomial) and the hypergeometric assignment
//!   probabilities the paper's proofs are built on;
//! * [`paper`] — every named quantity of the paper (Lemmas 4, 9, 11, 14;
//!   Theorems 1–13) as an exact function of `n`, derived from first
//!   principles and cross-checked against the paper's closed forms in
//!   tests.
//!
//! ```
//! use meshsort_exact::paper;
//!
//! // Lemma 4: after R1's first row sort, E[Z1] = 3n/2 + n/(8n² − 2).
//! let e = paper::r1_expected_z1(4);
//! assert_eq!(e.to_string(), "380/63"); // = 3·4/2 + 4/126 = 6 + 2/63
//! assert!((e.to_f64() - 380.0 / 63.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod biguint;
pub mod binomial;
pub mod distribution;
pub mod hypergeom;
pub mod paper;
pub mod poly;
pub mod ratio;
pub mod thresholds;

pub use bigint::BigInt;
pub use biguint::BigUint;
pub use ratio::Ratio;
