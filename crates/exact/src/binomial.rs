//! Binomial coefficients and the assignment probabilities underlying every
//! probability computation in the paper.

use crate::biguint::BigUint;
use crate::ratio::Ratio;

/// Exact `C(n, k)` by the multiplicative formula with exact intermediate
/// division (each prefix product is divisible by `i!`).
pub fn binomial(n: u64, k: u64) -> BigUint {
    if k > n {
        return BigUint::zero();
    }
    let k = k.min(n - k);
    let mut acc = BigUint::one();
    for i in 1..=k {
        acc = acc.mul_u64(n - k + i);
        let (q, r) = acc.div_rem_u64(i);
        debug_assert_eq!(r, 0, "binomial prefix product must divide i");
        acc = q;
    }
    acc
}

/// Exact `n!`.
pub fn factorial(n: u64) -> BigUint {
    let mut acc = BigUint::one();
    for i in 2..=n {
        acc = acc.mul_u64(i);
    }
    acc
}

/// Exact falling factorial `n · (n−1) ⋯ (n−k+1)`.
pub fn falling_factorial(n: u64, k: u64) -> BigUint {
    if k > n {
        return BigUint::zero();
    }
    let mut acc = BigUint::one();
    for i in 0..k {
        acc = acc.mul_u64(n - i);
    }
    acc
}

/// The paper's basic probability primitive.
///
/// Draw a uniformly random 0–1 matrix with `total` cells of which exactly
/// `zeros` hold 0 (the `A^01` reduction: all placements equally likely).
/// The probability that a *specific* set of `c` cells holds a *specific*
/// assignment containing `z` zeros is
///
/// ```text
///   C(total − c, zeros − z) / C(total, zeros)
/// ```
///
/// because the remaining `total − c` cells must absorb the remaining
/// `zeros − z` zeros. Every `Prob{…}` in the paper's §2–§3 proofs is a
/// signed combination of these.
pub fn assignment_prob(total: u64, zeros: u64, c: u64, z: u64) -> Ratio {
    if z > zeros || c > total || z > c || zeros - z > total - c {
        return Ratio::zero();
    }
    Ratio::from_biguint_ratio(binomial(total - c, zeros - z), binomial(total, zeros))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_binomials() {
        assert_eq!(binomial(0, 0).to_u64(), Some(1));
        assert_eq!(binomial(5, 0).to_u64(), Some(1));
        assert_eq!(binomial(5, 5).to_u64(), Some(1));
        assert_eq!(binomial(5, 2).to_u64(), Some(10));
        assert_eq!(binomial(10, 3).to_u64(), Some(120));
        assert_eq!(binomial(3, 5), BigUint::zero());
    }

    #[test]
    fn pascal_identity() {
        for n in 1..=30u64 {
            for k in 1..n {
                assert_eq!(
                    binomial(n, k),
                    binomial(n - 1, k - 1).add(&binomial(n - 1, k)),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn symmetry() {
        for n in 0..=25u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn row_sums_are_powers_of_two() {
        for n in 0..=20u64 {
            let mut sum = BigUint::zero();
            for k in 0..=n {
                sum = sum.add(&binomial(n, k));
            }
            assert_eq!(sum, BigUint::one().shl(n as usize));
        }
    }

    #[test]
    fn large_binomial_value() {
        // C(64, 32) = 1832624140942590534.
        assert_eq!(binomial(64, 32).to_u64(), Some(1832624140942590534));
        // C(100, 50) has 30 digits; check the leading digits via string.
        let c = binomial(100, 50).to_string();
        assert!(c.starts_with("100891344545564193334812497256"));
    }

    #[test]
    fn factorials() {
        assert_eq!(factorial(0).to_u64(), Some(1));
        assert_eq!(factorial(5).to_u64(), Some(120));
        assert_eq!(factorial(20).to_u64(), Some(2432902008176640000));
    }

    #[test]
    fn falling_factorials() {
        assert_eq!(falling_factorial(5, 0).to_u64(), Some(1));
        assert_eq!(falling_factorial(5, 2).to_u64(), Some(20));
        assert_eq!(falling_factorial(5, 5), factorial(5));
        assert_eq!(falling_factorial(3, 4), BigUint::zero());
    }

    #[test]
    fn binomial_from_factorials() {
        for n in 0..=15u64 {
            for k in 0..=n {
                let lhs = binomial(n, k).mul(&factorial(k)).mul(&factorial(n - k));
                assert_eq!(lhs, factorial(n));
            }
        }
    }

    #[test]
    fn assignment_prob_single_cell() {
        // One specific cell is 0 with probability zeros/total.
        let p = assignment_prob(8, 4, 1, 1);
        assert_eq!(p, Ratio::new_i64(1, 2));
        let p = assignment_prob(8, 2, 1, 1);
        assert_eq!(p, Ratio::new_i64(1, 4));
        // …and 1 with the complementary probability.
        let p = assignment_prob(8, 2, 1, 0);
        assert_eq!(p, Ratio::new_i64(3, 4));
    }

    #[test]
    fn assignment_prob_sums_to_one_over_assignments() {
        // Summing over all 2^c assignments of c cells (weighted by the
        // number of assignments with z zeros) gives 1.
        let (total, zeros, c) = (16u64, 8u64, 3u64);
        let mut sum = Ratio::zero();
        for z in 0..=c {
            let count = binomial(c, z);
            sum = sum.add(&assignment_prob(total, zeros, c, z).mul_biguint(&count));
        }
        assert_eq!(sum, Ratio::one());
    }

    #[test]
    fn assignment_prob_paper_pair() {
        // Paper, Lemma 4: Prob{(A01_{1,1}, A01_{1,2}) = (1,1)} =
        // C(4n²−2, 2n²) / C(4n², 2n²) = 1/4 − 1/(16n²−4).
        for n in 1..=6u64 {
            let total = 4 * n * n;
            let zeros = 2 * n * n;
            let p = assignment_prob(total, zeros, 2, 0);
            let expected = Ratio::new_i64(1, 4)
                .sub(&Ratio::one().div(&Ratio::from_int((16 * n * n - 4) as i64)));
            assert_eq!(p, expected, "n={n}");
        }
    }

    #[test]
    fn assignment_prob_degenerate() {
        assert_eq!(assignment_prob(4, 2, 5, 0), Ratio::zero());
        assert_eq!(assignment_prob(4, 2, 2, 3), Ratio::zero());
        // All cells fixed: exactly one valid assignment.
        assert_eq!(
            assignment_prob(4, 2, 4, 2),
            Ratio::one().div(&Ratio::from_biguint(binomial(4, 2)))
        );
    }
}
