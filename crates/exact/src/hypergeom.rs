//! The hypergeometric distribution, exactly.
//!
//! Under the `A^01` reduction, the number of zeros falling in any fixed
//! set of `draws` cells is hypergeometric with population `total` and
//! `successes = zeros`. The block probabilities of the paper's Theorem 4
//! (each 2×2 block holds `z` zeros with a hypergeometric law) and the
//! `E[Z₁]`-type quantities all reduce to this distribution.

use crate::binomial::{assignment_prob, binomial};
use crate::ratio::Ratio;
use serde::{Deserialize, Serialize};

/// An exact hypergeometric distribution: `draws` cells drawn (without
/// replacement) from `total` cells of which `successes` are marked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypergeometric {
    /// Population size (`N = 4n²` cells in the paper).
    pub total: u64,
    /// Number of marked elements (zeros: `α`).
    pub successes: u64,
    /// Sample size (cells observed).
    pub draws: u64,
}

impl Hypergeometric {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics when `successes > total` or `draws > total`.
    pub fn new(total: u64, successes: u64, draws: u64) -> Self {
        assert!(successes <= total, "successes exceed population");
        assert!(draws <= total, "draws exceed population");
        Hypergeometric { total, successes, draws }
    }

    /// Exact `P(Z = k)`: `C(draws, k) · C(total−draws, successes−k) /
    /// C(total, successes)`.
    pub fn pmf(&self, k: u64) -> Ratio {
        if k > self.draws || k > self.successes {
            return Ratio::zero();
        }
        assignment_prob(self.total, self.successes, self.draws, k)
            .mul_biguint(&binomial(self.draws, k))
    }

    /// Exact mean `draws · successes / total`.
    pub fn mean(&self) -> Ratio {
        Ratio::new_i64((self.draws * self.successes) as i64, self.total as i64)
    }

    /// Exact variance
    /// `draws · (s/t) · (1 − s/t) · (t − draws)/(t − 1)`.
    ///
    /// # Panics
    ///
    /// Panics for a population of size ≤ 1 (variance undefined).
    pub fn variance(&self) -> Ratio {
        assert!(self.total > 1, "variance needs total > 1");
        let t = Ratio::from_int(self.total as i64);
        let s = Ratio::from_int(self.successes as i64);
        let d = Ratio::from_int(self.draws as i64);
        let p = s.div(&t);
        let q = Ratio::one().sub(&p);
        d.mul(&p).mul(&q).mul(&t.sub(&d)).div(&t.sub(&Ratio::one()))
    }

    /// Exact `P(Z ≤ k)`.
    pub fn cdf(&self, k: u64) -> Ratio {
        let mut acc = Ratio::zero();
        for i in 0..=k.min(self.draws) {
            acc = acc.add(&self.pmf(i));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let h = Hypergeometric::new(20, 8, 5);
        let mut sum = Ratio::zero();
        for k in 0..=5 {
            sum = sum.add(&h.pmf(k));
        }
        assert_eq!(sum, Ratio::one());
        assert_eq!(h.cdf(5), Ratio::one());
    }

    #[test]
    fn pmf_known_value() {
        // P(Z=2) for total=10, successes=4, draws=3:
        // C(3,2)·C(7,2)/C(10,4) = 3·21/210 = 3/10. Wait — use the standard
        // form C(4,2)C(6,1)/C(10,3) = 6·6/120 = 3/10. Both agree.
        let h = Hypergeometric::new(10, 4, 3);
        assert_eq!(h.pmf(2), Ratio::new_i64(3, 10));
    }

    #[test]
    fn mean_and_variance_match_formulas() {
        let h = Hypergeometric::new(50, 20, 10);
        assert_eq!(h.mean(), Ratio::from_int(4));
        // Var = 10·(2/5)(3/5)(40/49) = 48/49·... compute: 10·0.4·0.6·(40/49)
        let expected = Ratio::new_i64(10 * 2 * 3 * 40, 5 * 5 * 49);
        assert_eq!(h.variance(), expected);
    }

    #[test]
    fn mean_matches_first_moment() {
        let h = Hypergeometric::new(16, 8, 4);
        let mut m = Ratio::zero();
        for k in 0..=4 {
            m = m.add(&h.pmf(k).mul_int(k as i64));
        }
        assert_eq!(m, h.mean());
    }

    #[test]
    fn variance_matches_second_moment() {
        let h = Hypergeometric::new(16, 8, 4);
        let mut m2 = Ratio::zero();
        for k in 0..=4 {
            m2 = m2.add(&h.pmf(k).mul_int((k * k) as i64));
        }
        let var = m2.sub(&h.mean().mul(&h.mean()));
        assert_eq!(var, h.variance());
    }

    #[test]
    fn out_of_support_is_zero() {
        let h = Hypergeometric::new(10, 3, 5);
        assert_eq!(h.pmf(4), Ratio::zero());
        assert_eq!(h.pmf(6), Ratio::zero());
    }

    #[test]
    fn paper_block_probabilities() {
        // Theorem 4: a specific 2×2 block pattern with z zeros has
        // probability C(4n²−4, 2n²−z)/C(4n², 2n²); the *number of zeros*
        // in the block is hypergeometric(4n², 2n², 4). Cross-check via
        // pmf(z) = C(4,z)·assignment(z) for n = 3.
        let n = 3u64;
        let h = Hypergeometric::new(4 * n * n, 2 * n * n, 4);
        for z in 0..=4u64 {
            let direct = assignment_prob(4 * n * n, 2 * n * n, 4, z).mul_biguint(&binomial(4, z));
            assert_eq!(h.pmf(z), direct, "z={z}");
        }
        // Paper's closed form for z = 2: 1/16 + (n²−3/8)/(32n⁴−32n²+6)
        // is the probability of a *specific* pattern; multiply by C(4,2).
        let n2 = (n * n) as i64;
        let specific = Ratio::new_i64(1, 16)
            .add(&Ratio::new_i64(8 * n2 - 3, 8).div(&Ratio::from_int(32 * n2 * n2 - 32 * n2 + 6)));
        assert_eq!(assignment_prob(4 * n * n, 2 * n * n, 4, 2), specific);
    }

    #[test]
    #[should_panic(expected = "successes exceed population")]
    fn invalid_construction_panics() {
        let _ = Hypergeometric::new(5, 6, 1);
    }
}
