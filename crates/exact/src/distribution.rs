//! The exact *distribution* of `Z₁` — beyond the paper.
//!
//! Lemma 4 and Theorem 3 compute the mean and variance of `Z₁` (zeros in
//! column 1 after R1's first row sort). The full law is also within
//! reach: `Z₁ = Σ_h z_h` over `2n` indicators, where `z_h = 0` iff the
//! `h`-th row's first pair is `(1,1)`. The pairs occupy disjoint cells,
//! so by inclusion–exclusion over which pairs are all-ones,
//!
//! ```text
//!   P(Z₁ = 2n − j) = C(2n, j) · Σ_{i≥0} (−1)^i C(2n−j, i) · q(j + i)
//! ```
//!
//! where `q(m) = P(m specific pairs all ones) = C(4n²−2m, 2n²) / C(4n², 2n²)`.
//! This module computes that law exactly and validates it against the
//! paper's moments and against exhaustive enumeration.

use crate::binomial::{assignment_prob, binomial};
use crate::ratio::Ratio;

/// Exact distribution of the number of all-ones pairs among `pairs`
/// disjoint cell pairs in a mesh of `total` cells with `zeros` zeros.
///
/// Returns `p[j] = P(exactly j pairs are (1,1))` for `j = 0..=pairs`.
pub fn all_ones_pair_distribution(total: u64, zeros: u64, pairs: u64) -> Vec<Ratio> {
    // q(m) = P(m specific pairs all ones).
    let q = |m: u64| -> Ratio { assignment_prob(total, zeros, 2 * m, 0) };
    let mut dist = Vec::with_capacity(pairs as usize + 1);
    for j in 0..=pairs {
        // Inclusion–exclusion over supersets of a fixed j-set.
        let mut acc = Ratio::zero();
        let mut sign = 1i64;
        for i in 0..=(pairs - j) {
            let term = q(j + i).mul_biguint(&binomial(pairs - j, i)).mul_int(sign);
            acc = acc.add(&term);
            sign = -sign;
        }
        dist.push(acc.mul_biguint(&binomial(pairs, j)));
    }
    dist
}

/// Exact law of `Z₁` for R1 on the balanced mesh of side `2n`:
/// `pmf[k] = P(Z₁ = k)` for `k = 0..=2n`. (`Z₁ = 2n − (all-ones pairs)`.)
pub fn r1_z1_distribution(n: u64) -> Vec<Ratio> {
    let total = 4 * n * n;
    let zeros = 2 * n * n;
    let pairs = 2 * n;
    let by_ones = all_ones_pair_distribution(total, zeros, pairs);
    // Reverse: k zeros-in-column ⇔ pairs − k all-ones pairs.
    let mut pmf = vec![Ratio::zero(); pairs as usize + 1];
    for (j, p) in by_ones.into_iter().enumerate() {
        pmf[(pairs as usize) - j] = p;
    }
    pmf
}

/// Mean of a pmf over `0..=len-1`.
pub fn pmf_mean(pmf: &[Ratio]) -> Ratio {
    pmf.iter().enumerate().fold(Ratio::zero(), |acc, (k, p)| acc.add(&p.mul_int(k as i64)))
}

/// Variance of a pmf.
pub fn pmf_variance(pmf: &[Ratio]) -> Ratio {
    let mean = pmf_mean(pmf);
    let m2 = pmf
        .iter()
        .enumerate()
        .fold(Ratio::zero(), |acc, (k, p)| acc.add(&p.mul_int((k * k) as i64)));
    m2.sub(&mean.mul(&mean))
}

/// Exact `P(Z₁ ≤ k)` — the quantity Theorem 3's Chebyshev argument
/// bounds from above; with the true law in hand the bound's slack is
/// measurable.
pub fn r1_z1_cdf(n: u64, k: u64) -> Ratio {
    let pmf = r1_z1_distribution(n);
    pmf.iter().take(k as usize + 1).fold(Ratio::zero(), |acc, p| acc.add(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn pair_distribution_sums_to_one() {
        for (total, zeros, pairs) in [(16u64, 8u64, 4u64), (36, 18, 6), (16, 5, 3)] {
            let dist = all_ones_pair_distribution(total, zeros, pairs);
            let sum = dist.iter().fold(Ratio::zero(), |acc, p| acc.add(p));
            assert_eq!(sum, Ratio::one(), "({total},{zeros},{pairs})");
            for p in &dist {
                assert!(!p.is_negative(), "negative probability");
            }
        }
    }

    #[test]
    fn z1_pmf_matches_lemma4_mean() {
        for n in 1..=5u64 {
            let pmf = r1_z1_distribution(n);
            assert_eq!(pmf_mean(&pmf), paper::r1_expected_z1(n), "n={n}");
        }
    }

    #[test]
    fn z1_pmf_matches_thm3_variance() {
        for n in 1..=5u64 {
            let pmf = r1_z1_distribution(n);
            assert_eq!(pmf_variance(&pmf), paper::r1_var_z1(n), "n={n}");
        }
    }

    #[test]
    fn z1_pmf_matches_exhaustive_n1() {
        // Side 2, 6 balanced matrices. Column 1 zeros after the row sort:
        // each row contributes 1 unless its pair is (1,1); with 2 zeros
        // among 4 cells, count the cases directly.
        let pmf = r1_z1_distribution(1);
        // Enumerate: pairs (row0: cells 0,1), (row1: cells 2,3); zero
        // placements C(4,2)=6. A row's indicator is 0 iff both its cells
        // are ones ⇔ both zeros are in the *other* row.
        // - both zeros in row0: row0=1, row1=0 → Z1=1 (1 placement)
        // - both in row1: Z1=1 (1 placement)
        // - split (2·2 = 4 placements): both rows have a zero → Z1=2.
        assert_eq!(pmf[0], Ratio::zero());
        assert_eq!(pmf[1], Ratio::new_i64(2, 6));
        assert_eq!(pmf[2], Ratio::new_i64(4, 6));
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let n = 4u64;
        let mut prev = Ratio::zero();
        for k in 0..=2 * n {
            let c = r1_z1_cdf(n, k);
            assert!(c >= prev, "k={k}");
            prev = c;
        }
        assert_eq!(prev, Ratio::one());
    }

    #[test]
    fn chebyshev_bound_dominates_true_tail() {
        // Theorem 3's bound must upper-bound the true P(Z₁ ≤ threshold);
        // quantify the slack at a few points.
        let n = 6u64;
        let mean = paper::r1_expected_z1(n);
        let var = paper::r1_var_z1(n);
        for k in 0..(3 * n / 2) {
            let true_tail = r1_z1_cdf(n, k).to_f64();
            let bound = paper::chebyshev_tail_bound(&mean, &var, &Ratio::from_int(k as i64));
            assert!(true_tail <= bound + 1e-12, "k={k}: true {true_tail} > bound {bound}");
        }
        // The bound is loose: at k = n the truth is several times smaller.
        let truth_at_n = r1_z1_cdf(n, n).to_f64();
        let bound_at_n = paper::chebyshev_tail_bound(&mean, &var, &Ratio::from_int(n as i64));
        assert!(truth_at_n < bound_at_n / 3.0, "{truth_at_n} vs {bound_at_n}");
    }

    #[test]
    fn degenerate_all_zero_mesh() {
        // zeros = total: every pair has zeros; Z1 = pairs surely.
        let dist = all_ones_pair_distribution(8, 8, 2);
        assert_eq!(dist[0], Ratio::one());
        assert_eq!(dist[1], Ratio::zero());
        assert_eq!(dist[2], Ratio::zero());
    }
}
