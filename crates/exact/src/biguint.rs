//! Arbitrary-precision unsigned integers.
//!
//! A deliberately small, dependency-free bignum sufficient for the
//! binomial coefficients in the paper's analysis (up to `C(4n², 2n²)` for
//! `n` in the hundreds — tens of thousands of bits). Representation:
//! little-endian `u64` limbs with no trailing zero limbs (canonical form).
//!
//! Algorithms are the simple quadratic ones (schoolbook multiplication,
//! shift-subtract division, binary GCD); profiling in the bench crate
//! shows they are far from the bottleneck of any experiment.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BigUint {
    /// Little-endian limbs; empty means zero; no trailing zero limb.
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a primitive.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// From a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut limbs = vec![lo, hi];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// The value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Bit `i` (little-endian), `false` beyond the top.
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    fn normalize(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (a, b) = (&self.limbs, &other.limbs);
        let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
        let mut carry = 0u64;
        for i in 0..a.len().max(b.len()) {
            let x = u128::from(*a.get(i).unwrap_or(&0));
            let y = u128::from(*b.get(i).unwrap_or(&0));
            let sum = x + y + u128::from(carry);
            out.push(sum as u64);
            carry = (sum >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        Self::normalize(out)
    }

    /// `self − other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (unsigned subtraction underflow).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint::sub underflow");
        let (a, b) = (&self.limbs, &other.limbs);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i128;
        for (i, &limb) in a.iter().enumerate() {
            let x = i128::from(limb);
            let y = i128::from(*b.get(i).unwrap_or(&0));
            let mut d = x - y - borrow;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        debug_assert_eq!(borrow, 0);
        Self::normalize(out)
    }

    /// `self · other` (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let (a, b) = (&self.limbs, &other.limbs);
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let t = u128::from(out[i + j]) + u128::from(x) * u128::from(y) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = u128::from(out[k]) + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        Self::normalize(out)
    }

    /// `self · small`.
    pub fn mul_u64(&self, small: u64) -> BigUint {
        if small == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &x in &self.limbs {
            let t = u128::from(x) * u128::from(small) + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Self::normalize(out)
    }

    /// `(self / small, self % small)`.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem_u64(&self, small: u64) -> (BigUint, u64) {
        assert!(small != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | u128::from(self.limbs[i]);
            out[i] = (cur / u128::from(small)) as u64;
            rem = cur % u128::from(small);
        }
        (Self::normalize(out), rem as u64)
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &x in &self.limbs {
                out.push((x << bit_shift) | carry);
                carry = x >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Self::normalize(out)
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let mut out: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            for i in 0..out.len() {
                let hi = if i + 1 < out.len() { out[i + 1] << (64 - bit_shift) } else { 0 };
                out[i] = (out[i] >> bit_shift) | hi;
            }
        }
        Self::normalize(out)
    }

    /// `(self / other, self % other)` by shift-subtract long division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, other: &BigUint) -> (BigUint, BigUint) {
        assert!(!other.is_zero(), "division by zero");
        if let Some(small) = other.to_u64() {
            let (q, r) = self.div_rem_u64(small);
            return (q, BigUint::from_u64(r));
        }
        if self < other {
            return (Self::zero(), self.clone());
        }
        let shift = self.bits() - other.bits();
        let mut rem = self.clone();
        let mut quot_limbs = vec![0u64; shift / 64 + 1];
        let mut d = other.shl(shift);
        for i in (0..=shift).rev() {
            if rem >= d {
                rem = rem.sub(&d);
                quot_limbs[i / 64] |= 1u64 << (i % 64);
            }
            d = d.shr(1);
        }
        (Self::normalize(quot_limbs), rem)
    }

    /// Exact division; panics (in debug) if `other` does not divide `self`.
    pub fn div_exact(&self, other: &BigUint) -> BigUint {
        let (q, r) = self.div_rem(other);
        debug_assert!(r.is_zero(), "div_exact with nonzero remainder");
        q
    }

    /// Greatest common divisor (binary / Stein's algorithm — no division).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let a_tz = a.trailing_zeros();
        let b_tz = b.trailing_zeros();
        let common = a_tz.min(b_tz);
        a = a.shr(a_tz);
        b = b.shr(b_tz);
        loop {
            match a.cmp(&b) {
                Ordering::Equal => break,
                Ordering::Greater => {
                    a = a.sub(&b);
                    a = a.shr(a.trailing_zeros());
                }
                Ordering::Less => {
                    b = b.sub(&a);
                    b = b.shr(b.trailing_zeros());
                }
            }
        }
        a.shl(common)
    }

    fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return 64 * i + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Best-effort conversion to `f64` (top 64 bits + exponent); infinite
    /// for values beyond the `f64` range.
    pub fn to_f64(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            _ => {
                let bits = self.bits();
                // Take the top 64 bits as an integer and scale.
                let top = self.shr(bits - 64);
                let mantissa = top.to_u64().expect("64 bits fit") as f64;
                mantissa * 2f64.powi((bits - 64) as i32)
            }
        }
    }

    /// `self^exp` by repeated squaring.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    let ord = self.limbs[i].cmp(&other.limbs[i]);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19 decimal digits at a time.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.last().unwrap().to_string();
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn construction_and_compare() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert!(big(u128::MAX) > big(u64::MAX as u128));
        assert_eq!(big(42).to_u64(), Some(42));
        assert_eq!(big(u128::MAX).to_u64(), None);
    }

    #[test]
    fn add_with_carry() {
        let a = big(u64::MAX as u128);
        let b = BigUint::one();
        assert_eq!(a.add(&b), big(1u128 << 64));
        assert_eq!(BigUint::zero().add(&big(7)), big(7));
    }

    #[test]
    fn sub_with_borrow() {
        let a = big(1u128 << 64);
        assert_eq!(a.sub(&BigUint::one()), big(u64::MAX as u128));
        assert_eq!(big(100).sub(&big(100)), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = big(1).sub(&big(2));
    }

    #[test]
    fn mul_cross_limb() {
        let a = big(u64::MAX as u128);
        assert_eq!(a.mul(&a), big((u64::MAX as u128) * (u64::MAX as u128)));
        assert_eq!(a.mul(&BigUint::zero()), BigUint::zero());
        assert_eq!(a.mul_u64(2), big(2 * u64::MAX as u128));
    }

    #[test]
    fn mul_matches_u128_randomish() {
        // Deterministic pseudo-random cross-check against u128 arithmetic.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200 {
            let a = next();
            let b = next();
            assert_eq!(big(a as u128).mul(&big(b as u128)), big(a as u128 * b as u128));
        }
    }

    #[test]
    fn div_rem_u64_basics() {
        let (q, r) = big(1000).div_rem_u64(7);
        assert_eq!(q, big(142));
        assert_eq!(r, 6);
        let (q, r) = big(u128::MAX).div_rem_u64(u64::MAX);
        // u128::MAX = (2^64+1)(2^64−1) + ... verify by reconstruction:
        assert_eq!(q.mul_u64(u64::MAX).add(&big(r as u128)), big(u128::MAX));
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1).shl(64), big(1u128 << 64));
        assert_eq!(big(1u128 << 64).shr(64), big(1));
        assert_eq!(big(0b1011).shl(3), big(0b1011000));
        assert_eq!(big(0b1011000).shr(3), big(0b1011));
        assert_eq!(big(5).shr(10), BigUint::zero());
        assert_eq!(big(5).shl(0), big(5));
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(big(1).bits(), 1);
        assert_eq!(big(255).bits(), 8);
        assert_eq!(big(1u128 << 64).bits(), 65);
        assert!(big(0b100).bit(2));
        assert!(!big(0b100).bit(1));
        assert!(!big(0b100).bit(200));
    }

    #[test]
    fn general_division_reconstructs() {
        let a = big(u128::MAX).mul(&big(0xDEADBEEFCAFE));
        let b = big((u64::MAX as u128) * 3 + 17);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn division_by_larger_is_zero() {
        let (q, r) = big(5).div_rem(&big(1u128 << 100));
        assert!(q.is_zero());
        assert_eq!(r, big(5));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(5).div_rem(&BigUint::zero());
    }

    #[test]
    fn div_exact_works() {
        let a = big(1234567).mul(&big(7654321));
        assert_eq!(a.div_exact(&big(1234567)), big(7654321));
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(5)), big(1));
        assert_eq!(big(0).gcd(&big(9)), big(9));
        assert_eq!(big(9).gcd(&big(0)), big(9));
        assert_eq!(big(48).gcd(&big(36)), big(12));
        // Big case: gcd(2^100 · 3, 2^80 · 9) = 2^80 · 3.
        let a = BigUint::one().shl(100).mul_u64(3);
        let b = BigUint::one().shl(80).mul_u64(9);
        assert_eq!(a.gcd(&b), BigUint::one().shl(80).mul_u64(3));
    }

    #[test]
    fn pow_small() {
        assert_eq!(big(2).pow(10), big(1024));
        assert_eq!(big(3).pow(0), BigUint::one());
        assert_eq!(big(10).pow(20).to_string(), "100000000000000000000");
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(big(12345).to_string(), "12345");
        assert_eq!(big(u128::MAX).to_string(), u128::MAX.to_string());
        // Crosses a 19-digit chunk boundary with leading zeros in a chunk.
        let v = big(10_000_000_000_000_000_000u128).mul_u64(5).add(&big(7));
        assert_eq!(v.to_string(), "50000000000000000007");
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(BigUint::zero().to_f64(), 0.0);
        assert_eq!(big(12345).to_f64(), 12345.0);
        let v = BigUint::one().shl(100);
        assert!((v.to_f64() - 2f64.powi(100)).abs() / 2f64.powi(100) < 1e-15);
        let v = big(3).pow(50);
        let expect = 3f64.powi(50);
        assert!((v.to_f64() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn ordering_total() {
        let mut v = vec![big(5), BigUint::zero(), big(1u128 << 64), big(7), big(6)];
        v.sort();
        assert_eq!(v, vec![BigUint::zero(), big(5), big(6), big(7), big(1u128 << 64)]);
    }
}
