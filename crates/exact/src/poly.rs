//! Univariate polynomials over exact rationals, and rational-function
//! identity checking by interpolation.
//!
//! The paper's quantities are rational functions of `n` (e.g. Lemma 4's
//! `E[Z₁] = 3n/2 + n/(8n² − 2)`). The `paper` module evaluates them
//! pointwise; this module closes the loop *symbolically*: a rational
//! function of numerator degree ≤ `p` and denominator degree ≤ `q` is
//! uniquely determined by `p + q + 1` evaluation points, so sampling the
//! first-principles computation at enough integers and interpolating
//! recovers the exact closed form — which can then be compared
//! coefficient-by-coefficient with the paper's printed expression.

use crate::ratio::Ratio;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A polynomial with [`Ratio`] coefficients, lowest degree first. The
/// zero polynomial has an empty coefficient list (canonical form: no
/// trailing zero coefficients).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Poly {
    coeffs: Vec<Ratio>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// A constant polynomial.
    pub fn constant(c: Ratio) -> Self {
        Self::from_coeffs(vec![c])
    }

    /// The monomial `x`.
    pub fn x() -> Self {
        Poly { coeffs: vec![Ratio::zero(), Ratio::one()] }
    }

    /// Builds from coefficients (lowest degree first), trimming zeros.
    pub fn from_coeffs(coeffs: Vec<Ratio>) -> Self {
        let mut coeffs = coeffs;
        while coeffs.last().is_some_and(Ratio::is_zero) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// Builds from integer coefficients (lowest degree first).
    pub fn from_ints(coeffs: &[i64]) -> Self {
        Self::from_coeffs(coeffs.iter().map(|&c| Ratio::from_int(c)).collect())
    }

    /// Coefficients, lowest degree first (empty for zero).
    pub fn coeffs(&self) -> &[Ratio] {
        &self.coeffs
    }

    /// Degree; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// `true` iff the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates at `x` (Horner).
    pub fn eval(&self, x: &Ratio) -> Ratio {
        let mut acc = Ratio::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc.mul(x).add(c);
        }
        acc
    }

    /// `self + other`.
    pub fn add(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).cloned().unwrap_or_else(Ratio::zero);
            let b = other.coeffs.get(i).cloned().unwrap_or_else(Ratio::zero);
            out.push(a.add(&b));
        }
        Poly::from_coeffs(out)
    }

    /// `self − other`.
    pub fn sub(&self, other: &Poly) -> Poly {
        self.add(&other.scale(&Ratio::from_int(-1)))
    }

    /// `self · other`.
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Ratio::zero(); self.coeffs.len() + other.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            for (j, b) in other.coeffs.iter().enumerate() {
                out[i + j] = out[i + j].add(&a.mul(b));
            }
        }
        Poly::from_coeffs(out)
    }

    /// `self · k`.
    pub fn scale(&self, k: &Ratio) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|c| c.mul(k)).collect())
    }

    /// Lagrange interpolation: the unique polynomial of degree
    /// `< points.len()` through the given `(x, y)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate `x` values or an empty point list.
    pub fn interpolate(points: &[(Ratio, Ratio)]) -> Poly {
        assert!(!points.is_empty(), "need at least one point");
        let mut acc = Poly::zero();
        for (i, (xi, yi)) in points.iter().enumerate() {
            // Basis polynomial ℓ_i = ∏_{j≠i} (x − x_j)/(x_i − x_j).
            let mut basis = Poly::constant(Ratio::one());
            let mut denom = Ratio::one();
            for (j, (xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                let diff = xi.sub(xj);
                assert!(!diff.is_zero(), "duplicate x value in interpolation");
                basis = basis.mul(&Poly::from_coeffs(vec![xj.neg(), Ratio::one()]));
                denom = denom.mul(&diff);
            }
            acc = acc.add(&basis.scale(&yi.div(&denom)));
        }
        acc
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| match i {
                0 => format!("{c}"),
                1 => format!("({c})·n"),
                _ => format!("({c})·n^{i}"),
            })
            .collect();
        f.write_str(&terms.join(" + "))
    }
}

/// A rational function `num / den` of a single variable, as a pair of
/// polynomials.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RationalFn {
    /// Numerator polynomial.
    pub num: Poly,
    /// Denominator polynomial (must not be the zero polynomial).
    pub den: Poly,
}

impl RationalFn {
    /// Builds `num / den`.
    ///
    /// # Panics
    ///
    /// Panics for a zero denominator polynomial.
    pub fn new(num: Poly, den: Poly) -> Self {
        assert!(!den.is_zero(), "zero denominator polynomial");
        RationalFn { num, den }
    }

    /// Evaluates at `x`.
    ///
    /// # Panics
    ///
    /// Panics at poles (denominator zero at `x`).
    pub fn eval(&self, x: &Ratio) -> Ratio {
        self.num.eval(x).div(&self.den.eval(x))
    }

    /// Checks whether the black-box function `f` *is* this rational
    /// function, by sampling at `deg(num) + deg(den) + 2` integer points
    /// (avoiding poles): `f(x)·den(x) − num(x)` is a polynomial of
    /// degree ≤ max(deg num, deg f·den); if it vanishes at more points
    /// than its degree, it is identically zero.
    pub fn matches(&self, f: impl Fn(u64) -> Ratio, start: u64) -> bool {
        let samples = self.num.coeffs.len() + self.den.coeffs.len() + 2;
        let mut x = start;
        let mut checked = 0;
        while checked < samples {
            let xr = Ratio::from_int(x as i64);
            if !self.den.eval(&xr).is_zero() {
                if f(x) != self.eval(&xr) {
                    return false;
                }
                checked += 1;
            }
            x += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: i64, q: i64) -> Ratio {
        Ratio::new_i64(p, q)
    }

    #[test]
    fn construction_and_degree() {
        assert!(Poly::zero().is_zero());
        assert_eq!(Poly::zero().degree(), None);
        assert_eq!(Poly::from_ints(&[1, 2, 3]).degree(), Some(2));
        // Trailing zeros trimmed.
        assert_eq!(Poly::from_ints(&[1, 0, 0]).degree(), Some(0));
        assert_eq!(Poly::x().degree(), Some(1));
    }

    #[test]
    fn evaluation_horner() {
        // p(x) = 2 + 3x + x²; p(2) = 2 + 6 + 4 = 12.
        let p = Poly::from_ints(&[2, 3, 1]);
        assert_eq!(p.eval(&Ratio::from_int(2)), Ratio::from_int(12));
        assert_eq!(p.eval(&Ratio::zero()), Ratio::from_int(2));
        assert_eq!(p.eval(&r(1, 2)), r(2, 1).add(&r(3, 2)).add(&r(1, 4)));
    }

    #[test]
    fn ring_operations() {
        let p = Poly::from_ints(&[1, 1]); // 1 + x
        let q = Poly::from_ints(&[-1, 1]); // −1 + x
        assert_eq!(p.mul(&q), Poly::from_ints(&[-1, 0, 1])); // x² − 1
        assert_eq!(p.add(&q), Poly::from_ints(&[0, 2]));
        assert_eq!(p.sub(&p), Poly::zero());
        assert_eq!(p.scale(&Ratio::from_int(3)), Poly::from_ints(&[3, 3]));
        assert_eq!(p.mul(&Poly::zero()), Poly::zero());
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let p = Poly::from_ints(&[5, -2, 0, 7]); // 5 − 2x + 7x³
        let points: Vec<(Ratio, Ratio)> =
            (0..4).map(|i| (Ratio::from_int(i), p.eval(&Ratio::from_int(i)))).collect();
        assert_eq!(Poly::interpolate(&points), p);
    }

    #[test]
    fn interpolation_of_constant() {
        let points = vec![(Ratio::from_int(3), r(7, 2))];
        assert_eq!(Poly::interpolate(&points), Poly::constant(r(7, 2)));
    }

    #[test]
    #[should_panic(expected = "duplicate x")]
    fn interpolation_duplicate_x_panics() {
        let points = vec![(Ratio::from_int(1), Ratio::zero()), (Ratio::from_int(1), Ratio::one())];
        let _ = Poly::interpolate(&points);
    }

    #[test]
    fn display_readable() {
        let p = Poly::from_ints(&[1, 0, 2]);
        assert_eq!(p.to_string(), "1 + (2)·n^2");
        assert_eq!(Poly::zero().to_string(), "0");
    }

    // ---- symbolic verification of the paper's closed forms ----

    #[test]
    fn lemma4_closed_form_is_symbolically_exact() {
        // E[Z₁](n) = 3n/2 + n/(8n²−2) = (12n³ + n − 3n... ) — as a single
        // rational function: (3n(8n²−2)/2 + n)/(8n²−2)
        //            = (12n³ − 3n + n)/(8n²−2) = (12n³ − 2n)/(8n²−2).
        let num = Poly::from_coeffs(vec![
            Ratio::zero(),
            Ratio::from_int(-2),
            Ratio::zero(),
            Ratio::from_int(12),
        ]);
        let den = Poly::from_ints(&[-2, 0, 8]);
        let rf = RationalFn::new(num, den);
        assert!(rf.matches(crate::paper::r1_expected_z1, 1));
    }

    #[test]
    fn lemma9_closed_form_is_symbolically_exact() {
        // E[Z₁(0)](n) = 3N/8 + √N/8 + √N/(8(√N+1)) with N = 4n², √N = 2n:
        // = 3n²/2 + n/4 + n/(4(2n+1))
        // = [ (3n²/2 + n/4)·4(2n+1) + n ] / (4(2n+1))
        // = (12n³ + 6n² + 2n² + n + n) / (8n + 4)
        // = (12n³ + 8n² + 2n) / (8n + 4).
        let num = Poly::from_ints(&[0, 2, 8, 12]);
        let den = Poly::from_ints(&[4, 8]);
        let rf = RationalFn::new(num, den);
        assert!(rf.matches(crate::paper::s1_expected_z10, 1));
    }

    #[test]
    fn interpolated_variance_matches_direct_evaluation() {
        // Var(Z₁)(n)·(stuff) is a rational function; rather than deriving
        // its closed form by hand, interpolate r1_var_z1 multiplied by
        // its known denominator structure and confirm the interpolation
        // predicts fresh points. Var(Z₁) has denominator dividing
        // (8n²−2)²·(4n²−3) (from the pair probabilities), total degree
        // ≤ 6 over degree ≤ 6 — 14 points pin it down; verify at 4 more.
        let den = |n: i64| -> Ratio {
            let a = Ratio::from_int(8 * n * n - 2);
            let b = Ratio::from_int(4 * n * n - 3);
            a.mul(&a).mul(&b)
        };
        let sample = |n: i64| crate::paper::r1_var_z1(n as u64).mul(&den(n));
        let points: Vec<(Ratio, Ratio)> =
            (2..16).map(|n| (Ratio::from_int(n), sample(n))).collect();
        let poly = Poly::interpolate(&points);
        // The cleared-denominator form must be a polynomial of degree ≤ 7
        // (Var ~ n · denominator).
        assert!(poly.degree().unwrap_or(0) <= 7, "degree {:?}", poly.degree());
        for n in 16..20 {
            assert_eq!(poly.eval(&Ratio::from_int(n)), sample(n), "fresh point n={n}");
        }
    }

    #[test]
    fn rational_fn_eval_and_pole_skip() {
        // f(x) = x/(x−3): matches() must skip the pole at 3.
        let rf = RationalFn::new(Poly::x(), Poly::from_ints(&[-3, 1]));
        assert!(rf.matches(|x| Ratio::from_int(x as i64).div(&Ratio::from_int(x as i64 - 3)), 4));
        assert!(rf.matches(
            |x| { Ratio::from_int(x as i64).div(&Ratio::from_int(x as i64 - 3)) },
            1 // starts below the pole; must skip x = 3
        ));
        assert_eq!(rf.eval(&Ratio::from_int(6)), Ratio::from_int(2));
    }

    #[test]
    fn rational_fn_mismatch_detected() {
        let rf = RationalFn::new(Poly::x(), Poly::from_ints(&[1]));
        assert!(!rf.matches(|x| Ratio::from_int(x as i64 + 1), 0));
    }
}
