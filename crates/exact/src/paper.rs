//! Every named quantity of Savari (SPAA 1993), as exact rationals.
//!
//! Naming convention: `r1_*` / `r2_*` are the row-major algorithms that
//! begin with a row sort resp. a column sort (paper §2); `s1_*` / `s2_*`
//! are the first and second snakelike algorithms (paper §3); `*_odd`
//! variants are the appendix's `√N = 2n + 1` analogues. Functions take the
//! paper's parameter `n` (so the mesh side is `2n`, or `2n + 1` for
//! `*_odd`, and `N` is the cell count).
//!
//! Wherever the paper states a closed form, the implementation here is
//! instead *derived from first principles* (pattern enumeration over the
//! cells that determine the statistic, weighted by the exact
//! hypergeometric assignment probability), and the unit tests assert
//! equality with the paper's closed forms. This both validates the
//! derivations in the paper and protects the reproduction from OCR noise
//! in the source text.

use crate::binomial::assignment_prob;
use crate::ratio::Ratio;

/// `(total cells, zeros)` of the balanced `A^01` reduction on an even
/// side `2n`: `N = 4n²` cells, `α = 2n²` zeros.
fn balanced_even(n: u64) -> (u64, u64) {
    (4 * n * n, 2 * n * n)
}

/// `(total cells, zeros)` on an odd side `2n + 1`: `N = (2n+1)²` cells,
/// `α = 2n² + 2n + 1` zeros (the appendix redefines `A^01` to use the
/// smallest `2n² + 2n + 1` entries).
fn balanced_odd(n: u64) -> (u64, u64) {
    let side = 2 * n + 1;
    (side * side, 2 * n * n + 2 * n + 1)
}

/// Probability that `c` specific cells are all ones.
fn q_ones(total: u64, zeros: u64, c: u64) -> Ratio {
    assignment_prob(total, zeros, c, 0)
}

/// Ceiling of a non-negative ratio as `u64`.
///
/// # Panics
///
/// Panics for negative input or values not fitting `u64`.
pub fn ceil_to_u64(r: &Ratio) -> u64 {
    assert!(!r.is_negative(), "ceil_to_u64 needs a non-negative ratio");
    let num = r.numerator().magnitude();
    let den = r.denominator();
    let (q, rem) = num.div_rem(den);
    let q = q.to_u64().expect("value fits u64");
    if rem.is_zero() {
        q
    } else {
        q + 1
    }
}

// ---------------------------------------------------------------------
// §2 — row-major algorithm beginning with a ROW sort (R1).
// ---------------------------------------------------------------------

/// Lemma 4 ingredient: `E[z₁] = Prob{(A⁰¹₁,₁, A⁰¹₁,₂) ≠ (1,1)}`, the
/// probability that a cell of an odd column holds a zero after the first
/// row sort. Paper closed form: `3/4 + 1/(16n² − 4)`.
pub fn r1_e_z_single(n: u64) -> Ratio {
    let (total, zeros) = balanced_even(n);
    Ratio::one().sub(&q_ones(total, zeros, 2))
}

/// Lemma 4: `E[Z₁] = 2n · E[z₁] = 3n/2 + n/(8n² − 2)` — the expected
/// number of zeros in column 1 immediately after the first row sort.
pub fn r1_expected_z1(n: u64) -> Ratio {
    r1_e_z_single(n).mul_int(2 * n as i64)
}

/// Lemma 4: lower bound on `E[M]`: `E[Z₁] − n − 1 = n/2 + n/(8n²−2) − 1`.
pub fn r1_expected_m_lower(n: u64) -> Ratio {
    r1_expected_z1(n).sub(&Ratio::from_int(n as i64 + 1))
}

/// Theorem 3 ingredient: `E[z₁ z₂]` for two distinct rows — the two pairs
/// are disjoint cell sets, so
/// `E[z₁z₂] = 1 − 2·P(pair all ones) + P(both pairs all ones)`.
/// Paper closed form: `9/16 + (n² − 3/8)/(32n⁴ − 32n² + 6)`.
pub fn r1_e_z_pair_product(n: u64) -> Ratio {
    let (total, zeros) = balanced_even(n);
    Ratio::one().sub(&q_ones(total, zeros, 2).mul_int(2)).add(&q_ones(total, zeros, 4))
}

/// Theorem 3: exact `Var(Z₁)` after the first row sort of R1:
/// `2n·E[z₁] + 2n(2n−1)·E[z₁z₂] − (E[Z₁])²` — asymptotically
/// `n(3/8 − o(1))`.
pub fn r1_var_z1(n: u64) -> Ratio {
    let e1 = r1_e_z_single(n);
    let e12 = r1_e_z_pair_product(n);
    let ez1 = r1_expected_z1(n);
    e1.mul_int(2 * n as i64).add(&e12.mul_int((2 * n * (2 * n - 1)) as i64)).sub(&ez1.mul(&ez1))
}

/// Theorem 2: the average number of steps of R1 is lower bounded by
/// `4n · E[M]` (Corollary 2), which exceeds the paper's headline
/// `N/2 − 2√N`. This returns the exact `4n·(E[Z₁] − n − 1)`.
pub fn thm2_lower_bound(n: u64) -> Ratio {
    r1_expected_m_lower(n).mul_int(4 * n as i64)
}

/// The paper's rounded headline for Theorem 2: `N/2 − 2√N` with `N = 4n²`.
pub fn thm2_headline(n: u64) -> Ratio {
    let nn = (4 * n * n) as i64;
    Ratio::from_int(nn / 2 - 4 * n as i64)
}

// ---------------------------------------------------------------------
// §2 — row-major algorithm beginning with a COLUMN sort (R2).
// ---------------------------------------------------------------------

/// Simulates the first two steps of R2 (column odd sort, then row odd
/// sort) on one 2×2 block of 0-1 values `[a, b, c, d]` laid out as
/// `[[a, b], [c, d]]`. No cross-block comparisons occur during those
/// steps, so the block evolves independently — the observation behind the
/// paper's Theorem 4 block mapping.
fn r2_sort_block(p: [u8; 4]) -> [u8; 4] {
    let [a, b, c, d] = p;
    // Column odd step: smaller value to the top.
    let (a, c) = (a.min(c), a.max(c));
    let (b, d) = (b.min(d), b.max(d));
    // Row odd step: smaller value to the left.
    let (a, b) = (a.min(b), a.max(b));
    let (c, d) = (c.min(d), c.max(d));
    [a, b, c, d]
}

fn block_z1(p: [u8; 4]) -> u64 {
    let s = r2_sort_block(p);
    u64::from(s[0] == 0) + u64::from(s[2] == 0)
}

fn bits4(mask: u32) -> [u8; 4] {
    [(mask & 1) as u8, ((mask >> 1) & 1) as u8, ((mask >> 2) & 1) as u8, ((mask >> 3) & 1) as u8]
}

/// Theorem 4: the exact distribution of `z₁ ∈ {0, 1, 2}` — the number of
/// zeros a block contributes to column 1 after R2's first column+row
/// sort — obtained by enumerating all 16 block patterns. Paper closed
/// forms: `P{z₁=2} = 7/16 − (n²−3/8)/(32n⁴−32n²+6)`,
/// `P{z₁=1} = 1/2 + 1/(8n²−2)`.
pub fn r2_block_z1_distribution(n: u64) -> [Ratio; 3] {
    let (total, zeros) = balanced_even(n);
    let mut dist = [Ratio::zero(), Ratio::zero(), Ratio::zero()];
    for mask in 0u32..16 {
        let p = bits4(mask);
        let z_count = p.iter().filter(|&&b| b == 0).count() as u64;
        let weight = assignment_prob(total, zeros, 4, z_count);
        let z1 = block_z1(p) as usize;
        dist[z1] = dist[z1].add(&weight);
    }
    dist
}

/// Theorem 4: `E[z₁] = 11/8 + (n² − 9/8)/(16n⁴ − 16n² + 3)`.
pub fn r2_e_z_single(n: u64) -> Ratio {
    let d = r2_block_z1_distribution(n);
    d[1].add(&d[2].mul_int(2))
}

/// Theorem 4: `E[Z₁] = n · E[z₁]` for the column-first algorithm.
pub fn r2_expected_z1(n: u64) -> Ratio {
    r2_e_z_single(n).mul_int(n as i64)
}

/// Theorem 4: `E[M] ≥ E[Z₁] − n − 1 = 3n/8 + (n³ − 9n/8)/(16n⁴−16n²+3) − 1`.
pub fn r2_expected_m_lower(n: u64) -> Ratio {
    r2_expected_z1(n).sub(&Ratio::from_int(n as i64 + 1))
}

/// Theorem 5 ingredient: `E[z₁²]`.
pub fn r2_e_z_single_sq(n: u64) -> Ratio {
    let d = r2_block_z1_distribution(n);
    d[1].add(&d[2].mul_int(4))
}

/// Theorem 5 ingredient: `E[z₁ z₂]` for two vertically stacked blocks,
/// by enumerating all 256 joint patterns of the 8 cells. The paper's
/// closed form simplifies to `121/64 − O(1/n²)`.
pub fn r2_e_z_pair_product(n: u64) -> Ratio {
    let (total, zeros) = balanced_even(n);
    let mut acc = Ratio::zero();
    for mask in 0u32..256 {
        let pa = bits4(mask & 0xF);
        let pb = bits4(mask >> 4);
        let z1 = block_z1(pa);
        let z2 = block_z1(pb);
        if z1 == 0 || z2 == 0 {
            continue;
        }
        let z_count = pa.iter().chain(pb.iter()).filter(|&&b| b == 0).count() as u64;
        let weight = assignment_prob(total, zeros, 8, z_count);
        acc = acc.add(&weight.mul_int((z1 * z2) as i64));
    }
    acc
}

/// Theorem 5 auxiliary: the exact joint probability `P{z₁ = i, z₂ = j}`
/// for stacked blocks (used to cross-check the paper's joint tables).
pub fn r2_joint_z_prob(n: u64, i: u64, j: u64) -> Ratio {
    let (total, zeros) = balanced_even(n);
    let mut acc = Ratio::zero();
    for mask in 0u32..256 {
        let pa = bits4(mask & 0xF);
        let pb = bits4(mask >> 4);
        if block_z1(pa) != i || block_z1(pb) != j {
            continue;
        }
        let z_count = pa.iter().chain(pb.iter()).filter(|&&b| b == 0).count() as u64;
        acc = acc.add(&assignment_prob(total, zeros, 8, z_count));
    }
    acc
}

/// Theorem 5: exact `Var(Z₁)` for R2:
/// `n·E[z₁²] + n(n−1)·E[z₁z₂] − (E[Z₁])²` — asymptotically
/// `n(23/64 − o(1))`.
pub fn r2_var_z1(n: u64) -> Ratio {
    let ez1 = r2_expected_z1(n);
    r2_e_z_single_sq(n)
        .mul_int(n as i64)
        .add(&r2_e_z_pair_product(n).mul_int((n * (n - 1)) as i64))
        .sub(&ez1.mul(&ez1))
}

/// Theorem 4's step bound: `4n · E[M]` lower bound for R2 — exceeds the
/// paper's headline `3N/8 − 2√N`.
pub fn thm4_lower_bound(n: u64) -> Ratio {
    r2_expected_m_lower(n).mul_int(4 * n as i64)
}

/// The paper's rounded headline for Theorem 4: `3N/8 − 2√N`.
pub fn thm4_headline(n: u64) -> Ratio {
    Ratio::new_i64(3 * (4 * n * n) as i64, 8).sub(&Ratio::from_int(4 * n as i64))
}

// ---------------------------------------------------------------------
// Theorem 1 / Corollaries 1–2 — structural step bounds (row-major).
// ---------------------------------------------------------------------

/// `⌈α / √N⌉` — the per-column zero quota once sorting completes.
pub fn column_zero_quota(alpha: u64, sqrt_n: u64) -> u64 {
    alpha.div_ceil(sqrt_n)
}

/// Theorem 1, zeros branch: if after some odd row sort an odd-numbered
/// column holds `x > ⌈α/√N⌉` zeros, at least `(x − ⌈α/√N⌉ − 1)·2√N` more
/// steps are needed. Saturates at zero when the premise fails.
pub fn theorem1_extra_steps(x: u64, alpha: u64, sqrt_n: u64) -> u64 {
    let quota = column_zero_quota(alpha, sqrt_n);
    x.saturating_sub(quota + 1) * 2 * sqrt_n
}

/// Corollary 1: on the all-zeros-in-one-column input (`α = x = √N`), the
/// worst-case time of both row-major algorithms is at least `2N − 4√N`.
pub fn corollary1_worst_case(sqrt_n: u64) -> u64 {
    theorem1_extra_steps(sqrt_n, sqrt_n, sqrt_n)
}

/// Corollary 2: with `α = N/2`, the number of steps exceeds `4n·M`.
pub fn corollary2_steps_bound(m: u64, n: u64) -> u64 {
    4 * n * m
}

// ---------------------------------------------------------------------
// §3 — first snakelike algorithm (S1), even side.
// ---------------------------------------------------------------------

/// Lemma 9, exactly: after S1's first row step,
/// `E[Z₁(0)] = (N/2 − √N/2)·E[z₁,₁] + √N·E[z₂,₁]` where the pair-driven
/// cells have `E[z₁,₁] = 1 − P(pair both ones)` and the untouched cells
/// (columns 1 and 2n in even rows) have `E[z₂,₁] = 1/2`. Paper closed
/// form: `3N/8 + √N/8 + √N / (8(√N + 1))`.
pub fn s1_expected_z10(n: u64) -> Ratio {
    let (total, zeros) = balanced_even(n);
    let pair_cells = (2 * n * n - n) as i64; // N/2 − √N/2
    let single_cells = (2 * n) as i64; // √N
    let e_pair = Ratio::one().sub(&q_ones(total, zeros, 2));
    let e_single = Ratio::new_i64(1, 2);
    e_pair.mul_int(pair_cells).add(&e_single.mul_int(single_cells))
}

/// Theorem 8, exactly: `Var[Z₁(0)]` for S1 assembled from the disjoint
/// pair/cell covariance structure of the proof.
///
/// **Reproduction note (erratum):** the paper prints
/// `Var[Z₁(0)] = 17n²/8 − 7n/16 + …`, i.e. `n²(17/8 + o(1))`, but its own
/// intermediate quantities contain slips as printed: `E(Z₂²)` uses the
/// pair-cell expectation `3/4 + 1/(16n²−4)` for the product of two *raw*
/// cell indicators (whose correct joint expectation is
/// `P(both cells zero) = (2n²−1)/(2(4n²−1)) ≈ 1/4`), and the printed
/// simplification of `2E(Z₁Z₂)` (`3n³ − 3n²/2 + …`) disagrees with the
/// correct `2·(2n²−n)·2n·E[z₁,₁z₂,₁]` it is supposedly derived from.
/// This implementation assembles the variance from the same disjoint-cell
/// covariance structure with the correct joint expectations; it matches
/// exhaustive enumeration of every balanced 0-1 matrix at n = 1, 2
/// (tests below) and behaves as `n²(1/8 + o(1))`. The *conclusion* of
/// Theorem 8 is unaffected — the true variance is smaller than the
/// printed one, which only strengthens the Chebyshev concentration.
pub fn s1_var_z10(n: u64) -> Ratio {
    let (total, zeros) = balanced_even(n);
    let a = (2 * n * n - n) as i64; // pair-driven indicator count
    let b = (2 * n) as i64; // untouched single-cell count
    let q2 = q_ones(total, zeros, 2);
    let q3 = q_ones(total, zeros, 3);
    let q4 = q_ones(total, zeros, 4);
    let e_pair = Ratio::one().sub(&q2); // E[z_pair] = E[z_pair²]
    let e_pair_pair = Ratio::one().sub(&q2.mul_int(2)).add(&q4);
    // E[z_pair · z_cell] = 1 − P(pair ones) − P(cell one) + P(all three one).
    let e_cell = Ratio::new_i64(1, 2);
    let e_pair_cell = Ratio::one().sub(&q2).sub(&e_cell).add(&q3);
    // E[z_cell z_cell'] = P(two specific cells both zero).
    let e_cell_cell = assignment_prob(total, zeros, 2, 2);

    let mean = s1_expected_z10(n);
    let second_moment = e_pair
        .mul_int(a)
        .add(&e_pair_pair.mul_int(a * (a - 1)))
        .add(&e_pair_cell.mul_int(2 * a * b))
        .add(&e_cell.mul_int(b))
        .add(&e_cell_cell.mul_int(b * (b - 1)));
    second_moment.sub(&mean.mul(&mean))
}

/// `f(α, N) = ⌈α/2 + α/(2√N)⌉` — the sorted-state ceiling on `Z₁` used by
/// Theorem 6.
pub fn f_alpha(alpha: u64, sqrt_n: u64) -> u64 {
    // α/2 + α/(2√N) = α(√N + 1)/(2√N), computed exactly.
    (alpha * (sqrt_n + 1)).div_ceil(2 * sqrt_n)
}

/// Theorem 6: if after the first step `Z₁(0) = x > f(α, N)`, at least
/// `4(x − f(α,N) − 1)` more steps are required. Saturates at zero.
pub fn theorem6_extra_steps(x: u64, alpha: u64, sqrt_n: u64) -> u64 {
    4 * x.saturating_sub(f_alpha(alpha, sqrt_n) + 1)
}

/// Theorem 7 (exact form): the average steps of S1 are lower bounded by
/// `4(E[Z₁(0)] − f(N/2, N) − 1)` — approximately `N/2 − √N/2 − 4`.
pub fn thm7_lower_bound(n: u64) -> Ratio {
    let sqrt_n = 2 * n;
    let alpha = 2 * n * n;
    s1_expected_z10(n)
        .sub(&Ratio::from_int(f_alpha(alpha, sqrt_n) as i64))
        .sub(&Ratio::one())
        .mul_int(4)
}

// ---------------------------------------------------------------------
// §3 — second snakelike algorithm (S2), even side.
// ---------------------------------------------------------------------

/// Lemma 11, exactly: `E[Y₁(0)]` — the expected number of zeros in the
/// odd-numbered columns after S2's first step:
/// `(N/2 − √N/2)·E[z_pair] + (√N/2)·(1/2)`. Paper closed form:
/// `3N/8 − √N/8 + √N/(8(√N+1))`.
pub fn s2_expected_y10(n: u64) -> Ratio {
    let (total, zeros) = balanced_even(n);
    let pair_cells = (2 * n * n - n) as i64;
    let single_cells = n as i64; // column 1, even rows only
    let e_pair = Ratio::one().sub(&q_ones(total, zeros, 2));
    e_pair.mul_int(pair_cells).add(&Ratio::new_i64(single_cells, 2))
}

/// Theorem 9: if after the first step the zeros in odd columns number
/// `x > ⌈α/2⌉`, at least `4(x − ⌈α/2⌉ − 1)` more steps are required.
pub fn theorem9_extra_steps(x: u64, alpha: u64) -> u64 {
    4 * x.saturating_sub(alpha.div_ceil(2) + 1)
}

/// Theorem 10 (exact form): average steps of S2 lower bounded by
/// `4(E[Y₁(0)] − N/4 − 1)` — approximately `N/2 − √N/2 − 4`.
pub fn thm10_lower_bound(n: u64) -> Ratio {
    let alpha = 2 * n * n;
    s2_expected_y10(n).sub(&Ratio::from_int(alpha.div_ceil(2) as i64)).sub(&Ratio::one()).mul_int(4)
}

// ---------------------------------------------------------------------
// Appendix — odd side √N = 2n + 1.
// ---------------------------------------------------------------------

/// Lemma 14, exactly: odd-side `E[Z₁(0)]` for S1 — `(N − √N)/2` cells
/// driven by pairs (probability `1 − P(pair ones) = 3/4 + 3/(4N)`) plus
/// `(√N − 1)/2` untouched cells of column 1 (probability `α/N =
/// (N+1)/(2N)`). Paper closed form: `3N/8 − √N/8 + (N − √N − 2)/(8N)`.
pub fn s1_expected_z10_odd(n: u64) -> Ratio {
    let (total, zeros) = balanced_odd(n);
    let pair_cells = (2 * n * n + n) as i64; // (N − √N)/2
    let single_cells = n as i64; // (√N − 1)/2
    let e_pair = Ratio::one().sub(&q_ones(total, zeros, 2));
    let e_single = Ratio::new_i64(zeros as i64, total as i64);
    e_pair.mul_int(pair_cells).add(&e_single.mul_int(single_cells))
}

/// Theorem 13's threshold: `⌈α(N−1)/(2N)⌉` for the odd side.
pub fn theorem13_threshold(alpha: u64, n_cells: u64) -> u64 {
    (alpha * (n_cells - 1)).div_ceil(2 * n_cells)
}

/// Theorem 13: extra steps `4(x − ⌈α(N−1)/(2N)⌉ − 1)`, saturating.
pub fn theorem13_extra_steps(x: u64, alpha: u64, n_cells: u64) -> u64 {
    4 * x.saturating_sub(theorem13_threshold(alpha, n_cells) + 1)
}

/// Corollary 4: odd-side average-step lower bound
/// `4(E[Z₁(0)] − ⌈(N² − 1)/(4N)⌉ − 1)`.
pub fn corollary4_lower_bound(n: u64) -> Ratio {
    let (total, zeros) = balanced_odd(n);
    s1_expected_z10_odd(n)
        .sub(&Ratio::from_int(theorem13_threshold(zeros, total) as i64))
        .sub(&Ratio::one())
        .mul_int(4)
}

// ---------------------------------------------------------------------
// Chebyshev machinery (Theorems 3, 5, 8, 11).
// ---------------------------------------------------------------------

/// The one-sided Chebyshev consequence the paper uses (its inequality
/// (1)): `P[X ≤ E[X] − t] ≤ Var(X)/t²`. Returns the bound for
/// `threshold = E[X] − t`, or `1.0` when `threshold ≥ E[X]` (vacuous).
pub fn chebyshev_tail_bound(mean: &Ratio, var: &Ratio, threshold: &Ratio) -> f64 {
    if threshold >= mean {
        return 1.0;
    }
    let t = mean.sub(threshold);
    let bound = var.div(&t.mul(&t));
    bound.to_f64().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: i64, q: i64) -> Ratio {
        Ratio::new_i64(p, q)
    }

    // ---- R1 ----

    #[test]
    fn lemma4_e_z_single_closed_form() {
        // 3/4 + 1/(16n² − 4)
        for n in 1..=8i64 {
            let expected = r(3, 4).add(&r(1, 16 * n * n - 4));
            assert_eq!(r1_e_z_single(n as u64), expected, "n={n}");
        }
    }

    #[test]
    fn lemma4_e_z1_closed_form() {
        // 3n/2 + n/(8n² − 2)
        for n in 1..=8i64 {
            let expected = r(3 * n, 2).add(&r(n, 8 * n * n - 2));
            assert_eq!(r1_expected_z1(n as u64), expected, "n={n}");
        }
    }

    #[test]
    fn thm3_e_z1z2_closed_form() {
        // 9/16 + (n² − 3/8)/(32n⁴ − 32n² + 6)
        for n in 2..=6i64 {
            let n2 = n * n;
            let expected =
                r(9, 16).add(&r(8 * n2 - 3, 8).div(&Ratio::from_int(32 * n2 * n2 - 32 * n2 + 6)));
            assert_eq!(r1_e_z_pair_product(n as u64), expected, "n={n}");
        }
    }

    #[test]
    fn thm3_var_z1_asymptotics() {
        // Var(Z₁) = n(3/8 − o(1)): check the ratio Var/n approaches 3/8
        // from below and is positive.
        for n in [2u64, 4, 8, 16, 32] {
            let v = r1_var_z1(n);
            assert!(!v.is_negative(), "variance must be non-negative");
            let per_n = v.to_f64() / n as f64;
            assert!(per_n < 0.375, "n={n}: {per_n}");
            if n >= 8 {
                assert!(per_n > 0.30, "n={n}: {per_n}");
            }
        }
        let big = r1_var_z1(64).to_f64() / 64.0;
        assert!((big - 0.375).abs() < 0.02, "per-n variance {big} not near 3/8");
    }

    #[test]
    fn thm2_exact_exceeds_headline() {
        for n in 2..=10u64 {
            assert!(thm2_lower_bound(n) >= thm2_headline(n), "n={n}");
        }
    }

    // ---- R2 ----

    #[test]
    fn thm4_block_distribution_closed_forms() {
        // P{z₁=2} = 7/16 − (n²−3/8)/(32n⁴−32n²+6);
        // P{z₁=1} = 1/2 + 1/(8n²−2).
        for n in 2..=6i64 {
            let n2 = n * n;
            let d = r2_block_z1_distribution(n as u64);
            let frac = r(8 * n2 - 3, 8).div(&Ratio::from_int(32 * n2 * n2 - 32 * n2 + 6));
            assert_eq!(d[2], r(7, 16).sub(&frac), "P(z=2) n={n}");
            assert_eq!(d[1], r(1, 2).add(&r(1, 8 * n2 - 2)), "P(z=1) n={n}");
            // Distribution sums to 1.
            assert_eq!(d[0].add(&d[1]).add(&d[2]), Ratio::one());
        }
    }

    #[test]
    fn thm4_block_canonical_mapping_matches_paper() {
        // The paper's explicit block mapping: e.g. 3-zero blocks map to
        // [[0,0],[0,1]] (z1 = 2), four of the 2-zero blocks map to
        // [[0,0],[1,1]] (z1 = 1) and two ([[0,1],[0,1]], [[1,0],[1,0]])
        // keep both zeros in odd columns (z1 = 2).
        assert_eq!(r2_sort_block([0, 1, 0, 0]), [0, 0, 0, 1]);
        assert_eq!(r2_sort_block([0, 0, 1, 1]), [0, 0, 1, 1]);
        assert_eq!(r2_sort_block([0, 1, 1, 0]), [0, 0, 1, 1]);
        assert_eq!(r2_sort_block([1, 0, 0, 1]), [0, 0, 1, 1]);
        assert_eq!(r2_sort_block([1, 1, 0, 0]), [0, 0, 1, 1]);
        assert_eq!(r2_sort_block([0, 1, 0, 1]), [0, 1, 0, 1]);
        assert_eq!(r2_sort_block([1, 0, 1, 0]), [0, 1, 0, 1]);
        assert_eq!(block_z1([0, 1, 0, 1]), 2);
        assert_eq!(block_z1([0, 0, 1, 1]), 1);
        assert_eq!(block_z1([1, 1, 1, 1]), 0);
        assert_eq!(block_z1([0, 0, 0, 0]), 2);
    }

    #[test]
    fn thm4_e_z_single_closed_form() {
        // E[z₁] = 11/8 + (n² − 9/8)/(16n⁴ − 16n² + 3)
        for n in 2..=6i64 {
            let n2 = n * n;
            let expected =
                r(11, 8).add(&r(8 * n2 - 9, 8).div(&Ratio::from_int(16 * n2 * n2 - 16 * n2 + 3)));
            assert_eq!(r2_e_z_single(n as u64), expected, "n={n}");
        }
    }

    #[test]
    fn thm5_e_z_single_sq_closed_form() {
        // E[z₁²] = 9/4 − 3/(64n⁴ − 64n² + 12)
        for n in 2..=6i64 {
            let n2 = n * n;
            let expected = r(9, 4).sub(&r(3, 64 * n2 * n2 - 64 * n2 + 12));
            assert_eq!(r2_e_z_single_sq(n as u64), expected, "n={n}");
        }
    }

    #[test]
    fn thm5_joint_prob_closed_form() {
        // P{z₁ = z₂ = 1} = 1/4 + (4n⁴ − 11n² + 15/4)/(64n⁶ − 144n⁴ + 92n² − 15)
        for n in 2..=5i64 {
            let n2 = n * n;
            let num = r(16 * n2 * n2 - 44 * n2 + 15, 4);
            let den = Ratio::from_int(64 * n2 * n2 * n2 - 144 * n2 * n2 + 92 * n2 - 15);
            let expected = r(1, 4).add(&num.div(&den));
            assert_eq!(r2_joint_z_prob(n as u64, 1, 1), expected, "n={n}");
        }
    }

    #[test]
    fn thm5_joint_symmetry() {
        // P{z₁=1, z₂=2} = P{z₁=2, z₂=1} by exchangeability of the blocks.
        for n in 2..=4u64 {
            assert_eq!(r2_joint_z_prob(n, 1, 2), r2_joint_z_prob(n, 2, 1), "n={n}");
        }
    }

    #[test]
    fn thm5_joint_consistent_with_marginal() {
        // Σ_j P{z₁=i, z₂=j} = P{z₁=i}.
        let n = 3u64;
        let marginal = r2_block_z1_distribution(n);
        for i in 0..=2u64 {
            let mut sum = Ratio::zero();
            for j in 0..=2u64 {
                sum = sum.add(&r2_joint_z_prob(n, i, j));
            }
            assert_eq!(sum, marginal[i as usize], "i={i}");
        }
    }

    #[test]
    fn thm5_var_z1_asymptotics() {
        // Var(Z₁) = n(23/64 − o(1)) ≈ 0.359·n.
        for n in [4u64, 8, 16, 32] {
            let v = r2_var_z1(n);
            assert!(!v.is_negative());
            let per_n = v.to_f64() / n as f64;
            assert!(per_n < 23.0 / 64.0 + 0.05, "n={n}: {per_n}");
        }
        let big = r2_var_z1(64).to_f64() / 64.0;
        assert!((big - 23.0 / 64.0).abs() < 0.03, "per-n variance {big} not near 23/64");
    }

    #[test]
    fn thm4_exact_exceeds_headline() {
        for n in 3..=10u64 {
            assert!(thm4_lower_bound(n) >= thm4_headline(n), "n={n}");
        }
    }

    // ---- Theorem 1 / corollaries ----

    #[test]
    fn theorem1_and_corollary1() {
        // Corollary 1: α = x = √N gives (√N − 2)·2√N = 2N − 4√N.
        for sqrt_n in [2u64, 4, 8, 16] {
            let n_cells = sqrt_n * sqrt_n;
            assert_eq!(corollary1_worst_case(sqrt_n), 2 * n_cells - 4 * sqrt_n);
        }
        // Saturation below the quota.
        assert_eq!(theorem1_extra_steps(3, 16, 4), 0); // quota 4, x=3
        assert_eq!(theorem1_extra_steps(5, 16, 4), 0); // x = quota+1 → 0
        assert_eq!(theorem1_extra_steps(6, 16, 4), 8); // (6−4−1)·8
    }

    #[test]
    fn corollary2_formula() {
        assert_eq!(corollary2_steps_bound(3, 4), 48);
        assert_eq!(corollary2_steps_bound(0, 9), 0);
    }

    // ---- S1 ----

    #[test]
    fn lemma9_closed_form() {
        // 3N/8 + √N/8 + √N/(8(√N+1)) with N = 4n².
        for n in 1..=8i64 {
            let nn = 4 * n * n;
            let sqrt_nn = 2 * n;
            let expected = r(3 * nn, 8).add(&r(sqrt_nn, 8)).add(&r(sqrt_nn, 8 * (sqrt_nn + 1)));
            assert_eq!(s1_expected_z10(n as u64), expected, "n={n}");
        }
    }

    /// Ground truth for `Z₁(0)` statistics: enumerate every balanced 0-1
    /// matrix on the `2n × 2n` mesh, apply S1's first step, and measure
    /// `Z₁(0)` = zeros in odd columns + zeros in even rows of the last
    /// column. Returns `(mean, variance)` as exact rationals.
    fn brute_force_z10(n: u64) -> (Ratio, Ratio) {
        let side = (2 * n) as usize;
        let cells = side * side;
        assert!(cells <= 16, "exhaustive enumeration limited to 4x4");
        let alpha = cells / 2;
        let mut count = 0i64;
        let mut sum = 0i64;
        let mut sumsq = 0i64;
        for mask in 0u32..(1u32 << cells) {
            if mask.count_ones() as usize != alpha {
                continue;
            }
            // bit = 1 ⇒ the cell holds a zero.
            let mut g: Vec<u8> =
                (0..cells).map(|i| if (mask >> i) & 1 == 1 { 0 } else { 1 }).collect();
            // S1 step 1: paper-odd rows bubble-odd, paper-even rows
            // reverse-even.
            for row in 0..side {
                if row % 2 == 0 {
                    let mut c = 0;
                    while c + 1 < side {
                        if g[row * side + c] > g[row * side + c + 1] {
                            g.swap(row * side + c, row * side + c + 1);
                        }
                        c += 2;
                    }
                } else {
                    let mut c = 1;
                    while c + 1 < side {
                        if g[row * side + c + 1] > g[row * side + c] {
                            g.swap(row * side + c, row * side + c + 1);
                        }
                        c += 2;
                    }
                }
            }
            let mut z = 0i64;
            for row in 0..side {
                for col in (0..side).step_by(2) {
                    z += (g[row * side + col] == 0) as i64;
                }
            }
            for row in (1..side).step_by(2) {
                z += (g[row * side + side - 1] == 0) as i64;
            }
            count += 1;
            sum += z;
            sumsq += z * z;
        }
        let mean = r(sum, count);
        let var = r(sumsq, count).sub(&mean.mul(&mean));
        (mean, var)
    }

    #[test]
    fn lemma9_and_thm8_match_exhaustive_enumeration() {
        for n in [1u64, 2] {
            let (mean, var) = brute_force_z10(n);
            assert_eq!(s1_expected_z10(n), mean, "mean n={n}");
            assert_eq!(s1_var_z10(n), var, "variance n={n}");
        }
    }

    #[test]
    fn thm8_printed_closed_form_is_an_erratum() {
        // The paper's printed Var[Z₁(0)] = 17n²/8 − 7n/16 + … does NOT
        // match exhaustive enumeration; see the erratum note on
        // `s1_var_z10`. Keep the discrepancy pinned so future readers see
        // it is deliberate.
        let n = 2i64;
        let printed = r(17 * n * n, 8)
            .sub(&r(7 * n, 16))
            .add(&r(11 * n * n + 6 * n, (8 * n + 4) * (8 * n + 4)))
            .add(&r(3 * (n * n - n), 8 * (8 * n * n - 6)));
        let (_, truth) = brute_force_z10(n as u64);
        assert_ne!(printed, truth);
        assert_eq!(s1_var_z10(n as u64), truth);
    }

    #[test]
    fn thm8_var_asymptotics() {
        // The corrected variance behaves as n²(1/8 + o(1)) — still Θ(n²),
        // so Theorem 8's Chebyshev argument goes through unchanged (with a
        // better constant than printed).
        let v64 = s1_var_z10(64).to_f64() / (64.0 * 64.0);
        assert!((v64 - 0.125).abs() < 0.02, "Var/n² = {v64}, expected ≈ 1/8");
        // And it is monotone-ish in n per n².
        let v16 = s1_var_z10(16).to_f64() / (16.0 * 16.0);
        assert!(v16 > 0.1 && v16 < 0.2, "{v16}");
    }

    #[test]
    fn f_alpha_values() {
        // f(α, N) = ⌈α/2 + α/(2√N)⌉. With α = N/2 = 2n², √N = 2n:
        // f = ⌈n² + n/2⌉ = n² + ⌈n/2⌉.
        for n in 1..=9u64 {
            let alpha = 2 * n * n;
            let sqrt_n = 2 * n;
            assert_eq!(f_alpha(alpha, sqrt_n), n * n + n.div_ceil(2), "n={n}");
        }
        assert_eq!(f_alpha(4, 4), 3); // 2 + 1/2 → 3
    }

    #[test]
    fn theorem6_saturation_and_value() {
        let alpha = 8u64; // e.g. 4×4 mesh, α = 8, f = ⌈4 + 1⌉ = 5
        assert_eq!(f_alpha(alpha, 4), 5);
        assert_eq!(theorem6_extra_steps(5, alpha, 4), 0);
        assert_eq!(theorem6_extra_steps(6, alpha, 4), 0);
        assert_eq!(theorem6_extra_steps(8, alpha, 4), 8); // 4·(8−5−1)
    }

    #[test]
    fn thm7_bound_scales_as_half_n() {
        // ≈ N/2 − √N/2 − 4: check N/2 dominance at moderate n.
        for n in [4u64, 8, 16] {
            let nn = (4 * n * n) as f64;
            let b = thm7_lower_bound(n).to_f64();
            assert!(b > 0.3 * nn, "n={n}: {b} vs N={nn}");
            assert!(b < 0.5 * nn, "n={n}: {b}");
        }
        // The constant approaches 1/2 from below as n grows.
        let big = thm7_lower_bound(64).to_f64() / (4.0 * 64.0 * 64.0) as f64;
        assert!(big > 0.47, "{big}");
    }

    // ---- S2 ----

    #[test]
    fn lemma11_closed_form() {
        // 3N/8 − √N/8 + √N/(8(√N+1)).
        for n in 1..=8i64 {
            let nn = 4 * n * n;
            let sqrt_nn = 2 * n;
            let expected = r(3 * nn, 8).sub(&r(sqrt_nn, 8)).add(&r(sqrt_nn, 8 * (sqrt_nn + 1)));
            assert_eq!(s2_expected_y10(n as u64), expected, "n={n}");
        }
    }

    #[test]
    fn thm10_bound_matches_paper_headline() {
        // Paper: N/2 − √N/2 − 4 (up to the o(1) term we keep exactly).
        for n in [4u64, 8, 16] {
            let nn = (4 * n * n) as f64;
            let sqrt_nn = (2 * n) as f64;
            let exact = thm10_lower_bound(n).to_f64();
            let headline = nn / 2.0 - sqrt_nn / 2.0 - 4.0;
            assert!((exact - headline).abs() < 2.5, "n={n}: {exact} vs {headline}");
        }
    }

    #[test]
    fn theorem9_extra_steps_value() {
        assert_eq!(theorem9_extra_steps(10, 16), 4 * (10 - 9));
        assert_eq!(theorem9_extra_steps(9, 16), 0);
        assert_eq!(theorem9_extra_steps(0, 16), 0);
    }

    // ---- Appendix (odd side) ----

    #[test]
    fn lemma14_closed_form() {
        // 3N/8 − √N/8 + (N − √N − 2)/(8N), with √N = 2n+1.
        for n in 1..=7i64 {
            let s = 2 * n + 1;
            let nn = s * s;
            let expected = r(3 * nn, 8).sub(&r(s, 8)).add(&r(nn - s - 2, 8 * nn));
            assert_eq!(s1_expected_z10_odd(n as u64), expected, "n={n}");
        }
    }

    #[test]
    fn lemma14_ingredients() {
        // E[z₁,₁] = 3/4 + 3/(4N) on the odd side.
        for n in 1..=5i64 {
            let s = 2 * n + 1;
            let nn = (s * s) as u64;
            let zeros = (2 * n * n + 2 * n + 1) as u64;
            let e_pair = Ratio::one().sub(&q_ones(nn, zeros, 2));
            let expected = r(3, 4).add(&r(3, 4 * (nn as i64)));
            assert_eq!(e_pair, expected, "n={n}");
            // E[z₂,₁] = α/N = (N+1)/(2N).
            assert_eq!(r(zeros as i64, nn as i64), r(nn as i64 + 1, 2 * nn as i64));
        }
    }

    #[test]
    fn theorem13_threshold_and_steps() {
        // ⌈α(N−1)/(2N)⌉ for a 5×5 mesh: α = 13, N = 25 → ⌈13·24/50⌉ = 7.
        assert_eq!(theorem13_threshold(13, 25), 7);
        assert_eq!(theorem13_extra_steps(7, 13, 25), 0);
        assert_eq!(theorem13_extra_steps(9, 13, 25), 4);
    }

    #[test]
    fn corollary4_positive_and_theta_n() {
        for n in [3u64, 6, 12] {
            let s = 2 * n + 1;
            let nn = (s * s) as f64;
            let b = corollary4_lower_bound(n).to_f64();
            assert!(b > 0.25 * nn, "n={n}: {b} vs N={nn}");
            assert!(b < 0.55 * nn, "n={n}: {b}");
        }
        // Constant tends to 1/2 as n grows.
        let n = 40u64;
        let s = 2 * n + 1;
        let big = corollary4_lower_bound(n).to_f64() / ((s * s) as f64);
        assert!(big > 0.44, "{big}");
    }

    // ---- Chebyshev ----

    #[test]
    fn chebyshev_bound_behaviour() {
        let mean = r(10, 1);
        let var = r(4, 1);
        // P[X ≤ 6] ≤ 4/16 = 0.25.
        assert!((chebyshev_tail_bound(&mean, &var, &r(6, 1)) - 0.25).abs() < 1e-12);
        // Vacuous when threshold ≥ mean.
        assert_eq!(chebyshev_tail_bound(&mean, &var, &r(10, 1)), 1.0);
        assert_eq!(chebyshev_tail_bound(&mean, &var, &r(12, 1)), 1.0);
        // Clamped to 1.
        assert_eq!(chebyshev_tail_bound(&mean, &var, &r(19, 2)), 1.0);
    }

    #[test]
    fn thm3_style_bound_vanishes_with_n() {
        // P[Z₁ ≤ (γ+1)n + 1] ≤ Var/(E − threshold)² → 0 as n → ∞ for γ < 1/2.
        let gamma_num = 1i64; // γ = 1/4
        let gamma_den = 4i64;
        let mut prev = f64::INFINITY;
        for n in [4i64, 8, 16, 32] {
            let mean = r1_expected_z1(n as u64);
            let var = r1_var_z1(n as u64);
            // threshold = (γ+1)·n + 1
            let threshold = r(gamma_num + gamma_den, gamma_den).mul_int(n).add(&Ratio::one());
            let b = chebyshev_tail_bound(&mean, &var, &threshold);
            assert!(b <= prev + 1e-9, "bound should shrink: n={n}, {b} > {prev}");
            prev = b;
        }
        assert!(prev < 0.3, "bound at n=32 should be small: {prev}");
        // And with one more doubling it keeps shrinking like 1/n.
        let mean = r1_expected_z1(64);
        let var = r1_var_z1(64);
        let threshold = r(5, 4).mul_int(64).add(&Ratio::one());
        assert!(chebyshev_tail_bound(&mean, &var, &threshold) < 0.15);
    }

    #[test]
    fn ceil_helper() {
        assert_eq!(ceil_to_u64(&r(7, 2)), 4);
        assert_eq!(ceil_to_u64(&r(8, 2)), 4);
        assert_eq!(ceil_to_u64(&Ratio::zero()), 0);
    }
}
