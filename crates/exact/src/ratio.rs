//! Exact rationals: a signed numerator over a positive denominator, always
//! stored in lowest terms.

use crate::bigint::BigInt;
use crate::biguint::BigUint;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) = 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    num: BigInt,
    den: BigUint,
}

impl Ratio {
    /// Zero.
    pub fn zero() -> Self {
        Ratio { num: BigInt::zero(), den: BigUint::one() }
    }

    /// One.
    pub fn one() -> Self {
        Ratio { num: BigInt::one(), den: BigUint::one() }
    }

    /// From an integer.
    pub fn from_int(v: i64) -> Self {
        Ratio { num: BigInt::from_i64(v), den: BigUint::one() }
    }

    /// From a [`BigUint`] (non-negative integer value).
    pub fn from_biguint(v: BigUint) -> Self {
        Ratio { num: BigInt::from_biguint(v), den: BigUint::one() }
    }

    /// `p / q` for primitive integers.
    ///
    /// # Panics
    ///
    /// Panics when `q == 0`.
    pub fn new_i64(p: i64, q: i64) -> Self {
        assert!(q != 0, "zero denominator");
        let num = BigInt::from_i64(p);
        let den = BigInt::from_i64(q);
        let sign_flip = den.is_negative();
        let r = Ratio::reduce(if sign_flip { num.neg() } else { num }, den.magnitude().clone());
        r
    }

    /// `num / den` for big values.
    ///
    /// # Panics
    ///
    /// Panics when `den` is zero.
    pub fn new(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        Ratio::reduce(num, den)
    }

    /// Ratio of two non-negative big integers, `p / q`.
    ///
    /// # Panics
    ///
    /// Panics when `q` is zero.
    pub fn from_biguint_ratio(p: BigUint, q: BigUint) -> Self {
        Self::new(BigInt::from_biguint(p), q)
    }

    fn reduce(num: BigInt, den: BigUint) -> Self {
        if num.is_zero() {
            return Self::zero();
        }
        let g = num.magnitude().gcd(&den);
        if g.is_one() {
            return Ratio { num, den };
        }
        let new_mag = num.magnitude().div_exact(&g);
        Ratio { num: BigInt::new(num.sign(), new_mag), den: den.div_exact(&g) }
    }

    /// Numerator (signed, lowest terms).
    pub fn numerator(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (positive, lowest terms).
    pub fn denominator(&self) -> &BigUint {
        &self.den
    }

    /// `true` iff exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// `true` iff the value is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// `self + other`.
    pub fn add(&self, other: &Ratio) -> Ratio {
        // a/b + c/d = (ad + cb) / bd
        let ad = self.num.mul(&BigInt::from_biguint(other.den.clone()));
        let cb = other.num.mul(&BigInt::from_biguint(self.den.clone()));
        Ratio::reduce(ad.add(&cb), self.den.mul(&other.den))
    }

    /// `self − other`.
    pub fn sub(&self, other: &Ratio) -> Ratio {
        self.add(&other.neg())
    }

    /// `self · other`.
    pub fn mul(&self, other: &Ratio) -> Ratio {
        Ratio::reduce(self.num.mul(&other.num), self.den.mul(&other.den))
    }

    /// `self / other`.
    ///
    /// # Panics
    ///
    /// Panics when `other` is zero.
    pub fn div(&self, other: &Ratio) -> Ratio {
        assert!(!other.is_zero(), "division by zero ratio");
        let num = self.num.mul(&BigInt::from_biguint(other.den.clone()));
        let mut den = self.den.mul(other.num.magnitude());
        let mut num = num;
        if other.num.is_negative() {
            num = num.neg();
        }
        if den.is_zero() {
            den = BigUint::one(); // unreachable: other nonzero
        }
        Ratio::reduce(num, den)
    }

    /// Negation.
    pub fn neg(&self) -> Ratio {
        Ratio { num: self.num.neg(), den: self.den.clone() }
    }

    /// Multiplies by an integer.
    pub fn mul_int(&self, k: i64) -> Ratio {
        self.mul(&Ratio::from_int(k))
    }

    /// Scales by a non-negative big integer.
    pub fn mul_biguint(&self, k: &BigUint) -> Ratio {
        Ratio::reduce(self.num.mul(&BigInt::from_biguint(k.clone())), self.den.clone())
    }

    /// Best-effort `f64` value: exact for small ratios, and within one ULP
    /// of the scaled quotient for big ones (64 fractional bits are
    /// extracted before rounding).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let mag = self.num.magnitude();
        // Compute (mag << 64) / den, then scale by 2^-64.
        let (q, _) = mag.shl(64).div_rem(&self.den);
        let v = q.to_f64() * 2f64.powi(-64);
        if self.is_negative() {
            -v
        } else {
            v
        }
    }

    /// Exact comparison with an integer.
    pub fn cmp_int(&self, v: i64) -> Ordering {
        self.cmp(&Ratio::from_int(v))
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d ⇔ ad vs cb (b, d > 0).
        let ad = self.num.mul(&BigInt::from_biguint(other.den.clone()));
        let cb = other.num.mul(&BigInt::from_biguint(self.den.clone()));
        ad.cmp(&cb)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: i64, q: i64) -> Ratio {
        Ratio::new_i64(p, q)
    }

    #[test]
    fn reduction() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-6, 9), r(-2, 3));
        assert_eq!(r(0, 5), Ratio::zero());
        assert_eq!(r(7, 1).to_string(), "7");
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn negative_denominator_normalizes() {
        assert_eq!(r(1, -2), r(-1, 2));
        assert_eq!(r(-1, -2), r(1, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2).add(&r(1, 3)), r(5, 6));
        assert_eq!(r(1, 2).sub(&r(1, 3)), r(1, 6));
        assert_eq!(r(2, 3).mul(&r(3, 4)), r(1, 2));
        assert_eq!(r(1, 2).div(&r(1, 4)), r(2, 1));
        assert_eq!(r(-1, 2).div(&r(1, 4)), r(-2, 1));
        assert_eq!(r(1, 2).div(&r(-1, 4)), r(-2, 1));
        assert_eq!(r(3, 7).mul_int(7), r(3, 1));
    }

    #[test]
    fn comparison() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(2, 4) == r(1, 2));
        assert_eq!(r(7, 2).cmp_int(3), Ordering::Greater);
        assert_eq!(r(6, 2).cmp_int(3), Ordering::Equal);
    }

    #[test]
    fn to_f64() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert!((r(-7, 8).to_f64() + 0.875).abs() < 1e-15);
        assert_eq!(Ratio::zero().to_f64(), 0.0);
        // Large numerator and denominator.
        let big =
            Ratio::from_biguint_ratio(BigUint::from_u64(3).pow(60), BigUint::from_u64(2).pow(90));
        let expect = 3f64.powi(60) / 2f64.powi(90);
        assert!((big.to_f64() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn field_laws_spot_checks() {
        let a = r(3, 7);
        let b = r(-2, 5);
        let c = r(11, 4);
        // Associativity and distributivity on a few values.
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        // Inverses.
        assert_eq!(a.sub(&a), Ratio::zero());
        assert_eq!(a.div(&a), Ratio::one());
    }

    #[test]
    fn is_integer() {
        assert!(r(4, 2).is_integer());
        assert!(!r(5, 2).is_integer());
        assert!(Ratio::zero().is_integer());
    }
}
