//! Property-based tests for the from-scratch bignum/rational arithmetic:
//! the algebraic laws that every downstream paper formula silently
//! depends on.

use meshsort_exact::binomial::{assignment_prob, binomial};
use meshsort_exact::{BigInt, BigUint, Ratio};
use proptest::prelude::*;

fn big(v: u128) -> BigUint {
    BigUint::from_u128(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- BigUint vs u128 reference semantics ----

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(big(u128::from(a)).add(&big(u128::from(b))), big(u128::from(a) + u128::from(b)));
    }

    #[test]
    fn sub_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(big(u128::from(hi)).sub(&big(u128::from(lo))), big(u128::from(hi - lo)));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(big(u128::from(a)).mul(&big(u128::from(b))), big(u128::from(a) * u128::from(b)));
    }

    #[test]
    fn div_rem_reconstructs(a in any::<u128>(), b in 1u128..) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert!(r < big(b));
        prop_assert_eq!(q.mul(&big(b)).add(&r), big(a));
    }

    #[test]
    fn shifts_are_inverse(a in any::<u128>(), s in 0usize..100) {
        prop_assert_eq!(big(a).shl(s).shr(s), big(a));
    }

    #[test]
    fn gcd_properties(a in any::<u64>(), b in any::<u64>()) {
        let g = big(u128::from(a)).gcd(&big(u128::from(b)));
        // gcd divides both.
        if !g.is_zero() {
            prop_assert!(big(u128::from(a)).div_rem(&g).1.is_zero());
            prop_assert!(big(u128::from(b)).div_rem(&g).1.is_zero());
        }
        // Commutative, and matches the Euclidean reference.
        fn gcd_ref(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        prop_assert_eq!(g, big(u128::from(gcd_ref(a, b))));
    }

    #[test]
    fn ordering_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
    }

    #[test]
    fn display_round_trip_u128(a in any::<u128>()) {
        prop_assert_eq!(big(a).to_string(), a.to_string());
    }

    // ---- BigInt ring laws ----

    #[test]
    fn bigint_add_commutes(a in any::<i64>(), b in any::<i64>()) {
        let (x, y) = (BigInt::from_i64(a), BigInt::from_i64(b));
        prop_assert_eq!(x.add(&y), y.add(&x));
    }

    #[test]
    fn bigint_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let sum = BigInt::from_i64(a).add(&BigInt::from_i64(b));
        let expect = i128::from(a) + i128::from(b);
        prop_assert_eq!(sum.to_f64(), expect as f64);
        let prod = BigInt::from_i64(a).mul(&BigInt::from_i64(b));
        prop_assert_eq!(prod.is_negative(), i128::from(a) * i128::from(b) < 0);
    }

    // ---- Ratio field laws ----

    #[test]
    fn ratio_field_laws(
        (p1, q1) in (-1000i64..1000, 1i64..1000),
        (p2, q2) in (-1000i64..1000, 1i64..1000),
        (p3, q3) in (-1000i64..1000, 1i64..1000),
    ) {
        let a = Ratio::new_i64(p1, q1);
        let b = Ratio::new_i64(p2, q2);
        let c = Ratio::new_i64(p3, q3);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.sub(&a), Ratio::zero());
        if !a.is_zero() {
            prop_assert_eq!(a.div(&a), Ratio::one());
            prop_assert_eq!(b.div(&a).mul(&a), b);
        }
    }

    #[test]
    fn ratio_to_f64_close(p in -10_000i64..10_000, q in 1i64..10_000) {
        let r = Ratio::new_i64(p, q);
        let expect = p as f64 / q as f64;
        prop_assert!((r.to_f64() - expect).abs() <= 1e-12 * expect.abs().max(1.0));
    }

    #[test]
    fn ratio_ordering_consistent(
        (p1, q1) in (-100i64..100, 1i64..100),
        (p2, q2) in (-100i64..100, 1i64..100),
    ) {
        let a = Ratio::new_i64(p1, q1);
        let b = Ratio::new_i64(p2, q2);
        let lhs = i128::from(p1) * i128::from(q2);
        let rhs = i128::from(p2) * i128::from(q1);
        prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
    }

    // ---- Combinatorics ----

    #[test]
    fn binomial_symmetry_and_pascal(n in 1u64..40, k in 0u64..40) {
        let k = k.min(n);
        prop_assert_eq!(binomial(n, k), binomial(n, n - k));
        if k >= 1 {
            prop_assert_eq!(
                binomial(n, k),
                binomial(n - 1, k - 1).add(&binomial(n - 1, k))
            );
        }
    }

    #[test]
    fn assignment_prob_is_probability(
        total in 2u64..30,
        zeros_frac in 0u64..100,
        c in 1u64..6,
        z in 0u64..6,
    ) {
        let zeros = zeros_frac % (total + 1);
        let c = c.min(total);
        let p = assignment_prob(total, zeros, c, z);
        prop_assert!(!p.is_negative());
        prop_assert!(p <= Ratio::one());
    }

    #[test]
    fn assignment_prob_total_mass(total in 2u64..24, c in 1u64..5) {
        let zeros = total / 2;
        let c = c.min(total);
        let mut sum = Ratio::zero();
        for z in 0..=c {
            sum = sum.add(&assignment_prob(total, zeros, c, z).mul_biguint(&binomial(c, z)));
        }
        prop_assert_eq!(sum, Ratio::one());
    }
}
