//! E17 (extension) — Theorems 1, 6 and 9 are stated for a mesh with *any*
//! number `α` of zeros, not just the balanced `α = N/2` that Corollary 2
//! uses. Sweep the zero density and verify the structural bounds hold at
//! every `α`, and show how the measured sorting time varies with density
//! (peaking at the balanced point).

use crate::config::Config;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::AlgorithmId;
use meshsort_stats::{run_trials, RunningStats};
use meshsort_workloads::zero_one::random_zero_one_grid;
use meshsort_zeroone::bounds::{observe_snake1_bound, observe_theorem1};

struct SweepAgg {
    steps: RunningStats,
    violations: u64,
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E17",
        "Extension: Theorems 1/6 hold for every zero count alpha, with sorting time peaking at alpha = N/2",
        vec!["side", "alpha/N", "trials", "mean steps", "steps/N", "bound violations"],
    );
    let seeds = cfg.seeds_for("e17");
    let side = *cfg.even_sides().last().unwrap_or(&16).min(&24);
    let n_cells = side * side;
    let densities = [0.1f64, 0.25, 0.5, 0.75, 0.9];
    let trials = cfg.trials((600_000 / (n_cells * side)).max(32) as u64);
    let mut peak_density = 0.0f64;
    let mut peak_mean = -1.0f64;
    for &density in &densities {
        let zeros = ((n_cells as f64 * density) as usize).clamp(1, n_cells - 1);
        let agg = run_trials(
            seeds.derive(&format!("{density}")),
            trials,
            cfg.threads,
            || SweepAgg { steps: RunningStats::new(), violations: 0 },
            move |_i, rng, acc: &mut SweepAgg| {
                let cap = 32 * n_cells as u64 + 64;
                // Theorem 1 on R1.
                let mut g = random_zero_one_grid(side, zeros, rng);
                let obs = observe_theorem1(AlgorithmId::RowMajorRowFirst, &mut g, cap);
                if !obs.holds() {
                    acc.violations += 1;
                }
                acc.steps.push(obs.total_steps as f64);
                // Theorem 6 on S1.
                let mut g = random_zero_one_grid(side, zeros, rng);
                if !observe_snake1_bound(&mut g, cap).holds() {
                    acc.violations += 1;
                }
            },
            |a, b| {
                a.steps.merge(&b.steps);
                a.violations += b.violations;
            },
        );
        if agg.steps.mean() > peak_mean {
            peak_mean = agg.steps.mean();
            peak_density = density;
        }
        let verdict = if agg.violations == 0 { Verdict::Pass } else { Verdict::Fail };
        report.push_row(
            vec![
                side.to_string(),
                fnum(density),
                trials.to_string(),
                fnum(agg.steps.mean()),
                fnum(agg.steps.mean() / n_cells as f64),
                agg.violations.to_string(),
            ],
            verdict,
        );
    }
    let balanced_peak = (peak_density - 0.5).abs() < 0.26;
    report.note(format!(
        "R1 sorting time peaks at density {} (balanced-point peak {}): sparse or dense 0-1 inputs sort faster",
        fnum(peak_density),
        if balanced_peak { "confirmed" } else { "NOT confirmed" }
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert_eq!(report.overall(), Verdict::Pass, "{}", report.render());
    }

    #[test]
    fn extreme_densities_are_fast() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let side = 8;
        let cap = 32 * 64 + 64;
        // One zero sorts in O(sqrt N)-ish time, far below N/2.
        let mut sparse_total = 0u64;
        for _ in 0..20 {
            let mut g = random_zero_one_grid(side, 1, &mut rng);
            let obs = observe_theorem1(AlgorithmId::RowMajorRowFirst, &mut g, cap);
            sparse_total += obs.total_steps;
        }
        let mut balanced_total = 0u64;
        for _ in 0..20 {
            let mut g = random_zero_one_grid(side, 32, &mut rng);
            let obs = observe_theorem1(AlgorithmId::RowMajorRowFirst, &mut g, cap);
            balanced_total += obs.total_steps;
        }
        assert!(
            sparse_total < balanced_total,
            "sparse {sparse_total} should beat balanced {balanced_total}"
        );
    }
}
