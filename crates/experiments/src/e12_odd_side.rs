//! E12 — the appendix (`√N = 2n + 1`): Lemma 14's `E[Z₁(0)]`, the
//! Theorem 13 / Corollary 4 step bound, and the odd-side behaviour of the
//! snakelike algorithms.

use crate::config::Config;
use crate::harness::{sample_statistic, steps_on_random_permutations};
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::{schedule_for, AlgorithmId};
use meshsort_mesh::apply_plan;
use meshsort_stats::ci::{check_exact_value, check_lower_bound};
use meshsort_workloads::zero_one::random_balanced_zero_one_grid;
use meshsort_zeroone::snake_trackers::s1_tracker_value;

/// Measures the odd-side `Z₁(0)` (Definition 12) on one random grid with
/// the appendix's `2n² + 2n + 1` zeros.
pub fn sample_z10_odd(side: usize, rng: &mut rand::rngs::StdRng) -> f64 {
    debug_assert!(side % 2 == 1);
    let mut grid = random_balanced_zero_one_grid(side, rng);
    let schedule = schedule_for(AlgorithmId::SnakeAlternating, side).expect("all sides");
    apply_plan(&mut grid, schedule.plan_at(0));
    s1_tracker_value(&grid, 0) as f64
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E12",
        "Appendix: odd side sqrt(N) = 2n+1 — Lemma 14 E[Z1(0)] and Corollary 4 step bound",
        vec!["check", "side", "N", "trials", "measured", "exact/bound"],
    );
    let seeds = cfg.seeds_for("e12");
    let trials = cfg.trials(20_000);
    for side in cfg.odd_sides() {
        let n = ((side - 1) / 2) as u64;
        let stats =
            sample_statistic(trials, seeds.derive(&format!("z10-{side}")), cfg.threads, |rng| {
                sample_z10_odd(side, rng)
            });
        let exact = meshsort_exact::paper::s1_expected_z10_odd(n).to_f64();
        let verdict = Verdict::from_bound_check(check_exact_value(&stats, exact, 3.29));
        report.push_row(
            vec![
                "Lemma 14 E[Z1(0)]".to_string(),
                side.to_string(),
                (side * side).to_string(),
                trials.to_string(),
                fnum(stats.mean()),
                fnum(exact),
            ],
            verdict,
        );
    }
    for side in cfg.odd_sides() {
        let n = ((side - 1) / 2) as u64;
        let n_cells = side * side;
        let base = (2_000_000 / (n_cells * side)).max(24) as u64;
        let step_trials = cfg.trials(base);
        let stats = steps_on_random_permutations(
            AlgorithmId::SnakeAlternating,
            side,
            step_trials,
            seeds.derive(&format!("steps-{side}")),
            cfg.threads,
        );
        let bound = meshsort_exact::paper::corollary4_lower_bound(n).to_f64();
        let verdict = Verdict::from_bound_check(check_lower_bound(&stats, bound, 2.576));
        report.push_row(
            vec![
                "Corollary 4 steps".to_string(),
                side.to_string(),
                n_cells.to_string(),
                step_trials.to_string(),
                fnum(stats.mean()),
                fnum(bound),
            ],
            verdict,
        );
    }
    report.note("odd-side A^01 uses 2n^2+2n+1 zeros (the appendix's redefinition)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn odd_sample_uses_majority_zeros() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        // Side 5: α = 13 of 25 cells. Z1(0) can be at most 13.
        for _ in 0..50 {
            let z = sample_z10_odd(5, &mut rng);
            assert!((0.0..=13.0).contains(&z));
        }
    }
}
