//! E13 — the structural lemmas as live invariants: Lemmas 1–3 (zero/one
//! travel under the row-major cycles), Lemmas 5–8 and 10 (snake tracker
//! monotonicity), and Theorems 1/6/9 (predicted-vs-actual remaining
//! steps), checked over random ensembles.

use crate::config::Config;
use crate::report::{ExperimentReport, Verdict};
use meshsort_core::AlgorithmId;
use meshsort_stats::{run_trials, SeedSequence};
use meshsort_workloads::zero_one::random_balanced_zero_one_grid;
use meshsort_zeroone::bounds::{observe_snake1_bound, observe_snake2_bound, observe_theorem1};
use meshsort_zeroone::snake_trackers::trace_tracker;
use meshsort_zeroone::travel::check_r1_cycle;

#[derive(Default)]
struct Violations {
    travel: u64,
    tracker: u64,
    bound: u64,
    trials: u64,
}

fn check_side(side: usize, trials: u64, seeds: SeedSequence, threads: usize) -> Violations {
    run_trials(
        seeds,
        trials,
        threads,
        Violations::default,
        move |_i, rng, acc: &mut Violations| {
            acc.trials += 1;
            let cap = 32 * (side * side) as u64 + 64;
            if side % 2 == 0 {
                // Lemmas 1–3 on both row-major algorithms.
                for alg in AlgorithmId::ROW_MAJOR {
                    let mut g = random_balanced_zero_one_grid(side, rng);
                    if check_r1_cycle(alg, &mut g, cap).is_err() {
                        acc.travel += 1;
                    }
                }
                // Theorem 1 bound.
                let mut g = random_balanced_zero_one_grid(side, rng);
                if !observe_theorem1(AlgorithmId::RowMajorRowFirst, &mut g, cap).holds() {
                    acc.bound += 1;
                }
            }
            // Lemmas 5–8 (S1) on all sides; the Y-tracker of Lemma 10
            // (S2) and Theorem 9 are stated for even sides — the appendix
            // analyses S2 on odd sides through the Z-trackers instead.
            let mut g = random_balanced_zero_one_grid(side, rng);
            let trace = trace_tracker(AlgorithmId::SnakeAlternating, &mut g, cap);
            if !trace.sorted || trace.verify_s1_lemmas().is_err() {
                acc.tracker += 1;
            }
            if side % 2 == 0 {
                let mut g = random_balanced_zero_one_grid(side, rng);
                let trace = trace_tracker(AlgorithmId::SnakeStaggeredCols, &mut g, cap);
                if !trace.sorted || trace.verify_s2_lemmas().is_err() {
                    acc.tracker += 1;
                }
                let mut g = random_balanced_zero_one_grid(side, rng);
                if !observe_snake2_bound(&mut g, cap).holds() {
                    acc.bound += 1;
                }
            }
            // Theorem 6 (even) / Theorem 13 (odd) via the S1 tracker.
            let mut g = random_balanced_zero_one_grid(side, rng);
            if !observe_snake1_bound(&mut g, cap).holds() {
                acc.bound += 1;
            }
        },
        |a, b| {
            a.travel += b.travel;
            a.tracker += b.tracker;
            a.bound += b.bound;
            a.trials += b.trials;
        },
    )
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E13",
        "Lemmas 1-3, 5-8, 10 and Theorems 1/6/9/13 as live invariants over random 0-1 ensembles",
        vec!["side", "trials", "travel violations", "tracker violations", "bound violations"],
    );
    let seeds = cfg.seeds_for("e13");
    let mut sides = cfg.even_sides();
    sides.extend(cfg.odd_sides().into_iter().take(2));
    for side in sides {
        let base = (400_000 / (side * side * side)).max(8) as u64;
        let trials = cfg.trials(base);
        let v = check_side(side, trials, seeds.derive(&side.to_string()), cfg.threads);
        let verdict =
            if v.travel + v.tracker + v.bound == 0 { Verdict::Pass } else { Verdict::Fail };
        report.push_row(
            vec![
                side.to_string(),
                v.trials.to_string(),
                v.travel.to_string(),
                v.tracker.to_string(),
                v.bound.to_string(),
            ],
            verdict,
        );
    }
    report.note("the unit suites additionally verify all of these exhaustively over every 0-1 matrix on the 4x4 mesh");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_no_violations() {
        let report = run(&Config::quick());
        assert_eq!(report.overall(), Verdict::Pass, "{}", report.render());
    }
}
