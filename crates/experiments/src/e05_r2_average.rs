//! E05 — Theorem 4's step bound: the average number of steps R2 (the
//! column-first algorithm) needs is at least `3N/8 − 2√N`.

use crate::config::Config;
use crate::harness::steps_on_random_permutations;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::AlgorithmId;
use meshsort_stats::ci::check_lower_bound;

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E05",
        "Theorem 4: R2 mean steps on random permutations >= 3N/8 - 2*sqrt(N)",
        vec![
            "side",
            "N",
            "trials",
            "mean steps",
            "bound 4nE[M]",
            "headline 3N/8-2sqrt(N)",
            "mean/N",
        ],
    );
    let seeds = cfg.seeds_for("e05");
    for side in cfg.even_sides() {
        let n_cells = side * side;
        let base = (2_000_000 / (n_cells * side)).max(24) as u64;
        let trials = cfg.trials(base);
        let stats = steps_on_random_permutations(
            AlgorithmId::RowMajorColFirst,
            side,
            trials,
            seeds.derive(&side.to_string()),
            cfg.threads,
        );
        let n = (side / 2) as u64;
        let bound = meshsort_exact::paper::thm4_lower_bound(n).to_f64();
        let headline = meshsort_exact::paper::thm4_headline(n).to_f64();
        let verdict = Verdict::from_bound_check(check_lower_bound(&stats, bound, 2.576));
        report.push_row(
            vec![
                side.to_string(),
                n_cells.to_string(),
                trials.to_string(),
                fnum(stats.mean()),
                fnum(bound),
                fnum(headline),
                fnum(stats.mean() / n_cells as f64),
            ],
            verdict,
        );
    }
    report.note("R2's proven constant (3/8) is weaker than R1's (1/2); measured means for both sit near or above N/2");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert_eq!(report.overall(), Verdict::Pass, "{}", report.render());
    }
}
