//! Shared Monte-Carlo measurement drivers used by the experiments.

use meshsort_core::{runner, AlgorithmId, Budget, SortJob};
use meshsort_mesh::Grid;
use meshsort_stats::{run_trials, RunningStats, SeedSequence};
use meshsort_workloads::permutation::random_permutation_grid;
use rand::rngs::StdRng;

/// How many trials the steps driver sorts per lockstep batch. Wide enough
/// that the SoA inner loops vectorize and the compiled plan amortizes;
/// small enough that modest trial counts still spread across workers.
const STEPS_BATCH_WIDTH: u64 = 64;

/// Distribution of steps-to-sort for `algorithm` on uniformly random
/// permutations of a `side × side` mesh.
///
/// Trials run through the batched lockstep engine
/// ([`SortJob::run_batch`]), `STEPS_BATCH_WIDTH` grids per batch. Each
/// trial still draws its grid from its own [`SeedSequence::rng_for`]
/// stream and each per-trial step count is bit-identical to a standalone
/// [`SortJob::run`], so results match the unbatched driver for any thread
/// count; batches are sorted serially inside their worker — parallelism
/// lives only in the [`run_trials`] layer.
pub fn steps_on_random_permutations(
    algorithm: AlgorithmId,
    side: usize,
    trials: u64,
    seeds: SeedSequence,
    threads: usize,
) -> RunningStats {
    let cap = runner::default_step_cap(side);
    run_trials(
        seeds,
        trials.div_ceil(STEPS_BATCH_WIDTH),
        threads,
        RunningStats::new,
        move |batch, _rng, acc: &mut RunningStats| {
            let lo = batch * STEPS_BATCH_WIDTH;
            let hi = (lo + STEPS_BATCH_WIDTH).min(trials);
            let mut grids: Vec<Grid<u32>> =
                (lo..hi).map(|i| random_permutation_grid(side, &mut seeds.rng_for(i))).collect();
            let width = grids.len().max(1);
            let runs = SortJob::new(algorithm, side)
                .budget(Budget::Steps(cap))
                .threads(1)
                .shard_width(width)
                .run_batch(&mut grids)
                .expect("algorithm supports this side");
            for run in runs {
                assert!(run.sorted(), "{algorithm} failed to sort within the cap");
                acc.push(run.steps as f64);
            }
        },
        |a, b| a.merge(&b),
    )
}

/// Monte-Carlo estimate of an arbitrary per-trial statistic.
pub fn sample_statistic(
    trials: u64,
    seeds: SeedSequence,
    threads: usize,
    f: impl Fn(&mut StdRng) -> f64 + Sync,
) -> RunningStats {
    run_trials(
        seeds,
        trials,
        threads,
        RunningStats::new,
        move |_i, rng, acc: &mut RunningStats| acc.push(f(rng)),
        |a, b| a.merge(&b),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_driver_smoke() {
        let seeds = SeedSequence::new(7);
        let s = steps_on_random_permutations(AlgorithmId::SnakeAlternating, 6, 16, seeds, 2);
        assert_eq!(s.count(), 16);
        // Θ(N) regime: a 6×6 random permutation needs more than √N steps.
        assert!(s.mean() > 6.0, "{}", s.mean());
        assert!(s.max() <= runner::default_step_cap(6) as f64);
    }

    #[test]
    fn steps_driver_deterministic() {
        let seeds = SeedSequence::new(9);
        let a = steps_on_random_permutations(AlgorithmId::RowMajorRowFirst, 4, 32, seeds, 1);
        let b = steps_on_random_permutations(AlgorithmId::RowMajorRowFirst, 4, 32, seeds, 4);
        assert_eq!(a.count(), b.count());
        assert!((a.mean() - b.mean()).abs() < 1e-12);
    }

    #[test]
    fn sample_statistic_smoke() {
        use rand::Rng;
        let s =
            sample_statistic(100, SeedSequence::new(1), 4, |rng| rng.random_range(0..10) as f64);
        assert_eq!(s.count(), 100);
        assert!(s.mean() > 2.0 && s.mean() < 7.0);
    }
}
