//! The experiment registry: ids, titles, and dispatch.

use crate::config::Config;
use crate::report::{ExperimentReport, Verdict};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One registered experiment.
pub struct Experiment {
    /// Lowercase id (`"e01"` …).
    pub id: &'static str,
    /// The paper statement it reproduces.
    pub title: &'static str,
    /// Runner.
    pub run: fn(&Config) -> ExperimentReport,
}

/// All experiments in id order (the index in DESIGN.md §4).
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment { id: "e01", title: "Lemma 4 (R1 E[Z1])", run: crate::e01_lemma4::run },
        Experiment { id: "e02", title: "Theorem 3 (R1 Var Z1)", run: crate::e02_var_z1::run },
        Experiment { id: "e03", title: "Theorems 4/5 (R2 blocks)", run: crate::e03_blocks::run },
        Experiment { id: "e04", title: "Theorem 2 (R1 average)", run: crate::e04_r1_average::run },
        Experiment { id: "e05", title: "Theorem 4 (R2 average)", run: crate::e05_r2_average::run },
        Experiment {
            id: "e06",
            title: "Theorems 3/5/8/11 (concentration)",
            run: crate::e06_concentration::run,
        },
        Experiment { id: "e07", title: "Lemma 9 (S1 E[Z1(0)])", run: crate::e07_lemma9::run },
        Experiment {
            id: "e08",
            title: "Theorem 8 (S1 Var Z1(0), erratum)",
            run: crate::e08_var_z10::run,
        },
        Experiment {
            id: "e09",
            title: "Theorems 7/10 + Lemma 11 (snake averages)",
            run: crate::e09_snake_average::run,
        },
        Experiment {
            id: "e10",
            title: "Theorem 12 + Lemmas 12/13 (S3 min path)",
            run: crate::e10_s3_minpath::run,
        },
        Experiment {
            id: "e11",
            title: "Corollary 1 (worst case)",
            run: crate::e11_worst_case::run,
        },
        Experiment {
            id: "e12",
            title: "Appendix (odd side: Lemma 14, Corollary 4)",
            run: crate::e12_odd_side::run,
        },
        Experiment {
            id: "e13",
            title: "Lemmas 1-3/5-8/10, Theorems 1/6/9/13 (invariants)",
            run: crate::e13_invariants::run,
        },
        Experiment { id: "e14", title: "Baseline (vs Shearsort)", run: crate::e14_baseline::run },
        Experiment { id: "e15", title: "Intro (1D averages)", run: crate::e15_linear::run },
        Experiment {
            id: "e16",
            title: "Extension: wrap-around necessity",
            run: crate::e16_wrap_ablation::run,
        },
        Experiment {
            id: "e17",
            title: "Extension: alpha-sweep of Theorems 1/6",
            run: crate::e17_alpha_sweep::run,
        },
        Experiment {
            id: "e18",
            title: "Extension: min-walk Theta(sqrt(N)) vs Theta(N)",
            run: crate::e18_min_walk_others::run,
        },
        Experiment {
            id: "e19",
            title: "Extension: E[M] exactly (Corollary 2's statistic)",
            run: crate::e19_m_statistic::run,
        },
        Experiment {
            id: "e20",
            title: "Extension: column-sort ablation (chain vs R1)",
            run: crate::e20_column_ablation::run,
        },
        Experiment {
            id: "e21",
            title: "Extension: fault-injection degradation",
            run: crate::e21_fault_degradation::run,
        },
        Experiment {
            id: "e22",
            title: "Extension: service degradation under network chaos",
            run: crate::e22_service_degradation::run,
        },
    ]
}

/// Runs one experiment with panic isolation: a panicking experiment is
/// converted into a [`Verdict::Fail`] report carrying the panic message,
/// so one broken experiment can never abort an `all` sweep.
pub fn run_isolated(e: &Experiment, cfg: &Config) -> ExperimentReport {
    catch_unwind(AssertUnwindSafe(|| (e.run)(cfg))).unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut report = ExperimentReport::new(&e.id.to_ascii_uppercase(), e.title, vec!["panic"]);
        report.push_row(vec![msg], Verdict::Fail);
        report.note("experiment panicked; remaining experiments were unaffected");
        report
    })
}

/// Runs one experiment by id (case-insensitive), or `None` for an
/// unknown id. Panics inside the experiment are isolated via
/// [`run_isolated`].
pub fn run_by_id(id: &str, cfg: &Config) -> Option<ExperimentReport> {
    let id = id.to_ascii_lowercase();
    all_experiments().into_iter().find(|e| e.id == id).map(|e| run_isolated(&e, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_experiments_with_unique_ids() {
        let all = all_experiments();
        assert_eq!(all.len(), 22);
        let mut ids: Vec<&str> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 22);
    }

    fn panicking_experiment(_cfg: &Config) -> ExperimentReport {
        panic!("boom: synthetic failure");
    }

    #[test]
    fn run_isolated_converts_panics_to_fail_reports() {
        let e = Experiment { id: "e98", title: "synthetic panic", run: panicking_experiment };
        let report = run_isolated(&e, &Config::quick());
        assert_eq!(report.id, "E98");
        assert_eq!(report.overall(), Verdict::Fail);
        assert!(report.rows[0][0].contains("boom: synthetic failure"), "{:?}", report.rows);
    }

    #[test]
    fn run_isolated_passes_reports_through() {
        let all = all_experiments();
        let e01 = all.iter().find(|e| e.id == "e01").unwrap();
        let report = run_isolated(e01, &Config::quick());
        assert_eq!(report.id, "E01");
        assert!(!report.rows.is_empty());
    }

    #[test]
    fn run_by_id_dispatches() {
        let cfg = Config::quick();
        let r = run_by_id("E01", &cfg).unwrap();
        assert_eq!(r.id, "E01");
        assert!(run_by_id("e99", &cfg).is_none());
    }
}
