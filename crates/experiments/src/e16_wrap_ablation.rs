//! E16 (extension) — the paper's §1 justification for the wrap-around
//! wires, executed: without them, the row-major cycle converges to a
//! "rows and columns all ascending" fixed point that is almost never the
//! row-major order. The paper's specific stuck input (smallest `2n`
//! values in one column) is one witness; random permutations show the
//! failure is generic.

use crate::config::Config;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::variants::{
    probe_convergence, row_first_no_wrap_schedule, wrap_is_necessary_witness, Convergence,
};
use meshsort_core::{AlgorithmId, SortJob};
use meshsort_mesh::TargetOrder;
use meshsort_stats::run_trials;
use meshsort_workloads::permutation::random_permutation_grid;

struct WrapAgg {
    stuck: u64,
    sorted: u64,
    cap_exceeded: u64,
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E16",
        "Extension: without wrap-around wires the row-major cycle converges unsorted (paper S1 claim)",
        vec!["side", "input", "trials", "stuck unsorted", "sorted", "witness check"],
    );
    let seeds = cfg.seeds_for("e16");
    for side in cfg.even_sides() {
        // The paper's witness: deterministic.
        let schedule = row_first_no_wrap_schedule(side).expect("even side");
        let mut witness = wrap_is_necessary_witness(side);
        let witness_result = probe_convergence(
            &schedule,
            &mut witness,
            TargetOrder::RowMajor,
            8 * (side * side) as u64,
        );
        let witness_stuck = matches!(witness_result, Convergence::StuckUnsorted(_));
        // And the wrap-equipped algorithm must rescue the same input.
        let mut rescued = wrap_is_necessary_witness(side);
        let rescue = SortJob::new(AlgorithmId::RowMajorRowFirst, side).run(&mut rescued).unwrap();

        // Random permutations through the no-wrap cycle.
        let trials = cfg.trials((400_000 / (side * side * side)).max(16) as u64);
        let agg = run_trials(
            seeds.derive(&side.to_string()),
            trials,
            cfg.threads,
            || WrapAgg { stuck: 0, sorted: 0, cap_exceeded: 0 },
            move |_i, rng, acc: &mut WrapAgg| {
                let schedule = row_first_no_wrap_schedule(side).expect("even side");
                let mut grid = random_permutation_grid(side, rng);
                match probe_convergence(
                    &schedule,
                    &mut grid,
                    TargetOrder::RowMajor,
                    8 * (side * side) as u64,
                ) {
                    Convergence::StuckUnsorted(_) => acc.stuck += 1,
                    Convergence::Sorted(_) => acc.sorted += 1,
                    Convergence::CapExceeded => acc.cap_exceeded += 1,
                }
            },
            |a, b| {
                a.stuck += b.stuck;
                a.sorted += b.sorted;
                a.cap_exceeded += b.cap_exceeded;
            },
        );
        let verdict = if witness_stuck && rescue.sorted() && agg.cap_exceeded == 0 {
            // The claim: the witness sticks; generically, most inputs stick.
            if agg.stuck >= agg.sorted {
                Verdict::Pass
            } else {
                Verdict::Marginal
            }
        } else {
            Verdict::Fail
        };
        report.push_row(
            vec![
                side.to_string(),
                "random permutations".to_string(),
                trials.to_string(),
                format!("{} ({})", agg.stuck, fnum(agg.stuck as f64 / trials as f64)),
                agg.sorted.to_string(),
                if witness_stuck {
                    "stuck (as predicted)".to_string()
                } else {
                    "SORTED?!".to_string()
                },
            ],
            verdict,
        );
    }
    report.note("fixed points of the no-wrap cycle have every row and column ascending (Young-tableau-like), which is row-major order only for exceptional inputs");
    report.note(
        "the wrap-equipped R1 sorts the paper's witness input in Θ(N) steps (Corollary 1 regime)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }
}
