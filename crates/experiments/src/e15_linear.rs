//! E15 — the introduction's 1D results: the odd-even transposition sort
//! on an `N`-cell linear array averages at least `(N−1)/2` steps and in
//! fact `N − O(√N)` on a random permutation.

use crate::config::Config;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_linear::array::SortDirection;
use meshsort_linear::oddeven::run_until_sorted;
use meshsort_linear::theory::{
    exact_average_steps, refined_average_lower_bound, simple_average_lower_bound,
};
use meshsort_stats::ci::check_lower_bound;
use meshsort_stats::{run_trials, RunningStats};
use meshsort_workloads::permutation::random_permutation;

fn linear_stats(
    n: usize,
    trials: u64,
    seeds: meshsort_stats::SeedSequence,
    threads: usize,
) -> RunningStats {
    run_trials(
        seeds,
        trials,
        threads,
        RunningStats::new,
        move |_i, rng, acc: &mut RunningStats| {
            let mut v = random_permutation(n, rng);
            let run = run_until_sorted(&mut v, SortDirection::Forward, 2 * n as u64 + 2);
            assert!(run.sorted);
            acc.push(run.steps as f64);
        },
        |a, b| a.merge(&b),
    )
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E15",
        "Intro (1D): odd-even transposition sort averages >= (N-1)/2 and approaches N - O(sqrt(N))",
        vec!["N", "trials", "mean steps", "(N-1)/2", "N-2sqrt(N)", "mean/N"],
    );
    let seeds = cfg.seeds_for("e15");
    let sizes: Vec<usize> = [64usize, 256, 1024, 4096]
        .into_iter()
        .filter(|&n| n <= cfg.max_side * cfg.max_side)
        .collect();
    for n in sizes {
        let base = (40_000_000 / (n * n)).max(32) as u64;
        let trials = cfg.trials(base);
        let stats = linear_stats(n, trials, seeds.derive(&n.to_string()), cfg.threads);
        let simple = simple_average_lower_bound(n);
        let refined = refined_average_lower_bound(n, 2.0);
        let verdict = Verdict::from_bound_check(check_lower_bound(&stats, simple, 2.576));
        // The refined bound should hold too at these sizes.
        let verdict = if verdict == Verdict::Pass && stats.mean() < refined {
            Verdict::Marginal
        } else {
            verdict
        };
        report.push_row(
            vec![
                n.to_string(),
                trials.to_string(),
                fnum(stats.mean()),
                fnum(simple),
                fnum(refined),
                fnum(stats.mean() / n as f64),
            ],
            verdict,
        );
    }
    // Exact tiny-N ground truth for the Monte-Carlo pipeline.
    for n in [4usize, 6, 8] {
        let exact = exact_average_steps(n);
        let stats =
            linear_stats(n, cfg.trials(20_000), seeds.derive(&format!("exact-{n}")), cfg.threads);
        let err = (stats.mean() - exact).abs();
        let verdict =
            if err < 5.0 * stats.std_error().max(1e-9) { Verdict::Pass } else { Verdict::Fail };
        report.push_row(
            vec![
                n.to_string(),
                stats.count().to_string(),
                fnum(stats.mean()),
                fnum(exact),
                "exact enumeration".to_string(),
                fnum(stats.mean() / n as f64),
            ],
            verdict,
        );
    }
    report.note("mean/N climbing toward 1 with N is the 'average ≈ worst case' phenomenon the paper generalizes to 2D");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn mean_ratio_grows() {
        let seeds = meshsort_stats::SeedSequence::new(5);
        let small = linear_stats(16, 400, seeds.derive("a"), 4);
        let large = linear_stats(256, 100, seeds.derive("b"), 4);
        assert!(large.mean() / 256.0 > small.mean() / 16.0);
    }
}
