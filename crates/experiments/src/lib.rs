//! # meshsort-experiments — the reproduction harness
//!
//! The paper contains no empirical tables or figures (it is a theory
//! paper), so the reproduction target is its *results*: every theorem,
//! lemma and corollary becomes one experiment that measures the relevant
//! quantity on this workspace's implementation and compares it with the
//! exact value or bound from `meshsort-exact`. The experiment ids E01–E15
//! are indexed in DESIGN.md §4; EXPERIMENTS.md records the
//! paper-vs-measured outcomes.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p meshsort-experiments --release -- all
//! ```
//!
//! or a single experiment (`e01` … `e15`), with `--quick` for a fast
//! smoke pass, `--seed <u64>` for a different random stream, and
//! `--json <path>` to dump machine-readable reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod harness;
pub mod registry;
pub mod report;

pub mod e01_lemma4;
pub mod e02_var_z1;
pub mod e03_blocks;
pub mod e04_r1_average;
pub mod e05_r2_average;
pub mod e06_concentration;
pub mod e07_lemma9;
pub mod e08_var_z10;
pub mod e09_snake_average;
pub mod e10_s3_minpath;
pub mod e11_worst_case;
pub mod e12_odd_side;
pub mod e13_invariants;
pub mod e14_baseline;
pub mod e15_linear;
pub mod e16_wrap_ablation;
pub mod e17_alpha_sweep;
pub mod e18_min_walk_others;
pub mod e19_m_statistic;
pub mod e20_column_ablation;
pub mod e21_fault_degradation;
pub mod e22_service_degradation;

pub use config::Config;
pub use registry::{all_experiments, run_by_id, run_isolated};
pub use report::{ExperimentReport, Verdict};
