//! E03 — Theorem 4/5 block statistics for R2 (the column-first row-major
//! algorithm): after the first column sort and row sort, the per-block
//! distribution of column-1 zeros and the resulting `E[Z₁]`, `Var(Z₁)`.

use crate::config::Config;
use crate::harness::sample_statistic;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::{schedule_for, AlgorithmId};
use meshsort_mesh::apply_plan;
use meshsort_stats::ci::check_exact_value;
use meshsort_workloads::zero_one::random_balanced_zero_one_grid;

/// Measures `Z₁` (zeros in column 1) after R2's first two steps (column
/// sort then row sort) on one random balanced grid.
pub fn sample_z1_col_first(side: usize, rng: &mut rand::rngs::StdRng) -> f64 {
    let mut grid = random_balanced_zero_one_grid(side, rng);
    let schedule = schedule_for(AlgorithmId::RowMajorColFirst, side).expect("even side");
    apply_plan(&mut grid, schedule.plan_at(0)); // column odd sort
    apply_plan(&mut grid, schedule.plan_at(1)); // row odd sort
    grid.column(0).filter(|&&v| v == 0).count() as f64
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E03",
        "Theorem 4/5: E[Z1] and Var(Z1) after R2's first column+row sort",
        vec!["n", "side", "trials", "measured E[Z1]", "exact E[Z1]", "sample Var", "exact Var"],
    );
    let seeds = cfg.seeds_for("e03");
    let trials = cfg.trials(20_000);
    for side in cfg.even_sides() {
        let n = (side / 2) as u64;
        let stats = sample_statistic(trials, seeds.derive(&side.to_string()), cfg.threads, |rng| {
            sample_z1_col_first(side, rng)
        });
        let exact_mean = meshsort_exact::paper::r2_expected_z1(n).to_f64();
        let exact_var = meshsort_exact::paper::r2_var_z1(n).to_f64();
        let verdict = Verdict::from_bound_check(check_exact_value(&stats, exact_mean, 3.29));
        report.push_row(
            vec![
                n.to_string(),
                side.to_string(),
                trials.to_string(),
                fnum(stats.mean()),
                fnum(exact_mean),
                fnum(stats.variance()),
                fnum(exact_var),
            ],
            verdict,
        );
    }
    report.note("block distribution P(z1 = 0,1,2) derived by simulating all 16 block patterns (paper's Theorem 4 mapping)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn col_first_z1_mean_is_around_11_16() {
        // E[Z1]/side → (11/8)/2 = 0.6875 — *below* the row-first 0.75:
        // the column pre-sort evens out the odd columns.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let side = 16;
        let mean: f64 = (0..400).map(|_| sample_z1_col_first(side, &mut rng)).sum::<f64>() / 400.0;
        assert!(mean > 0.65 * side as f64, "{mean}");
        assert!(mean < 0.73 * side as f64, "{mean}");
    }
}
