//! E06 — the "high probability" theorems (3, 5, 8, 11): for each
//! algorithm and each `γ` below its constant (½ for R1/S1/S2, ⅜ for R2),
//! the empirical probability that a random permutation sorts in fewer
//! than `γN` steps must shrink as `N` grows.

use crate::config::Config;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::{AlgorithmId, SortJob};
use meshsort_stats::tail::TailEstimator;
use meshsort_stats::{run_trials, SeedSequence};
use meshsort_workloads::permutation::random_permutation_grid;

/// The constant `c` for which each algorithm's concentration theorem
/// covers all `γ < c`.
pub fn concentration_constant(algorithm: AlgorithmId) -> f64 {
    match algorithm {
        AlgorithmId::RowMajorColFirst => 3.0 / 8.0,
        _ => 0.5,
    }
}

fn tails_for(
    algorithm: AlgorithmId,
    side: usize,
    gammas: &[f64],
    trials: u64,
    seeds: SeedSequence,
    threads: usize,
) -> TailEstimator {
    let n_cells = side * side;
    run_trials(
        seeds,
        trials,
        threads,
        || TailEstimator::for_gammas(gammas, n_cells),
        move |_i, rng, acc: &mut TailEstimator| {
            let mut grid = random_permutation_grid(side, rng);
            let run = SortJob::new(algorithm, side).run(&mut grid).expect("side supported");
            acc.push(run.steps as f64);
        },
        |a, b| a.merge(&b),
    )
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E06",
        "Theorems 3/5/8/11: P[steps < gamma*N] vanishes for gamma below each constant",
        vec!["algorithm", "gamma", "c", "side", "N", "trials", "P[steps < gamma*N]"],
    );
    let seeds = cfg.seeds_for("e06");
    let algorithms = [
        AlgorithmId::RowMajorRowFirst,
        AlgorithmId::RowMajorColFirst,
        AlgorithmId::SnakeAlternating,
        AlgorithmId::SnakeStaggeredCols,
    ];
    let sides: Vec<usize> = cfg.even_sides().into_iter().take(3).collect();
    for algorithm in algorithms {
        let c = concentration_constant(algorithm);
        // Probe γ at 60% and 90% of the constant.
        let gammas = [0.6 * c, 0.9 * c];
        for &side in &sides {
            let n_cells = side * side;
            let base = (1_500_000 / (n_cells * side)).max(24) as u64;
            let trials = cfg.trials(base);
            let tails = tails_for(
                algorithm,
                side,
                &gammas,
                trials,
                seeds.derive(&format!("{algorithm}-{side}")),
                cfg.threads,
            );
            for (gi, &gamma) in gammas.iter().enumerate() {
                let p = tails.estimate(gi);
                // The theorems are asymptotic; at these finite sizes we
                // require the empirical tail to be small, and the tests
                // separately require decay across sides.
                let verdict = if p <= 0.05 {
                    Verdict::Pass
                } else if p <= 0.25 {
                    Verdict::Marginal
                } else {
                    Verdict::Fail
                };
                report.push_row(
                    vec![
                        algorithm.to_string(),
                        fnum(gamma),
                        fnum(c),
                        side.to_string(),
                        n_cells.to_string(),
                        trials.to_string(),
                        fnum(p),
                    ],
                    verdict,
                );
            }
        }
    }
    report.note(
        "constants: 1/2 for R1 (Thm 3), 3/8 for R2 (Thm 5), 1/2 for S1 (Thm 8) and S2 (Thm 11)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(concentration_constant(AlgorithmId::RowMajorRowFirst), 0.5);
        assert_eq!(concentration_constant(AlgorithmId::RowMajorColFirst), 0.375);
        assert_eq!(concentration_constant(AlgorithmId::SnakeAlternating), 0.5);
    }

    #[test]
    fn quick_run_acceptable() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn tail_at_small_gamma_is_zero_for_moderate_mesh() {
        // P[steps < 0.25·N] for R1 on a 16×16 mesh should be ~0: the mean
        // is near N/2 and the distribution concentrates.
        let tails =
            tails_for(AlgorithmId::RowMajorRowFirst, 16, &[0.25], 64, SeedSequence::new(5), 4);
        assert_eq!(tails.estimate(0), 0.0, "{:?}", tails.estimates());
    }
}
