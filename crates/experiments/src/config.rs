//! Experiment configuration.

use meshsort_stats::SeedSequence;
use serde::{Deserialize, Serialize};

/// Shared configuration for all experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Config {
    /// Root seed; every experiment derives its own independent stream
    /// from this and its id, so reports are reproducible bit-for-bit.
    pub seed: u64,
    /// Scale factor for trial counts (1.0 = the default full run).
    pub trial_scale: f64,
    /// Cap on mesh sides (quick/smoke runs use a small cap).
    pub max_side: usize,
    /// Worker threads for the Monte-Carlo executor.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 0x5A7A_1993, // "Savari 1993"
            trial_scale: 1.0,
            max_side: 64,
            threads: meshsort_stats::parallel::default_threads(),
        }
    }
}

impl Config {
    /// The full default configuration.
    pub fn full() -> Self {
        Self::default()
    }

    /// A configuration for fast smoke runs (unit tests, `--quick`).
    pub fn quick() -> Self {
        Config { trial_scale: 0.05, max_side: 16, ..Self::default() }
    }

    /// Scales a baseline trial count, with a floor of 8.
    pub fn trials(&self, base: u64) -> u64 {
        ((base as f64 * self.trial_scale) as u64).max(8)
    }

    /// The even sides to sweep, capped to `max_side`.
    pub fn even_sides(&self) -> Vec<usize> {
        [8usize, 16, 24, 32, 48, 64].into_iter().filter(|&s| s <= self.max_side).collect()
    }

    /// The odd sides to sweep (appendix experiments).
    pub fn odd_sides(&self) -> Vec<usize> {
        [5usize, 9, 15, 25, 33].into_iter().filter(|&s| s <= self.max_side).collect()
    }

    /// Seed stream for a named experiment.
    pub fn seeds_for(&self, experiment: &str) -> SeedSequence {
        SeedSequence::new(self.seed).derive(experiment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller() {
        let q = Config::quick();
        let f = Config::full();
        assert!(q.trial_scale < f.trial_scale);
        assert!(q.max_side < f.max_side);
    }

    #[test]
    fn trials_floor() {
        let q = Config::quick();
        assert!(q.trials(10) >= 8);
        assert_eq!(Config::full().trials(1000), 1000);
    }

    #[test]
    fn side_sweeps_respect_cap() {
        let q = Config::quick();
        assert!(q.even_sides().iter().all(|&s| s <= q.max_side));
        assert!(!q.even_sides().is_empty());
        assert!(q.odd_sides().iter().all(|&s| s <= q.max_side));
        assert!(!q.odd_sides().is_empty());
    }

    #[test]
    fn seed_streams_differ_by_experiment() {
        let c = Config::full();
        assert_ne!(c.seeds_for("e01").root(), c.seeds_for("e02").root());
        assert_eq!(c.seeds_for("e01").root(), c.seeds_for("e01").root());
    }
}
