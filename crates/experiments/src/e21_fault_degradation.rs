//! E21 (extension) — graceful degradation under deterministic fault
//! injection. The paper's machine is perfect; physical meshes drop
//! comparator exchanges. Sweep the transient misfire rate over all five
//! algorithms and report how convergence degrades: fraction of runs that
//! still sort within the Θ(N) step budget, mean steps when they do, and
//! residual disorder when they do not. Recovery scrubbing is disabled so
//! the rows show the *raw* damage; the resilient runner's scrub phase
//! (exercised by `meshsort chaos` and the mesh test suite) would
//! otherwise repair every transient-fault run. At rate 0 the resilient
//! runner must reproduce the fault-free engine's step counts exactly —
//! that identity is asserted per trial.

use crate::config::Config;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::{AlgorithmId, SortJob};
use meshsort_mesh::fault::RunOutcome;
use meshsort_mesh::{FaultSpec, ResilientPolicy};
use meshsort_stats::run_trials;
use meshsort_workloads::permutation::random_permutation_grid;

/// Transient drop rates swept per algorithm and side.
const RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.25];

#[derive(Clone, Copy, Default)]
struct DegradationStats {
    runs: u64,
    converged: u64,
    steps_sum: f64,
    residual_sum: f64,
    max_displacement: u64,
    integrity_violations: u64,
    identity_mismatches: u64,
}

impl DegradationStats {
    fn merge(&mut self, other: Self) {
        self.runs += other.runs;
        self.converged += other.converged;
        self.steps_sum += other.steps_sum;
        self.residual_sum += other.residual_sum;
        self.max_displacement = self.max_displacement.max(other.max_displacement);
        self.integrity_violations += other.integrity_violations;
        self.identity_mismatches += other.identity_mismatches;
    }

    fn mean_steps(&self) -> f64 {
        if self.converged == 0 {
            f64::NAN
        } else {
            self.steps_sum / self.converged as f64
        }
    }

    fn mean_residual(&self) -> f64 {
        let failed = self.runs - self.converged;
        if failed == 0 {
            0.0
        } else {
            self.residual_sum / failed as f64
        }
    }
}

fn degradation(
    algorithm: AlgorithmId,
    side: usize,
    rate: f64,
    trials: u64,
    seeds: meshsort_stats::SeedSequence,
    threads: usize,
) -> DegradationStats {
    let policy = ResilientPolicy::for_side(side).without_recovery();
    run_trials(
        seeds,
        trials,
        threads,
        DegradationStats::default,
        move |i, rng, acc: &mut DegradationStats| {
            let mut grid = random_permutation_grid(side, rng);
            let spec = FaultSpec::transient(seeds.subseed(i).wrapping_add(1), rate);
            let baseline_steps = if rate == 0.0 {
                let mut clone = grid.clone();
                Some(SortJob::new(algorithm, side).run(&mut clone).expect("supported side"))
            } else {
                None
            };
            let run = SortJob::new(algorithm, side)
                .fault_spec(spec)
                .resilient_policy(policy)
                .run(&mut grid)
                .expect("supported side");
            acc.runs += 1;
            match run.convergence {
                RunOutcome::Converged { steps } => {
                    acc.converged += 1;
                    acc.steps_sum += steps as f64;
                    if let Some(base) = baseline_steps {
                        if steps != base.steps
                            || run.swaps != base.swaps
                            || run.comparisons != base.comparisons
                        {
                            acc.identity_mismatches += 1;
                        }
                    }
                }
                RunOutcome::Degraded { residual_inversions, max_displacement } => {
                    acc.residual_sum += residual_inversions as f64;
                    acc.max_displacement = acc.max_displacement.max(max_displacement);
                }
                RunOutcome::BudgetExhausted { residual_inversions, .. } => {
                    acc.residual_sum += residual_inversions as f64;
                }
                RunOutcome::IntegrityViolation { .. } => acc.integrity_violations += 1,
            }
            if baseline_steps.is_some() && !run.convergence.converged() {
                acc.identity_mismatches += 1;
            }
        },
        DegradationStats::merge,
    )
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E21",
        "Extension: fault-rate degradation — convergence of all five algorithms under \
         deterministic comparator misfires",
        vec![
            "algorithm",
            "side",
            "drop rate",
            "trials",
            "converged",
            "mean steps",
            "mean residual inv",
            "max disp",
        ],
    );
    let seeds = cfg.seeds_for("e21");
    let sides: Vec<usize> = cfg.even_sides().into_iter().take(2).collect();
    for a in AlgorithmId::ALL {
        for &side in &sides {
            let n_cells = side * side;
            let base = (400_000 / (n_cells * side)).max(16) as u64;
            let trials = cfg.trials(base);
            for rate in RATES {
                let label = format!("{}-{side}-{rate}", a.name());
                let stats = degradation(a, side, rate, trials, seeds.derive(&label), cfg.threads);
                // Rate 0 must be indistinguishable from the fault-free
                // engine; at positive rates the only hard failure is an
                // integrity violation (value loss — an engine bug, not a
                // legal fault effect).
                let verdict = if stats.integrity_violations > 0 || stats.identity_mismatches > 0 {
                    Verdict::Fail
                } else {
                    Verdict::Pass
                };
                report.push_row(
                    vec![
                        a.name().to_string(),
                        side.to_string(),
                        fnum(rate),
                        stats.runs.to_string(),
                        format!("{}/{}", stats.converged, stats.runs),
                        fnum(stats.mean_steps()),
                        fnum(stats.mean_residual()),
                        stats.max_displacement.to_string(),
                    ],
                    verdict,
                );
            }
        }
    }
    report.note(
        "recovery scrubbing disabled: rows show raw damage; the resilient runner's scrub phase \
         repairs transient-fault runs (see DESIGN.md, fault model)",
    );
    report.note(
        "rate 0 rows are differentially checked per trial against the fault-free engine: \
         identical steps/swaps/comparisons or the row fails",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_acceptable() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn heavy_faults_degrade_but_never_violate_integrity() {
        let seeds = meshsort_stats::SeedSequence::new(21);
        // 60% misfires: heavily slowed, but integrity is inviolable.
        let heavy = degradation(AlgorithmId::SnakeAlternating, 8, 0.6, 12, seeds, 4);
        assert_eq!(heavy.runs, 12);
        assert_eq!(heavy.integrity_violations, 0);
        // 100% misfires: nothing can move, so no shuffled grid converges —
        // every run degrades with its disorder intact.
        let dead = degradation(AlgorithmId::SnakeAlternating, 8, 1.0, 12, seeds.derive("dead"), 4);
        assert_eq!(dead.runs, 12);
        assert_eq!(dead.converged, 0);
        assert_eq!(dead.integrity_violations, 0);
        assert!(dead.mean_residual() > 0.0);
    }

    #[test]
    fn rate_zero_matches_fault_free_engine() {
        let seeds = meshsort_stats::SeedSequence::new(7);
        for a in AlgorithmId::ALL {
            let stats = degradation(a, 8, 0.0, 10, seeds.derive(a.name()), 4);
            assert_eq!(stats.converged, stats.runs, "{a}");
            assert_eq!(stats.identity_mismatches, 0, "{a}");
        }
    }
}
