//! E08 — Theorem 8's variance: `Var[Z₁(0)]` for S1. The reproduction
//! found the paper's printed closed form (`n²(17/8 + o(1))`) to be an
//! erratum — the correct variance, matching both first-principles exact
//! computation and exhaustive enumeration, is `n²(1/8 + o(1))`. The
//! Monte-Carlo here confirms the corrected value; the theorem's
//! concentration conclusion is unaffected (smaller variance is stronger).

use crate::config::Config;
use crate::e07_lemma9::sample_z10;
use crate::harness::sample_statistic;
use crate::report::{fnum, ExperimentReport, Verdict};

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E08",
        "Theorem 8: Var[Z1(0)] for S1 — corrected to n^2(1/8 + o(1)) (paper prints 17/8; see erratum)",
        vec!["n", "side", "trials", "sample Var", "exact Var", "Var/n^2", "paper printed 17n^2/8"],
    );
    let seeds = cfg.seeds_for("e08");
    let trials = cfg.trials(20_000);
    for side in cfg.even_sides() {
        let n = (side / 2) as u64;
        let stats = sample_statistic(trials, seeds.derive(&side.to_string()), cfg.threads, |rng| {
            sample_z10(side, rng)
        });
        let exact = meshsort_exact::paper::s1_var_z10(n).to_f64();
        let sample_var = stats.variance();
        let tol = 5.0 * exact * (2.0 / (trials as f64 - 1.0)).sqrt();
        let verdict = if (sample_var - exact).abs() <= tol {
            Verdict::Pass
        } else if (sample_var - exact).abs() <= 2.0 * tol {
            Verdict::Marginal
        } else {
            Verdict::Fail
        };
        let printed = 17.0 * (n * n) as f64 / 8.0;
        report.push_row(
            vec![
                n.to_string(),
                side.to_string(),
                trials.to_string(),
                fnum(sample_var),
                fnum(exact),
                fnum(exact / (n * n) as f64),
                fnum(printed),
            ],
            verdict,
        );
    }
    report.note("erratum: the paper's E(Z2^2) uses the pair-cell expectation 3/4 + 1/(16n^2-4) for two raw cells (correct: P(both zero) ≈ 1/4), and its printed 2E(Z1Z2) simplification disagrees with its own derivation");
    report.note("the sample variance matches the corrected exact value and is far from the printed 17n^2/8 column");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn sample_var_rejects_printed_constant() {
        // Even a modest Monte-Carlo cleanly separates 1/8 from 17/8.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(88);
        let side = 16; // n = 8
        let n = 8.0f64;
        let vals: Vec<f64> = (0..2000).map(|_| sample_z10(side, &mut rng)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var =
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (vals.len() - 1) as f64;
        let corrected = meshsort_exact::paper::s1_var_z10(8).to_f64();
        let printed = 17.0 * n * n / 8.0;
        assert!((var - corrected).abs() < (var - printed).abs(), "var={var}");
        assert!(var < printed / 4.0, "var={var} vs printed={printed}");
    }
}
