//! E07 — Lemma 9: after S1's first step,
//! `E[Z₁(0)] = 3N/8 + √N/8 + √N/(8(√N+1))`.

use crate::config::Config;
use crate::harness::sample_statistic;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::{schedule_for, AlgorithmId};
use meshsort_mesh::apply_plan;
use meshsort_stats::ci::check_exact_value;
use meshsort_workloads::zero_one::random_balanced_zero_one_grid;
use meshsort_zeroone::snake_trackers::s1_tracker_value;

/// Measures `Z₁(0)` on one random balanced grid.
pub fn sample_z10(side: usize, rng: &mut rand::rngs::StdRng) -> f64 {
    let mut grid = random_balanced_zero_one_grid(side, rng);
    let schedule = schedule_for(AlgorithmId::SnakeAlternating, side).expect("all sides");
    apply_plan(&mut grid, schedule.plan_at(0));
    s1_tracker_value(&grid, 0) as f64
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E07",
        "Lemma 9: E[Z1(0)] after S1's first step = 3N/8 + sqrt(N)/8 + sqrt(N)/(8(sqrt(N)+1))",
        vec!["side", "N", "trials", "measured E[Z1(0)]", "exact", "stderr"],
    );
    let seeds = cfg.seeds_for("e07");
    let trials = cfg.trials(20_000);
    for side in cfg.even_sides() {
        let n = (side / 2) as u64;
        let stats = sample_statistic(trials, seeds.derive(&side.to_string()), cfg.threads, |rng| {
            sample_z10(side, rng)
        });
        let exact = meshsort_exact::paper::s1_expected_z10(n).to_f64();
        let verdict = Verdict::from_bound_check(check_exact_value(&stats, exact, 3.29));
        report.push_row(
            vec![
                side.to_string(),
                (side * side).to_string(),
                trials.to_string(),
                fnum(stats.mean()),
                fnum(exact),
                fnum(stats.std_error()),
            ],
            verdict,
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn z10_exceeds_quarter_n() {
        // The gap E[Z1(0)] − N/4 = Ω(N) powers Theorem 7.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let side = 12;
        let n_cells = (side * side) as f64;
        let mean: f64 = (0..300).map(|_| sample_z10(side, &mut rng)).sum::<f64>() / 300.0;
        assert!(mean > 0.33 * n_cells, "{mean}");
        assert!(mean < 0.45 * n_cells, "{mean}");
    }
}
