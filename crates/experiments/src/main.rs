//! The `experiments` CLI: regenerates every paper-vs-measured table.
//!
//! ```text
//! experiments all [--quick] [--seed N] [--json PATH]
//! experiments e07 [--quick] …
//! experiments list
//! ```

use meshsort_experiments::{all_experiments, run_by_id, Config, ExperimentReport};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <all|list|e01..e15> [--quick] [--seed N] [--threads N] [--json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    let mut cfg = Config::full();
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = Config { seed: cfg.seed, threads: cfg.threads, ..Config::quick() },
            "--seed" => {
                i += 1;
                cfg.seed =
                    args.get(i).unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                i += 1;
                cfg.threads =
                    args.get(i).unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage());
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            _ => usage(),
        }
        i += 1;
    }

    if command == "list" {
        for e in all_experiments() {
            println!("{}  {}", e.id, e.title);
        }
        return;
    }

    let reports: Vec<ExperimentReport> = if command == "all" {
        all_experiments()
            .into_iter()
            .map(|e| {
                eprintln!("running {} — {} …", e.id, e.title);
                (e.run)(&cfg)
            })
            .collect()
    } else {
        match run_by_id(&command, &cfg) {
            Some(r) => vec![r],
            None => usage(),
        }
    };

    for r in &reports {
        println!("{}", r.render());
    }

    let mut any_fail = false;
    for r in &reports {
        if !r.overall().acceptable() {
            any_fail = true;
        }
    }
    println!(
        "summary: {} experiment(s), {} failing",
        reports.len(),
        reports.iter().filter(|r| !r.overall().acceptable()).count()
    );

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
        std::fs::write(&path, json).expect("write json report");
        eprintln!("wrote {path}");
    }

    if any_fail {
        std::process::exit(1);
    }
}
