//! The `experiments` CLI: regenerates every paper-vs-measured table.
//!
//! ```text
//! experiments all [--quick] [--seed N] [--json PATH] [--txt PATH]
//! experiments e07 [--quick] …
//! experiments list
//! ```
//!
//! Every experiment runs panic-isolated: a crash in one becomes a FAIL
//! row in its report instead of aborting the sweep. Report files are
//! written atomically (temp file + rename) so an interrupted run never
//! leaves a truncated report. Full sweeps (`all`) default to writing
//! `artifacts/experiments_full.{json,txt}` — the `artifacts/` directory
//! is gitignored, keeping generated reports out of the repo root.

use meshsort_experiments::{all_experiments, run_by_id, run_isolated, Config, ExperimentReport};
use meshsort_stats::write_atomic;
use std::path::Path;

/// Default report paths for full sweeps; gitignored.
const DEFAULT_JSON: &str = "artifacts/experiments_full.json";
const DEFAULT_TXT: &str = "artifacts/experiments_full.txt";

fn usage() -> ! {
    eprintln!(
        "usage: experiments <all|list|e01..e22> [--quick] [--seed N] [--threads N] \
         [--json PATH] [--txt PATH]\n\
         `all` defaults to --json {DEFAULT_JSON} --txt {DEFAULT_TXT}"
    );
    std::process::exit(2);
}

/// Creates the report's parent directory (e.g. `artifacts/`) if absent.
fn ensure_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create report directory");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    let mut cfg = Config::full();
    let mut json_path: Option<String> = None;
    let mut txt_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = Config { seed: cfg.seed, threads: cfg.threads, ..Config::quick() },
            "--seed" => {
                i += 1;
                cfg.seed =
                    args.get(i).unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                i += 1;
                cfg.threads =
                    args.get(i).unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage());
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--txt" => {
                i += 1;
                txt_path = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            _ => usage(),
        }
        i += 1;
    }

    if command == "list" {
        for e in all_experiments() {
            println!("{}  {}", e.id, e.title);
        }
        return;
    }

    if command == "all" {
        json_path.get_or_insert_with(|| DEFAULT_JSON.to_string());
        txt_path.get_or_insert_with(|| DEFAULT_TXT.to_string());
    }

    let reports: Vec<ExperimentReport> = if command == "all" {
        all_experiments()
            .iter()
            .map(|e| {
                eprintln!("running {} — {} …", e.id, e.title);
                run_isolated(e, &cfg)
            })
            .collect()
    } else {
        match run_by_id(&command, &cfg) {
            Some(r) => vec![r],
            None => usage(),
        }
    };

    for r in &reports {
        println!("{}", r.render());
    }

    let mut any_fail = false;
    for r in &reports {
        if !r.overall().acceptable() {
            any_fail = true;
        }
    }
    println!(
        "summary: {} experiment(s), {} failing",
        reports.len(),
        reports.iter().filter(|r| !r.overall().acceptable()).count()
    );

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
        ensure_parent_dir(Path::new(&path));
        write_atomic(Path::new(&path), &json).expect("write json report");
        eprintln!("wrote {path}");
    }
    if let Some(path) = txt_path {
        let text: String = reports.iter().map(|r| r.render() + "\n").collect();
        ensure_parent_dir(Path::new(&path));
        write_atomic(Path::new(&path), &text).expect("write text report");
        eprintln!("wrote {path}");
    }

    if any_fail {
        std::process::exit(1);
    }
}
