//! E20 (extension) — what do the column sorts buy? R1's correctness
//! proof only uses the `N`-cell linear chain embedded by the row phases
//! and the wrap wires; the column phases are "extra". Compare full R1
//! against the chain-only schedule (the pure embedded 1D odd-even sort).
//! Measured outcome: both are Θ(N) on average; the chain alone behaves
//! like the 1D sort (mean → N − O(√N)), and the column phases — which
//! consume two of every four steps — only pay for themselves beyond
//! side ≈ 24 (speedup crosses 1 between sides 16 and 24 and reaches
//! ≈ 1.11 at side 64).

use crate::config::Config;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::variants::chain_only_schedule;
use meshsort_core::AlgorithmId;
use meshsort_mesh::TargetOrder;
use meshsort_stats::{run_trials, RunningStats};
use meshsort_workloads::permutation::random_permutation_grid;

fn chain_stats(
    side: usize,
    trials: u64,
    seeds: meshsort_stats::SeedSequence,
    threads: usize,
) -> RunningStats {
    run_trials(
        seeds,
        trials,
        threads,
        RunningStats::new,
        move |_i, rng, acc: &mut RunningStats| {
            let schedule = chain_only_schedule(side).expect("even side");
            let mut grid = random_permutation_grid(side, rng);
            let out = schedule.run_until_sorted_kernel(
                &mut grid,
                TargetOrder::RowMajor,
                4 * (side * side) as u64 + 16,
            );
            assert!(out.sorted, "chain-only failed to sort");
            acc.push(out.steps as f64);
        },
        |a, b| a.merge(&b),
    )
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E20",
        "Extension: column-sort ablation — full R1 vs the embedded 1D chain alone",
        vec!["side", "N", "trials", "chain-only mean", "full R1 mean", "speedup", "chain mean/N"],
    );
    let seeds = cfg.seeds_for("e20");
    for side in cfg.even_sides() {
        let n_cells = side * side;
        let base = (1_000_000 / (n_cells * side)).max(16) as u64;
        let trials = cfg.trials(base);
        let chain = chain_stats(side, trials, seeds.derive(&format!("chain-{side}")), cfg.threads);
        let full = crate::harness::steps_on_random_permutations(
            AlgorithmId::RowMajorRowFirst,
            side,
            trials,
            seeds.derive(&format!("full-{side}")),
            cfg.threads,
        );
        let speedup = chain.mean() / full.mean();
        // The chain alone is the 1D sort: its mean must behave like the
        // 1D average N − O(√N). Whether the column phases *help* is the
        // measured question (they cost 2 of every 4 steps): at small
        // sides they do not pay for themselves; past side ≈ 32 they do.
        let chain_per_n = chain.mean() / n_cells as f64;
        let verdict =
            if chain_per_n > 0.75 && chain_per_n < 1.05 { Verdict::Pass } else { Verdict::Fail };
        report.push_row(
            vec![
                side.to_string(),
                n_cells.to_string(),
                trials.to_string(),
                fnum(chain.mean()),
                fnum(full.mean()),
                fnum(speedup),
                fnum(chain_per_n),
            ],
            verdict,
        );
    }
    report.note("speedup < 1 means the chain alone beats full R1: the column phases consume half the cycle and only pay for themselves beyond side ≈ 32 (speedup crosses 1 as mean/N of R1 falls below the chain's 1D-like ≈ 0.9-1.0)");
    report.note(
        "either way both are Θ(N) on average — the column phases move constants, not asymptotics",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_acceptable() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn chain_behaves_like_1d_sort() {
        let seeds = meshsort_stats::SeedSequence::new(20);
        let side = 8;
        let stats = chain_stats(side, 40, seeds, 4);
        let n = (side * side) as f64;
        // 1D average is N − O(√N): expect mean in (0.75N, N].
        assert!(stats.mean() > 0.75 * n, "{}", stats.mean());
        assert!(stats.mean() <= n + 2.0, "{}", stats.mean());
    }
}
