//! E01 — Lemma 4: after R1's first row sorting step, the expected number
//! of zeros in column 1 of a random balanced 0–1 mesh is
//! `E[Z₁] = 3n/2 + n/(8n² − 2)`.

use crate::config::Config;
use crate::harness::sample_statistic;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::{schedule_for, AlgorithmId};
use meshsort_mesh::apply_plan;
use meshsort_stats::ci::check_exact_value;
use meshsort_workloads::zero_one::random_balanced_zero_one_grid;

/// Measures `Z₁` (zeros in column 1 after the first row sort) on one
/// random balanced 0–1 grid.
pub fn sample_z1(side: usize, rng: &mut rand::rngs::StdRng) -> f64 {
    let mut grid = random_balanced_zero_one_grid(side, rng);
    let schedule = schedule_for(AlgorithmId::RowMajorRowFirst, side).expect("even side");
    apply_plan(&mut grid, schedule.plan_at(0));
    grid.column(0).filter(|&&v| v == 0).count() as f64
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E01",
        "Lemma 4: E[Z1] after R1's first row sort = 3n/2 + n/(8n^2-2)",
        vec!["n", "side", "trials", "measured E[Z1]", "exact E[Z1]", "stderr"],
    );
    let seeds = cfg.seeds_for("e01");
    let trials = cfg.trials(20_000);
    for side in cfg.even_sides() {
        let n = (side / 2) as u64;
        let stats = sample_statistic(trials, seeds.derive(&side.to_string()), cfg.threads, |rng| {
            sample_z1(side, rng)
        });
        let exact = meshsort_exact::paper::r1_expected_z1(n).to_f64();
        let verdict = Verdict::from_bound_check(check_exact_value(&stats, exact, 3.29));
        report.push_row(
            vec![
                n.to_string(),
                side.to_string(),
                trials.to_string(),
                fnum(stats.mean()),
                fnum(exact),
                fnum(stats.std_error()),
            ],
            verdict,
        );
    }
    report.note("exact values from meshsort-exact::paper::r1_expected_z1 (verified against the paper's closed form)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let cfg = Config::quick();
        let report = run(&cfg);
        assert!(!report.rows.is_empty());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn z1_sample_in_range() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let z = sample_z1(8, &mut rng);
            assert!((0.0..=8.0).contains(&z));
        }
    }

    #[test]
    fn z1_mean_is_far_above_half() {
        // The whole point of Lemma 4: after one row sort the first column
        // holds ~3/4·side zeros, not ~1/2·side.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let side = 16;
        let mean: f64 = (0..400).map(|_| sample_z1(side, &mut rng)).sum::<f64>() / 400.0;
        assert!(mean > 0.7 * side as f64, "{mean}");
        assert!(mean < 0.8 * side as f64, "{mean}");
    }
}
