//! E18 (extension) — the paper's unproven §3 remark: *"the sorting
//! procedures we have investigated until this point [R1, R2, S1, S2] all
//! satisfy the property that the average time for the smallest element
//! to move to the top, left cell is Θ(√N)"* — in contrast to S3, where
//! it is Θ(N). Measure the min's home time, normalized by √N, across
//! mesh sizes: constant for the four, linearly growing for S3.

use crate::config::Config;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::min_tracker::track_min;
use meshsort_core::{runner, AlgorithmId};
use meshsort_stats::{run_trials, RunningStats, SeedSequence};
use meshsort_workloads::permutation::random_permutation_grid;

fn home_time_stats(
    algorithm: AlgorithmId,
    side: usize,
    trials: u64,
    seeds: SeedSequence,
    threads: usize,
) -> RunningStats {
    run_trials(
        seeds,
        trials,
        threads,
        RunningStats::new,
        move |_i, rng, acc: &mut RunningStats| {
            let mut grid = random_permutation_grid(side, rng);
            let path = track_min(algorithm, &mut grid, runner::default_step_cap(side))
                .expect("side supported");
            assert!(path.sorted);
            let home = path.steps_until_home().expect("sorted => min home");
            acc.push(home as f64);
        },
        |a, b| a.merge(&b),
    )
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E18",
        "Extension: min-to-home time is Theta(sqrt(N)) for R1/R2/S1/S2 but Theta(N) for S3 (paper S3 remark)",
        vec!["algorithm", "side", "trials", "mean home time", "home/sqrt(N)", "home/N"],
    );
    let seeds = cfg.seeds_for("e18");
    let sides: Vec<usize> = cfg.even_sides();
    // Per-algorithm normalized series; verdicts judge the scaling shape.
    for algorithm in AlgorithmId::ALL {
        let mut normalized_sqrt: Vec<f64> = Vec::new();
        let mut normalized_n: Vec<f64> = Vec::new();
        for &side in &sides {
            let n_cells = side * side;
            let trials = cfg.trials((1_200_000 / (n_cells * side)).max(24) as u64);
            let stats = home_time_stats(
                algorithm,
                side,
                trials,
                seeds.derive(&format!("{algorithm}-{side}")),
                cfg.threads,
            );
            let per_sqrt = stats.mean() / side as f64;
            let per_n = stats.mean() / n_cells as f64;
            normalized_sqrt.push(per_sqrt);
            normalized_n.push(per_n);
            report.push_row(
                vec![
                    algorithm.to_string(),
                    side.to_string(),
                    trials.to_string(),
                    fnum(stats.mean()),
                    fnum(per_sqrt),
                    fnum(per_n),
                ],
                Verdict::Pass, // per-row data; shape judged below
            );
        }
        // Shape verdict on the series (needs at least two sides).
        if normalized_sqrt.len() >= 2 {
            let first_sqrt = normalized_sqrt[0];
            let last_sqrt = *normalized_sqrt.last().unwrap();
            let first_n = normalized_n[0];
            let last_n = *normalized_n.last().unwrap();
            let is_s3 = algorithm == AlgorithmId::SnakePhaseAligned;
            let ok = if is_s3 {
                // Θ(N): home/N roughly constant, home/√N growing.
                last_sqrt > 1.5 * first_sqrt && (last_n / first_n) > 0.5 && (last_n / first_n) < 2.0
            } else {
                // Θ(√N): home/√N bounded (allow slack), home/N shrinking.
                (last_sqrt / first_sqrt) < 2.0 && last_n < first_n
            };
            report.push_row(
                vec![
                    format!("{algorithm} scaling"),
                    format!("{}..{}", sides[0], sides.last().unwrap()),
                    "-".to_string(),
                    if is_s3 { "expect Θ(N)".to_string() } else { "expect Θ(√N)".to_string() },
                    fnum(last_sqrt / first_sqrt),
                    fnum(last_n / first_n),
                ],
                if ok { Verdict::Pass } else { Verdict::Marginal },
            );
        }
    }
    report.note("confirms the paper's unproven remark preceding Theorem 12, and Theorem 12's mechanism for S3");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_acceptable() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn s3_home_time_dominates_s1() {
        let seeds = SeedSequence::new(18);
        let side = 16;
        let s1 = home_time_stats(AlgorithmId::SnakeAlternating, side, 24, seeds.derive("a"), 4);
        let s3 = home_time_stats(AlgorithmId::SnakePhaseAligned, side, 24, seeds.derive("b"), 4);
        assert!(
            s3.mean() > 3.0 * s1.mean(),
            "S3 home {} should dwarf S1 home {}",
            s3.mean(),
            s1.mean()
        );
    }
}
