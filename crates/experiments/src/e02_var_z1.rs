//! E02 — Theorem 3's variance computation: `Var(Z₁) = n(3/8 − o(1))`
//! after R1's first row sort, with the exact rational value from
//! `meshsort-exact`.

use crate::config::Config;
use crate::e01_lemma4::sample_z1;
use crate::harness::sample_statistic;
use crate::report::{fnum, ExperimentReport, Verdict};

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E02",
        "Theorem 3: Var(Z1) after R1's first row sort = n(3/8 - o(1))",
        vec!["n", "side", "trials", "sample Var", "exact Var", "Var/n"],
    );
    let seeds = cfg.seeds_for("e02");
    let trials = cfg.trials(20_000);
    for side in cfg.even_sides() {
        let n = (side / 2) as u64;
        let stats = sample_statistic(trials, seeds.derive(&side.to_string()), cfg.threads, |rng| {
            sample_z1(side, rng)
        });
        let exact = meshsort_exact::paper::r1_var_z1(n).to_f64();
        let sample_var = stats.variance();
        // Sampling error of a variance estimate ~ Var·√(2/(t−1)); accept
        // within 5 of those.
        let tol = 5.0 * exact * (2.0 / (trials as f64 - 1.0)).sqrt();
        let verdict = if (sample_var - exact).abs() <= tol {
            Verdict::Pass
        } else if (sample_var - exact).abs() <= 2.0 * tol {
            Verdict::Marginal
        } else {
            Verdict::Fail
        };
        report.push_row(
            vec![
                n.to_string(),
                side.to_string(),
                trials.to_string(),
                fnum(sample_var),
                fnum(exact),
                fnum(exact / n as f64),
            ],
            verdict,
        );
    }
    report.note("Var/n approaches 3/8 = 0.375 from below as n grows (paper Theorem 3)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn exact_var_per_n_below_three_eighths() {
        for n in [4u64, 8, 16] {
            let v = meshsort_exact::paper::r1_var_z1(n).to_f64() / n as f64;
            assert!(v < 0.375 && v > 0.25, "n={n}: {v}");
        }
    }
}
