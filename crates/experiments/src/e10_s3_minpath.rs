//! E10 — Theorem 12 (with Lemmas 12/13): under the third snakelike
//! algorithm the smallest element walks the snake backwards one rank per
//! two steps, so a random permutation needs `Θ(N)` steps w.h.p.; the
//! probability of finishing in fewer than `δN` steps is at most
//! `δ/2 + δ/(2N)`.

use crate::config::Config;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::min_tracker::{theorem12_lower_bound, theorem12_tail_bound, track_min};
use meshsort_core::{runner, AlgorithmId};
use meshsort_stats::tail::TailEstimator;
use meshsort_stats::{run_trials, SeedSequence};
use meshsort_workloads::permutation::random_permutation_grid;

struct MinPathAgg {
    tails: TailEstimator,
    rank_lemma_violations: u64,
    home_bound_violations: u64,
    trials: u64,
}

fn observe(
    side: usize,
    deltas: &[f64],
    trials: u64,
    seeds: SeedSequence,
    threads: usize,
) -> MinPathAgg {
    let n_cells = side * side;
    run_trials(
        seeds,
        trials,
        threads,
        || MinPathAgg {
            tails: TailEstimator::for_gammas(deltas, n_cells),
            rank_lemma_violations: 0,
            home_bound_violations: 0,
            trials: 0,
        },
        move |_i, rng, acc: &mut MinPathAgg| {
            let mut grid = random_permutation_grid(side, rng);
            let cap = runner::default_step_cap(side);
            let path = track_min(AlgorithmId::SnakePhaseAligned, &mut grid, cap)
                .expect("snake supports all sides");
            assert!(path.sorted);
            let total_steps = (path.positions.len() - 1) as f64;
            acc.tails.push(total_steps);
            acc.trials += 1;
            if path.verify_rank_lemmas().is_err() {
                acc.rank_lemma_violations += 1;
            }
            let m = path.initial_rank();
            match path.steps_until_home() {
                Some(home) if home >= theorem12_lower_bound(m) => {}
                _ => acc.home_bound_violations += 1,
            }
        },
        |a, b| {
            a.tails.merge(&b.tails);
            a.rank_lemma_violations += b.rank_lemma_violations;
            a.home_bound_violations += b.home_bound_violations;
            a.trials += b.trials;
        },
    )
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E10",
        "Theorem 12: S3 needs Theta(N) steps w.h.p.; P[steps < delta*N] <= delta/2 + delta/(2N)",
        vec![
            "side",
            "N",
            "trials",
            "delta",
            "P[steps < delta*N]",
            "paper bound",
            "lemma violations",
        ],
    );
    let seeds = cfg.seeds_for("e10");
    let deltas = [0.2f64, 0.5, 0.8];
    for side in cfg.even_sides() {
        let n_cells = side * side;
        let base = (2_000_000 / (n_cells * side)).max(24) as u64;
        let trials = cfg.trials(base);
        let agg = observe(side, &deltas, trials, seeds.derive(&side.to_string()), cfg.threads);
        for (di, &delta) in deltas.iter().enumerate() {
            let p = agg.tails.estimate(di);
            let bound = theorem12_tail_bound(delta, n_cells);
            // Conservative check: the empirical tail (95% upper) must
            // respect the paper's bound; lemma checks must never fail.
            let verdict = if agg.rank_lemma_violations > 0 || agg.home_bound_violations > 0 {
                Verdict::Fail
            } else if p <= bound {
                Verdict::Pass
            } else if agg.tails.upper95(di) * 0.8 <= bound {
                Verdict::Marginal
            } else {
                Verdict::Fail
            };
            report.push_row(
                vec![
                    side.to_string(),
                    n_cells.to_string(),
                    trials.to_string(),
                    fnum(delta),
                    fnum(p),
                    fnum(bound),
                    (agg.rank_lemma_violations + agg.home_bound_violations).to_string(),
                ],
                verdict,
            );
        }
    }
    report.note("per-trial checks: Lemmas 12/13 rank-walk transitions and the 2m-3 home bound held on every trial");
    report
}

/// Odd-side variant (appendix Lemmas 15/16) — exercised by E12's tests as
/// well; exposed for the bench harness.
pub fn verify_odd_side(side: usize, trials: u64, seeds: SeedSequence) -> u64 {
    assert!(side % 2 == 1);
    let agg = observe(side, &[0.5], trials, seeds, 1);
    agg.rank_lemma_violations + agg.home_bound_violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn odd_side_lemmas_hold() {
        assert_eq!(verify_odd_side(7, 40, SeedSequence::new(3)), 0);
    }

    #[test]
    fn min_rank_walk_deterministic_speed() {
        // The min takes ~2 steps per rank: from full rank N the walk home
        // costs between 2m−3 and 2m+4 steps.
        use meshsort_workloads::adversarial::min_at_snake_end;
        for side in [4usize, 6, 8] {
            let mut g = min_at_snake_end(side);
            let m = side * side;
            let path =
                track_min(AlgorithmId::SnakePhaseAligned, &mut g, runner::default_step_cap(side))
                    .unwrap();
            let home = path.steps_until_home().unwrap();
            assert!(home >= theorem12_lower_bound(m), "side {side}");
            assert!(home <= 2 * m as u64 + 4, "side {side}: {home}");
        }
    }

    #[test]
    fn theorem12_bound_formula_values() {
        assert!((theorem12_tail_bound(0.5, 64) - (0.25 + 0.5 / 128.0)).abs() < 1e-12);
    }
}
