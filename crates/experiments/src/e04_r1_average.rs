//! E04 — Theorem 2: the average number of steps R1 needs on a random
//! permutation is at least `N/2 − 2√N` (exact form `4n·E[M]`).

use crate::config::Config;
use crate::harness::steps_on_random_permutations;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::AlgorithmId;
use meshsort_stats::ci::check_lower_bound;

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E04",
        "Theorem 2: R1 mean steps on random permutations >= N/2 - 2*sqrt(N)",
        vec![
            "side",
            "N",
            "trials",
            "mean steps",
            "bound 4nE[M]",
            "headline N/2-2sqrt(N)",
            "mean/N",
        ],
    );
    let seeds = cfg.seeds_for("e04");
    for side in cfg.even_sides() {
        let n_cells = side * side;
        // Cost per trial grows ~N²; scale trial counts down with N.
        let base = (2_000_000 / (n_cells * side)).max(24) as u64;
        let trials = cfg.trials(base);
        let stats = steps_on_random_permutations(
            AlgorithmId::RowMajorRowFirst,
            side,
            trials,
            seeds.derive(&side.to_string()),
            cfg.threads,
        );
        let n = (side / 2) as u64;
        let bound = meshsort_exact::paper::thm2_lower_bound(n).to_f64();
        let headline = meshsort_exact::paper::thm2_headline(n).to_f64();
        let verdict = Verdict::from_bound_check(check_lower_bound(&stats, bound, 2.576));
        report.push_row(
            vec![
                side.to_string(),
                n_cells.to_string(),
                trials.to_string(),
                fnum(stats.mean()),
                fnum(bound),
                fnum(headline),
                fnum(stats.mean() / n_cells as f64),
            ],
            verdict,
        );
    }
    report.note("mean/N stabilising well above 1/2 confirms the Θ(N) average case (vs the Ω(√N) diameter bound)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert!(!report.rows.is_empty());
        assert_eq!(report.overall(), Verdict::Pass, "{}", report.render());
    }
}
