//! E22 (extension) — service-layer degradation under deterministic
//! network chaos: the serve-layer analogue of E21. A real meshsortd
//! instance is booted in-process behind the seed-keyed chaos proxy, and
//! the resilient load generator (bounded retries, exponential backoff
//! with decorrelated jitter, per-request deadlines) drives a mixed
//! workload through it at a sweep of fault rates. Rows report the
//! goodput/p99/error-mix curve; the hard invariants are full request
//! accounting (`completed + errors + gave_up == requests` at every
//! rate), a spotless zero-rate row, and bit-identical replay of the
//! chaos decision function — the property that makes every curve in
//! this table reproducible from its seed.

use crate::config::Config;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_serve::chaos::{self, ChaosProxyConfig, ChaosProxyHandle, ChaosSpec, Direction};
use meshsort_serve::loadgen::{self, LoadgenConfig, LoadgenReport};
use meshsort_serve::server::{ServerConfig, ServerHandle};
use std::time::Duration;

/// Uniform per-frame fault rates swept across the proxy (each of
/// reset / truncate / duplicate / delay fires independently at this
/// probability per forwarded frame).
const RATES: [f64; 3] = [0.0, 0.02, 0.08];

/// Probes per direction in the decide()-replay determinism check.
const REPLAY_FRAMES: u64 = 512;

/// Connections the load generator multiplexes over.
const CONNECTIONS: usize = 2;

/// One sweep point: loadgen through a chaos proxy at one fault rate.
struct SweepPoint {
    report: LoadgenReport,
    faults: u64,
}

fn sweep_point(cfg: &Config, rate: f64, spec_seed: u64, gen_seed: u64) -> SweepPoint {
    let server = ServerHandle::bind("127.0.0.1:0", ServerConfig::default()).expect("bind server");
    let spec =
        if rate == 0.0 { ChaosSpec::none(spec_seed) } else { ChaosSpec::uniform(spec_seed, rate) };
    let proxy = ChaosProxyHandle::bind(
        "127.0.0.1:0",
        ChaosProxyConfig { upstream: server.local_addr(), spec },
    )
    .expect("bind proxy");

    let config = LoadgenConfig {
        addr: proxy.local_addr().to_string(),
        connections: CONNECTIONS,
        rate: 1500.0,
        requests: cfg.trials(600),
        side: 8,
        seed: gen_seed,
        deadline_ms: 2_000,
        max_attempts: 10,
        backoff_base_ms: 2,
        backoff_cap_ms: 50,
        client_timeout: Duration::from_secs(2),
        ..Default::default()
    };
    let report = loadgen::run(&config).expect("loadgen run");

    let (_, _, faults) = proxy.totals();
    proxy.stop();
    proxy.wait();
    server.request_drain();
    server.wait();
    SweepPoint { report, faults }
}

/// Formats the terminal-error mix as `code:count` pairs.
fn error_mix(report: &LoadgenReport) -> String {
    if report.errors_by_code.is_empty() {
        "-".to_string()
    } else {
        report
            .errors_by_code
            .iter()
            .map(|(code, n)| format!("{code}:{n}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Evaluates the chaos decision function over a fixed probe grid.
fn decision_grid(spec: &ChaosSpec) -> Vec<String> {
    let mut grid = Vec::new();
    for conn in 0..4u64 {
        for dir in [Direction::ClientToServer, Direction::ServerToClient] {
            for frame in 0..REPLAY_FRAMES {
                grid.push(format!("{:?}", chaos::decide(spec, conn, dir, frame, 96)));
            }
        }
    }
    grid
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E22",
        "Extension: service degradation — goodput, tail latency, and error mix of \
         meshsortd behind a deterministic network-chaos proxy",
        vec![
            "fault rate",
            "requests",
            "completed",
            "errors",
            "retries",
            "reconn",
            "gave up",
            "goodput r/s",
            "p99 ms",
            "error mix",
        ],
    );
    let seeds = cfg.seeds_for("e22");

    for (i, rate) in RATES.into_iter().enumerate() {
        let label = format!("rate-{rate}");
        let point = sweep_point(
            cfg,
            rate,
            seeds.derive(&label).root(),
            seeds.derive("loadgen").subseed(i as u64),
        );
        let lg = &point.report;
        // Full accounting is unconditional; the fault-free row must
        // additionally be spotless. Nonzero give-ups at positive rates
        // mean the retry budget lost to the injected faults — degraded,
        // not broken, service.
        let clean_zero = lg.completed == lg.requests && lg.errors == 0 && lg.gave_up == 0;
        let verdict =
            if lg.accounted() != lg.requests || lg.completed == 0 || (rate == 0.0 && !clean_zero) {
                Verdict::Fail
            } else if lg.gave_up > 0 {
                Verdict::Marginal
            } else {
                Verdict::Pass
            };
        if rate > 0.0 && point.faults == 0 {
            report.note(format!(
                "rate {rate}: proxy injected no faults over {} frames — sweep not exercised",
                lg.requests * 2
            ));
        }
        report.push_row(
            vec![
                format!("{rate}"),
                lg.requests.to_string(),
                lg.completed.to_string(),
                lg.errors.to_string(),
                lg.retries.to_string(),
                lg.reconnects.to_string(),
                lg.gave_up.to_string(),
                fnum(lg.throughput),
                fnum(lg.p99_ms),
                error_mix(lg),
            ],
            verdict,
        );
    }

    // Determinism backstop: the proxy's fault decisions are a pure
    // function of (spec, connection, direction, frame), so evaluating
    // the decision grid twice must be bit-identical. This is the same
    // property the socket-level replay test pins end to end; here it is
    // re-checked on every report so a regression shows up in the table.
    let spec = ChaosSpec::uniform(seeds.derive("replay").root(), 0.10);
    let first = decision_grid(&spec);
    let second = decision_grid(&spec);
    let identical = first == second;
    let faults = first.iter().filter(|d| d.as_str() != "Forward").count();
    report.push_row(
        vec![
            "decide() replay".to_string(),
            format!("{} probes", first.len()),
            format!("{faults} faulted"),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            if identical { "bit-identical".to_string() } else { "DIVERGED".to_string() },
        ],
        if identical && faults > 0 { Verdict::Pass } else { Verdict::Fail },
    );

    report.note(
        "loadgen: open-loop at 1500 req/s over 2 connections, side-8 grids, 2 s deadline, \
         ≤10 attempts with decorrelated-jitter backoff (2..50 ms).",
    );
    report.note(
        "uniform spec: reset/truncate/duplicate/delay each fire independently at the row's \
         rate per forwarded frame (delays ≤ 20 ms).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_accounts_for_every_request() {
        let cfg = Config::quick();
        let report = run(&cfg);
        assert!(
            report.overall().acceptable(),
            "E22 must account for every request:\n{}",
            report.render()
        );
        // Three sweep rows plus the determinism row.
        assert_eq!(report.rows.len(), RATES.len() + 1);
    }

    #[test]
    fn error_mix_formats_code_counts() {
        let mut lg = LoadgenReport::default();
        assert_eq!(error_mix(&lg), "-");
        lg.errors_by_code.insert(503, 2);
        lg.errors_by_code.insert(504, 1);
        assert_eq!(error_mix(&lg), "503:2 504:1");
    }
}
