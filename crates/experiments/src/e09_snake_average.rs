//! E09 — Theorems 7 and 10 (with Lemma 11): the first and second
//! snakelike algorithms need on average at least `≈ N/2 − √N/2 − 4`
//! steps on a random permutation; `E[Y₁(0)]` matches Lemma 11.

use crate::config::Config;
use crate::harness::{sample_statistic, steps_on_random_permutations};
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::{schedule_for, AlgorithmId};
use meshsort_mesh::apply_plan;
use meshsort_stats::ci::{check_exact_value, check_lower_bound};
use meshsort_workloads::zero_one::random_balanced_zero_one_grid;
use meshsort_zeroone::snake_trackers::s2_tracker_value;

/// Measures `Y₁(0)` on one random balanced grid (S2's first step).
pub fn sample_y10(side: usize, rng: &mut rand::rngs::StdRng) -> f64 {
    let mut grid = random_balanced_zero_one_grid(side, rng);
    let schedule = schedule_for(AlgorithmId::SnakeStaggeredCols, side).expect("all sides");
    apply_plan(&mut grid, schedule.plan_at(0));
    s2_tracker_value(&grid, 0) as f64
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E09",
        "Theorems 7/10 + Lemma 11: snake algorithms S1/S2 average >= ~N/2 - sqrt(N)/2 - 4",
        vec!["algorithm", "side", "N", "trials", "mean steps", "bound", "mean/N"],
    );
    let seeds = cfg.seeds_for("e09");
    for (algorithm, bound_fn) in [
        (
            AlgorithmId::SnakeAlternating,
            meshsort_exact::paper::thm7_lower_bound as fn(u64) -> meshsort_exact::Ratio,
        ),
        (AlgorithmId::SnakeStaggeredCols, meshsort_exact::paper::thm10_lower_bound),
    ] {
        for side in cfg.even_sides() {
            let n_cells = side * side;
            let base = (2_000_000 / (n_cells * side)).max(24) as u64;
            let trials = cfg.trials(base);
            let stats = steps_on_random_permutations(
                algorithm,
                side,
                trials,
                seeds.derive(&format!("{algorithm}-{side}")),
                cfg.threads,
            );
            let bound = bound_fn((side / 2) as u64).to_f64();
            let verdict = Verdict::from_bound_check(check_lower_bound(&stats, bound, 2.576));
            report.push_row(
                vec![
                    algorithm.to_string(),
                    side.to_string(),
                    n_cells.to_string(),
                    trials.to_string(),
                    fnum(stats.mean()),
                    fnum(bound),
                    fnum(stats.mean() / n_cells as f64),
                ],
                verdict,
            );
        }
    }

    // Lemma 11 check on Y₁(0).
    let trials = cfg.trials(20_000);
    for side in cfg.even_sides() {
        let n = (side / 2) as u64;
        let stats =
            sample_statistic(trials, seeds.derive(&format!("y10-{side}")), cfg.threads, |rng| {
                sample_y10(side, rng)
            });
        let exact = meshsort_exact::paper::s2_expected_y10(n).to_f64();
        let verdict = Verdict::from_bound_check(check_exact_value(&stats, exact, 3.29));
        report.push_row(
            vec![
                "Y1(0) vs Lemma 11".to_string(),
                side.to_string(),
                (side * side).to_string(),
                trials.to_string(),
                fnum(stats.mean()),
                fnum(exact),
                fnum(stats.mean() / (side * side) as f64),
            ],
            verdict,
        );
    }
    report.note("paper Theorem 7's printed 'N/2 - sqrt(N)/7 - 1' is an OCR artifact; the exact bound 4(E[Z1(0)] - f(N/2,N) - 1) evaluates to ~N/2 - sqrt(N)/2 - 4, matching Theorem 10's print");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert_eq!(report.overall(), Verdict::Pass, "{}", report.render());
    }

    #[test]
    fn y10_mean_around_three_eighths() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let side = 12;
        let n_cells = (side * side) as f64;
        let mean: f64 = (0..300).map(|_| sample_y10(side, &mut rng)).sum::<f64>() / 300.0;
        assert!(mean > 0.33 * n_cells && mean < 0.42 * n_cells, "{mean}");
    }
}
