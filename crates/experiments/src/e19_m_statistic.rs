//! E19 (extension) — the `M` statistic of Corollary 2, head on. The
//! paper never computes `E[M]` itself, only the chain
//! `E[M] ≥ E[Z₁] − n − 1` (Lemma 4 uses column 1 as a proxy for the
//! maximum). This experiment measures `E[M]` exactly (exhaustive
//! enumeration on tiny meshes) and by Monte-Carlo at larger sizes,
//! exposing how much the max-over-columns gains over the single-column
//! proxy — i.e. the slack in Theorem 2.

use crate::config::Config;
use crate::harness::sample_statistic;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::{schedule_for, AlgorithmId};
use meshsort_mesh::apply_plan;
use meshsort_workloads::zero_one::random_balanced_zero_one_grid;
use meshsort_zeroone::column_stats::m_statistic;
use meshsort_zeroone::exhaustive::exact_expected_m;

/// Samples `M` after R1's first row sort on one random balanced grid.
pub fn sample_m(side: usize, rng: &mut rand::rngs::StdRng) -> f64 {
    let mut grid = random_balanced_zero_one_grid(side, rng);
    let schedule = schedule_for(AlgorithmId::RowMajorRowFirst, side).expect("even side");
    apply_plan(&mut grid, schedule.plan_at(0));
    m_statistic(&grid) as f64
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E19",
        "Extension: E[M] (Corollary 2's statistic) — exact at tiny sizes, Monte-Carlo beyond, vs Lemma 4's proxy bound",
        vec!["n", "side", "method", "E[M]", "Lemma 4 bound E[Z1]-n-1", "slack"],
    );
    // Exhaustive exact values.
    for side in [2usize, 4] {
        let n = (side / 2) as u64;
        let (sum, count) = exact_expected_m(side);
        let exact = sum as f64 / count as f64;
        let bound = meshsort_exact::paper::r1_expected_m_lower(n).to_f64();
        let verdict = if exact >= bound { Verdict::Pass } else { Verdict::Fail };
        report.push_row(
            vec![
                n.to_string(),
                side.to_string(),
                format!("exhaustive ({count} grids)"),
                fnum(exact),
                fnum(bound),
                fnum(exact - bound),
            ],
            verdict,
        );
    }
    // Monte-Carlo at larger sizes.
    let seeds = cfg.seeds_for("e19");
    let trials = cfg.trials(20_000);
    for side in cfg.even_sides() {
        let n = (side / 2) as u64;
        let stats = sample_statistic(trials, seeds.derive(&side.to_string()), cfg.threads, |rng| {
            sample_m(side, rng)
        });
        let bound = meshsort_exact::paper::r1_expected_m_lower(n).to_f64();
        // E[M] must respect the bound (within MC error).
        let verdict = if stats.mean() + 3.0 * stats.std_error() >= bound {
            if stats.mean() >= bound {
                Verdict::Pass
            } else {
                Verdict::Marginal
            }
        } else {
            Verdict::Fail
        };
        report.push_row(
            vec![
                n.to_string(),
                side.to_string(),
                format!("monte-carlo ({trials})"),
                fnum(stats.mean()),
                fnum(bound),
                fnum(stats.mean() - bound),
            ],
            verdict,
        );
    }
    report.note("slack/n quantifies how much Theorem 2's constant could improve by analysing the max over columns instead of column 1");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert!(report.overall().acceptable(), "{}", report.render());
    }

    #[test]
    fn m_grows_with_side() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let mean = |side: usize, rng: &mut rand::rngs::StdRng| -> f64 {
            (0..200).map(|_| sample_m(side, rng)).sum::<f64>() / 200.0
        };
        let m8 = mean(8, &mut rng);
        let m16 = mean(16, &mut rng);
        assert!(m16 > m8, "E[M] should grow: {m8} vs {m16}");
        // Θ(n) scaling: at side 16 (n=8), E[M] should exceed n/2 − 1 = 3.
        assert!(m16 > 3.0, "{m16}");
    }
}
