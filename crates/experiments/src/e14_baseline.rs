//! E14 — the context claim: all five bubble-sort generalizations average
//! `Θ(N)` steps while Shearsort needs only `O(√N log √N)` — so the
//! natural algorithms lose to the textbook baseline at every scale beyond
//! a small crossover, and the gap widens with `N`.

use crate::config::Config;
use crate::harness::steps_on_random_permutations;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_baselines::counts::shearsort_worst_case_steps;
use meshsort_baselines::shearsort_until_sorted;
use meshsort_core::AlgorithmId;
use meshsort_stats::{run_trials, RunningStats};
use meshsort_workloads::permutation::random_permutation_grid;

fn shearsort_stats(
    side: usize,
    trials: u64,
    seeds: meshsort_stats::SeedSequence,
    threads: usize,
) -> RunningStats {
    run_trials(
        seeds,
        trials,
        threads,
        RunningStats::new,
        move |_i, rng, acc: &mut RunningStats| {
            let mut grid = random_permutation_grid(side, rng);
            let run = shearsort_until_sorted(&mut grid);
            assert!(run.sorted);
            acc.push(run.steps as f64);
        },
        |a, b| a.merge(&b),
    )
}

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E14",
        "Context: five bubble sorts average Theta(N) steps vs Shearsort's O(sqrt(N) log sqrt(N))",
        vec!["side", "N", "algorithm", "mean steps", "mean/N", "shearsort worst case"],
    );
    let seeds = cfg.seeds_for("e14");
    for side in cfg.even_sides() {
        let n_cells = side * side;
        let base = (1_200_000 / (n_cells * side)).max(16) as u64;
        let trials = cfg.trials(base);
        let shear_cap = shearsort_worst_case_steps(side);
        for algorithm in AlgorithmId::ALL {
            let stats = steps_on_random_permutations(
                algorithm,
                side,
                trials,
                seeds.derive(&format!("{algorithm}-{side}")),
                cfg.threads,
            );
            // The headline shape: every bubble sort averages more steps
            // than Shearsort's *worst case* beyond the crossover side
            // (≈30; below it the comparison is not yet meaningful for the
            // fastest bubble variant).
            let verdict = if side < meshsort_baselines::counts::crossover_side()
                || stats.mean() > shear_cap as f64
            {
                Verdict::Pass
            } else {
                Verdict::Fail
            };
            report.push_row(
                vec![
                    side.to_string(),
                    n_cells.to_string(),
                    algorithm.to_string(),
                    fnum(stats.mean()),
                    fnum(stats.mean() / n_cells as f64),
                    shear_cap.to_string(),
                ],
                verdict,
            );
        }
        let shear =
            shearsort_stats(side, trials, seeds.derive(&format!("shear-{side}")), cfg.threads);
        report.push_row(
            vec![
                side.to_string(),
                n_cells.to_string(),
                "shearsort (baseline)".to_string(),
                fnum(shear.mean()),
                fnum(shear.mean() / n_cells as f64),
                shear_cap.to_string(),
            ],
            Verdict::Pass,
        );
    }
    report.note(format!(
        "bubble average exceeds shearsort worst case from side {} onward (counts::crossover_side)",
        meshsort_baselines::counts::crossover_side()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes() {
        let report = run(&Config::quick());
        assert_eq!(report.overall(), Verdict::Pass, "{}", report.render());
    }

    #[test]
    fn gap_widens_with_n() {
        // mean_bubble/N stays ~constant while shearsort worst/N shrinks.
        let per_n_16 = shearsort_worst_case_steps(16) as f64 / 256.0;
        let per_n_64 = shearsort_worst_case_steps(64) as f64 / 4096.0;
        assert!(per_n_64 < per_n_16 / 2.0);
    }
}
