//! Experiment reports: aligned text tables plus JSON serialization.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of comparing measurement against theory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Measurement agrees with / respects the theoretical statement.
    Pass,
    /// Inconclusive at this sample size (confidence interval straddles).
    Marginal,
    /// Measurement contradicts the statement.
    Fail,
}

impl Verdict {
    /// Converts a [`meshsort_stats::ci::BoundCheck`].
    pub fn from_bound_check(check: meshsort_stats::ci::BoundCheck) -> Self {
        match check {
            meshsort_stats::ci::BoundCheck::Holds => Verdict::Pass,
            meshsort_stats::ci::BoundCheck::Marginal => Verdict::Marginal,
            meshsort_stats::ci::BoundCheck::Violated => Verdict::Fail,
        }
    }

    /// `true` for anything except [`Verdict::Fail`].
    pub fn acceptable(self) -> bool {
        self != Verdict::Fail
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Pass => "PASS",
            Verdict::Marginal => "MARGINAL",
            Verdict::Fail => "FAIL",
        })
    }
}

/// A rendered experiment: one table plus notes and per-row verdicts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id (`"E01"` …).
    pub id: String,
    /// One-line title naming the paper statement being reproduced.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Table body; each row aligns with `columns`.
    pub rows: Vec<Vec<String>>,
    /// Per-row verdicts (same length as `rows`).
    pub verdicts: Vec<Verdict>,
    /// Free-form notes (assumptions, errata, caveats).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: Vec<&str>) -> Self {
        ExperimentReport {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
            verdicts: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row with its verdict.
    ///
    /// # Panics
    ///
    /// Panics when the row width disagrees with the header.
    pub fn push_row(&mut self, cells: Vec<String>, verdict: Verdict) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
        self.verdicts.push(verdict);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// The worst verdict across rows ([`Verdict::Pass`] when empty).
    pub fn overall(&self) -> Verdict {
        let mut worst = Verdict::Pass;
        for v in &self.verdicts {
            worst = match (worst, v) {
                (_, Verdict::Fail) | (Verdict::Fail, _) => Verdict::Fail,
                (_, Verdict::Marginal) | (Verdict::Marginal, _) => Verdict::Marginal,
                _ => Verdict::Pass,
            };
        }
        worst
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        // Column widths include the verdict column.
        let mut headers: Vec<String> = self.columns.clone();
        headers.push("verdict".to_string());
        let mut width: Vec<usize> = headers.iter().map(String::len).collect();
        let full_rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .zip(self.verdicts.iter())
            .map(|(r, v)| {
                let mut r = r.clone();
                r.push(v.to_string());
                r
            })
            .collect();
        for row in &full_rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String], width: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&headers, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (width.len() - 1)));
        out.push('\n');
        for row in &full_rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out.push_str(&format!("overall: {}\n", self.overall()));
        out
    }
}

/// Formats a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{x:.1}")
    } else if x.abs() >= 10.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_ordering() {
        let mut r = ExperimentReport::new("E00", "t", vec!["a"]);
        assert_eq!(r.overall(), Verdict::Pass);
        r.push_row(vec!["1".into()], Verdict::Pass);
        assert_eq!(r.overall(), Verdict::Pass);
        r.push_row(vec!["2".into()], Verdict::Marginal);
        assert_eq!(r.overall(), Verdict::Marginal);
        r.push_row(vec!["3".into()], Verdict::Fail);
        assert_eq!(r.overall(), Verdict::Fail);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = ExperimentReport::new("E00", "t", vec!["a", "b"]);
        r.push_row(vec!["1".into()], Verdict::Pass);
    }

    #[test]
    fn render_contains_everything() {
        let mut r = ExperimentReport::new("E99", "demo title", vec!["side", "mean"]);
        r.push_row(vec!["8".into(), "31.99".into()], Verdict::Pass);
        r.note("a caveat");
        let s = r.render();
        assert!(s.contains("E99"));
        assert!(s.contains("demo title"));
        assert!(s.contains("side"));
        assert!(s.contains("31.99"));
        assert!(s.contains("PASS"));
        assert!(s.contains("note: a caveat"));
        assert!(s.contains("overall: PASS"));
    }

    #[test]
    fn json_round_trip() {
        let mut r = ExperimentReport::new("E01", "t", vec!["x"]);
        r.push_row(vec!["1".into()], Verdict::Marginal);
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, "E01");
        assert_eq!(back.verdicts, vec![Verdict::Marginal]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.123456), "0.1235");
        assert_eq!(fnum(12.345), "12.35");
        assert_eq!(fnum(1234.5), "1234.5");
        assert_eq!(fnum(-3.14159), "-3.1416");
    }

    #[test]
    fn from_bound_check() {
        use meshsort_stats::ci::BoundCheck;
        assert_eq!(Verdict::from_bound_check(BoundCheck::Holds), Verdict::Pass);
        assert_eq!(Verdict::from_bound_check(BoundCheck::Marginal), Verdict::Marginal);
        assert_eq!(Verdict::from_bound_check(BoundCheck::Violated), Verdict::Fail);
        assert!(Verdict::Marginal.acceptable());
        assert!(!Verdict::Fail.acceptable());
    }
}
