//! E11 — Corollary 1: on the adversarial input whose smallest `√N`
//! entries all start in one column, both row-major algorithms need at
//! least `2N − 4√N` steps. Deterministic (no Monte Carlo).

use crate::config::Config;
use crate::report::{fnum, ExperimentReport, Verdict};
use meshsort_core::{AlgorithmId, SortJob};
use meshsort_workloads::adversarial::{smallest_in_one_column, zero_column};

/// Runs the experiment.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E11",
        "Corollary 1: adversarial one-column input costs >= 2N - 4*sqrt(N) steps",
        vec!["algorithm", "input", "side", "N", "steps", "bound 2N-4sqrt(N)", "steps/N"],
    );
    for algorithm in AlgorithmId::ROW_MAJOR {
        for side in cfg.even_sides() {
            let n_cells = side * side;
            let bound = meshsort_exact::paper::corollary1_worst_case(side as u64);
            // The permutation adversary (smallest √N values in column 1).
            let mut grid = smallest_in_one_column(side, 0);
            let run = SortJob::new(algorithm, side).run(&mut grid).expect("even side");
            assert!(run.sorted());
            let verdict = if run.steps >= bound { Verdict::Pass } else { Verdict::Fail };
            report.push_row(
                vec![
                    algorithm.to_string(),
                    "permutation".to_string(),
                    side.to_string(),
                    n_cells.to_string(),
                    run.steps.to_string(),
                    bound.to_string(),
                    fnum(run.steps as f64 / n_cells as f64),
                ],
                verdict,
            );
            // The 0-1 adversary from the proof (α = √N zeros in one column).
            let mut grid = zero_column(side, 0);
            let run = SortJob::new(algorithm, side).run(&mut grid).expect("even side");
            assert!(run.sorted());
            let verdict = if run.steps >= bound { Verdict::Pass } else { Verdict::Fail };
            report.push_row(
                vec![
                    algorithm.to_string(),
                    "0-1 column".to_string(),
                    side.to_string(),
                    n_cells.to_string(),
                    run.steps.to_string(),
                    bound.to_string(),
                    fnum(run.steps as f64 / n_cells as f64),
                ],
                verdict,
            );
        }
    }
    report.note("steps/N settling near 2 shows Corollary 1's constant is tight for this adversary");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_all_pass() {
        let report = run(&Config::quick());
        assert_eq!(report.overall(), Verdict::Pass, "{}", report.render());
    }

    #[test]
    fn bound_is_met_with_small_slack() {
        // The adversary should not wildly exceed the bound either — the
        // worst case is Θ(N) with constant ≈ 2.
        let mut grid = zero_column(8, 0);
        let run = SortJob::new(AlgorithmId::RowMajorRowFirst, 8).run(&mut grid).unwrap();
        let bound = meshsort_exact::paper::corollary1_worst_case(8);
        assert!(run.steps >= bound);
        assert!(run.steps <= 3 * bound, "{}", run.steps);
    }
}
