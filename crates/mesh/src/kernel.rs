//! Compiled segment kernels: branchless step execution.
//!
//! [`CompiledPlan::compile`] lowers a validated [`StepPlan`] to a small
//! segment IR. Because the comparators of one step touch pairwise disjoint
//! cells, they commute, so the compiler first sorts them by their keep-min
//! index and then greedily extracts maximal *arithmetic runs*: sequences of
//! comparators whose keep-min and keep-max indices both advance by the same
//! constant stride. On the workspace's algorithms this recovers exactly the
//! hardware structure of each phase:
//!
//! * a **row phase** (and the merged row-even + wrap-around step of the
//!   row-major algorithms) becomes one stride-2 pair run over the whole
//!   grid,
//! * a **uniform column phase** becomes one stride-1 run of two parallel
//!   windows (`gap = side`) per row pair, which autovectorizes into
//!   elementwise `min`/`max` over two slices,
//! * **staggered column phases** become stride-2 two-window runs,
//! * anything irregular falls back to a scatter segment executed
//!   comparator by comparator.
//!
//! Every segment kernel uses a branchless compare-exchange (conditional
//! moves / vector `min`+`max` for the integer types behind
//! [`KernelValue`]), so the ~50%-mispredicted swap branch the scalar
//! reference engine pays on random data disappears. The engine's generic
//! `Ord` path ([`crate::engine::apply_plan`]) remains the behavioural
//! reference; differential tests pin the two together.

use crate::plan::{Comparator, StepPlan};

mod sealed {
    pub trait Sealed {}
}

/// Cell value types eligible for the branchless kernels.
///
/// Sealed and implemented for the primitive integer types (plus `bool` and
/// `char`), whose compare-exchange lowers to `min`/`max`/`cmov` without a
/// data-dependent branch. Everything else sorts through the generic `Ord`
/// reference path.
pub trait KernelValue: Copy + Ord + sealed::Sealed {
    /// Branchless compare-exchange: `(smaller, larger, swapped)`, where
    /// `swapped` is `true` iff `a > b` — the exact condition under which
    /// the reference engine exchanges a comparator's cells.
    #[inline(always)]
    fn sort2(a: Self, b: Self) -> (Self, Self, bool) {
        let swapped = a > b;
        if swapped {
            (b, a, true)
        } else {
            (a, b, false)
        }
    }
}

macro_rules! impl_kernel_value {
    ($($t:ty),* $(,)?) => {$(
        impl sealed::Sealed for $t {}
        impl KernelValue for $t {}
    )*};
}

impl_kernel_value!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, char);

/// A maximal arithmetic run: comparator `k` (for `k < count`) keeps the
/// smaller value at flat index `min_start + k·stride` and the larger at
/// `max_start + k·stride`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    min_start: u32,
    max_start: u32,
    stride: u32,
    count: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Run(Run),
    Scatter(Vec<Comparator>),
}

/// A [`StepPlan`] lowered to segment IR for branchless execution.
///
/// Compiled once at [`crate::CycleSchedule`] construction and replayed by
/// [`crate::engine::apply_compiled`]. Compilation is lossless up to
/// comparator order: the executed comparator *set* is exactly the plan's
/// (comparators of one step commute because their cells are disjoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPlan {
    segments: Vec<Segment>,
    comparisons: u64,
}

/// Runs shorter than this execute through the scatter fallback; extracting
/// them as runs would cost more dispatch than they save.
const MIN_RUN: usize = 4;

impl CompiledPlan {
    /// Lowers a validated plan to segment IR.
    pub fn compile(plan: &StepPlan) -> CompiledPlan {
        Self::compile_with_min_run(plan, MIN_RUN)
    }

    /// Lowers a plan to segment IR, accepting arithmetic runs of at least
    /// `min_run` comparators (clamped to a floor of 2 — a one-comparator
    /// "run" is just a costlier scatter entry). The default
    /// [`Self::compile`] threshold favours dense canonical steps; the
    /// schedule optimizer (`crate::opt`) compiles its dead-wire-stripped
    /// steps with a lower threshold so the sparse survivor columns still
    /// fuse into runs instead of falling into the scatter path.
    ///
    /// # Panics
    ///
    /// Panics when `min_run` is zero (a zero-length run is meaningless).
    pub fn compile_with_min_run(plan: &StepPlan, min_run: usize) -> CompiledPlan {
        assert!(min_run > 0, "run threshold must be positive");
        let mut cs: Vec<Comparator> = plan.comparators().to_vec();
        // Disjointness makes comparators commute; sorting by the keep-min
        // index exposes each phase's arithmetic structure as long runs.
        cs.sort_unstable_by_key(|c| c.keep_min);

        let mut segments: Vec<Segment> = Vec::new();
        let mut scatter: Vec<Comparator> = Vec::new();
        let mut i = 0usize;
        while i < cs.len() {
            let mut stride = 0i64;
            let mut j = i + 1;
            while j < cs.len() {
                let dmin = i64::from(cs[j].keep_min) - i64::from(cs[j - 1].keep_min);
                let dmax = i64::from(cs[j].keep_max) - i64::from(cs[j - 1].keep_max);
                if dmin != dmax || dmin <= 0 || (j > i + 1 && dmin != stride) {
                    break;
                }
                stride = dmin;
                j += 1;
            }
            let len = j - i;
            if len >= min_run.max(2) {
                if !scatter.is_empty() {
                    segments.push(Segment::Scatter(std::mem::take(&mut scatter)));
                }
                segments.push(Segment::Run(Run {
                    min_start: cs[i].keep_min,
                    max_start: cs[i].keep_max,
                    stride: stride as u32,
                    count: len as u32,
                }));
                i = j;
            } else {
                scatter.push(cs[i]);
                i += 1;
            }
        }
        if !scatter.is_empty() {
            segments.push(Segment::Scatter(scatter));
        }
        CompiledPlan { segments, comparisons: plan.len() as u64 }
    }

    /// Number of comparators the compiled step evaluates — equal to the
    /// source plan's [`StepPlan::len`].
    #[inline]
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Re-expands the IR to a comparator list. The result is a permutation
    /// of the source plan's comparators (same set, possibly reordered);
    /// tests assert this losslessness on random plans.
    pub fn expand(&self) -> Vec<Comparator> {
        let mut out = Vec::with_capacity(self.comparisons as usize);
        for seg in &self.segments {
            match seg {
                Segment::Run(r) => {
                    for k in 0..r.count {
                        out.push(Comparator::new(
                            r.min_start + k * r.stride,
                            r.max_start + k * r.stride,
                        ));
                    }
                }
                Segment::Scatter(cs) => out.extend_from_slice(cs),
            }
        }
        out
    }

    /// Number of run segments (the rest is scatter) — exposed for tests
    /// asserting that algorithm phases compile to the expected shape.
    pub fn run_segments(&self) -> usize {
        self.segments.iter().filter(|s| matches!(s, Segment::Run(_))).count()
    }

    /// Executes the compiled step over a data slice, returning the number
    /// of exchanges. Indices must be in bounds (guaranteed when the source
    /// plan passed [`StepPlan::check_bounds`], as every plan inside a
    /// [`crate::CycleSchedule`] has).
    pub fn execute<T: KernelValue>(&self, data: &mut [T]) -> u64 {
        let mut swaps = 0u64;
        for seg in &self.segments {
            match seg {
                Segment::Run(r) => swaps += u64::from(exec_run(data, *r)),
                Segment::Scatter(cs) => {
                    for c in cs {
                        let (lo, hi) = (c.keep_min as usize, c.keep_max as usize);
                        let (mn, mx, s) = T::sort2(data[lo], data[hi]);
                        data[lo] = mn;
                        data[hi] = mx;
                        swaps += u64::from(s);
                    }
                }
            }
        }
        swaps
    }
}

/// Branchless compare-exchange into two slots (smaller value into `mn`).
///
/// The swap tally is `u32` on purpose: a run holds at most `u32::MAX`
/// comparators (indices are `u32`), each contributing at most one swap, and
/// the narrower accumulator is what lets LLVM keep the whole loop in vector
/// registers — a 64-bit tally forces a widening step that blocks
/// vectorization outright (~2.5× slower on the two-window path).
#[inline(always)]
pub(crate) fn cx_slots<T: KernelValue>(mn: &mut T, mx: &mut T, swaps: &mut u32) {
    let a = *mn;
    let b = *mx;
    let s = a > b;
    *mn = if s { b } else { a };
    *mx = if s { a } else { b };
    *swaps += u32::from(s);
}

fn exec_run<T: KernelValue>(data: &mut [T], run: Run) -> u32 {
    let lo0 = run.min_start as usize;
    let hi0 = run.max_start as usize;
    let stride = run.stride as usize;
    let count = run.count as usize;
    let mut swaps = 0u32;

    // The keep-min window starts at `lo0`, the keep-max window at `hi0`;
    // `base` is whichever comes first in memory.
    let (base, gap, min_is_low) =
        if lo0 < hi0 { (lo0, hi0 - lo0, true) } else { (hi0, lo0 - hi0, false) };

    if stride == 1 && gap >= count {
        // Two parallel contiguous windows (uniform column phases, wrap-free
        // chains): elementwise min/max over two slices — autovectorizes.
        let (a, b) = data[base..base + gap + count].split_at_mut(gap);
        let a = &mut a[..count];
        if min_is_low {
            for (mn, mx) in a.iter_mut().zip(b.iter_mut()) {
                cx_slots(mn, mx, &mut swaps);
            }
        } else {
            for (mx, mn) in a.iter_mut().zip(b.iter_mut()) {
                cx_slots(mn, mx, &mut swaps);
            }
        }
    } else if stride == 2 && gap == 1 {
        // Adjacent pairs (row phases; the merged row-even + wrap step forms
        // one such run across the whole grid). The branchless select keeps
        // throughput data-independent — a branchy swap mispredicts its way to
        // ~5× slower on random data even though it looks faster on
        // already-sorted steady state.
        let span = &mut data[base..base + 2 * count];
        if min_is_low {
            for pair in span.chunks_exact_mut(2) {
                let (a, b) = (pair[0], pair[1]);
                let s = a > b;
                pair[0] = if s { b } else { a };
                pair[1] = if s { a } else { b };
                swaps += u32::from(s);
            }
        } else {
            for pair in span.chunks_exact_mut(2) {
                let (a, b) = (pair[1], pair[0]);
                let s = a > b;
                pair[1] = if s { b } else { a };
                pair[0] = if s { a } else { b };
                swaps += u32::from(s);
            }
        }
    } else if stride > 1 && gap > stride * (count - 1) {
        // Two disjoint strided windows (staggered column phases): split,
        // then walk both with the same stride.
        let (a, b) = data.split_at_mut(base + gap);
        let ia = a[base..].iter_mut().step_by(stride).take(count);
        let ib = b.iter_mut().step_by(stride).take(count);
        if min_is_low {
            for (mn, mx) in ia.zip(ib) {
                cx_slots(mn, mx, &mut swaps);
            }
        } else {
            for (mx, mn) in ia.zip(ib) {
                cx_slots(mn, mx, &mut swaps);
            }
        }
    } else {
        // General constant-stride run (wrap chains executed standalone:
        // stride = side, gap = 1). Still branchless, just not sliceable.
        for k in 0..count {
            let lo = lo0 + k * stride;
            let hi = hi0 + k * stride;
            let (mn, mx, s) = T::sort2(data[lo], data[hi]);
            data[lo] = mn;
            data[hi] = mx;
            swaps += u32::from(s);
        }
    }
    swaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::apply_plan;
    use crate::grid::Grid;

    fn compiled_matches_reference(plan: &StepPlan, data: Vec<u32>, side: usize) {
        let mut a = Grid::from_rows(side, data.clone()).unwrap();
        let mut b = Grid::from_rows(side, data).unwrap();
        let out = apply_plan(&mut a, plan);
        let compiled = CompiledPlan::compile(plan);
        let swaps = compiled.execute(b.as_mut_slice());
        assert_eq!(a, b, "grids diverged");
        assert_eq!(out.swaps, swaps, "swap counts diverged");
        assert_eq!(out.comparisons, compiled.comparisons());
    }

    #[test]
    fn sort2_semantics() {
        assert_eq!(u32::sort2(3, 5), (3, 5, false));
        assert_eq!(u32::sort2(5, 3), (3, 5, true));
        assert_eq!(u32::sort2(4, 4), (4, 4, false));
    }

    #[test]
    fn row_phase_compiles_to_single_pair_run() {
        // Odd row phase on a 6×6 mesh: pairs (2k, 2k+1) in every row —
        // after sorting by keep-min this is one stride-2 run.
        let side = 6;
        let pairs: Vec<(u32, u32)> = (0..side)
            .flat_map(|r| {
                (0..side / 2).map(move |k| {
                    let base = (r * side + 2 * k) as u32;
                    (base, base + 1)
                })
            })
            .collect();
        let plan = StepPlan::from_pairs(pairs).unwrap();
        let compiled = CompiledPlan::compile(&plan);
        assert_eq!(compiled.run_segments(), 1);
        compiled_matches_reference(&plan, (0..36u32).rev().collect(), side);
    }

    #[test]
    fn column_phase_compiles_to_stride1_runs() {
        // Odd column phase on 6×6: per row pair, one stride-1 two-window
        // run of length `side`.
        let side = 6usize;
        let pairs: Vec<(u32, u32)> = (0..side)
            .flat_map(|c| {
                (0..side / 2).map(move |k| {
                    let top = (2 * k * side + c) as u32;
                    (top, top + side as u32)
                })
            })
            .collect();
        let plan = StepPlan::from_pairs(pairs).unwrap();
        let compiled = CompiledPlan::compile(&plan);
        assert_eq!(compiled.run_segments(), side / 2);
        compiled_matches_reference(&plan, (0..36u32).rev().collect(), side);
    }

    #[test]
    fn reverse_direction_run() {
        // Reverse bubble pairs: keep-min on the right.
        let pairs: Vec<(u32, u32)> = (0..8).map(|k| (2 * k + 1, 2 * k)).collect();
        let plan = StepPlan::from_pairs(pairs).unwrap();
        compiled_matches_reference(&plan, (0..16u32).collect(), 4);
    }

    #[test]
    fn wrap_chain_run() {
        // Wrap wires on a 4×4 mesh: (r·s + s−1, (r+1)·s) — stride-s, gap-1.
        let side = 4u32;
        let pairs: Vec<(u32, u32)> =
            (0..side - 1).map(|r| (r * side + side - 1, (r + 1) * side)).collect();
        let plan = StepPlan::from_pairs(pairs).unwrap();
        compiled_matches_reference(&plan, (0..16u32).rev().collect(), side as usize);
    }

    #[test]
    fn staggered_columns_strided_windows() {
        // Stride-2 gap-`side` runs: odd-phase on even columns of an 8×8.
        let side = 8usize;
        let pairs: Vec<(u32, u32)> = (0..side / 2)
            .flat_map(|k| {
                (0..side).step_by(2).map(move |c| {
                    let top = (2 * k * side + c) as u32;
                    (top, top + side as u32)
                })
            })
            .collect();
        let plan = StepPlan::from_pairs(pairs).unwrap();
        let data: Vec<u32> = (0..64u32).map(|v| v.wrapping_mul(2654435761) % 97).collect();
        compiled_matches_reference(&plan, data, side);
    }

    #[test]
    fn tiny_plans_scatter() {
        let plan = StepPlan::from_pairs(vec![(0, 5), (7, 2)]).unwrap();
        let compiled = CompiledPlan::compile(&plan);
        assert_eq!(compiled.run_segments(), 0);
        compiled_matches_reference(&plan, vec![9, 3, 1, 4, 1, 5, 9, 2, 6], 3);
    }

    #[test]
    fn empty_plan() {
        let compiled = CompiledPlan::compile(&StepPlan::empty());
        assert_eq!(compiled.comparisons(), 0);
        let mut data: Vec<u32> = vec![3, 1];
        assert_eq!(compiled.execute(&mut data), 0);
        assert_eq!(data, vec![3, 1]);
    }

    #[test]
    fn expand_is_lossless_up_to_order() {
        let plan =
            StepPlan::from_pairs(vec![(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (11, 10)]).unwrap();
        let compiled = CompiledPlan::compile(&plan);
        let mut expanded = compiled.expand();
        let mut original = plan.comparators().to_vec();
        let key = |c: &Comparator| (c.keep_min, c.keep_max);
        expanded.sort_unstable_by_key(key);
        original.sort_unstable_by_key(key);
        assert_eq!(expanded, original);
    }

    #[test]
    fn duplicates_do_not_count_as_swaps() {
        let pairs: Vec<(u32, u32)> = (0..4).map(|k| (2 * k, 2 * k + 1)).collect();
        let plan = StepPlan::from_pairs(pairs).unwrap();
        let compiled = CompiledPlan::compile(&plan);
        let mut data = vec![7u32; 8];
        assert_eq!(compiled.execute(&mut data), 0);
    }
}
