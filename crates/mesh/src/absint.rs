//! Static dataflow analysis of comparator schedules in the 0-1 domain.
//!
//! `meshcheck`'s structural pass proves a schedule is *well-formed*; this
//! module proves things about what the schedule *computes*, without ever
//! running it on data. It abstract-interprets the comparator network over
//! the paper's own lens — 0-1 inputs — using a relational abstract domain
//! of pairwise ordering facts:
//!
//! > `le(x, y)` — "for **every** 0-1 input, after the steps executed so
//! > far, the value held by cell `x` is ≤ the value held by cell `y`."
//!
//! A fact set is an `N × N` bit matrix ([`OrderFacts`]). Each per-cell
//! abstract value is then the three-valued `{0, 1, ⊤}` read-out relative
//! to any anchor cell (`le(x, a)` ∧ `le(a, x)` pins `x` to `a`'s class;
//! neither fact is `⊤`), but keeping the *relation* rather than one value
//! per cell is what lets facts survive a compare-exchange. By the 0-1
//! principle, every fact quantified over 0-1 inputs holds for arbitrary
//! inputs, so everything proven here transfers to the real engine.
//!
//! ## Transfer function
//!
//! One synchronous step applies disjoint comparators simultaneously: the
//! `keep_min` end of a wire `(i, j)` receives `min(vᵢ, vⱼ)` and the
//! `keep_max` end `max(vᵢ, vⱼ)`. The exact pairwise consequences are:
//!
//! * `min(a, b) ≤ t`  ⇐ `le(a, t)` **or** `le(b, t)`;
//! * `max(a, b) ≤ t`  ⇐ `le(a, t)` **and** `le(b, t)`;
//! * `s ≤ min(a, b)`  ⇐ `le(s, a)` **and** `le(s, b)`;
//! * `s ≤ max(a, b)`  ⇐ `le(s, a)` **or** `le(s, b)`.
//!
//! [`OrderFacts::apply_step`] evaluates these as two sweeps — a row sweep
//! combining facts over each wire's *source* side, then a column sweep
//! over the *target* side — and, because AND-of-OR and OR-of-AND nestings
//! are incomparable in precision when both endpoints of a fact are
//! rewritten in the same step, it runs both sweep orders and unions the
//! (individually sound) results. Applying a step's comparators
//! sequentially instead would lose precision: a wire may consume a fact
//! that a sibling wire of the same step still needs.
//!
//! The transfer is monotone, so iterating the cycle from the empty fact
//! set yields a non-decreasing chain of cycle-boundary states that reaches
//! a fixpoint within `N² + 1` cycles (in practice a handful).
//!
//! ## What the fixpoint yields
//!
//! * **Dead comparators** ([`DataflowSummary::dead_first_cycle`]): a wire
//!   whose `le(keep_min, keep_max)` fact already holds when it first
//!   executes can never swap — for any input, at any cycle (facts entering
//!   a step only grow with the cycle index). The canonical schedules are
//!   fully live except S3: its phase-aligned rows make every second
//!   staggered-column step's interior wire provably dead (see
//!   `AlgorithmId::expected_dead_wire` in `meshsort-core` for the closed
//!   form — a property of the paper's schedule this analysis surfaced).
//! * **Phase invariants**: the first step after which every row (every
//!   mesh column) is provably sorted in target-rank direction, and whether
//!   that invariant, once established, persists through the remaining
//!   steps — the static form of the paper's "column phases preserve row
//!   sortedness" lemmas.
//! * **A static convergence bound** ([`DataflowSummary::converged_step`]):
//!   the first step at which the facts imply the full target-order chain.
//!   From that step on, every input is sorted, so the bound must dominate
//!   nothing and be dominated by the runner's Θ(N) step budget — the
//!   `dataflow` pass in `meshsort-analyze` gates on exactly that.
//! * **Sorted state is a fixed point** ([`verify_sorted_fixed_point`]):
//!   seeding the facts with the target total order must make every wire of
//!   one full cycle dead. A single flipped comparator direction violates
//!   this even when it preserves structural validity.

use crate::order::TargetOrder;
use crate::plan::{Comparator, StepPlan};
use crate::schedule::CycleSchedule;

/// Pairwise ordering facts over the cells of a mesh: bit `(x, y)` is set
/// when `value(x) ≤ value(y)` holds for every 0-1 input at the current
/// program point. The diagonal is always set (reflexivity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderFacts {
    cells: usize,
    words: usize,
    bits: Vec<u64>,
}

impl OrderFacts {
    /// The fact set describing an arbitrary (unconstrained) input: only
    /// the reflexive facts hold.
    pub fn unconstrained(cells: usize) -> OrderFacts {
        let words = cells.div_ceil(64);
        let mut facts = OrderFacts { cells, words, bits: vec![0; cells * words] };
        for x in 0..cells {
            facts.insert(x, x);
        }
        facts
    }

    /// The fact set describing a grid sorted in `order`: `le(x, y)` for
    /// every pair with `rank(x) ≤ rank(y)`.
    pub fn sorted(order: TargetOrder, side: usize) -> OrderFacts {
        let cells = side * side;
        let rank = order.flat_to_rank_table(side);
        let mut facts = OrderFacts::unconstrained(cells);
        for x in 0..cells {
            for y in 0..cells {
                if rank[x] <= rank[y] {
                    facts.insert(x, y);
                }
            }
        }
        facts
    }

    /// Number of cells the facts range over.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// `true` when `value(x) ≤ value(y)` is proven for every input.
    pub fn le(&self, x: usize, y: usize) -> bool {
        self.bits[x * self.words + y / 64] >> (y % 64) & 1 == 1
    }

    /// Number of proven facts (including the `cells` reflexive ones).
    pub fn count(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    fn insert(&mut self, x: usize, y: usize) {
        self.bits[x * self.words + y / 64] |= 1 << (y % 64);
    }

    fn assign(&mut self, x: usize, y: usize, value: bool) {
        let idx = x * self.words + y / 64;
        let mask = 1u64 << (y % 64);
        if value {
            self.bits[idx] |= mask;
        } else {
            self.bits[idx] &= !mask;
        }
    }

    /// Combines facts over each wire's *source* (left-hand) side: after
    /// this sweep, row `x` holds `le'(x, y)` for the step's new `x` values
    /// against the step's *old* `y` values.
    fn source_sweep(&mut self, plan: &StepPlan) {
        let words = self.words;
        for c in plan.comparators() {
            let (i, j) = (c.keep_min as usize, c.keep_max as usize);
            for k in 0..words {
                let row_i = self.bits[i * words + k];
                let row_j = self.bits[j * words + k];
                // min(i, j) ≤ t when either source is; max needs both.
                self.bits[i * words + k] = row_i | row_j;
                self.bits[j * words + k] = row_i & row_j;
            }
        }
    }

    /// Combines facts over each wire's *target* (right-hand) side, the
    /// column-wise dual of [`OrderFacts::source_sweep`].
    fn target_sweep(&mut self, plan: &StepPlan) {
        for x in 0..self.cells {
            for c in plan.comparators() {
                let (i, j) = (c.keep_min as usize, c.keep_max as usize);
                let to_i = self.le(x, i);
                let to_j = self.le(x, j);
                // s ≤ min(i, j) needs both targets; s ≤ max needs either.
                self.assign(x, i, to_i && to_j);
                self.assign(x, j, to_i || to_j);
            }
        }
    }

    /// Applies one synchronous step: all of `plan`'s comparators at once.
    ///
    /// Runs both sweep nestings (source-then-target and target-then-source)
    /// and unions the results; each nesting alone is sound, and they are
    /// incomparable in precision for facts whose two endpoints are both
    /// rewritten by the step (min-vs-min favours the former, max-vs-max
    /// the latter).
    pub fn apply_step(&mut self, plan: &StepPlan) {
        let mut by_source = self.clone();
        by_source.source_sweep(plan);
        by_source.target_sweep(plan);
        let mut by_target = self.clone();
        by_target.target_sweep(plan);
        by_target.source_sweep(plan);
        for (a, b) in by_source.bits.iter_mut().zip(by_target.bits.iter()) {
            *a |= b;
        }
        *self = by_source;
    }

    /// `true` when every fact of `other` is also proven here.
    pub fn contains(&self, other: &OrderFacts) -> bool {
        self.bits.iter().zip(other.bits.iter()).all(|(a, b)| a & b == *b)
    }

    /// The adjacent-rank chain links of `order` **not** yet proven; empty
    /// exactly when the facts imply the full target order (the grid is
    /// provably sorted).
    pub fn missing_chain_links(&self, order: TargetOrder, side: usize) -> Vec<(u32, u32)> {
        order
            .rank_to_flat_table(side)
            .windows(2)
            .filter(|pair| !self.le(pair[0] as usize, pair[1] as usize))
            .map(|pair| (pair[0], pair[1]))
            .collect()
    }

    /// `true` when every row of the mesh is provably sorted in the
    /// direction its target ranks increase.
    pub fn rows_sorted(&self, order: TargetOrder, side: usize) -> bool {
        let rank = order.flat_to_rank_table(side);
        (0..side).all(|r| {
            (0..side - 1).all(|c| {
                let a = r * side + c;
                let b = a + 1;
                if rank[a] < rank[b] {
                    self.le(a, b)
                } else {
                    self.le(b, a)
                }
            })
        })
    }

    /// `true` when every mesh column is provably sorted top→bottom (target
    /// ranks increase downwards in both orders).
    pub fn cols_sorted(&self, order: TargetOrder, side: usize) -> bool {
        let rank = order.flat_to_rank_table(side);
        (0..side.saturating_sub(1)).all(|r| {
            (0..side).all(|c| {
                let a = r * side + c;
                let b = a + side;
                if rank[a] < rank[b] {
                    self.le(a, b)
                } else {
                    self.le(b, a)
                }
            })
        })
    }
}

/// A comparator the analysis proved can never swap, for any input, at any
/// of its executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadWire {
    /// Cycle step (0-indexed) the wire belongs to.
    pub step: usize,
    /// The wire itself.
    pub comparator: Comparator,
}

/// Everything the dataflow fixpoint proves about one schedule. Produced by
/// [`analyze_schedule`]; interpreted (and gated) by the `dataflow` pass of
/// `meshsort-analyze`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowSummary {
    /// Mesh side the schedule was analysed at.
    pub side: usize,
    /// Full cycles iterated until the cycle-boundary facts stopped
    /// changing.
    pub cycles_to_fixpoint: u64,
    /// Proven facts at the fixpoint: `N(N+1)/2` (reflexive plus every
    /// ordered pair) exactly when the total order is proven.
    pub facts_at_fixpoint: u32,
    /// Wires already implied at their first execution — dead forever.
    pub dead_first_cycle: Vec<DeadWire>,
    /// First step (1-indexed; `Some(0)` for a single-cell mesh) at which
    /// the facts imply the full target-order chain: the static convergence
    /// bound. `None` when the fixpoint cannot prove convergence.
    pub converged_step: Option<u64>,
    /// First step after which every row is provably sorted.
    pub rows_sorted_step: Option<u64>,
    /// Step at which row sortedness, once established, was lost again
    /// (`None` = the invariant persisted — the paper's preservation lemma).
    pub rows_regressed_step: Option<u64>,
    /// First step after which every mesh column is provably sorted.
    pub cols_sorted_step: Option<u64>,
    /// Step at which column sortedness, once established, was lost again.
    pub cols_regressed_step: Option<u64>,
    /// Chain links still unproven at the fixpoint (empty when
    /// [`DataflowSummary::converged_step`] is `Some`).
    pub missing_chain_links: Vec<(u32, u32)>,
}

/// Runs the dataflow fixpoint for one schedule.
///
/// Iterates the cycle from the unconstrained seed, recording first-cycle
/// dead wires and the step milestones, until the cycle-boundary facts
/// repeat (guaranteed within `N² + 1` cycles by monotonicity).
///
/// # Panics
///
/// When the schedule was not compiled for `side * side` cells.
pub fn analyze_schedule(
    schedule: &CycleSchedule,
    order: TargetOrder,
    side: usize,
) -> DataflowSummary {
    let cells = side * side;
    for plan in schedule.plans() {
        plan.check_bounds(cells).expect("schedule compiled for side * side cells");
    }
    let mut facts = OrderFacts::unconstrained(cells);
    let mut summary = DataflowSummary {
        side,
        cycles_to_fixpoint: 0,
        facts_at_fixpoint: 0,
        dead_first_cycle: Vec::new(),
        converged_step: None,
        rows_sorted_step: None,
        rows_regressed_step: None,
        cols_sorted_step: None,
        cols_regressed_step: None,
        missing_chain_links: Vec::new(),
    };
    let mut step_count = 0u64;
    observe(&mut summary, &facts, order, side, step_count);
    let mut boundary = facts.clone();
    let max_cycles = (cells * cells + 1) as u64;
    for cycle in 0..max_cycles {
        for (step, plan) in schedule.plans().iter().enumerate() {
            if cycle == 0 {
                for &comparator in plan.comparators() {
                    if facts.le(comparator.keep_min as usize, comparator.keep_max as usize) {
                        summary.dead_first_cycle.push(DeadWire { step, comparator });
                    }
                }
            }
            facts.apply_step(plan);
            step_count += 1;
            observe(&mut summary, &facts, order, side, step_count);
        }
        summary.cycles_to_fixpoint = cycle + 1;
        if facts == boundary {
            break;
        }
        debug_assert!(facts.contains(&boundary), "cycle-boundary facts must be non-decreasing");
        boundary = facts.clone();
    }
    summary.facts_at_fixpoint = facts.count();
    summary.missing_chain_links = facts.missing_chain_links(order, side);
    summary
}

/// Updates the milestone fields of `summary` after `steps` total steps.
fn observe(
    summary: &mut DataflowSummary,
    facts: &OrderFacts,
    order: TargetOrder,
    side: usize,
    steps: u64,
) {
    let rows = facts.rows_sorted(order, side);
    if summary.rows_sorted_step.is_none() {
        if rows {
            summary.rows_sorted_step = Some(steps);
        }
    } else if !rows && summary.rows_regressed_step.is_none() {
        summary.rows_regressed_step = Some(steps);
    }
    let cols = facts.cols_sorted(order, side);
    if summary.cols_sorted_step.is_none() {
        if cols {
            summary.cols_sorted_step = Some(steps);
        }
    } else if !cols && summary.cols_regressed_step.is_none() {
        summary.cols_regressed_step = Some(steps);
    }
    if summary.converged_step.is_none() && facts.missing_chain_links(order, side).is_empty() {
        summary.converged_step = Some(steps);
    }
}

/// A comparator that can still swap when the grid is already sorted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortedLiveWire {
    /// Cycle step (0-indexed) the wire belongs to.
    pub step: usize,
    /// The offending wire.
    pub comparator: Comparator,
}

/// Proves the sorted state is a fixed point of the schedule: seeded with
/// the full target order, every comparator of one cycle must already be
/// implied (dead) when it executes.
///
/// # Errors
///
/// The first wire that could swap on a sorted grid — which is exactly what
/// a direction flip that survives structural checking produces.
pub fn verify_sorted_fixed_point(
    schedule: &CycleSchedule,
    order: TargetOrder,
    side: usize,
) -> Result<(), SortedLiveWire> {
    let mut facts = OrderFacts::sorted(order, side);
    for (step, plan) in schedule.plans().iter().enumerate() {
        for &comparator in plan.comparators() {
            if !facts.le(comparator.keep_min as usize, comparator.keep_max as usize) {
                return Err(SortedLiveWire { step, comparator });
            }
        }
        facts.apply_step(plan);
    }
    debug_assert!(
        facts.missing_chain_links(order, side).is_empty(),
        "a cycle of dead wires must preserve the sorted chain"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(a: u32, b: u32) -> Comparator {
        Comparator::new(a, b)
    }

    /// A hand-rolled row-major sorter for the 2×2 mesh: rows, columns,
    /// then the middle pair (cells 1 and 2 are rank-adjacent).
    fn tiny_sorter() -> CycleSchedule {
        CycleSchedule::new(
            vec![
                StepPlan::new(vec![wire(0, 1), wire(2, 3)]).unwrap(),
                StepPlan::new(vec![wire(0, 2), wire(1, 3)]).unwrap(),
                StepPlan::new(vec![wire(1, 2)]).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn comparator_establishes_its_fact() {
        let mut f = OrderFacts::unconstrained(4);
        assert!(!f.le(0, 1));
        f.apply_step(&StepPlan::new(vec![wire(0, 1)]).unwrap());
        assert!(f.le(0, 1));
        assert!(!f.le(1, 0), "the reverse fact must not appear");
        assert!(!f.le(2, 3), "untouched cells stay unconstrained");
    }

    #[test]
    fn min_end_facts_combine_with_or_max_end_with_and() {
        // Establish le(1, 2), then compare (0, 1) — min kept at cell 0,
        // max at cell 1.
        let mut f = OrderFacts::unconstrained(4);
        f.apply_step(&StepPlan::new(vec![wire(1, 2)]).unwrap());
        f.apply_step(&StepPlan::new(vec![wire(0, 1)]).unwrap());
        // min(v0, v1) ≤ old v1 ≤ v2, so le(0, 2) must be proven …
        assert!(f.le(0, 2));
        // … but max(v0, v1) ≤ v2 needs BOTH old v0 ≤ v2 and old v1 ≤ v2,
        // and v0 was unconstrained.
        assert!(!f.le(1, 2));
    }

    #[test]
    fn simultaneous_step_preserves_min_chain_through_column_phase() {
        // Sorted rows le(0,1) and le(2,3), then one COLUMN step with both
        // wires (0,2) and (1,3) at once. The min ends satisfy
        // min(v0,v2) ≤ min(v1,v3) (each source of the left min is ≤ some
        // source of the right min), and the simultaneous transfer proves
        // it. Applying the same two wires as separate steps in the order
        // (1,3) then (0,2) loses the fact: (1,3) rewrites cell 1 while
        // le(0,3) is not yet derivable, so le(0,1) is dropped and nothing
        // restores it. This precision is why column phases preserve row
        // sortedness in the five-algorithm proofs.
        let rows = StepPlan::new(vec![wire(0, 1), wire(2, 3)]).unwrap();
        let cols = StepPlan::new(vec![wire(0, 2), wire(1, 3)]).unwrap();
        let mut simultaneous = OrderFacts::unconstrained(4);
        simultaneous.apply_step(&rows);
        simultaneous.apply_step(&cols);
        assert!(simultaneous.le(0, 1), "min-chain fact must survive the column step");
        assert!(simultaneous.le(2, 3), "max-chain fact survives too on 2×2");

        let mut sequential = OrderFacts::unconstrained(4);
        sequential.apply_step(&rows);
        sequential.apply_step(&StepPlan::new(vec![wire(1, 3)]).unwrap());
        sequential.apply_step(&StepPlan::new(vec![wire(0, 2)]).unwrap());
        assert!(!sequential.le(0, 1), "sequential application is strictly less precise");
    }

    #[test]
    fn tiny_sorter_converges_and_is_fully_live() {
        let s = tiny_sorter();
        let summary = analyze_schedule(&s, TargetOrder::RowMajor, 2);
        assert_eq!(summary.converged_step, Some(3), "rows, cols, middle pair: 3 steps");
        assert!(summary.dead_first_cycle.is_empty());
        assert!(summary.missing_chain_links.is_empty());
        assert!(summary.rows_sorted_step.is_some());
        assert_eq!(summary.rows_regressed_step, None);
        assert_eq!(summary.facts_at_fixpoint, 4 + 6, "reflexive + full total order");
    }

    #[test]
    fn sorted_state_is_fixed_point_of_tiny_sorter() {
        assert_eq!(verify_sorted_fixed_point(&tiny_sorter(), TargetOrder::RowMajor, 2), Ok(()));
    }

    #[test]
    fn flipped_wire_is_live_on_sorted_grid() {
        // Flip the middle wire: keep the larger value at rank 1.
        let s = CycleSchedule::new(
            vec![
                StepPlan::new(vec![wire(0, 1), wire(2, 3)]).unwrap(),
                StepPlan::new(vec![wire(0, 2), wire(1, 3)]).unwrap(),
                StepPlan::new(vec![wire(2, 1)]).unwrap(),
            ],
            4,
        )
        .unwrap();
        let err = verify_sorted_fixed_point(&s, TargetOrder::RowMajor, 2).unwrap_err();
        assert_eq!(err, SortedLiveWire { step: 2, comparator: wire(2, 1) });
    }

    #[test]
    fn duplicated_wire_is_dead_at_second_execution() {
        // (0, 1) twice in a row: the second execution is provably dead.
        let s = CycleSchedule::new(
            vec![
                StepPlan::new(vec![wire(0, 1)]).unwrap(),
                StepPlan::new(vec![wire(0, 1)]).unwrap(),
            ],
            4,
        )
        .unwrap();
        let summary = analyze_schedule(&s, TargetOrder::RowMajor, 2);
        assert_eq!(summary.dead_first_cycle, vec![DeadWire { step: 1, comparator: wire(0, 1) }]);
    }

    #[test]
    fn truncated_schedule_cannot_prove_convergence() {
        // Rows only: the column pairs are never related.
        let s = CycleSchedule::new(vec![StepPlan::new(vec![wire(0, 1), wire(2, 3)]).unwrap()], 4)
            .unwrap();
        let summary = analyze_schedule(&s, TargetOrder::RowMajor, 2);
        assert_eq!(summary.converged_step, None);
        assert!(!summary.missing_chain_links.is_empty());
        assert!(summary.rows_sorted_step.is_some(), "rows alone are still proven");
    }

    #[test]
    fn single_cell_mesh_is_trivially_converged() {
        let s = CycleSchedule::new(vec![StepPlan::empty()], 1).unwrap();
        let summary = analyze_schedule(&s, TargetOrder::Snake, 1);
        assert_eq!(summary.converged_step, Some(0));
        assert!(summary.dead_first_cycle.is_empty());
    }

    #[test]
    fn boundary_facts_are_monotone() {
        // Directly iterate the tiny sorter and check cycle-boundary
        // containment — the property the fixpoint argument rests on.
        let s = tiny_sorter();
        let mut facts = OrderFacts::unconstrained(4);
        let mut previous = facts.clone();
        for _ in 0..6 {
            for plan in s.plans() {
                facts.apply_step(plan);
            }
            assert!(facts.contains(&previous));
            previous = facts.clone();
        }
    }

    #[test]
    fn sorted_seed_counts_all_pairs() {
        let f = OrderFacts::sorted(TargetOrder::Snake, 2);
        // 4 reflexive + C(4,2) ordered pairs.
        assert_eq!(f.count(), 10);
        assert!(f.missing_chain_links(TargetOrder::Snake, 2).is_empty());
    }
}
