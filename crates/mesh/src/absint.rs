//! Static dataflow analysis of comparator schedules in the 0-1 domain.
//!
//! `meshcheck`'s structural pass proves a schedule is *well-formed*; this
//! module proves things about what the schedule *computes*, without ever
//! running it on data. It abstract-interprets the comparator network over
//! the paper's own lens — 0-1 inputs — using a relational abstract domain
//! of pairwise ordering facts:
//!
//! > `le(x, y)` — "for **every** 0-1 input, after the steps executed so
//! > far, the value held by cell `x` is ≤ the value held by cell `y`."
//!
//! A fact set is an `N × N` bit matrix ([`OrderFacts`]). Each per-cell
//! abstract value is then the three-valued `{0, 1, ⊤}` read-out relative
//! to any anchor cell (`le(x, a)` ∧ `le(a, x)` pins `x` to `a`'s class;
//! neither fact is `⊤`), but keeping the *relation* rather than one value
//! per cell is what lets facts survive a compare-exchange. By the 0-1
//! principle, every fact quantified over 0-1 inputs holds for arbitrary
//! inputs, so everything proven here transfers to the real engine.
//!
//! ## Transfer function
//!
//! One synchronous step applies disjoint comparators simultaneously: the
//! `keep_min` end of a wire `(i, j)` receives `min(vᵢ, vⱼ)` and the
//! `keep_max` end `max(vᵢ, vⱼ)`. The exact pairwise consequences are:
//!
//! * `min(a, b) ≤ t`  ⇐ `le(a, t)` **or** `le(b, t)`;
//! * `max(a, b) ≤ t`  ⇐ `le(a, t)` **and** `le(b, t)`;
//! * `s ≤ min(a, b)`  ⇐ `le(s, a)` **and** `le(s, b)`;
//! * `s ≤ max(a, b)`  ⇐ `le(s, a)` **or** `le(s, b)`.
//!
//! [`OrderFacts::apply_step`] evaluates these as two sweeps — a row sweep
//! combining facts over each wire's *source* side, then a column sweep
//! over the *target* side — and, because AND-of-OR and OR-of-AND nestings
//! are incomparable in precision when both endpoints of a fact are
//! rewritten in the same step, it runs both sweep orders and unions the
//! (individually sound) results. Applying a step's comparators
//! sequentially instead would lose precision: a wire may consume a fact
//! that a sibling wire of the same step still needs.
//!
//! The transfer is monotone, so iterating the cycle from the empty fact
//! set yields a non-decreasing chain of cycle-boundary states that reaches
//! a fixpoint within `N² + 1` cycles (in practice a handful).
//!
//! ## What the fixpoint yields
//!
//! * **Dead comparators** ([`DataflowSummary::dead_first_cycle`]): a wire
//!   whose `le(keep_min, keep_max)` fact already holds when it first
//!   executes can never swap — for any input, at any cycle (facts entering
//!   a step only grow with the cycle index). The canonical schedules are
//!   fully live except S3: its phase-aligned rows make every second
//!   staggered-column step's interior wire provably dead (see
//!   `AlgorithmId::expected_dead_wire` in `meshsort-core` for the closed
//!   form — a property of the paper's schedule this analysis surfaced).
//! * **Phase invariants**: the first step after which every row (every
//!   mesh column) is provably sorted in target-rank direction, and whether
//!   that invariant, once established, persists through the remaining
//!   steps — the static form of the paper's "column phases preserve row
//!   sortedness" lemmas.
//! * **A static convergence bound** ([`DataflowSummary::converged_step`]):
//!   the first step at which the facts imply the full target-order chain.
//!   From that step on, every input is sorted, so the bound must dominate
//!   nothing and be dominated by the runner's Θ(N) step budget — the
//!   `dataflow` pass in `meshsort-analyze` gates on exactly that.
//! * **Sorted state is a fixed point** ([`verify_sorted_fixed_point`]):
//!   seeding the facts with the target total order must make every wire of
//!   one full cycle dead. A single flipped comparator direction violates
//!   this even when it preserves structural validity.

use crate::order::TargetOrder;
use crate::plan::{Comparator, StepPlan};
use crate::schedule::CycleSchedule;
use std::collections::HashMap;

pub mod lift;

/// Pairwise ordering facts over the cells of a mesh: bit `(x, y)` is set
/// when `value(x) ≤ value(y)` holds for every 0-1 input at the current
/// program point. The diagonal is always set (reflexivity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderFacts {
    cells: usize,
    words: usize,
    bits: Vec<u64>,
}

impl OrderFacts {
    /// The fact set describing an arbitrary (unconstrained) input: only
    /// the reflexive facts hold.
    pub fn unconstrained(cells: usize) -> OrderFacts {
        let words = cells.div_ceil(64);
        let mut facts = OrderFacts { cells, words, bits: vec![0; cells * words] };
        for x in 0..cells {
            facts.insert(x, x);
        }
        facts
    }

    /// The fact set describing a grid sorted in `order`: `le(x, y)` for
    /// every pair with `rank(x) ≤ rank(y)`.
    pub fn sorted(order: TargetOrder, side: usize) -> OrderFacts {
        let cells = side * side;
        let rank = order.flat_to_rank_table(side);
        let mut facts = OrderFacts::unconstrained(cells);
        for x in 0..cells {
            for y in 0..cells {
                if rank[x] <= rank[y] {
                    facts.insert(x, y);
                }
            }
        }
        facts
    }

    /// Number of cells the facts range over.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// `true` when `value(x) ≤ value(y)` is proven for every input.
    pub fn le(&self, x: usize, y: usize) -> bool {
        self.bits[x * self.words + y / 64] >> (y % 64) & 1 == 1
    }

    /// Number of proven facts (including the `cells` reflexive ones).
    pub fn count(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    fn insert(&mut self, x: usize, y: usize) {
        self.bits[x * self.words + y / 64] |= 1 << (y % 64);
    }

    fn assign(&mut self, x: usize, y: usize, value: bool) {
        let idx = x * self.words + y / 64;
        let mask = 1u64 << (y % 64);
        if value {
            self.bits[idx] |= mask;
        } else {
            self.bits[idx] &= !mask;
        }
    }

    /// Combines facts over each wire's *source* (left-hand) side: after
    /// this sweep, row `x` holds `le'(x, y)` for the step's new `x` values
    /// against the step's *old* `y` values.
    fn source_sweep(&mut self, plan: &StepPlan) {
        let words = self.words;
        for c in plan.comparators() {
            let (i, j) = (c.keep_min as usize, c.keep_max as usize);
            for k in 0..words {
                let row_i = self.bits[i * words + k];
                let row_j = self.bits[j * words + k];
                // min(i, j) ≤ t when either source is; max needs both.
                self.bits[i * words + k] = row_i | row_j;
                self.bits[j * words + k] = row_i & row_j;
            }
        }
    }

    /// Combines facts over each wire's *target* (right-hand) side, the
    /// column-wise dual of [`OrderFacts::source_sweep`].
    fn target_sweep(&mut self, plan: &StepPlan) {
        for x in 0..self.cells {
            for c in plan.comparators() {
                let (i, j) = (c.keep_min as usize, c.keep_max as usize);
                let to_i = self.le(x, i);
                let to_j = self.le(x, j);
                // s ≤ min(i, j) needs both targets; s ≤ max needs either.
                self.assign(x, i, to_i && to_j);
                self.assign(x, j, to_i || to_j);
            }
        }
    }

    /// Applies one synchronous step: all of `plan`'s comparators at once.
    ///
    /// Runs both sweep nestings (source-then-target and target-then-source)
    /// and unions the results; each nesting alone is sound, and they are
    /// incomparable in precision for facts whose two endpoints are both
    /// rewritten by the step (min-vs-min favours the former, max-vs-max
    /// the latter).
    pub fn apply_step(&mut self, plan: &StepPlan) {
        let mut by_source = self.clone();
        by_source.source_sweep(plan);
        by_source.target_sweep(plan);
        let mut by_target = self.clone();
        by_target.target_sweep(plan);
        by_target.source_sweep(plan);
        for (a, b) in by_source.bits.iter_mut().zip(by_target.bits.iter()) {
            *a |= b;
        }
        *self = by_source;
    }

    /// `true` when every fact of `other` is also proven here.
    pub fn contains(&self, other: &OrderFacts) -> bool {
        self.bits.iter().zip(other.bits.iter()).all(|(a, b)| a & b == *b)
    }

    /// The adjacent-rank chain links of `order` **not** yet proven; empty
    /// exactly when the facts imply the full target order (the grid is
    /// provably sorted).
    pub fn missing_chain_links(&self, order: TargetOrder, side: usize) -> Vec<(u32, u32)> {
        order
            .rank_to_flat_table(side)
            .windows(2)
            .filter(|pair| !self.le(pair[0] as usize, pair[1] as usize))
            .map(|pair| (pair[0], pair[1]))
            .collect()
    }

    /// `true` when every row of the mesh is provably sorted in the
    /// direction its target ranks increase.
    pub fn rows_sorted(&self, order: TargetOrder, side: usize) -> bool {
        let rank = order.flat_to_rank_table(side);
        (0..side).all(|r| {
            (0..side - 1).all(|c| {
                let a = r * side + c;
                let b = a + 1;
                if rank[a] < rank[b] {
                    self.le(a, b)
                } else {
                    self.le(b, a)
                }
            })
        })
    }

    /// `true` when every mesh column is provably sorted top→bottom (target
    /// ranks increase downwards in both orders).
    pub fn cols_sorted(&self, order: TargetOrder, side: usize) -> bool {
        let rank = order.flat_to_rank_table(side);
        (0..side.saturating_sub(1)).all(|r| {
            (0..side).all(|c| {
                let a = r * side + c;
                let b = a + side;
                if rank[a] < rank[b] {
                    self.le(a, b)
                } else {
                    self.le(b, a)
                }
            })
        })
    }
}

/// A comparator the analysis proved can never swap, for any input, at any
/// of its executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadWire {
    /// Cycle step (0-indexed) the wire belongs to.
    pub step: usize,
    /// The wire itself.
    pub comparator: Comparator,
}

/// Everything the dataflow fixpoint proves about one schedule. Produced by
/// [`analyze_schedule`]; interpreted (and gated) by the `dataflow` pass of
/// `meshsort-analyze`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowSummary {
    /// Mesh side the schedule was analysed at.
    pub side: usize,
    /// Full cycles iterated until the cycle-boundary facts stopped
    /// changing.
    pub cycles_to_fixpoint: u64,
    /// Proven facts at the fixpoint: `N(N+1)/2` (reflexive plus every
    /// ordered pair) exactly when the total order is proven.
    pub facts_at_fixpoint: u32,
    /// Wires already implied at their first execution — dead forever.
    pub dead_first_cycle: Vec<DeadWire>,
    /// First step (1-indexed; `Some(0)` for a single-cell mesh) at which
    /// the facts imply the full target-order chain: the static convergence
    /// bound. `None` when the fixpoint cannot prove convergence.
    pub converged_step: Option<u64>,
    /// First step after which every row is provably sorted.
    pub rows_sorted_step: Option<u64>,
    /// Step at which row sortedness, once established, was lost again
    /// (`None` = the invariant persisted — the paper's preservation lemma).
    pub rows_regressed_step: Option<u64>,
    /// First step after which every mesh column is provably sorted.
    pub cols_sorted_step: Option<u64>,
    /// Step at which column sortedness, once established, was lost again.
    pub cols_regressed_step: Option<u64>,
    /// Chain links still unproven at the fixpoint (empty when
    /// [`DataflowSummary::converged_step`] is `Some`).
    pub missing_chain_links: Vec<(u32, u32)>,
}

/// Runs the dataflow fixpoint for one schedule.
///
/// Iterates the cycle from the unconstrained seed, recording first-cycle
/// dead wires and the step milestones, until the cycle-boundary facts
/// repeat (guaranteed within `N² + 1` cycles by monotonicity).
///
/// # Panics
///
/// When the schedule was not compiled for `side * side` cells.
pub fn analyze_schedule(
    schedule: &CycleSchedule,
    order: TargetOrder,
    side: usize,
) -> DataflowSummary {
    let cells = side * side;
    for plan in schedule.plans() {
        plan.check_bounds(cells).expect("schedule compiled for side * side cells");
    }
    let mut facts = OrderFacts::unconstrained(cells);
    let mut summary = DataflowSummary {
        side,
        cycles_to_fixpoint: 0,
        facts_at_fixpoint: 0,
        dead_first_cycle: Vec::new(),
        converged_step: None,
        rows_sorted_step: None,
        rows_regressed_step: None,
        cols_sorted_step: None,
        cols_regressed_step: None,
        missing_chain_links: Vec::new(),
    };
    let mut step_count = 0u64;
    observe(&mut summary, &facts, order, side, step_count);
    let mut boundary = facts.clone();
    let max_cycles = (cells * cells + 1) as u64;
    for cycle in 0..max_cycles {
        for (step, plan) in schedule.plans().iter().enumerate() {
            if cycle == 0 {
                for &comparator in plan.comparators() {
                    if facts.le(comparator.keep_min as usize, comparator.keep_max as usize) {
                        summary.dead_first_cycle.push(DeadWire { step, comparator });
                    }
                }
            }
            facts.apply_step(plan);
            step_count += 1;
            observe(&mut summary, &facts, order, side, step_count);
        }
        summary.cycles_to_fixpoint = cycle + 1;
        if facts == boundary {
            break;
        }
        debug_assert!(facts.contains(&boundary), "cycle-boundary facts must be non-decreasing");
        boundary = facts.clone();
    }
    summary.facts_at_fixpoint = facts.count();
    summary.missing_chain_links = facts.missing_chain_links(order, side);
    summary
}

/// Updates the milestone fields of `summary` after `steps` total steps.
fn observe(
    summary: &mut DataflowSummary,
    facts: &OrderFacts,
    order: TargetOrder,
    side: usize,
    steps: u64,
) {
    let rows = facts.rows_sorted(order, side);
    if summary.rows_sorted_step.is_none() {
        if rows {
            summary.rows_sorted_step = Some(steps);
        }
    } else if !rows && summary.rows_regressed_step.is_none() {
        summary.rows_regressed_step = Some(steps);
    }
    let cols = facts.cols_sorted(order, side);
    if summary.cols_sorted_step.is_none() {
        if cols {
            summary.cols_sorted_step = Some(steps);
        }
    } else if !cols && summary.cols_regressed_step.is_none() {
        summary.cols_regressed_step = Some(steps);
    }
    if summary.converged_step.is_none() && facts.missing_chain_links(order, side).is_empty() {
        summary.converged_step = Some(steps);
    }
}

/// Runs the dataflow fixpoint with the sparse worklist propagator —
/// bit-identical to [`analyze_schedule`] (the differential suite pins
/// `DataflowSummary` equality for all five algorithms), but scaling far
/// past the dense engine's side-16 wall.
///
/// The dense engine re-sweeps the whole `N × N` fact matrix — two clones
/// and `O(cells · comparators)` column probes — on every step, even when a
/// step moves no facts at all (the overwhelming majority once the analysis
/// nears its fixpoint). The worklist engine instead keeps the union state
/// `U` *and its transpose* `TU` resident, so both sweep orientations are
/// word-parallel row operations, and re-fires a comparator's phase only
/// when a fact touching one of its rows has changed:
///
/// * **No-op detection** — a source sweep `(rᵢ, rⱼ) ← (rᵢ∪rⱼ, rᵢ∩rⱼ)` is
///   the identity exactly when `rⱼ ⊆ rᵢ`, and a target sweep
///   `(tᵢ, tⱼ) ← (tᵢ∩tⱼ, tᵢ∪tⱼ)` exactly when `tᵢ ⊆ tⱼ`. Skipping a
///   proven no-op is *exact*, not an approximation, which is what keeps
///   the engine bit-identical to the dense one.
/// * **Per-cell dirty tracking** — every row of `U`/`TU` carries the tick
///   of its last change, and every `(step, comparator, phase)` records the
///   tick at which it was last verified a no-op. While neither input row
///   has changed since, the subset re-check is skipped outright: a
///   quiescent comparator costs one comparison per step.
/// * **Delta-driven transfer** — the two phase-order branches of
///   [`OrderFacts::apply_step`] are evaluated through copy-on-write row
///   overlays over `U`/`TU`; cross-orientation effects and the final
///   branch union are propagated by iterating the XOR deltas bit-by-set-bit
///   (rows iterated by population, never by width).
///
/// # Panics
///
/// As [`analyze_schedule`]: when the schedule was not compiled for
/// `side * side` cells.
pub fn analyze_schedule_worklist(
    schedule: &CycleSchedule,
    order: TargetOrder,
    side: usize,
) -> DataflowSummary {
    let cells = side * side;
    for plan in schedule.plans() {
        plan.check_bounds(cells).expect("schedule compiled for side * side cells");
    }
    let mut engine = Worklist::new(cells, schedule);
    let mut summary = DataflowSummary {
        side,
        cycles_to_fixpoint: 0,
        facts_at_fixpoint: 0,
        dead_first_cycle: Vec::new(),
        converged_step: None,
        rows_sorted_step: None,
        rows_regressed_step: None,
        cols_sorted_step: None,
        cols_regressed_step: None,
        missing_chain_links: Vec::new(),
    };
    let mut step_count = 0u64;
    observe(&mut summary, &engine.u, order, side, step_count);
    let mut observed_current = true;
    let max_cycles = (cells * cells + 1) as u64;
    for cycle in 0..max_cycles {
        for (step, plan) in schedule.plans().iter().enumerate() {
            if cycle == 0 {
                for &comparator in plan.comparators() {
                    if engine.u.le(comparator.keep_min as usize, comparator.keep_max as usize) {
                        summary.dead_first_cycle.push(DeadWire { step, comparator });
                    }
                }
            }
            let changed = engine.apply_step(step, plan);
            step_count += 1;
            // The dense engine observes after every step; when no fact
            // moved the observation is determined by the previous one, so
            // re-evaluating it cannot update the summary.
            if changed || !observed_current {
                observe(&mut summary, &engine.u, order, side, step_count);
                observed_current = true;
            }
        }
        summary.cycles_to_fixpoint = cycle + 1;
        if engine.cycle_boundary_stable() {
            break;
        }
    }
    summary.facts_at_fixpoint = engine.u.count();
    summary.missing_chain_links = engine.u.missing_chain_links(order, side);
    summary
}

/// `true` when bitset row `a` is contained in row `b`.
#[inline]
fn row_subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x & !y == 0)
}

/// Copy-on-write row overlay over a base bit matrix, with generation
/// stamps so clearing between uses is O(rows touched).
struct Overlay {
    rows: Vec<u64>,
    stamp: Vec<u64>,
    touched: Vec<u32>,
    gen: u64,
}

impl Overlay {
    fn new(cells: usize, words: usize) -> Overlay {
        Overlay { rows: vec![0; cells * words], stamp: vec![0; cells], touched: Vec::new(), gen: 0 }
    }

    fn begin(&mut self) {
        self.gen += 1;
        self.touched.clear();
    }

    #[inline]
    fn has(&self, r: usize) -> bool {
        self.stamp[r] == self.gen
    }

    /// Row `r` as seen through the overlay (`base` when untouched).
    #[inline]
    fn row<'a>(&'a self, r: usize, base: &'a [u64], words: usize) -> &'a [u64] {
        if self.has(r) {
            &self.rows[r * words..(r + 1) * words]
        } else {
            &base[r * words..(r + 1) * words]
        }
    }

    /// Materializes row `r` in the overlay (copied from `base` on first
    /// touch) and returns its mutable storage.
    fn row_mut(&mut self, r: usize, base: &[u64], words: usize) -> &mut [u64] {
        if !self.has(r) {
            self.stamp[r] = self.gen;
            self.touched.push(r as u32);
            self.rows[r * words..(r + 1) * words]
                .copy_from_slice(&base[r * words..(r + 1) * words]);
        }
        &mut self.rows[r * words..(r + 1) * words]
    }
}

/// The worklist engine's resident state: union facts, their transpose,
/// per-row change epochs, per-(step, comparator, phase) no-op ticks, and
/// the per-step branch overlays.
struct Worklist {
    words: usize,
    /// Union facts `U` (row `x` holds `le(x, ·)`).
    u: OrderFacts,
    /// Transpose of `U` (row `y` holds `le(·, y)`), kept in sync so the
    /// target sweep is row-oriented too.
    tu: Vec<u64>,
    /// Tick of the last change to each `U` row.
    epoch_u: Vec<u64>,
    /// Tick of the last change to each `TU` row.
    epoch_tu: Vec<u64>,
    tick: u64,
    /// `noop[step][comparator][phase]`: tick at which the phase was last
    /// verified a no-op on un-overlaid inputs. Phases: 0 = branch-A source
    /// (on `U`), 1 = branch-A target (on `TU`), 2 = branch-B target (on
    /// `TU`), 3 = branch-B source (on `U`).
    noop: Vec<Vec<[u64; 4]>>,
    /// Branch-A M-orientation overlay (source-phase results).
    ova: Overlay,
    /// Branch-A T-orientation overlay (synced deltas + target-phase results).
    ota: Overlay,
    /// Branch-B T-orientation overlay (target-phase results).
    otb: Overlay,
    /// Branch-B M-orientation overlay (synced deltas + source-phase results).
    ovb: Overlay,
    /// Scratch copies of a comparator's two input rows (fire paths read
    /// and write the same overlay).
    buf_i: Vec<u64>,
    buf_j: Vec<u64>,
    /// Pre-change copies of `U` rows first dirtied in the current cycle —
    /// exactly the dense engine's cycle-boundary snapshot, sparsely.
    boundary: HashMap<usize, Vec<u64>>,
}

impl Worklist {
    fn new(cells: usize, schedule: &CycleSchedule) -> Worklist {
        let u = OrderFacts::unconstrained(cells);
        let words = u.words;
        let mut tu = vec![0; cells * words];
        for x in 0..cells {
            tu[x * words + x / 64] |= 1 << (x % 64);
        }
        Worklist {
            words,
            u,
            tu,
            epoch_u: vec![1; cells],
            epoch_tu: vec![1; cells],
            tick: 1,
            noop: schedule.plans().iter().map(|p| vec![[0u64; 4]; p.len()]).collect(),
            ova: Overlay::new(cells, words),
            ota: Overlay::new(cells, words),
            otb: Overlay::new(cells, words),
            ovb: Overlay::new(cells, words),
            buf_i: vec![0; words],
            buf_j: vec![0; words],
            boundary: HashMap::new(),
        }
    }

    /// `true` when no net fact change happened since the last call —
    /// the worklist form of the dense engine's `facts == boundary` test.
    fn cycle_boundary_stable(&mut self) -> bool {
        let words = self.words;
        let stable = self
            .boundary
            .iter()
            .all(|(&x, old)| self.u.bits[x * words..(x + 1) * words] == old[..]);
        self.boundary.clear();
        stable
    }

    /// Applies one step through both phase-order branches and unions the
    /// results into `U`/`TU`. Returns `true` when any fact changed.
    fn apply_step(&mut self, step: usize, plan: &StepPlan) -> bool {
        let words = self.words;
        self.tick += 1;
        let t_check = self.tick;
        let comparators = plan.comparators();

        // Branch A, phase 1: source sweep against pure `U`.
        self.ova.begin();
        for (ci, c) in comparators.iter().enumerate() {
            let (i, j) = (c.keep_min as usize, c.keep_max as usize);
            let slot = &mut self.noop[step][ci][0];
            if self.epoch_u[i] <= *slot && self.epoch_u[j] <= *slot {
                continue;
            }
            let ri = &self.u.bits[i * words..(i + 1) * words];
            let rj = &self.u.bits[j * words..(j + 1) * words];
            if row_subset(rj, ri) {
                *slot = t_check;
                continue;
            }
            self.buf_i.copy_from_slice(ri);
            self.buf_j.copy_from_slice(rj);
            let out_i = self.ova.row_mut(i, &self.u.bits, words);
            for k in 0..words {
                out_i[k] = self.buf_i[k] | self.buf_j[k];
            }
            let out_j = self.ova.row_mut(j, &self.u.bits, words);
            for k in 0..words {
                out_j[k] = self.buf_i[k] & self.buf_j[k];
            }
        }

        // Project branch A's row deltas onto its T-view overlay.
        self.ota.begin();
        for ti in 0..self.ova.touched.len() {
            let r = self.ova.touched[ti] as usize;
            for k in 0..words {
                let mut delta = self.ova.rows[r * words + k] ^ self.u.bits[r * words + k];
                while delta != 0 {
                    let col = k * 64 + delta.trailing_zeros() as usize;
                    delta &= delta - 1;
                    let trow = self.ota.row_mut(col, &self.tu, words);
                    trow[r / 64] ^= 1 << (r % 64);
                }
            }
        }

        // Branch A, phase 2: target sweep on the (possibly patched) T-view.
        for (ci, c) in comparators.iter().enumerate() {
            let (i, j) = (c.keep_min as usize, c.keep_max as usize);
            let pure = !self.ota.has(i) && !self.ota.has(j);
            if pure {
                let slot = &mut self.noop[step][ci][1];
                if self.epoch_tu[i] <= *slot && self.epoch_tu[j] <= *slot {
                    continue;
                }
                let ti = &self.tu[i * words..(i + 1) * words];
                let tj = &self.tu[j * words..(j + 1) * words];
                if row_subset(ti, tj) {
                    *slot = t_check;
                    continue;
                }
            } else if row_subset(
                self.ota.row(i, &self.tu, words),
                self.ota.row(j, &self.tu, words),
            ) {
                continue; // exact no-op on overlaid inputs; cache not updated
            }
            self.buf_i.copy_from_slice(self.ota.row(i, &self.tu, words));
            self.buf_j.copy_from_slice(self.ota.row(j, &self.tu, words));
            let out_i = self.ota.row_mut(i, &self.tu, words);
            for k in 0..words {
                out_i[k] = self.buf_i[k] & self.buf_j[k];
            }
            let out_j = self.ota.row_mut(j, &self.tu, words);
            for k in 0..words {
                out_j[k] = self.buf_i[k] | self.buf_j[k];
            }
        }

        // Branch B, phase 1: target sweep against pure `TU`.
        self.otb.begin();
        for (ci, c) in comparators.iter().enumerate() {
            let (i, j) = (c.keep_min as usize, c.keep_max as usize);
            let slot = &mut self.noop[step][ci][2];
            if self.epoch_tu[i] <= *slot && self.epoch_tu[j] <= *slot {
                continue;
            }
            let ti = &self.tu[i * words..(i + 1) * words];
            let tj = &self.tu[j * words..(j + 1) * words];
            if row_subset(ti, tj) {
                *slot = t_check;
                continue;
            }
            self.buf_i.copy_from_slice(ti);
            self.buf_j.copy_from_slice(tj);
            let out_i = self.otb.row_mut(i, &self.tu, words);
            for k in 0..words {
                out_i[k] = self.buf_i[k] & self.buf_j[k];
            }
            let out_j = self.otb.row_mut(j, &self.tu, words);
            for k in 0..words {
                out_j[k] = self.buf_i[k] | self.buf_j[k];
            }
        }

        // Project branch B's T-row deltas onto its M-view overlay.
        self.ovb.begin();
        for ti in 0..self.otb.touched.len() {
            let col = self.otb.touched[ti] as usize;
            for k in 0..words {
                let mut delta = self.otb.rows[col * words + k] ^ self.tu[col * words + k];
                while delta != 0 {
                    let x = k * 64 + delta.trailing_zeros() as usize;
                    delta &= delta - 1;
                    let row = self.ovb.row_mut(x, &self.u.bits, words);
                    row[col / 64] ^= 1 << (col % 64);
                }
            }
        }

        // Branch B, phase 2: source sweep on the (possibly patched) M-view.
        for (ci, c) in comparators.iter().enumerate() {
            let (i, j) = (c.keep_min as usize, c.keep_max as usize);
            let pure = !self.ovb.has(i) && !self.ovb.has(j);
            if pure {
                let slot = &mut self.noop[step][ci][3];
                if self.epoch_u[i] <= *slot && self.epoch_u[j] <= *slot {
                    continue;
                }
                let ri = &self.u.bits[i * words..(i + 1) * words];
                let rj = &self.u.bits[j * words..(j + 1) * words];
                if row_subset(rj, ri) {
                    *slot = t_check;
                    continue;
                }
            } else if row_subset(
                self.ovb.row(j, &self.u.bits, words),
                self.ovb.row(i, &self.u.bits, words),
            ) {
                continue;
            }
            self.buf_i.copy_from_slice(self.ovb.row(i, &self.u.bits, words));
            self.buf_j.copy_from_slice(self.ovb.row(j, &self.u.bits, words));
            let out_i = self.ovb.row_mut(i, &self.u.bits, words);
            for k in 0..words {
                out_i[k] = self.buf_i[k] | self.buf_j[k];
            }
            let out_j = self.ovb.row_mut(j, &self.u.bits, words);
            for k in 0..words {
                out_j[k] = self.buf_i[k] & self.buf_j[k];
            }
        }

        // Union both branches into `U` and patch `TU` by delta. Branch A's
        // authoritative state lives in its T-view; fold it back into
        // per-row flip masks first (reusing branch A's M overlay, whose
        // phase-1 contents are already subsumed by the T-view).
        self.ova.begin();
        for ti in 0..self.ota.touched.len() {
            let col = self.ota.touched[ti] as usize;
            for k in 0..words {
                let mut delta = self.ota.rows[col * words + k] ^ self.tu[col * words + k];
                while delta != 0 {
                    let x = k * 64 + delta.trailing_zeros() as usize;
                    delta &= delta - 1;
                    if !self.ova.has(x) {
                        self.ova.stamp[x] = self.ova.gen;
                        self.ova.touched.push(x as u32);
                        self.ova.rows[x * words..(x + 1) * words].fill(0);
                    }
                    self.ova.rows[x * words + col / 64] ^= 1 << (col % 64);
                }
            }
        }

        self.tick += 1;
        let t_write = self.tick;
        let mut changed = false;
        let candidate_count = self.ova.touched.len() + self.ovb.touched.len();
        let mut candidates: Vec<u32> = Vec::with_capacity(candidate_count);
        candidates.extend_from_slice(&self.ova.touched);
        candidates.extend(self.ovb.touched.iter().filter(|&&x| !self.ova.has(x as usize)));
        for &xr in &candidates {
            let x = xr as usize;
            let base = &self.u.bits[x * words..(x + 1) * words];
            let flips = self.ova.has(x);
            let b_row = self.ovb.row(x, &self.u.bits, words);
            for k in 0..words {
                let a = base[k] ^ if flips { self.ova.rows[x * words + k] } else { 0 };
                self.buf_i[k] = a | b_row[k];
            }
            if self.buf_i[..] == self.u.bits[x * words..(x + 1) * words] {
                continue;
            }
            self.boundary
                .entry(x)
                .or_insert_with(|| self.u.bits[x * words..(x + 1) * words].to_vec());
            for k in 0..words {
                let mut delta = self.buf_i[k] ^ self.u.bits[x * words + k];
                self.u.bits[x * words + k] = self.buf_i[k];
                while delta != 0 {
                    let col = k * 64 + delta.trailing_zeros() as usize;
                    delta &= delta - 1;
                    self.tu[col * words + x / 64] ^= 1 << (x % 64);
                    self.epoch_tu[col] = t_write;
                }
            }
            self.epoch_u[x] = t_write;
            changed = true;
        }
        changed
    }
}

/// Pairwise ordering facts in a sparse per-cell representation: each
/// cell's fact set as a sorted index list, mirrored in both orientations.
///
/// The dense [`OrderFacts`] matrix is `cells²` *bits* regardless of how
/// few facts hold — 512 MiB at side 256 — while the first cycle of a
/// schedule (all the dead-wire scan ever needs) establishes only a
/// handful of facts per cell. This form replays
/// [`OrderFacts::apply_step`]'s exact two-branch union semantics in
/// `O(facts)` per step; `meshsort-mesh`'s differential tests pin it
/// bit-identical to the dense scan on every algorithm at sides 4–16.
#[derive(Debug, Clone)]
pub struct SparseOrderFacts {
    rows: Vec<Vec<u32>>,
    cols: Vec<Vec<u32>>,
}

/// Merge-union of two sorted index lists.
fn sorted_union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut x, mut y) = (0, 0);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => {
                out.push(a[x]);
                x += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[y]);
                y += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[x]);
                x += 1;
                y += 1;
            }
        }
    }
    out.extend_from_slice(&a[x..]);
    out.extend_from_slice(&b[y..]);
    out
}

/// Merge-intersection of two sorted index lists.
fn sorted_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut x, mut y) = (0, 0);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[x]);
                x += 1;
                y += 1;
            }
        }
    }
    out
}

impl SparseOrderFacts {
    /// The unconstrained seed: reflexive facts only.
    pub fn unconstrained(cells: usize) -> SparseOrderFacts {
        SparseOrderFacts {
            rows: (0..cells as u32).map(|x| vec![x]).collect(),
            cols: (0..cells as u32).map(|y| vec![y]).collect(),
        }
    }

    /// `true` when `value(x) ≤ value(y)` is proven.
    pub fn le(&self, x: usize, y: usize) -> bool {
        self.rows[x].binary_search(&(y as u32)).is_ok()
    }

    /// Total proven facts (including reflexive ones).
    pub fn count(&self) -> u64 {
        self.rows.iter().map(|r| r.len() as u64).sum()
    }

    fn rebuild_cols(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
        for (x, row) in self.rows.iter().enumerate() {
            for &y in row {
                self.cols[y as usize].push(x as u32);
            }
        }
    }

    fn rebuild_rows(&mut self) {
        for r in &mut self.rows {
            r.clear();
        }
        for (y, col) in self.cols.iter().enumerate() {
            for &x in col {
                self.rows[x as usize].push(y as u32);
            }
        }
    }

    /// Source sweep on the row orientation (leaves `cols` stale).
    fn source_sweep(&mut self, plan: &StepPlan) {
        for c in plan.comparators() {
            let (i, j) = (c.keep_min as usize, c.keep_max as usize);
            let union = sorted_union(&self.rows[i], &self.rows[j]);
            let inter = sorted_intersect(&self.rows[i], &self.rows[j]);
            self.rows[i] = union;
            self.rows[j] = inter;
        }
    }

    /// Target sweep on the column orientation (leaves `rows` stale).
    fn target_sweep(&mut self, plan: &StepPlan) {
        for c in plan.comparators() {
            let (i, j) = (c.keep_min as usize, c.keep_max as usize);
            let inter = sorted_intersect(&self.cols[i], &self.cols[j]);
            let union = sorted_union(&self.cols[i], &self.cols[j]);
            self.cols[i] = inter;
            self.cols[j] = union;
        }
    }

    /// Applies one synchronous step — the exact sparse mirror of
    /// [`OrderFacts::apply_step`]: both sweep nestings from the same
    /// pre-state, unioned.
    pub fn apply_step(&mut self, plan: &StepPlan) {
        let mut by_source = self.clone();
        by_source.source_sweep(plan);
        by_source.rebuild_cols();
        by_source.target_sweep(plan);
        by_source.rebuild_rows();
        let mut by_target = self.clone();
        by_target.target_sweep(plan);
        by_target.rebuild_rows();
        by_target.source_sweep(plan);
        for (x, row) in self.rows.iter_mut().enumerate() {
            *row = sorted_union(&by_source.rows[x], &by_target.rows[x]);
        }
        self.rebuild_cols();
    }
}

/// The first-cycle dead-wire scan of `opt::first_cycle_dead_wires`, on
/// sparse facts: identical output (the dense and sparse lattices agree on
/// every `le` query along the scan), but memory scales with proven facts
/// instead of `cells²` bits — a side-256 scan fits where the dense matrix
/// would need 512 MiB.
pub fn first_cycle_dead_wires_sparse(schedule: &CycleSchedule, cells: usize) -> Vec<DeadWire> {
    let mut facts = SparseOrderFacts::unconstrained(cells);
    let mut dead = Vec::new();
    for (step, plan) in schedule.plans().iter().enumerate() {
        for &comparator in plan.comparators() {
            if facts.le(comparator.keep_min as usize, comparator.keep_max as usize) {
                dead.push(DeadWire { step, comparator });
            }
        }
        facts.apply_step(plan);
    }
    dead
}

/// A comparator that can still swap when the grid is already sorted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortedLiveWire {
    /// Cycle step (0-indexed) the wire belongs to.
    pub step: usize,
    /// The offending wire.
    pub comparator: Comparator,
}

/// Proves the sorted state is a fixed point of the schedule: seeded with
/// the full target order, every comparator of one cycle must already be
/// implied (dead) when it executes.
///
/// # Errors
///
/// The first wire that could swap on a sorted grid — which is exactly what
/// a direction flip that survives structural checking produces.
pub fn verify_sorted_fixed_point(
    schedule: &CycleSchedule,
    order: TargetOrder,
    side: usize,
) -> Result<(), SortedLiveWire> {
    let mut facts = OrderFacts::sorted(order, side);
    for (step, plan) in schedule.plans().iter().enumerate() {
        for &comparator in plan.comparators() {
            if !facts.le(comparator.keep_min as usize, comparator.keep_max as usize) {
                return Err(SortedLiveWire { step, comparator });
            }
        }
        facts.apply_step(plan);
    }
    debug_assert!(
        facts.missing_chain_links(order, side).is_empty(),
        "a cycle of dead wires must preserve the sorted chain"
    );
    Ok(())
}

/// [`verify_sorted_fixed_point`] in `O(comparators)` time and `O(cells)`
/// memory — the form the certifier uses above the dense engine's
/// affordable sides (the dense seed matrix alone is 512 MiB at side 256).
///
/// Equivalence: on the sorted grid cell `x` holds exactly rank `x`'s
/// value, so a wire swaps iff `rank(keep_min) > rank(keep_max)`. In the
/// fact domain, a dead wire leaves the sorted relation invariant under
/// both sweeps (`rⱼ ⊆ rᵢ` and `tᵢ ⊆ tⱼ` hold, making each phase the
/// identity), so up to the first live wire the dense walk probes the
/// *unchanged* sorted relation — which proves `le(keep_min, keep_max)`
/// iff `rank(keep_min) ≤ rank(keep_max)`. Both walks therefore report the
/// identical first offender (pinned by a differential test).
///
/// # Errors
///
/// The first wire (schedule order) that could swap on a sorted grid.
pub fn verify_sorted_fixed_point_ranked(
    schedule: &CycleSchedule,
    order: TargetOrder,
    side: usize,
) -> Result<(), SortedLiveWire> {
    let rank = order.flat_to_rank_table(side);
    for (step, plan) in schedule.plans().iter().enumerate() {
        for &comparator in plan.comparators() {
            if rank[comparator.keep_min as usize] > rank[comparator.keep_max as usize] {
                return Err(SortedLiveWire { step, comparator });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(a: u32, b: u32) -> Comparator {
        Comparator::new(a, b)
    }

    /// A hand-rolled row-major sorter for the 2×2 mesh: rows, columns,
    /// then the middle pair (cells 1 and 2 are rank-adjacent).
    fn tiny_sorter() -> CycleSchedule {
        CycleSchedule::new(
            vec![
                StepPlan::new(vec![wire(0, 1), wire(2, 3)]).unwrap(),
                StepPlan::new(vec![wire(0, 2), wire(1, 3)]).unwrap(),
                StepPlan::new(vec![wire(1, 2)]).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn comparator_establishes_its_fact() {
        let mut f = OrderFacts::unconstrained(4);
        assert!(!f.le(0, 1));
        f.apply_step(&StepPlan::new(vec![wire(0, 1)]).unwrap());
        assert!(f.le(0, 1));
        assert!(!f.le(1, 0), "the reverse fact must not appear");
        assert!(!f.le(2, 3), "untouched cells stay unconstrained");
    }

    #[test]
    fn min_end_facts_combine_with_or_max_end_with_and() {
        // Establish le(1, 2), then compare (0, 1) — min kept at cell 0,
        // max at cell 1.
        let mut f = OrderFacts::unconstrained(4);
        f.apply_step(&StepPlan::new(vec![wire(1, 2)]).unwrap());
        f.apply_step(&StepPlan::new(vec![wire(0, 1)]).unwrap());
        // min(v0, v1) ≤ old v1 ≤ v2, so le(0, 2) must be proven …
        assert!(f.le(0, 2));
        // … but max(v0, v1) ≤ v2 needs BOTH old v0 ≤ v2 and old v1 ≤ v2,
        // and v0 was unconstrained.
        assert!(!f.le(1, 2));
    }

    #[test]
    fn simultaneous_step_preserves_min_chain_through_column_phase() {
        // Sorted rows le(0,1) and le(2,3), then one COLUMN step with both
        // wires (0,2) and (1,3) at once. The min ends satisfy
        // min(v0,v2) ≤ min(v1,v3) (each source of the left min is ≤ some
        // source of the right min), and the simultaneous transfer proves
        // it. Applying the same two wires as separate steps in the order
        // (1,3) then (0,2) loses the fact: (1,3) rewrites cell 1 while
        // le(0,3) is not yet derivable, so le(0,1) is dropped and nothing
        // restores it. This precision is why column phases preserve row
        // sortedness in the five-algorithm proofs.
        let rows = StepPlan::new(vec![wire(0, 1), wire(2, 3)]).unwrap();
        let cols = StepPlan::new(vec![wire(0, 2), wire(1, 3)]).unwrap();
        let mut simultaneous = OrderFacts::unconstrained(4);
        simultaneous.apply_step(&rows);
        simultaneous.apply_step(&cols);
        assert!(simultaneous.le(0, 1), "min-chain fact must survive the column step");
        assert!(simultaneous.le(2, 3), "max-chain fact survives too on 2×2");

        let mut sequential = OrderFacts::unconstrained(4);
        sequential.apply_step(&rows);
        sequential.apply_step(&StepPlan::new(vec![wire(1, 3)]).unwrap());
        sequential.apply_step(&StepPlan::new(vec![wire(0, 2)]).unwrap());
        assert!(!sequential.le(0, 1), "sequential application is strictly less precise");
    }

    #[test]
    fn tiny_sorter_converges_and_is_fully_live() {
        let s = tiny_sorter();
        let summary = analyze_schedule(&s, TargetOrder::RowMajor, 2);
        assert_eq!(summary.converged_step, Some(3), "rows, cols, middle pair: 3 steps");
        assert!(summary.dead_first_cycle.is_empty());
        assert!(summary.missing_chain_links.is_empty());
        assert!(summary.rows_sorted_step.is_some());
        assert_eq!(summary.rows_regressed_step, None);
        assert_eq!(summary.facts_at_fixpoint, 4 + 6, "reflexive + full total order");
    }

    #[test]
    fn sorted_state_is_fixed_point_of_tiny_sorter() {
        assert_eq!(verify_sorted_fixed_point(&tiny_sorter(), TargetOrder::RowMajor, 2), Ok(()));
    }

    #[test]
    fn flipped_wire_is_live_on_sorted_grid() {
        // Flip the middle wire: keep the larger value at rank 1.
        let s = CycleSchedule::new(
            vec![
                StepPlan::new(vec![wire(0, 1), wire(2, 3)]).unwrap(),
                StepPlan::new(vec![wire(0, 2), wire(1, 3)]).unwrap(),
                StepPlan::new(vec![wire(2, 1)]).unwrap(),
            ],
            4,
        )
        .unwrap();
        let err = verify_sorted_fixed_point(&s, TargetOrder::RowMajor, 2).unwrap_err();
        assert_eq!(err, SortedLiveWire { step: 2, comparator: wire(2, 1) });
    }

    #[test]
    fn duplicated_wire_is_dead_at_second_execution() {
        // (0, 1) twice in a row: the second execution is provably dead.
        let s = CycleSchedule::new(
            vec![
                StepPlan::new(vec![wire(0, 1)]).unwrap(),
                StepPlan::new(vec![wire(0, 1)]).unwrap(),
            ],
            4,
        )
        .unwrap();
        let summary = analyze_schedule(&s, TargetOrder::RowMajor, 2);
        assert_eq!(summary.dead_first_cycle, vec![DeadWire { step: 1, comparator: wire(0, 1) }]);
    }

    #[test]
    fn truncated_schedule_cannot_prove_convergence() {
        // Rows only: the column pairs are never related.
        let s = CycleSchedule::new(vec![StepPlan::new(vec![wire(0, 1), wire(2, 3)]).unwrap()], 4)
            .unwrap();
        let summary = analyze_schedule(&s, TargetOrder::RowMajor, 2);
        assert_eq!(summary.converged_step, None);
        assert!(!summary.missing_chain_links.is_empty());
        assert!(summary.rows_sorted_step.is_some(), "rows alone are still proven");
    }

    #[test]
    fn single_cell_mesh_is_trivially_converged() {
        let s = CycleSchedule::new(vec![StepPlan::empty()], 1).unwrap();
        let summary = analyze_schedule(&s, TargetOrder::Snake, 1);
        assert_eq!(summary.converged_step, Some(0));
        assert!(summary.dead_first_cycle.is_empty());
    }

    #[test]
    fn boundary_facts_are_monotone() {
        // Directly iterate the tiny sorter and check cycle-boundary
        // containment — the property the fixpoint argument rests on.
        let s = tiny_sorter();
        let mut facts = OrderFacts::unconstrained(4);
        let mut previous = facts.clone();
        for _ in 0..6 {
            for plan in s.plans() {
                facts.apply_step(plan);
            }
            assert!(facts.contains(&previous));
            previous = facts.clone();
        }
    }

    #[test]
    fn sorted_seed_counts_all_pairs() {
        let f = OrderFacts::sorted(TargetOrder::Snake, 2);
        // 4 reflexive + C(4,2) ordered pairs.
        assert_eq!(f.count(), 10);
        assert!(f.missing_chain_links(TargetOrder::Snake, 2).is_empty());
    }
}
