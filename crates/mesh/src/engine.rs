//! The step engine: applies [`StepPlan`]s to a [`Grid`].
//!
//! Because the comparators within a plan touch disjoint cells (validated at
//! plan construction), applying them sequentially is observationally
//! identical to the paper's simultaneous hardware step.

use crate::fault::FaultPlan;
use crate::grid::Grid;
use crate::kernel::{CompiledPlan, KernelValue};
use crate::plan::StepPlan;
use crate::sortedness::InversionTracker;
use crate::trace::TraceSink;

/// What happened during the application of one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepOutcome {
    /// Number of comparators evaluated.
    pub comparisons: u64,
    /// Number of comparators that actually exchanged their values.
    pub swaps: u64,
}

impl StepOutcome {
    /// Accumulates another outcome into this one.
    #[inline]
    pub fn absorb(&mut self, other: StepOutcome) {
        self.comparisons += other.comparisons;
        self.swaps += other.swaps;
    }
}

/// Applies one synchronous step to the grid.
///
/// # Panics
///
/// Panics if a comparator indexes outside the grid — call
/// [`StepPlan::check_bounds`] when accepting plans from untrusted
/// construction paths. Plans produced by this workspace's algorithm
/// builders are checked at build time.
pub fn apply_plan<T: Ord>(grid: &mut Grid<T>, plan: &StepPlan) -> StepOutcome {
    let data = grid.as_mut_slice();
    let mut swaps = 0u64;
    for c in plan.comparators() {
        let (lo, hi) = (c.keep_min as usize, c.keep_max as usize);
        if data[lo] > data[hi] {
            data.swap(lo, hi);
            swaps += 1;
        }
    }
    StepOutcome { comparisons: plan.len() as u64, swaps }
}

/// Applies one step while reporting each executed exchange to a trace sink.
/// Slower than [`apply_plan`]; used by observers and debugging tools.
pub fn apply_plan_traced<T: Ord, S: TraceSink>(
    grid: &mut Grid<T>,
    plan: &StepPlan,
    step_index: u64,
    sink: &mut S,
) -> StepOutcome {
    let data = grid.as_mut_slice();
    let mut swaps = 0u64;
    for c in plan.comparators() {
        let (lo, hi) = (c.keep_min as usize, c.keep_max as usize);
        if data[lo] > data[hi] {
            data.swap(lo, hi);
            swaps += 1;
            sink.on_swap(step_index, c.keep_min, c.keep_max);
        }
    }
    sink.on_step_end(step_index, swaps);
    StepOutcome { comparisons: plan.len() as u64, swaps }
}

/// Applies one step while keeping an [`InversionTracker`] exact: the
/// tracker's count is updated in O(1) after every executed exchange, so
/// the caller can test sortedness in O(1) after the step.
///
/// Behaviourally identical to [`apply_plan`] on the grid and the returned
/// outcome; the tracker must have been built over this grid (and kept
/// up to date through every intervening exchange).
pub fn apply_plan_tracked<T: Ord>(
    grid: &mut Grid<T>,
    plan: &StepPlan,
    tracker: &mut InversionTracker,
) -> StepOutcome {
    let data = grid.as_mut_slice();
    let mut swaps = 0u64;
    for c in plan.comparators() {
        let (lo, hi) = (c.keep_min as usize, c.keep_max as usize);
        if data[lo] > data[hi] {
            data.swap(lo, hi);
            swaps += 1;
            tracker.apply_swap(data, c.keep_min, c.keep_max);
        }
    }
    StepOutcome { comparisons: plan.len() as u64, swaps }
}

/// [`apply_plan_traced`] and [`apply_plan_tracked`] combined: reports each
/// exchange to the sink *and* keeps the tracker exact. Used by the traced
/// runner so the 0–1 observers get O(1) per-step sortedness checks too.
pub fn apply_plan_traced_tracked<T: Ord, S: TraceSink>(
    grid: &mut Grid<T>,
    plan: &StepPlan,
    step_index: u64,
    sink: &mut S,
    tracker: &mut InversionTracker,
) -> StepOutcome {
    let data = grid.as_mut_slice();
    let mut swaps = 0u64;
    for c in plan.comparators() {
        let (lo, hi) = (c.keep_min as usize, c.keep_max as usize);
        if data[lo] > data[hi] {
            data.swap(lo, hi);
            swaps += 1;
            sink.on_swap(step_index, c.keep_min, c.keep_max);
            tracker.apply_swap(data, c.keep_min, c.keep_max);
        }
    }
    sink.on_step_end(step_index, swaps);
    StepOutcome { comparisons: plan.len() as u64, swaps }
}

/// What happened during one step executed under a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultyStepOutcome {
    /// Comparators actually evaluated (plan length minus suppressions).
    pub comparisons: u64,
    /// Comparators that exchanged their values.
    pub swaps: u64,
    /// Comparators suppressed by the fault plan this step.
    pub dropped: u64,
}

/// Applies one step under a fault plan: a stalled step does nothing, and
/// suppressed comparators (stuck wires, transient drops) are skipped.
///
/// With a no-op plan ([`FaultPlan::is_noop`]) this is behaviourally
/// identical to [`apply_plan`]. Fault decisions are pure per-wire hashes,
/// so the result is independent of comparator visit order — the property
/// that keeps this path bit-identical to [`apply_compiled_faulty`].
pub fn apply_plan_faulty<T: Ord>(
    grid: &mut Grid<T>,
    plan: &StepPlan,
    step: u64,
    faults: &FaultPlan,
) -> FaultyStepOutcome {
    if faults.step_stalled(step) {
        return FaultyStepOutcome::default();
    }
    let data = grid.as_mut_slice();
    let mut swaps = 0u64;
    let mut dropped = 0u64;
    for c in plan.comparators() {
        if faults.comparator_dropped(step, *c) {
            dropped += 1;
            continue;
        }
        let (lo, hi) = (c.keep_min as usize, c.keep_max as usize);
        if data[lo] > data[hi] {
            data.swap(lo, hi);
            swaps += 1;
        }
    }
    FaultyStepOutcome { comparisons: plan.len() as u64 - dropped, swaps, dropped }
}

/// [`apply_plan_faulty`] while keeping an [`InversionTracker`] exact
/// (updated in O(1) after every executed exchange).
pub fn apply_plan_faulty_tracked<T: Ord>(
    grid: &mut Grid<T>,
    plan: &StepPlan,
    step: u64,
    faults: &FaultPlan,
    tracker: &mut InversionTracker,
) -> FaultyStepOutcome {
    if faults.step_stalled(step) {
        return FaultyStepOutcome::default();
    }
    let data = grid.as_mut_slice();
    let mut swaps = 0u64;
    let mut dropped = 0u64;
    for c in plan.comparators() {
        if faults.comparator_dropped(step, *c) {
            dropped += 1;
            continue;
        }
        let (lo, hi) = (c.keep_min as usize, c.keep_max as usize);
        if data[lo] > data[hi] {
            data.swap(lo, hi);
            swaps += 1;
            tracker.apply_swap(data, c.keep_min, c.keep_max);
        }
    }
    FaultyStepOutcome { comparisons: plan.len() as u64 - dropped, swaps, dropped }
}

/// The kernel-engine counterpart of [`apply_plan_faulty`]: clean steps run
/// through the branchless compiled segments, while steps with at least one
/// suppression fall back to a filtered scalar loop over the source plan
/// (compiled segments cannot skip individual comparators).
///
/// `compiled` must be the lowering of `plan`. Because the comparators of
/// one step are disjoint and commute, both paths yield the same grid and
/// counts; the differential tests in `tests/fault_props.rs` pin this
/// against [`apply_plan_faulty`].
pub fn apply_compiled_faulty<T: KernelValue>(
    grid: &mut Grid<T>,
    compiled: &CompiledPlan,
    plan: &StepPlan,
    step: u64,
    faults: &FaultPlan,
) -> FaultyStepOutcome {
    if faults.step_clean(step, plan) {
        let swaps = compiled.execute(grid.as_mut_slice());
        return FaultyStepOutcome { comparisons: compiled.comparisons(), swaps, dropped: 0 };
    }
    apply_plan_faulty(grid, plan, step, faults)
}

/// Applies one pre-compiled step with the branchless segment kernels.
///
/// Observationally identical to [`apply_plan`] on the source plan: the
/// comparators of one step are disjoint and therefore commute, so the
/// compiled execution order cannot change the final grid or the swap
/// count. Differential tests in `tests/kernel_props.rs` pin this.
pub fn apply_compiled<T: KernelValue>(grid: &mut Grid<T>, compiled: &CompiledPlan) -> StepOutcome {
    let swaps = compiled.execute(grid.as_mut_slice());
    StepOutcome { comparisons: compiled.comparisons(), swaps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::TargetOrder;
    use crate::trace::SwapLog;

    #[test]
    fn applies_exchange_when_out_of_order() {
        let mut g = Grid::from_rows(2, vec![5, 1, 2, 0]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        let out = apply_plan(&mut g, &plan);
        assert_eq!(out.comparisons, 2);
        assert_eq!(out.swaps, 2);
        assert_eq!(g.as_slice(), &[1, 5, 0, 2]);
    }

    #[test]
    fn no_swap_when_in_order() {
        let mut g = Grid::from_rows(2, vec![1, 5, 0, 2]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        let out = apply_plan(&mut g, &plan);
        assert_eq!(out.swaps, 0);
        assert_eq!(g.as_slice(), &[1, 5, 0, 2]);
    }

    #[test]
    fn reverse_direction_keeps_min_at_high_index() {
        // Paper Definition 1: reverse bubble sort stores the smaller value
        // in the *rightmost* cell. Encoded as keep_min = right index.
        let mut g = Grid::from_rows(2, vec![1, 5, 0, 0]).unwrap();
        let plan = StepPlan::from_pairs(vec![(1, 0)]).unwrap();
        apply_plan(&mut g, &plan);
        assert_eq!(g.as_slice(), &[5, 1, 0, 0]);
    }

    #[test]
    fn equal_values_do_not_swap() {
        let mut g = Grid::from_rows(2, vec![3, 3, 3, 3]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        let out = apply_plan(&mut g, &plan);
        assert_eq!(out.swaps, 0);
    }

    #[test]
    fn multiset_preserved() {
        let mut g = Grid::from_rows(3, vec![8, 1, 6, 3, 5, 7, 4, 9, 2]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 5), (3, 4), (6, 7)]).unwrap();
        let mut before = g.as_slice().to_vec();
        apply_plan(&mut g, &plan);
        let mut after = g.as_slice().to_vec();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn outcome_absorb() {
        let mut a = StepOutcome { comparisons: 3, swaps: 1 };
        a.absorb(StepOutcome { comparisons: 2, swaps: 2 });
        assert_eq!(a, StepOutcome { comparisons: 5, swaps: 3 });
    }

    #[test]
    fn traced_application_records_swaps() {
        let mut g = Grid::from_rows(2, vec![5, 1, 0, 2]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        let mut log = SwapLog::default();
        let out = apply_plan_traced(&mut g, &plan, 7, &mut log);
        assert_eq!(out.swaps, 1);
        assert_eq!(log.swaps(), &[(7, 0, 1)]);
        assert_eq!(log.step_totals(), &[(7, 1)]);
    }

    #[test]
    fn tracked_application_matches_untracked() {
        let order = TargetOrder::Snake;
        let mut a = Grid::from_rows(3, vec![8u32, 1, 6, 3, 5, 7, 4, 9, 2]).unwrap();
        let mut b = a.clone();
        let mut tracker = InversionTracker::new(&b, order);
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 5), (3, 4), (6, 7)]).unwrap();
        let oa = apply_plan(&mut a, &plan);
        let ob = apply_plan_tracked(&mut b, &plan, &mut tracker);
        assert_eq!(oa, ob);
        assert_eq!(a, b);
        assert_eq!(tracker.inversions(), b.order_inversions(order) as u64);
        assert_eq!(tracker.is_sorted(), b.is_sorted(order));
    }

    #[test]
    fn traced_tracked_matches_traced() {
        let order = TargetOrder::RowMajor;
        let mut a = Grid::from_rows(2, vec![5u32, 1, 0, 2]).unwrap();
        let mut b = a.clone();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        let mut log_a = SwapLog::default();
        let mut log_b = SwapLog::default();
        let mut tracker = InversionTracker::new(&b, order);
        let oa = apply_plan_traced(&mut a, &plan, 3, &mut log_a);
        let ob = apply_plan_traced_tracked(&mut b, &plan, 3, &mut log_b, &mut tracker);
        assert_eq!(oa, ob);
        assert_eq!(a, b);
        assert_eq!(log_a.swaps(), log_b.swaps());
        assert_eq!(tracker.inversions(), b.order_inversions(order) as u64);
    }

    #[test]
    fn compiled_application_matches_scalar() {
        let mut a = Grid::from_rows(3, vec![8u32, 1, 6, 3, 5, 7, 4, 9, 2]).unwrap();
        let mut b = a.clone();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 5), (3, 4), (6, 7)]).unwrap();
        let compiled = CompiledPlan::compile(&plan);
        let oa = apply_plan(&mut a, &plan);
        let ob = apply_compiled(&mut b, &compiled);
        assert_eq!(oa, ob);
        assert_eq!(a, b);
    }

    #[test]
    fn faulty_with_noop_plan_matches_plain() {
        let faults = FaultPlan::none();
        let mut a = Grid::from_rows(3, vec![8u32, 1, 6, 3, 5, 7, 4, 9, 2]).unwrap();
        let mut b = a.clone();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 5), (3, 4), (6, 7)]).unwrap();
        let oa = apply_plan(&mut a, &plan);
        let ob = apply_plan_faulty(&mut b, &plan, 0, &faults);
        assert_eq!(
            ob,
            FaultyStepOutcome { comparisons: oa.comparisons, swaps: oa.swaps, dropped: 0 }
        );
        assert_eq!(a, b);
    }

    #[test]
    fn stuck_wire_suppresses_exchange() {
        use crate::fault::{FaultSpec, StuckWire};
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        let schedule = crate::schedule::CycleSchedule::new(vec![plan.clone()], 4).unwrap();
        let mut spec = FaultSpec::none(0);
        spec.stuck.push(StuckWire::permanent(0, 1));
        let faults = FaultPlan::compile(&spec, &schedule).unwrap();
        let mut g = Grid::from_rows(2, vec![5, 1, 2, 0]).unwrap();
        let out = apply_plan_faulty(&mut g, &plan, 0, &faults);
        assert_eq!(out, FaultyStepOutcome { comparisons: 1, swaps: 1, dropped: 1 });
        // (0,1) untouched, (2,3) exchanged.
        assert_eq!(g.as_slice(), &[5, 1, 0, 2]);
    }

    #[test]
    fn compiled_faulty_matches_scalar_faulty() {
        use crate::fault::FaultSpec;
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 5), (3, 4), (6, 7)]).unwrap();
        let schedule = crate::schedule::CycleSchedule::new(vec![plan.clone()], 9).unwrap();
        let compiled = CompiledPlan::compile(&plan);
        let faults = FaultPlan::compile(&FaultSpec::transient(0xBEEF, 0.5), &schedule).unwrap();
        for step in 0..32u64 {
            let mut a = Grid::from_rows(3, vec![8u32, 1, 6, 3, 5, 7, 4, 9, 2]).unwrap();
            let mut b = a.clone();
            let oa = apply_plan_faulty(&mut a, &plan, step, &faults);
            let ob = apply_compiled_faulty(&mut b, &compiled, &plan, step, &faults);
            assert_eq!(oa, ob, "step {step}");
            assert_eq!(a, b, "step {step}");
        }
    }

    #[test]
    fn faulty_tracked_keeps_tracker_exact() {
        use crate::fault::FaultSpec;
        let order = TargetOrder::Snake;
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 5), (3, 4), (6, 7)]).unwrap();
        let schedule = crate::schedule::CycleSchedule::new(vec![plan.clone()], 9).unwrap();
        let faults = FaultPlan::compile(&FaultSpec::transient(7, 0.4), &schedule).unwrap();
        let mut g = Grid::from_rows(3, vec![8u32, 1, 6, 3, 5, 7, 4, 9, 2]).unwrap();
        let mut tracker = InversionTracker::new(&g, order);
        for step in 0..16u64 {
            apply_plan_faulty_tracked(&mut g, &plan, step, &faults, &mut tracker);
            assert_eq!(tracker.inversions(), g.order_inversions(order) as u64, "step {step}");
        }
    }

    #[test]
    fn idempotent_once_ordered() {
        let mut g = Grid::from_rows(2, vec![4, 9, 1, 3]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        apply_plan(&mut g, &plan);
        let snapshot = g.clone();
        let out = apply_plan(&mut g, &plan);
        assert_eq!(out.swaps, 0);
        assert_eq!(g, snapshot);
    }
}
