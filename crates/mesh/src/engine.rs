//! The step engine: applies [`StepPlan`]s to a [`Grid`].
//!
//! Because the comparators within a plan touch disjoint cells (validated at
//! plan construction), applying them sequentially is observationally
//! identical to the paper's simultaneous hardware step.

use crate::grid::Grid;
use crate::plan::StepPlan;
use crate::trace::TraceSink;

/// What happened during the application of one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepOutcome {
    /// Number of comparators evaluated.
    pub comparisons: u64,
    /// Number of comparators that actually exchanged their values.
    pub swaps: u64,
}

impl StepOutcome {
    /// Accumulates another outcome into this one.
    #[inline]
    pub fn absorb(&mut self, other: StepOutcome) {
        self.comparisons += other.comparisons;
        self.swaps += other.swaps;
    }
}

/// Applies one synchronous step to the grid.
///
/// # Panics
///
/// Panics if a comparator indexes outside the grid — call
/// [`StepPlan::check_bounds`] when accepting plans from untrusted
/// construction paths. Plans produced by this workspace's algorithm
/// builders are checked at build time.
pub fn apply_plan<T: Ord>(grid: &mut Grid<T>, plan: &StepPlan) -> StepOutcome {
    let data = grid.as_mut_slice();
    let mut swaps = 0u64;
    for c in plan.comparators() {
        let (lo, hi) = (c.keep_min as usize, c.keep_max as usize);
        if data[lo] > data[hi] {
            data.swap(lo, hi);
            swaps += 1;
        }
    }
    StepOutcome { comparisons: plan.len() as u64, swaps }
}

/// Applies one step while reporting each executed exchange to a trace sink.
/// Slower than [`apply_plan`]; used by observers and debugging tools.
pub fn apply_plan_traced<T: Ord, S: TraceSink>(
    grid: &mut Grid<T>,
    plan: &StepPlan,
    step_index: u64,
    sink: &mut S,
) -> StepOutcome {
    let data = grid.as_mut_slice();
    let mut swaps = 0u64;
    for c in plan.comparators() {
        let (lo, hi) = (c.keep_min as usize, c.keep_max as usize);
        if data[lo] > data[hi] {
            data.swap(lo, hi);
            swaps += 1;
            sink.on_swap(step_index, c.keep_min, c.keep_max);
        }
    }
    sink.on_step_end(step_index, swaps);
    StepOutcome { comparisons: plan.len() as u64, swaps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SwapLog;

    #[test]
    fn applies_exchange_when_out_of_order() {
        let mut g = Grid::from_rows(2, vec![5, 1, 2, 0]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        let out = apply_plan(&mut g, &plan);
        assert_eq!(out.comparisons, 2);
        assert_eq!(out.swaps, 2);
        assert_eq!(g.as_slice(), &[1, 5, 0, 2]);
    }

    #[test]
    fn no_swap_when_in_order() {
        let mut g = Grid::from_rows(2, vec![1, 5, 0, 2]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        let out = apply_plan(&mut g, &plan);
        assert_eq!(out.swaps, 0);
        assert_eq!(g.as_slice(), &[1, 5, 0, 2]);
    }

    #[test]
    fn reverse_direction_keeps_min_at_high_index() {
        // Paper Definition 1: reverse bubble sort stores the smaller value
        // in the *rightmost* cell. Encoded as keep_min = right index.
        let mut g = Grid::from_rows(2, vec![1, 5, 0, 0]).unwrap();
        let plan = StepPlan::from_pairs(vec![(1, 0)]).unwrap();
        apply_plan(&mut g, &plan);
        assert_eq!(g.as_slice(), &[5, 1, 0, 0]);
    }

    #[test]
    fn equal_values_do_not_swap() {
        let mut g = Grid::from_rows(2, vec![3, 3, 3, 3]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        let out = apply_plan(&mut g, &plan);
        assert_eq!(out.swaps, 0);
    }

    #[test]
    fn multiset_preserved() {
        let mut g = Grid::from_rows(3, vec![8, 1, 6, 3, 5, 7, 4, 9, 2]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 5), (3, 4), (6, 7)]).unwrap();
        let mut before = g.as_slice().to_vec();
        apply_plan(&mut g, &plan);
        let mut after = g.as_slice().to_vec();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn outcome_absorb() {
        let mut a = StepOutcome { comparisons: 3, swaps: 1 };
        a.absorb(StepOutcome { comparisons: 2, swaps: 2 });
        assert_eq!(a, StepOutcome { comparisons: 5, swaps: 3 });
    }

    #[test]
    fn traced_application_records_swaps() {
        let mut g = Grid::from_rows(2, vec![5, 1, 0, 2]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        let mut log = SwapLog::default();
        let out = apply_plan_traced(&mut g, &plan, 7, &mut log);
        assert_eq!(out.swaps, 1);
        assert_eq!(log.swaps(), &[(7, 0, 1)]);
        assert_eq!(log.step_totals(), &[(7, 1)]);
    }

    #[test]
    fn idempotent_once_ordered() {
        let mut g = Grid::from_rows(2, vec![4, 9, 1, 3]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        apply_plan(&mut g, &plan);
        let snapshot = g.clone();
        let out = apply_plan(&mut g, &plan);
        assert_eq!(out.swaps, 0);
        assert_eq!(g, snapshot);
    }
}
