//! Cell coordinates.
//!
//! The paper numbers rows `1..√N` top→bottom and columns `1..√N`
//! left→right. Code uses 0-indexed coordinates throughout; the paper's
//! cell `(r, c)` is [`Pos`]`{ row: r - 1, col: c - 1 }`.
//!
//! Parity language ("odd rows", "even columns") in the paper always refers
//! to the 1-indexed numbering, so the paper's *odd* rows are the 0-indexed
//! rows `0, 2, 4, …`. The helpers [`Pos::paper_row_is_odd`] and
//! [`Pos::paper_col_is_odd`] encode this so call sites never juggle the
//! off-by-one.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 0-indexed cell coordinate on a `side × side` mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pos {
    /// Row index, `0` at the top.
    pub row: usize,
    /// Column index, `0` at the left.
    pub col: usize,
}

impl Pos {
    /// Creates a position from 0-indexed row and column.
    #[inline]
    pub const fn new(row: usize, col: usize) -> Self {
        Pos { row, col }
    }

    /// Creates a position from the paper's 1-indexed coordinates.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is `0` (the paper's numbering starts
    /// at 1).
    #[inline]
    pub const fn from_paper(row1: usize, col1: usize) -> Self {
        assert!(row1 >= 1 && col1 >= 1, "paper coordinates are 1-indexed");
        Pos { row: row1 - 1, col: col1 - 1 }
    }

    /// The paper's 1-indexed row number.
    #[inline]
    pub const fn paper_row(self) -> usize {
        self.row + 1
    }

    /// The paper's 1-indexed column number.
    #[inline]
    pub const fn paper_col(self) -> usize {
        self.col + 1
    }

    /// `true` when this cell lies in an *odd row* in the paper's 1-indexed
    /// sense (rows 1, 3, 5, … — i.e. 0-indexed rows 0, 2, 4, …).
    #[inline]
    pub const fn paper_row_is_odd(self) -> bool {
        self.row % 2 == 0
    }

    /// `true` when this cell lies in an *odd column* in the paper's
    /// 1-indexed sense.
    #[inline]
    pub const fn paper_col_is_odd(self) -> bool {
        self.col % 2 == 0
    }

    /// Flat row-major index of this cell on a mesh with the given side.
    #[inline]
    pub const fn flat(self, side: usize) -> usize {
        self.row * side + self.col
    }

    /// Inverse of [`Pos::flat`].
    #[inline]
    pub const fn from_flat(index: usize, side: usize) -> Self {
        Pos { row: index / side, col: index % side }
    }

    /// Manhattan (L1) distance to another cell — the number of hops a value
    /// needs on the mesh, used for the diameter lower bound `2√N − 2`
    /// discussed in the paper's introduction.
    #[inline]
    pub const fn manhattan(self, other: Pos) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// The network diameter of a `side × side` mesh: `2·side − 2`.
///
/// The paper's introduction lower-bounds the average sorting time of any
/// mesh algorithm by `Ω(√N)` because the smallest value may have to cross
/// the diameter. The five bubble-sort generalizations turn out to be far
/// slower than this bound on average — that gap is the paper's headline.
#[inline]
pub const fn mesh_diameter(side: usize) -> usize {
    if side == 0 {
        0
    } else {
        2 * side - 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_round_trip() {
        let p = Pos::from_paper(1, 1);
        assert_eq!(p, Pos::new(0, 0));
        assert_eq!(p.paper_row(), 1);
        assert_eq!(p.paper_col(), 1);
    }

    #[test]
    fn paper_parity_matches_one_indexing() {
        // Paper row 1 (top) is odd.
        assert!(Pos::from_paper(1, 5).paper_row_is_odd());
        // Paper row 2 is even.
        assert!(!Pos::from_paper(2, 5).paper_row_is_odd());
        assert!(Pos::from_paper(3, 1).paper_col_is_odd());
        assert!(!Pos::from_paper(3, 2).paper_col_is_odd());
    }

    #[test]
    #[should_panic(expected = "1-indexed")]
    fn paper_zero_panics() {
        let _ = Pos::from_paper(0, 1);
    }

    #[test]
    fn flat_round_trip() {
        let side = 7;
        for r in 0..side {
            for c in 0..side {
                let p = Pos::new(r, c);
                assert_eq!(Pos::from_flat(p.flat(side), side), p);
            }
        }
    }

    #[test]
    fn flat_is_row_major() {
        assert_eq!(Pos::new(0, 0).flat(4), 0);
        assert_eq!(Pos::new(0, 3).flat(4), 3);
        assert_eq!(Pos::new(1, 0).flat(4), 4);
        assert_eq!(Pos::new(3, 3).flat(4), 15);
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Pos::new(0, 0).manhattan(Pos::new(3, 4)), 7);
        assert_eq!(Pos::new(2, 2).manhattan(Pos::new(2, 2)), 0);
        assert_eq!(Pos::new(5, 1).manhattan(Pos::new(1, 5)), 8);
    }

    #[test]
    fn diameter() {
        assert_eq!(mesh_diameter(0), 0);
        assert_eq!(mesh_diameter(1), 0);
        assert_eq!(mesh_diameter(2), 2);
        assert_eq!(mesh_diameter(8), 14);
        // Paper: diameter of the √N×√N mesh is 2√N − 2.
        let side = 16;
        assert_eq!(mesh_diameter(side), 2 * side - 2);
    }

    #[test]
    fn display() {
        assert_eq!(Pos::new(2, 3).to_string(), "(2, 3)");
    }

    #[test]
    fn ordering_is_row_major() {
        assert!(Pos::new(0, 5) < Pos::new(1, 0));
        assert!(Pos::new(1, 2) < Pos::new(1, 3));
    }
}
