//! # meshsort-mesh — synchronous mesh-of-processors simulator
//!
//! This crate is the hardware substrate for the reproduction of
//! Savari, *Average Case Analysis of Five Two-Dimensional Bubble Sorting
//! Algorithms* (SPAA 1993). The paper sorts `N` numbers on a `√N × √N`
//! mesh of processors where, at each synchronous *step*, disjoint pairs of
//! neighbouring cells compare their contents and conditionally exchange
//! them.
//!
//! The model implemented here:
//!
//! * a [`Grid`] of `side × side` cells holding arbitrary `Ord` values,
//!   rows numbered top→bottom and columns left→right (0-indexed in code;
//!   the paper uses 1-indexed coordinates — see [`Pos`] for the mapping);
//! * a *step* is a [`StepPlan`]: a set of [`Comparator`]s touching each
//!   cell at most once, applied simultaneously by the [`engine`];
//! * wrap-around wires (paper §1, step 4i+3 of the row-major algorithms)
//!   are ordinary comparators between flat indices, so the same engine
//!   executes them;
//! * target orders ([`order::TargetOrder`]) define what "sorted" means:
//!   row-major or snakelike, matching the paper's two families.
//!
//! Everything is deterministic and allocation-light: plans are compiled
//! once per algorithm and replayed, and applying a plan does no
//! allocation.
//!
//! Two engine subsystems accelerate the hot loop without changing any
//! observable outcome (differential tests pin them to the reference scalar
//! path): the [`kernel`] module lowers each plan to branchless segment
//! kernels for integer grids, and the [`sortedness`] module replaces the
//! per-step O(N) sortedness rescan with an incrementally maintained
//! inversion counter. See those modules and
//! [`CycleSchedule::run_until_sorted_kernel`] for details.
//!
//! The [`verify`] module is the static counterpart (`meshcheck`): it
//! certifies a schedule's structure (disjointness, mesh adjacency, wrap
//! policy, order-consistent directions) and the conformance of the
//! compiled kernel IR without executing the schedule on data. The
//! [`absint`] module goes further and abstract-interprets the network in
//! the 0-1 domain: pairwise ordering facts propagated to a fixpoint yield
//! dead-comparator detection, static phase invariants, and a per-schedule
//! convergence bound — still without running on data. The [`opt`] module
//! consumes those facts on the hot path: it strips the provably dead
//! wires, re-fuses the surviving comparators into stride runs, and
//! replaces the Θ(N) step budgets with the proven static bound, every
//! optimized plan carrying a machine-checked equivalence certificate
//! ([`opt::certify`]).
//!
//! The [`fault`] module models an *imperfect* machine: a seeded,
//! fully deterministic [`FaultPlan`] injects stuck comparators, transient
//! drops and stalled steps, and
//! [`CycleSchedule::run_until_sorted_resilient`] executes under it with a
//! step budget, a livelock watchdog and recovery scrubbing, returning a
//! classified [`fault::RunOutcome`] instead of hanging.
//!
//! ```
//! use meshsort_mesh::{Grid, order::TargetOrder, plan::StepPlan, engine};
//!
//! // A 2×2 grid holding a permutation of 0..4.
//! let mut g = Grid::from_rows(2, vec![3u32, 1, 2, 0]).unwrap();
//! // One comparator: cells (0,0) and (0,1), smaller value kept on the left.
//! let plan = StepPlan::from_pairs(vec![(g.index(0, 0), g.index(0, 1))]).unwrap();
//! let outcome = engine::apply_plan(&mut g, &plan);
//! assert_eq!(outcome.swaps, 1);
//! assert_eq!(g.get(0, 0), &1);
//! assert!(!g.is_sorted(TargetOrder::RowMajor));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod batch;
pub mod engine;
pub mod error;
pub mod fault;
pub mod grid;
pub mod kernel;
pub mod metrics;
pub mod network;
pub mod opt;
pub mod order;
pub mod plan;
pub mod pos;
pub mod schedule;
pub mod sortedness;
pub mod trace;
pub mod verify;
pub mod viz;

pub use absint::{DataflowSummary, DeadWire, OrderFacts, SortedLiveWire};
pub use batch::run_batch_until_sorted;
pub use engine::{apply_plan, StepOutcome};
pub use error::MeshError;
pub use fault::{FaultPlan, FaultSpec, ResilientPolicy, ResilientReport, StuckWire};
pub use grid::Grid;
pub use kernel::{CompiledPlan, KernelValue};
pub use opt::{OptError, OptimizedPlan};
pub use order::TargetOrder;
pub use plan::{Comparator, StepPlan};
pub use pos::Pos;
pub use schedule::CycleSchedule;
pub use sortedness::InversionTracker;
pub use verify::{SchedulePolicy, StepWires, VerifyError};
