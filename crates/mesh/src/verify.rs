//! Static verification of comparator-network schedules — `meshcheck`.
//!
//! The five algorithms are *fixed* comparator networks: which cells compare
//! at which step of the cycle never depends on the data. Their key
//! invariants can therefore be checked **once per schedule**, without
//! executing a single comparison on real inputs:
//!
//! * **Structural pass** ([`verify_schedule_structural`]) — every step has
//!   in-bounds, non-degenerate, pairwise-disjoint comparators (a
//!   synchronous step may touch each cell at most once); every comparator
//!   connects mesh neighbours, with the row-major algorithms' wrap-around
//!   wires admitted only on the cycle steps that declare them
//!   ([`StepWires::MeshAndWrap`]); and every comparator's keep-min end has
//!   the *smaller* target-order rank, so the sorted state is a fixed point
//!   of the schedule.
//! * **IR conformance pass** ([`verify_schedule_ir`]) — the compiled
//!   segment IR ([`CompiledPlan`]) of every step re-expands to exactly the
//!   source plan's comparator multiset, promoting the runtime differential
//!   tests of `tests/kernel_props.rs` to a static guarantee.
//!
//! Both passes report the first violation as a precise [`VerifyError`]
//! diagnostic. The exhaustive 0–1 certification pass (the third `meshcheck`
//! pass) lives in the `meshsort-analyze` crate, which can reach the 0–1
//! enumeration machinery; this module is purely static.
//!
//! The checks deliberately re-derive every invariant from the raw
//! comparator lists instead of trusting the validated [`StepPlan`] /
//! [`CycleSchedule`] constructors: the verifier is the independent auditor,
//! and its mutation suite corrupts raw lists precisely to prove each
//! diagnostic fires.

use crate::kernel::CompiledPlan;
use crate::order::TargetOrder;
use crate::plan::{Comparator, StepPlan};
use crate::pos::Pos;
use crate::schedule::CycleSchedule;
use std::fmt;

/// Which comparator wires one step of a cycle may legally use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepWires {
    /// Unit mesh edges only: cells at Manhattan distance 1.
    MeshOnly,
    /// Unit mesh edges plus the row-major wrap-around wires
    /// `(r, side−1) ↔ (r+1, 0)` of paper §1, step 4i+3.
    MeshAndWrap,
}

/// Static description of the mesh a schedule must conform to: side, target
/// order, and the per-step wire policy of one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulePolicy {
    side: usize,
    order: TargetOrder,
    wires: Vec<StepWires>,
}

impl SchedulePolicy {
    /// Policy for a `cycle_len`-step cycle using only unit mesh edges.
    pub fn mesh_only(side: usize, order: TargetOrder, cycle_len: usize) -> SchedulePolicy {
        SchedulePolicy { side, order, wires: vec![StepWires::MeshOnly; cycle_len] }
    }

    /// Policy additionally admitting wrap-around wires on the listed
    /// (0-indexed) cycle steps.
    ///
    /// # Panics
    ///
    /// Panics when a wrap step index is outside the cycle.
    pub fn with_wrap_at(
        side: usize,
        order: TargetOrder,
        cycle_len: usize,
        wrap_steps: &[usize],
    ) -> SchedulePolicy {
        let mut policy = Self::mesh_only(side, order, cycle_len);
        for &s in wrap_steps {
            assert!(s < cycle_len, "wrap step {s} outside cycle of length {cycle_len}");
            policy.wires[s] = StepWires::MeshAndWrap;
        }
        policy
    }

    /// Mesh side.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Target order the schedule must sort into.
    pub fn order(&self) -> TargetOrder {
        self.order
    }

    /// Number of steps in the cycle this policy describes.
    pub fn cycle_len(&self) -> usize {
        self.wires.len()
    }

    /// Wire policy of the given (0-indexed) cycle step.
    ///
    /// # Panics
    ///
    /// Panics when `step` is outside the cycle.
    pub fn wires_at(&self, step: usize) -> StepWires {
        self.wires[step]
    }
}

/// A violation found by the static passes. Every variant names the
/// offending (0-indexed) cycle step and the cells involved, so a failure
/// pinpoints the exact wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The schedule's cycle length differs from the policy's.
    CycleLengthMismatch {
        /// Steps the policy describes.
        expected: usize,
        /// Steps the schedule actually has.
        got: usize,
    },
    /// A comparator refers to a flat index outside the mesh.
    IndexOutOfBounds {
        /// Offending cycle step.
        step: usize,
        /// The out-of-range flat index.
        index: u32,
        /// Number of cells in the mesh.
        cells: usize,
    },
    /// A comparator compares a cell with itself.
    DegenerateComparator {
        /// Offending cycle step.
        step: usize,
        /// The flat index used on both ends.
        cell: u32,
    },
    /// A cell is touched by two comparators of the same step.
    DuplicateCell {
        /// Offending cycle step.
        step: usize,
        /// The flat index that appears twice.
        cell: u32,
    },
    /// A comparator connects two cells that are not mesh neighbours (and
    /// not a wrap pair).
    NotMeshAdjacent {
        /// Offending cycle step.
        step: usize,
        /// The comparator's keep-min flat index.
        keep_min: u32,
        /// The comparator's keep-max flat index.
        keep_max: u32,
    },
    /// A wrap-around wire appears on a step whose policy is
    /// [`StepWires::MeshOnly`].
    WrapNotAllowed {
        /// Offending cycle step.
        step: usize,
        /// The comparator's keep-min flat index.
        keep_min: u32,
        /// The comparator's keep-max flat index.
        keep_max: u32,
    },
    /// A comparator's keep-min end has the *larger* target-order rank: the
    /// wire pushes values away from the sorted arrangement, so the sorted
    /// state would not be a fixed point.
    DirectionInconsistent {
        /// Offending cycle step.
        step: usize,
        /// The comparator's keep-min flat index.
        keep_min: u32,
        /// The comparator's keep-max flat index.
        keep_max: u32,
    },
    /// The compiled IR of a step fails to produce a comparator present in
    /// the source plan (e.g. a dropped segment).
    IrMissingComparator {
        /// Offending cycle step.
        step: usize,
        /// Keep-min flat index of the missing comparator.
        keep_min: u32,
        /// Keep-max flat index of the missing comparator.
        keep_max: u32,
    },
    /// The compiled IR of a step produces a comparator the source plan does
    /// not contain.
    IrExtraComparator {
        /// Offending cycle step.
        step: usize,
        /// Keep-min flat index of the extra comparator.
        keep_min: u32,
        /// Keep-max flat index of the extra comparator.
        keep_max: u32,
    },
    /// The compiled IR's comparison tally disagrees with the plan size
    /// (defensive: unreachable through [`CompiledPlan::compile`] when the
    /// multisets match, but a corrupted counter must still be caught).
    IrComparisonCountMismatch {
        /// Offending cycle step.
        step: usize,
        /// Comparators in the source plan.
        plan: u64,
        /// Comparisons the compiled step claims to evaluate.
        compiled: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::CycleLengthMismatch { expected, got } => {
                write!(f, "cycle has {got} steps but the policy describes {expected}")
            }
            VerifyError::IndexOutOfBounds { step, index, cells } => {
                write!(f, "step {step}: comparator index {index} out of range for {cells} cells")
            }
            VerifyError::DegenerateComparator { step, cell } => {
                write!(f, "step {step}: comparator compares cell {cell} with itself")
            }
            VerifyError::DuplicateCell { step, cell } => {
                write!(f, "step {step}: cell {cell} is touched by more than one comparator")
            }
            VerifyError::NotMeshAdjacent { step, keep_min, keep_max } => {
                write!(f, "step {step}: cells {keep_min} and {keep_max} are not mesh neighbours")
            }
            VerifyError::WrapNotAllowed { step, keep_min, keep_max } => write!(
                f,
                "step {step}: wrap-around wire {keep_min}↔{keep_max} on a step that allows only \
                 mesh edges"
            ),
            VerifyError::DirectionInconsistent { step, keep_min, keep_max } => write!(
                f,
                "step {step}: comparator keeps the minimum at cell {keep_min}, whose target rank \
                 is above cell {keep_max}'s — the sorted state would not be a fixed point"
            ),
            VerifyError::IrMissingComparator { step, keep_min, keep_max } => write!(
                f,
                "step {step}: compiled IR drops comparator ({keep_min}, {keep_max}) present in \
                 the plan"
            ),
            VerifyError::IrExtraComparator { step, keep_min, keep_max } => write!(
                f,
                "step {step}: compiled IR emits comparator ({keep_min}, {keep_max}) absent from \
                 the plan"
            ),
            VerifyError::IrComparisonCountMismatch { step, plan, compiled } => write!(
                f,
                "step {step}: compiled IR claims {compiled} comparisons but the plan has {plan}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// `true` when `{a, b}` is one of the row-major wrap-around pairs
/// `{(r, side−1), (r+1, 0)}`. In flat indices those are consecutive across
/// a row boundary: `b = a + 1` with `a ≡ side−1 (mod side)`.
fn is_wrap_pair(a: u32, b: u32, side: usize) -> bool {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    side >= 2 && hi == lo + 1 && (lo as usize) % side == side - 1
}

/// Structural check of one step's raw comparator list against a policy.
///
/// Violations are reported with a fixed priority so corrupted inputs get a
/// deterministic diagnostic: bounds, then degeneracy, then duplicate
/// cells, then adjacency/wrap, then direction.
///
/// # Errors
///
/// The first [`VerifyError`] in the priority order above.
pub fn verify_step(
    step: usize,
    comparators: &[Comparator],
    policy: &SchedulePolicy,
) -> Result<(), VerifyError> {
    let table = policy.order.flat_to_rank_table(policy.side);
    verify_step_with_table(step, comparators, policy, &table)
}

/// [`verify_step`] with the flat→rank table precomputed (one allocation per
/// schedule instead of per step).
fn verify_step_with_table(
    step: usize,
    comparators: &[Comparator],
    policy: &SchedulePolicy,
    flat_to_rank: &[u32],
) -> Result<(), VerifyError> {
    let side = policy.side;
    let cells = side * side;

    for c in comparators {
        for index in [c.keep_min, c.keep_max] {
            if index as usize >= cells {
                return Err(VerifyError::IndexOutOfBounds { step, index, cells });
            }
        }
    }
    for c in comparators {
        if c.keep_min == c.keep_max {
            return Err(VerifyError::DegenerateComparator { step, cell: c.keep_min });
        }
    }
    let mut seen: Vec<u32> = Vec::with_capacity(comparators.len() * 2);
    for c in comparators {
        seen.push(c.keep_min);
        seen.push(c.keep_max);
    }
    seen.sort_unstable();
    if let Some(w) = seen.windows(2).find(|w| w[0] == w[1]) {
        return Err(VerifyError::DuplicateCell { step, cell: w[0] });
    }
    for c in comparators {
        let a = Pos::from_flat(c.keep_min as usize, side);
        let b = Pos::from_flat(c.keep_max as usize, side);
        if a.manhattan(b) != 1 {
            if is_wrap_pair(c.keep_min, c.keep_max, side) {
                if policy.wires_at(step) != StepWires::MeshAndWrap {
                    return Err(VerifyError::WrapNotAllowed {
                        step,
                        keep_min: c.keep_min,
                        keep_max: c.keep_max,
                    });
                }
            } else {
                return Err(VerifyError::NotMeshAdjacent {
                    step,
                    keep_min: c.keep_min,
                    keep_max: c.keep_max,
                });
            }
        }
        if flat_to_rank[c.keep_min as usize] >= flat_to_rank[c.keep_max as usize] {
            return Err(VerifyError::DirectionInconsistent {
                step,
                keep_min: c.keep_min,
                keep_max: c.keep_max,
            });
        }
    }
    Ok(())
}

/// Structural pass over the raw comparator lists of one full cycle.
///
/// # Errors
///
/// [`VerifyError::CycleLengthMismatch`] when the number of steps differs
/// from the policy's cycle, otherwise the first per-step violation (see
/// [`verify_step`]).
pub fn verify_steps<'a, I>(steps: I, policy: &SchedulePolicy) -> Result<(), VerifyError>
where
    I: IntoIterator<Item = &'a [Comparator]>,
{
    let table = policy.order.flat_to_rank_table(policy.side);
    let mut count = 0usize;
    for (step, comparators) in steps.into_iter().enumerate() {
        if step >= policy.cycle_len() {
            count += 1;
            continue;
        }
        verify_step_with_table(step, comparators, policy, &table)?;
        count += 1;
    }
    if count != policy.cycle_len() {
        return Err(VerifyError::CycleLengthMismatch { expected: policy.cycle_len(), got: count });
    }
    Ok(())
}

/// Structural pass over a validated [`CycleSchedule`].
///
/// # Errors
///
/// See [`verify_steps`].
pub fn verify_schedule_structural(
    schedule: &CycleSchedule,
    policy: &SchedulePolicy,
) -> Result<(), VerifyError> {
    verify_steps(schedule.plans().iter().map(StepPlan::comparators), policy)
}

/// IR conformance of one step: the compiled form must re-expand to exactly
/// the plan's comparator multiset, and its comparison tally must equal the
/// plan size.
///
/// # Errors
///
/// [`VerifyError::IrMissingComparator`] / [`VerifyError::IrExtraComparator`]
/// on the first multiset divergence, then
/// [`VerifyError::IrComparisonCountMismatch`].
pub fn verify_ir(step: usize, plan: &StepPlan, compiled: &CompiledPlan) -> Result<(), VerifyError> {
    let key = |c: &Comparator| (c.keep_min, c.keep_max);
    let mut expected: Vec<Comparator> = plan.comparators().to_vec();
    let mut got: Vec<Comparator> = compiled.expand();
    expected.sort_unstable_by_key(key);
    got.sort_unstable_by_key(key);

    let mut e = expected.iter().peekable();
    let mut g = got.iter().peekable();
    loop {
        match (e.peek(), g.peek()) {
            (None, None) => break,
            (Some(&&c), None) => {
                return Err(VerifyError::IrMissingComparator {
                    step,
                    keep_min: c.keep_min,
                    keep_max: c.keep_max,
                });
            }
            (None, Some(&&c)) => {
                return Err(VerifyError::IrExtraComparator {
                    step,
                    keep_min: c.keep_min,
                    keep_max: c.keep_max,
                });
            }
            (Some(&&ec), Some(&&gc)) => {
                if ec == gc {
                    e.next();
                    g.next();
                } else if key(&ec) < key(&gc) {
                    return Err(VerifyError::IrMissingComparator {
                        step,
                        keep_min: ec.keep_min,
                        keep_max: ec.keep_max,
                    });
                } else {
                    return Err(VerifyError::IrExtraComparator {
                        step,
                        keep_min: gc.keep_min,
                        keep_max: gc.keep_max,
                    });
                }
            }
        }
    }
    if compiled.comparisons() != plan.len() as u64 {
        return Err(VerifyError::IrComparisonCountMismatch {
            step,
            plan: plan.len() as u64,
            compiled: compiled.comparisons(),
        });
    }
    Ok(())
}

/// IR conformance pass over every step of a schedule.
///
/// # Errors
///
/// The first per-step violation (see [`verify_ir`]).
pub fn verify_schedule_ir(schedule: &CycleSchedule) -> Result<(), VerifyError> {
    for (step, (plan, compiled)) in
        schedule.plans().iter().zip(schedule.compiled_plans()).enumerate()
    {
        verify_ir(step, plan, compiled)?;
    }
    Ok(())
}

/// Runs the structural pass and then the IR conformance pass over a
/// schedule — the full static portion of `meshcheck`.
///
/// # Errors
///
/// The first violation from either pass.
pub fn verify_schedule(
    schedule: &CycleSchedule,
    policy: &SchedulePolicy,
) -> Result<(), VerifyError> {
    verify_schedule_structural(schedule, policy)?;
    verify_schedule_ir(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Odd-even transposition on the top row of a `side × side` mesh: a
    /// minimal valid 2-step cycle for structural tests.
    fn row_odd_even(side: usize) -> CycleSchedule {
        let odd: Vec<(u32, u32)> = (0..side as u32 - 1).step_by(2).map(|i| (i, i + 1)).collect();
        let even: Vec<(u32, u32)> = (1..side as u32 - 1).step_by(2).map(|i| (i, i + 1)).collect();
        CycleSchedule::new(
            vec![StepPlan::from_pairs(odd).unwrap(), StepPlan::from_pairs(even).unwrap()],
            side * side,
        )
        .unwrap()
    }

    fn policy(side: usize, cycle_len: usize) -> SchedulePolicy {
        SchedulePolicy::mesh_only(side, TargetOrder::RowMajor, cycle_len)
    }

    #[test]
    fn valid_schedule_passes_both_passes() {
        let s = row_odd_even(4);
        assert_eq!(verify_schedule(&s, &policy(4, 2)), Ok(()));
    }

    #[test]
    fn cycle_length_mismatch() {
        let s = row_odd_even(4);
        assert_eq!(
            verify_schedule(&s, &policy(4, 3)),
            Err(VerifyError::CycleLengthMismatch { expected: 3, got: 2 })
        );
    }

    #[test]
    fn out_of_bounds_detected() {
        let bad = [Comparator::new(0, 99)];
        assert_eq!(
            verify_step(0, &bad, &policy(4, 1)),
            Err(VerifyError::IndexOutOfBounds { step: 0, index: 99, cells: 16 })
        );
    }

    #[test]
    fn degenerate_detected() {
        let bad = [Comparator::new(5, 5)];
        assert_eq!(
            verify_step(2, &bad, &policy(4, 3)),
            Err(VerifyError::DegenerateComparator { step: 2, cell: 5 })
        );
    }

    #[test]
    fn duplicate_cell_detected() {
        // Both comparators are valid mesh edges; cell 1 is shared.
        let bad = [Comparator::new(0, 1), Comparator::new(1, 2)];
        assert_eq!(
            verify_step(0, &bad, &policy(4, 1)),
            Err(VerifyError::DuplicateCell { step: 0, cell: 1 })
        );
    }

    #[test]
    fn non_neighbour_detected() {
        // Cells 0 and 2 sit two apart in row 0.
        let bad = [Comparator::new(0, 2)];
        assert_eq!(
            verify_step(1, &bad, &policy(4, 2)),
            Err(VerifyError::NotMeshAdjacent { step: 1, keep_min: 0, keep_max: 2 })
        );
    }

    #[test]
    fn diagonal_is_not_adjacent() {
        // (0,0) and (1,1) on a 4×4: flat 0 and 5, Manhattan distance 2.
        let bad = [Comparator::new(0, 5)];
        assert!(matches!(
            verify_step(0, &bad, &policy(4, 1)),
            Err(VerifyError::NotMeshAdjacent { .. })
        ));
    }

    #[test]
    fn wrap_pair_needs_wrap_step() {
        // (0, 3) ↔ (1, 0) on a 4×4: flats 3 and 4, the first wrap pair.
        let wrap = [Comparator::new(3, 4)];
        assert_eq!(
            verify_step(0, &wrap, &policy(4, 1)),
            Err(VerifyError::WrapNotAllowed { step: 0, keep_min: 3, keep_max: 4 })
        );
        let allowing = SchedulePolicy::with_wrap_at(4, TargetOrder::RowMajor, 1, &[0]);
        assert_eq!(verify_step(0, &wrap, &allowing), Ok(()));
    }

    #[test]
    fn wrap_allowance_is_per_step() {
        let wrap: Vec<Comparator> = vec![Comparator::new(3, 4)];
        let empty: Vec<Comparator> = vec![];
        let p = SchedulePolicy::with_wrap_at(4, TargetOrder::RowMajor, 2, &[1]);
        // Wrap wire on step 0 (mesh-only) rejected; on step 1 accepted.
        assert!(matches!(
            verify_steps([wrap.as_slice(), empty.as_slice()], &p),
            Err(VerifyError::WrapNotAllowed { step: 0, .. })
        ));
        assert_eq!(verify_steps([empty.as_slice(), wrap.as_slice()], &p), Ok(()));
    }

    #[test]
    fn flipped_direction_detected_row_major() {
        // Keep-min on the right violates row-major rank order.
        let bad = [Comparator::new(1, 0)];
        assert_eq!(
            verify_step(0, &bad, &policy(4, 1)),
            Err(VerifyError::DirectionInconsistent { step: 0, keep_min: 1, keep_max: 0 })
        );
    }

    #[test]
    fn snake_reverse_rows_direction() {
        // On a 4×4 in snake order, 0-indexed row 1 ascends right→left, so
        // keep-min must sit at the *larger* flat index within that row.
        let p = SchedulePolicy::mesh_only(4, TargetOrder::Snake, 1);
        let reverse = [Comparator::new(5, 4)];
        assert_eq!(verify_step(0, &reverse, &p), Ok(()));
        let forward = [Comparator::new(4, 5)];
        assert!(matches!(
            verify_step(0, &forward, &p),
            Err(VerifyError::DirectionInconsistent { step: 0, keep_min: 4, keep_max: 5 })
        ));
    }

    #[test]
    fn column_edges_ascend_in_both_orders() {
        for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
            let p = SchedulePolicy::mesh_only(4, order, 1);
            // Top cell keeps the min: valid in both orders.
            assert_eq!(verify_step(0, &[Comparator::new(1, 5)], &p), Ok(()));
            // Bottom cell keeping the min is always inconsistent.
            assert!(matches!(
                verify_step(0, &[Comparator::new(5, 1)], &p),
                Err(VerifyError::DirectionInconsistent { .. })
            ));
        }
    }

    #[test]
    fn ir_pass_accepts_compiled_plans() {
        let s = row_odd_even(6);
        assert_eq!(verify_schedule_ir(&s), Ok(()));
    }

    #[test]
    fn ir_detects_dropped_comparator() {
        // Compile a plan missing one comparator, then check it against the
        // full plan — simulates a dropped IR segment.
        let full = StepPlan::from_pairs(vec![(0, 1), (2, 3), (4, 5), (6, 7)]).unwrap();
        let reduced = StepPlan::from_pairs(vec![(0, 1), (2, 3), (6, 7)]).unwrap();
        let compiled = CompiledPlan::compile(&reduced);
        assert_eq!(
            verify_ir(3, &full, &compiled),
            Err(VerifyError::IrMissingComparator { step: 3, keep_min: 4, keep_max: 5 })
        );
    }

    #[test]
    fn ir_detects_extra_comparator() {
        let reduced = StepPlan::from_pairs(vec![(0, 1), (2, 3), (6, 7)]).unwrap();
        let full = StepPlan::from_pairs(vec![(0, 1), (2, 3), (4, 5), (6, 7)]).unwrap();
        let compiled = CompiledPlan::compile(&full);
        assert_eq!(
            verify_ir(0, &reduced, &compiled),
            Err(VerifyError::IrExtraComparator { step: 0, keep_min: 4, keep_max: 5 })
        );
    }

    #[test]
    fn ir_detects_direction_flip() {
        // Same cell pair, flipped min/max ends: a multiset mismatch, not a
        // count mismatch.
        let plan = StepPlan::from_pairs(vec![(0, 1)]).unwrap();
        let flipped = StepPlan::from_pairs(vec![(1, 0)]).unwrap();
        let compiled = CompiledPlan::compile(&flipped);
        assert!(matches!(
            verify_ir(0, &plan, &compiled),
            Err(VerifyError::IrMissingComparator { step: 0, keep_min: 0, keep_max: 1 })
        ));
    }

    #[test]
    fn wrap_pair_shape() {
        // 4×4: flats 3↔4, 7↔8, 11↔12 are wrap pairs; 4↔5 or 0↔1 are not.
        assert!(is_wrap_pair(3, 4, 4));
        assert!(is_wrap_pair(8, 7, 4));
        assert!(is_wrap_pair(11, 12, 4));
        assert!(!is_wrap_pair(0, 1, 4));
        assert!(!is_wrap_pair(4, 5, 4));
        assert!(!is_wrap_pair(3, 5, 4));
        // Side 1 has no wrap pairs (and its "pairs" are vertical edges).
        assert!(!is_wrap_pair(0, 1, 1));
    }

    #[test]
    fn error_messages_name_the_step_and_cells() {
        let e = VerifyError::DuplicateCell { step: 2, cell: 7 };
        assert!(e.to_string().contains("step 2"));
        assert!(e.to_string().contains("cell 7"));
        let e = VerifyError::IrMissingComparator { step: 1, keep_min: 4, keep_max: 5 };
        assert!(e.to_string().contains("drops comparator (4, 5)"));
        let e: Box<dyn std::error::Error> =
            Box::new(VerifyError::CycleLengthMismatch { expected: 4, got: 2 });
        assert!(e.to_string().contains("4"));
    }
}
