//! Comparators and step plans.
//!
//! One synchronous *step* of the mesh is a set of comparators over disjoint
//! cell pairs. Compiling each algorithm's step into an explicit
//! [`StepPlan`] once (rather than recomputing pair lists every step) keeps
//! the hot loop branch-free; `bench_ablation_plan` in the bench crate
//! measures the payoff.

use crate::error::MeshError;
use serde::{Deserialize, Serialize};

/// A single compare-exchange wire between two cells.
///
/// After application, the smaller value sits in `keep_min` and the larger
/// in `keep_max`. Direction (a row sort keeping the smaller value left, the
/// paper's *reverse bubble sort* keeping it right, a wrap-around wire) is
/// entirely encoded by which flat index is the `keep_min` end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Comparator {
    /// Flat index of the cell that receives the smaller value.
    pub keep_min: u32,
    /// Flat index of the cell that receives the larger value.
    pub keep_max: u32,
}

impl Comparator {
    /// Creates a comparator; the first argument receives the minimum.
    #[inline]
    pub const fn new(keep_min: u32, keep_max: u32) -> Self {
        Comparator { keep_min, keep_max }
    }
}

/// A validated set of comparators applied simultaneously in one step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepPlan {
    comparators: Vec<Comparator>,
}

impl StepPlan {
    /// An empty step (no comparisons). Occurs naturally, e.g. the even row
    /// phase on a side-2 mesh.
    pub const fn empty() -> Self {
        StepPlan { comparators: Vec::new() }
    }

    /// Builds a plan from comparators, validating that no cell is touched
    /// twice and no comparator is degenerate.
    ///
    /// # Errors
    ///
    /// [`MeshError::DegenerateComparator`] if some comparator's two ends
    /// coincide; [`MeshError::OverlappingComparators`] if a cell appears in
    /// two comparators.
    pub fn new(comparators: Vec<Comparator>) -> Result<Self, MeshError> {
        let mut seen: Vec<u32> = Vec::with_capacity(comparators.len() * 2);
        for c in &comparators {
            if c.keep_min == c.keep_max {
                return Err(MeshError::DegenerateComparator { index: c.keep_min });
            }
            seen.push(c.keep_min);
            seen.push(c.keep_max);
        }
        seen.sort_unstable();
        for w in seen.windows(2) {
            if w[0] == w[1] {
                return Err(MeshError::OverlappingComparators { index: w[0] });
            }
        }
        Ok(StepPlan { comparators })
    }

    /// Convenience constructor from `(keep_min, keep_max)` pairs.
    pub fn from_pairs(pairs: Vec<(u32, u32)>) -> Result<Self, MeshError> {
        Self::new(pairs.into_iter().map(|(a, b)| Comparator::new(a, b)).collect())
    }

    /// Validates every index against a grid of `cells` cells.
    ///
    /// # Errors
    ///
    /// [`MeshError::IndexOutOfRange`] naming the first offending index.
    pub fn check_bounds(&self, cells: usize) -> Result<(), MeshError> {
        for c in &self.comparators {
            for idx in [c.keep_min, c.keep_max] {
                if idx as usize >= cells {
                    return Err(MeshError::IndexOutOfRange { index: idx, cells });
                }
            }
        }
        Ok(())
    }

    /// The comparators of this step.
    #[inline]
    pub fn comparators(&self) -> &[Comparator] {
        &self.comparators
    }

    /// Number of comparators in the step.
    #[inline]
    pub fn len(&self) -> usize {
        self.comparators.len()
    }

    /// `true` when the step performs no comparisons.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.comparators.is_empty()
    }

    /// Merges two disjoint plans into one simultaneous step (used for the
    /// paper's step `4i+3` of the row-major algorithms: the even row phase
    /// *and* the wrap-around comparisons happen in the same step).
    ///
    /// # Errors
    ///
    /// [`MeshError::OverlappingComparators`] when the plans share a cell.
    pub fn merge(&self, other: &StepPlan) -> Result<StepPlan, MeshError> {
        let mut all = self.comparators.clone();
        all.extend_from_slice(&other.comparators);
        StepPlan::new(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_plan() {
        let p = StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_plan() {
        let p = StepPlan::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(p.check_bounds(0).is_ok());
    }

    #[test]
    fn rejects_degenerate() {
        assert_eq!(
            StepPlan::from_pairs(vec![(3, 3)]).unwrap_err(),
            MeshError::DegenerateComparator { index: 3 }
        );
    }

    #[test]
    fn rejects_overlap_same_end() {
        assert_eq!(
            StepPlan::from_pairs(vec![(0, 1), (1, 2)]).unwrap_err(),
            MeshError::OverlappingComparators { index: 1 }
        );
    }

    #[test]
    fn rejects_overlap_cross_end() {
        assert_eq!(
            StepPlan::from_pairs(vec![(0, 1), (2, 0)]).unwrap_err(),
            MeshError::OverlappingComparators { index: 0 }
        );
    }

    #[test]
    fn bounds_check() {
        let p = StepPlan::from_pairs(vec![(0, 4)]).unwrap();
        assert!(p.check_bounds(5).is_ok());
        assert_eq!(
            p.check_bounds(4).unwrap_err(),
            MeshError::IndexOutOfRange { index: 4, cells: 4 }
        );
    }

    #[test]
    fn merge_disjoint() {
        let a = StepPlan::from_pairs(vec![(0, 1)]).unwrap();
        let b = StepPlan::from_pairs(vec![(2, 3)]).unwrap();
        let m = a.merge(&b).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn merge_overlapping_fails() {
        let a = StepPlan::from_pairs(vec![(0, 1)]).unwrap();
        let b = StepPlan::from_pairs(vec![(1, 2)]).unwrap();
        assert!(matches!(a.merge(&b), Err(MeshError::OverlappingComparators { index: 1 })));
    }

    #[test]
    fn direction_is_by_index_role() {
        // A "reverse" comparator is just min/max swapped; nothing else to it.
        let fwd = Comparator::new(0, 1);
        let rev = Comparator::new(1, 0);
        assert_ne!(fwd, rev);
        assert_eq!(rev.keep_min, 1);
    }
}
