//! Deterministic fault injection and resilient-run outcome types.
//!
//! The engine elsewhere models a perfect machine: every comparator of
//! every step fires. Physical meshes misbehave — a wire can be *stuck*
//! (never fires, permanently or for a step window), a comparator can
//! *transiently drop* an exchange (per-step Bernoulli misfire), or a whole
//! synchronous step can *stall*. A [`FaultPlan`] injects exactly those
//! three fault classes between a [`CycleSchedule`]
//! and the engine, and the resilient runner
//! ([`CycleSchedule::run_until_sorted_resilient`](crate::CycleSchedule::run_until_sorted_resilient))
//! classifies what the damaged machine achieved as a [`RunOutcome`].
//!
//! # Determinism
//!
//! Every fault decision is a pure function of `(seed, fault kind, step
//! index, canonical wire)`, hashed through a SplitMix64-style mixer — not
//! a draw from a sequential RNG stream. This matters: the compiled kernel
//! engine reorders the (disjoint, hence commuting) comparators of a step,
//! so any scheme that depended on *visit order* would desynchronise the
//! scalar and kernel paths. With per-wire hashing the same `(seed, side,
//! algorithm)` reproduces a bit-identical fault trace and final grid on
//! both engines; `tests/fault_props.rs` pins this differentially.

use crate::error::MeshError;
use crate::plan::{Comparator, StepPlan};
use crate::schedule::CycleSchedule;
use serde::{Deserialize, Serialize};

/// `until_step` value marking a stuck wire that never recovers.
pub const PERMANENT: u64 = u64::MAX;

/// Default step budget for a run of any of the five algorithms: the paper
/// shows each worst case is `Θ(N)` with a small observed constant, so
/// `8N + 8√N + 64` leaves a wide margin while still bounding runaway
/// loops. This is the canonical budget constant of the workspace
/// (`meshsort-core::runner::default_step_cap` delegates here).
#[inline]
pub fn default_step_budget(side: usize) -> u64 {
    let n = (side * side) as u64;
    8 * n + 8 * side as u64 + 64
}

/// SplitMix64 finalizer — the standard 64-bit mixer, reimplemented locally
/// so the mesh substrate stays dependency-free.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent fault seed from a root seed and a label (e.g.
/// `"r1/16"`), so one experiment seed yields decorrelated fault streams
/// per `(algorithm, side)` without coordination.
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h = mix64(seed);
    for b in label.bytes() {
        h = mix64(h ^ u64::from(b).wrapping_mul(0x0100_0000_01B3));
    }
    h
}

const TAG_DROP: u64 = 0xD20B;
const TAG_STALL: u64 = 0x57A1;
const TAG_STUCK: u64 = 0x57CC;

/// The per-decision hash: a pure function of the plan seed, the fault
/// kind, the step index and a per-wire payload. Order-independent by
/// construction (see the module docs).
#[inline]
fn fault_hash(seed: u64, tag: u64, step: u64, payload: u64) -> u64 {
    let h = mix64(seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    mix64(mix64(h ^ step.wrapping_mul(0xA24B_AED4_963E_E407)) ^ payload)
}

/// Converts a probability to a 65-bit fixed-point threshold such that
/// `u128::from(hash) < threshold` fires with probability `rate` over a
/// uniform 64-bit hash. Rate `1.0` maps to `2^64`, which every hash is
/// below; rate `0.0` maps to `0`, which no hash is below.
#[inline]
fn rate_to_threshold(rate: f64) -> u128 {
    (rate * 18_446_744_073_709_551_616.0) as u128 // rate * 2^64, saturating
}

/// A comparator wire forced stuck: it never exchanges during
/// `from_step..until_step`, regardless of its cell values.
///
/// The wire is identified by its unordered cell pair (canonicalised so
/// `cell_lo < cell_hi`); direction does not matter because a stuck wire
/// suppresses the exchange either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StuckWire {
    /// Smaller flat cell index of the wire.
    pub cell_lo: u32,
    /// Larger flat cell index of the wire.
    pub cell_hi: u32,
    /// First step (inclusive) at which the wire is stuck.
    pub from_step: u64,
    /// First step at which the wire works again ([`PERMANENT`] = never).
    pub until_step: u64,
}

impl StuckWire {
    /// A wire between cells `a` and `b` stuck from step 0 forever.
    pub fn permanent(a: u32, b: u32) -> Self {
        Self::window(a, b, 0, PERMANENT)
    }

    /// A wire stuck for the step range `from..until`.
    pub fn window(a: u32, b: u32, from: u64, until: u64) -> Self {
        StuckWire { cell_lo: a.min(b), cell_hi: a.max(b), from_step: from, until_step: until }
    }

    /// Whether this stuck window suppresses the comparator over cells
    /// `(lo, hi)` (canonical order) at step `step`.
    #[inline]
    pub fn covers(&self, step: u64, lo: u32, hi: u32) -> bool {
        self.cell_lo == lo && self.cell_hi == hi && self.from_step <= step && step < self.until_step
    }
}

/// Declarative description of a fault workload, compiled to a
/// [`FaultPlan`] against a concrete schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Per-step Bernoulli probability that a comparator misfires.
    pub drop_rate: f64,
    /// Per-step Bernoulli probability that the whole step stalls.
    pub stall_rate: f64,
    /// Number of schedule wires to pick (deterministically, from the
    /// seed) and hold permanently stuck. Clamped to the wire count.
    pub random_stuck: usize,
    /// Explicitly stuck wires, windows included.
    pub stuck: Vec<StuckWire>,
}

impl FaultSpec {
    /// A spec that injects nothing — compiles to a no-op plan.
    pub fn none(seed: u64) -> Self {
        FaultSpec { seed, drop_rate: 0.0, stall_rate: 0.0, random_stuck: 0, stuck: Vec::new() }
    }

    /// Pure transient misfires at `drop_rate`, no stalls, no stuck wires.
    pub fn transient(seed: u64, drop_rate: f64) -> Self {
        FaultSpec { seed, drop_rate, stall_rate: 0.0, random_stuck: 0, stuck: Vec::new() }
    }

    /// Validates the probability parameters.
    ///
    /// # Errors
    ///
    /// [`MeshError::InvalidFaultRate`] naming the first rate that is not a
    /// probability in `[0, 1]` (NaN included).
    pub fn validate(&self) -> Result<(), MeshError> {
        for (param, rate) in [("drop_rate", self.drop_rate), ("stall_rate", self.stall_rate)] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(MeshError::InvalidFaultRate { param });
            }
        }
        Ok(())
    }
}

/// One observable fault occurrence, as reported by [`FaultPlan::trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A comparator was suppressed (stuck wire or transient drop).
    Dropped {
        /// Step index of the suppression.
        step: u64,
        /// The suppressed comparator's keep-min end.
        keep_min: u32,
        /// The suppressed comparator's keep-max end.
        keep_max: u32,
    },
    /// An entire step was skipped.
    Stalled {
        /// The skipped step's index.
        step: u64,
    },
}

/// A compiled, fully deterministic fault schedule.
///
/// Compiled from a [`FaultSpec`] against a concrete [`CycleSchedule`] (the
/// schedule supplies the wire population for `random_stuck` selection).
/// All queries are pure: the same plan answers the same questions
/// identically forever, so a run can be replayed bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    drop_threshold: u128,
    stall_threshold: u128,
    stuck: Vec<StuckWire>,
}

impl FaultPlan {
    /// The plan that injects nothing. [`FaultPlan::is_noop`] is `true` and
    /// every faulty execution path degenerates to the fault-free one.
    pub fn none() -> Self {
        FaultPlan { seed: 0, drop_threshold: 0, stall_threshold: 0, stuck: Vec::new() }
    }

    /// Compiles a spec against a schedule.
    ///
    /// `random_stuck` wires are chosen by a deterministic Fisher–Yates
    /// shuffle (keyed by the spec seed) of the schedule's canonical wire
    /// set, so the choice is a pure function of `(seed, schedule)`.
    ///
    /// # Errors
    ///
    /// [`MeshError::InvalidFaultRate`] via [`FaultSpec::validate`].
    pub fn compile(spec: &FaultSpec, schedule: &CycleSchedule) -> Result<Self, MeshError> {
        spec.validate()?;
        let mut stuck = spec.stuck.clone();
        if spec.random_stuck > 0 {
            let mut wires: Vec<(u32, u32)> = schedule
                .plans()
                .iter()
                .flat_map(|p| p.comparators().iter())
                .map(|c| (c.keep_min.min(c.keep_max), c.keep_min.max(c.keep_max)))
                .collect();
            wires.sort_unstable();
            wires.dedup();
            // Deterministic partial Fisher–Yates: position i receives a
            // uniformly hashed pick from the remaining suffix.
            let k = spec.random_stuck.min(wires.len());
            for i in 0..k {
                let span = (wires.len() - i) as u64;
                let j = i + (fault_hash(spec.seed, TAG_STUCK, i as u64, 0) % span) as usize;
                wires.swap(i, j);
                let (a, b) = wires[i];
                stuck.push(StuckWire::permanent(a, b));
            }
        }
        Ok(FaultPlan {
            seed: spec.seed,
            drop_threshold: rate_to_threshold(spec.drop_rate),
            stall_threshold: rate_to_threshold(spec.stall_rate),
            stuck,
        })
    }

    /// `true` when the plan can never suppress anything: faulty execution
    /// paths are then exact no-ops relative to the fault-free engine.
    pub fn is_noop(&self) -> bool {
        self.drop_threshold == 0 && self.stall_threshold == 0 && self.stuck.is_empty()
    }

    /// The stuck wires of this plan (explicit and randomly selected).
    pub fn stuck_wires(&self) -> &[StuckWire] {
        &self.stuck
    }

    /// Whether the entire step `step` stalls.
    #[inline]
    pub fn step_stalled(&self, step: u64) -> bool {
        self.stall_threshold != 0
            && u128::from(fault_hash(self.seed, TAG_STALL, step, 0)) < self.stall_threshold
    }

    /// Whether comparator `c` is suppressed at step `step` (by a stuck
    /// wire or a transient drop). Stalls are a separate, whole-step
    /// question — see [`FaultPlan::step_stalled`].
    #[inline]
    pub fn comparator_dropped(&self, step: u64, c: Comparator) -> bool {
        let (lo, hi) = (c.keep_min.min(c.keep_max), c.keep_min.max(c.keep_max));
        if self.stuck.iter().any(|w| w.covers(step, lo, hi)) {
            return true;
        }
        self.drop_threshold != 0
            && u128::from(fault_hash(
                self.seed,
                TAG_DROP,
                step,
                (u64::from(lo) << 32) | u64::from(hi),
            )) < self.drop_threshold
    }

    /// `true` when no comparator of `plan` is suppressed at `step` and the
    /// step does not stall — the faulty kernel path uses this to take the
    /// compiled fast path for clean steps.
    pub fn step_clean(&self, step: u64, plan: &StepPlan) -> bool {
        if self.is_noop() {
            return true;
        }
        !self.step_stalled(step)
            && !plan.comparators().iter().any(|&c| self.comparator_dropped(step, c))
    }

    /// The fault events of one step against `plan`, in canonical
    /// (comparator-list) order. A stalled step reports a single
    /// [`FaultEvent::Stalled`].
    pub fn step_events(&self, step: u64, plan: &StepPlan) -> Vec<FaultEvent> {
        if self.step_stalled(step) {
            return vec![FaultEvent::Stalled { step }];
        }
        plan.comparators()
            .iter()
            .filter(|&&c| self.comparator_dropped(step, c))
            .map(|c| FaultEvent::Dropped { step, keep_min: c.keep_min, keep_max: c.keep_max })
            .collect()
    }

    /// The full fault trace of the first `steps` steps of `schedule` — the
    /// replay-determinism artifact: two compilations of the same spec
    /// yield identical traces (`analyze` asserts this).
    pub fn trace(&self, schedule: &CycleSchedule, steps: u64) -> Vec<FaultEvent> {
        (0..steps).flat_map(|t| self.step_events(t, schedule.plan_at(t))).collect()
    }
}

/// Classified result of a resilient run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The grid reached the target order.
    Converged {
        /// Total steps executed (main run plus recovery scrubbing).
        steps: u64,
    },
    /// The livelock watchdog fired: no new inversion-count minimum for a
    /// full stall window. The grid is left as the faults shaped it.
    Degraded {
        /// Inversions remaining with respect to the target order.
        residual_inversions: u64,
        /// Largest Manhattan distance of any value from its target cell.
        max_displacement: u64,
    },
    /// The step budget ran out before the grid sorted (and recovery, if
    /// allowed, did not finish the job either).
    BudgetExhausted {
        /// Steps executed in the main (faulty) run.
        steps: u64,
        /// Inversions remaining with respect to the target order.
        residual_inversions: u64,
    },
    /// The multiset of grid values changed during the run — an engine
    /// invariant violation (comparator exchanges permute values, never
    /// create or destroy them). Indicates a bug, never a legal fault.
    IntegrityViolation {
        /// Multiset checksum of the grid before the run.
        expected: u64,
        /// Multiset checksum of the grid after the run.
        actual: u64,
    },
}

impl RunOutcome {
    /// `true` only for [`RunOutcome::Converged`].
    pub fn converged(&self) -> bool {
        matches!(self, RunOutcome::Converged { .. })
    }

    /// Short machine-friendly label (`"converged"`, `"degraded"`,
    /// `"budget-exhausted"`, `"integrity-violation"`).
    pub fn label(&self) -> &'static str {
        match self {
            RunOutcome::Converged { .. } => "converged",
            RunOutcome::Degraded { .. } => "degraded",
            RunOutcome::BudgetExhausted { .. } => "budget-exhausted",
            RunOutcome::IntegrityViolation { .. } => "integrity-violation",
        }
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunOutcome::Converged { steps } => write!(f, "converged after {steps} steps"),
            RunOutcome::Degraded { residual_inversions, max_displacement } => write!(
                f,
                "degraded: {residual_inversions} residual inversions, max displacement {max_displacement}"
            ),
            RunOutcome::BudgetExhausted { steps, residual_inversions } => write!(
                f,
                "budget exhausted after {steps} steps ({residual_inversions} residual inversions)"
            ),
            RunOutcome::IntegrityViolation { expected, actual } => {
                write!(f, "integrity violation: checksum {expected:#018x} became {actual:#018x}")
            }
        }
    }
}

/// Budgets and thresholds governing a resilient run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilientPolicy {
    /// Hard cap on main-run steps; the run always terminates within it.
    pub step_budget: u64,
    /// Watchdog window: the run aborts as livelocked when this many steps
    /// pass without a new adjacent-inversion minimum. Must be generous
    /// enough that fault-free runs (which always make progress within a
    /// `Θ(N)` horizon) never trip it.
    pub stall_window: u64,
    /// Fault-free cycles granted to the *first* recovery scrub attempt
    /// (doubled on each further attempt). `0` disables recovery.
    pub recovery_cycles: u64,
    /// Maximum recovery attempts. `0` disables recovery.
    pub recovery_attempts: u64,
}

impl ResilientPolicy {
    /// Default policy for a mesh of the given side: budget
    /// [`default_step_budget`], watchdog window `4N + 4√N + 64` steps, and
    /// up to 3 scrub attempts starting at `2N + 2√N + 16` cycles (one
    /// attempt already covers the fault-free worst case, so recovery from
    /// purely transient damage converges on the first attempt).
    pub fn for_side(side: usize) -> Self {
        let n = (side * side) as u64;
        let s = side as u64;
        ResilientPolicy {
            step_budget: default_step_budget(side),
            stall_window: 4 * n + 4 * s + 64,
            recovery_cycles: 2 * n + 2 * s + 16,
            recovery_attempts: 3,
        }
    }

    /// The same policy with recovery scrubbing disabled — classification
    /// then reports the raw damage (used by degradation sweeps).
    pub fn without_recovery(mut self) -> Self {
        self.recovery_attempts = 0;
        self
    }

    /// Policy derived from a statically proven convergence bound (the
    /// `crate::opt` / `crate::absint` per-schedule bound) instead of the
    /// generic Θ(N) horizon of [`Self::for_side`].
    ///
    /// Sizing, all in whole cycles of `cycle_len` steps:
    ///
    /// * `stall_window` = the bound rounded up to a cycle — a fault-free
    ///   run *finishes* within the bound, so it can never plateau that
    ///   long without converging; any longer stall is real livelock.
    /// * `recovery_cycles` = `bound ⌈/⌉ cycle_len` — recovery scrubbing
    ///   restarts at cycle step 0 and the bound is proven from the
    ///   unconstrained state at step 0, so one fault-free scrub of this
    ///   many cycles deterministically sorts *any* grid state: the first
    ///   recovery attempt already suffices, doubling is pure margin.
    /// * `step_budget` = two stall windows — one window for the faulty
    ///   run to trip the watchdog plus one for the post-recovery re-run,
    ///   which is fault-free-equivalent after a successful scrub.
    ///
    /// For the canonical schedules the proven bound is well under the
    /// Θ(N) budget, so every field here is tighter than [`Self::for_side`]
    /// (pinned by `tests/fault_props.rs`).
    ///
    /// # Panics
    ///
    /// Panics when `cycle_len` is zero.
    pub fn from_static_bound(bound: u64, cycle_len: usize) -> Self {
        assert!(cycle_len > 0, "a schedule cycle has at least one step");
        let cycle = cycle_len as u64;
        let window = bound.div_ceil(cycle).max(1) * cycle;
        ResilientPolicy {
            step_budget: 2 * window,
            stall_window: window,
            recovery_cycles: bound.div_ceil(cycle).max(1),
            recovery_attempts: 3,
        }
    }
}

/// Full accounting of one resilient run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilientReport {
    /// Classified outcome.
    pub outcome: RunOutcome,
    /// Steps executed in the main (faulty) run.
    pub steps: u64,
    /// Comparator exchanges over the whole run, scrubbing included.
    pub swaps: u64,
    /// Comparator evaluations over the whole run, scrubbing included.
    pub comparisons: u64,
    /// Comparators suppressed by stuck wires or transient drops.
    pub dropped: u64,
    /// Whole steps lost to stalls.
    pub stalled_steps: u64,
    /// Recovery scrub attempts performed.
    pub recovery_attempts: u64,
    /// Steps executed by recovery scrubbing.
    pub recovery_steps: u64,
}

impl ResilientReport {
    /// Main-run plus recovery steps.
    pub fn total_steps(&self) -> u64 {
        self.steps + self.recovery_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_schedule(n: usize) -> CycleSchedule {
        let odd: Vec<(u32, u32)> =
            (0..n.saturating_sub(1)).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
        let even: Vec<(u32, u32)> =
            (1..n.saturating_sub(1)).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
        CycleSchedule::new(
            vec![StepPlan::from_pairs(odd).unwrap(), StepPlan::from_pairs(even).unwrap()],
            n,
        )
        .unwrap()
    }

    #[test]
    fn thresholds_hit_both_edges() {
        assert_eq!(rate_to_threshold(0.0), 0);
        assert_eq!(rate_to_threshold(1.0), 1u128 << 64);
        assert!(u128::from(u64::MAX) < rate_to_threshold(1.0));
        let half = rate_to_threshold(0.5);
        assert!(half > 0 && half < (1u128 << 64));
    }

    #[test]
    fn validate_rejects_bad_rates() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let mut spec = FaultSpec::none(1);
            spec.drop_rate = bad;
            assert_eq!(
                spec.validate().unwrap_err(),
                MeshError::InvalidFaultRate { param: "drop_rate" }
            );
            let mut spec = FaultSpec::none(1);
            spec.stall_rate = bad;
            assert_eq!(
                spec.validate().unwrap_err(),
                MeshError::InvalidFaultRate { param: "stall_rate" }
            );
        }
        assert!(FaultSpec::transient(1, 1.0).validate().is_ok());
    }

    #[test]
    fn noop_plan_injects_nothing() {
        let s = line_schedule(8);
        let plan = FaultPlan::compile(&FaultSpec::none(7), &s).unwrap();
        assert!(plan.is_noop());
        assert!(FaultPlan::none().is_noop());
        // The seed is retained (it is inert once the thresholds are zero
        // and no wire is stuck), so compare behaviour, not the struct.
        assert_eq!(FaultPlan::compile(&FaultSpec::none(0), &s).unwrap(), FaultPlan::none());
        assert!(plan.trace(&s, 1000).is_empty());
        for t in 0..100 {
            assert!(plan.step_clean(t, s.plan_at(t)));
            assert!(!plan.step_stalled(t));
        }
    }

    #[test]
    fn drop_rate_one_drops_everything() {
        let s = line_schedule(8);
        let plan = FaultPlan::compile(&FaultSpec::transient(3, 1.0), &s).unwrap();
        for t in 0..16 {
            for &c in s.plan_at(t).comparators() {
                assert!(plan.comparator_dropped(t, c));
            }
        }
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let s = line_schedule(64);
        let plan = FaultPlan::compile(&FaultSpec::transient(11, 0.25), &s).unwrap();
        let mut total = 0u64;
        let mut dropped = 0u64;
        for t in 0..2000 {
            for &c in s.plan_at(t).comparators() {
                total += 1;
                dropped += u64::from(plan.comparator_dropped(t, c));
            }
        }
        let frac = dropped as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.02, "observed drop fraction {frac}");
    }

    #[test]
    fn same_spec_same_trace() {
        let s = line_schedule(16);
        let mut spec = FaultSpec::transient(0xFEED, 0.1);
        spec.stall_rate = 0.05;
        spec.random_stuck = 2;
        let a = FaultPlan::compile(&spec, &s).unwrap();
        let b = FaultPlan::compile(&spec, &s).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.trace(&s, 512), b.trace(&s, 512));
        assert!(!a.trace(&s, 512).is_empty());
    }

    #[test]
    fn different_seeds_different_traces() {
        let s = line_schedule(16);
        let a = FaultPlan::compile(&FaultSpec::transient(1, 0.1), &s).unwrap();
        let b = FaultPlan::compile(&FaultSpec::transient(2, 0.1), &s).unwrap();
        assert_ne!(a.trace(&s, 512), b.trace(&s, 512));
    }

    #[test]
    fn random_stuck_picks_distinct_schedule_wires() {
        let s = line_schedule(16);
        let mut wires: Vec<(u32, u32)> = s
            .plans()
            .iter()
            .flat_map(|p| p.comparators().iter())
            .map(|c| (c.keep_min.min(c.keep_max), c.keep_min.max(c.keep_max)))
            .collect();
        wires.sort_unstable();
        wires.dedup();
        let mut spec = FaultSpec::none(9);
        spec.random_stuck = 5;
        let plan = FaultPlan::compile(&spec, &s).unwrap();
        assert_eq!(plan.stuck_wires().len(), 5);
        let mut seen = std::collections::HashSet::new();
        for w in plan.stuck_wires() {
            assert!(wires.contains(&(w.cell_lo, w.cell_hi)), "{w:?} not a schedule wire");
            assert!(seen.insert((w.cell_lo, w.cell_hi)), "duplicate stuck wire {w:?}");
            assert_eq!(w.until_step, PERMANENT);
        }
        // Requesting more than exist clamps to the full wire set.
        spec.random_stuck = 10_000;
        let all = FaultPlan::compile(&spec, &s).unwrap();
        assert_eq!(all.stuck_wires().len(), wires.len());
    }

    #[test]
    fn stuck_window_has_bounds() {
        let w = StuckWire::window(5, 2, 10, 20);
        assert_eq!((w.cell_lo, w.cell_hi), (2, 5));
        assert!(!w.covers(9, 2, 5));
        assert!(w.covers(10, 2, 5));
        assert!(w.covers(19, 2, 5));
        assert!(!w.covers(20, 2, 5));
        assert!(!w.covers(10, 2, 6));
        let p = StuckWire::permanent(3, 1);
        assert!(p.covers(0, 1, 3) && p.covers(u64::MAX - 1, 1, 3));
    }

    #[test]
    fn stuck_wire_suppresses_both_directions() {
        let s = line_schedule(4);
        let mut spec = FaultSpec::none(0);
        spec.stuck.push(StuckWire::permanent(0, 1));
        let plan = FaultPlan::compile(&spec, &s).unwrap();
        assert!(plan.comparator_dropped(0, Comparator::new(0, 1)));
        assert!(plan.comparator_dropped(0, Comparator::new(1, 0)));
        assert!(!plan.comparator_dropped(0, Comparator::new(2, 3)));
    }

    #[test]
    fn stalled_step_reports_single_event() {
        let s = line_schedule(8);
        let mut spec = FaultSpec::none(4);
        spec.stall_rate = 1.0;
        let plan = FaultPlan::compile(&spec, &s).unwrap();
        for t in 0..8 {
            assert!(plan.step_stalled(t));
            assert_eq!(plan.step_events(t, s.plan_at(t)), vec![FaultEvent::Stalled { step: t }]);
        }
    }

    #[test]
    fn derive_seed_is_stable_and_label_sensitive() {
        assert_eq!(derive_seed(42, "r1/16"), derive_seed(42, "r1/16"));
        assert_ne!(derive_seed(42, "r1/16"), derive_seed(42, "r2/16"));
        assert_ne!(derive_seed(42, "r1/16"), derive_seed(43, "r1/16"));
    }

    #[test]
    fn policy_defaults_are_ordered() {
        let p = ResilientPolicy::for_side(16);
        assert_eq!(p.step_budget, default_step_budget(16));
        assert!(p.stall_window < p.step_budget);
        assert!(p.recovery_attempts > 0 && p.recovery_cycles > 0);
        let raw = p.without_recovery();
        assert_eq!(raw.recovery_attempts, 0);
        assert_eq!(raw.step_budget, p.step_budget);
    }

    #[test]
    fn outcome_labels_and_display() {
        let c = RunOutcome::Converged { steps: 10 };
        assert!(c.converged());
        assert_eq!(c.label(), "converged");
        assert!(c.to_string().contains("10 steps"));
        let d = RunOutcome::Degraded { residual_inversions: 3, max_displacement: 2 };
        assert!(!d.converged());
        assert_eq!(d.label(), "degraded");
        assert!(d.to_string().contains("3 residual"));
        let b = RunOutcome::BudgetExhausted { steps: 9, residual_inversions: 1 };
        assert_eq!(b.label(), "budget-exhausted");
        let i = RunOutcome::IntegrityViolation { expected: 1, actual: 2 };
        assert_eq!(i.label(), "integrity-violation");
        assert!(i.to_string().contains("checksum"));
    }
}
