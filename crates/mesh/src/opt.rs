//! Certified schedule optimizer: dead-wire elimination, stride re-fusion,
//! and static convergence budgets, driven by [`crate::absint`].
//!
//! PR 5's dataflow analysis proved that the paper's schedules ship
//! provably-dead comparators (S3's phase-aligned rows kill every interior
//! vertical wire of step 3) and computed per-(algorithm, side) static
//! convergence bounds dominated by the Θ(N) runtime budget. This module is
//! the first consumer of those facts on the *hot path*:
//!
//! 1. **Dead-wire elimination** — every wire in
//!    [`DataflowSummary::dead_first_cycle`] is stripped from its step
//!    plan. Soundness: the facts entering a step are non-decreasing in the
//!    cycle index (the transfer is monotone from the unconstrained seed),
//!    so a wire dead on its first execution is dead on every execution —
//!    for any input, by the 0-1 principle. A dead wire never swaps, so
//!    removing it leaves every concrete trajectory — grids, steps, swaps —
//!    bit-identical; only comparison counts drop.
//! 2. **Stride re-fusion** — steps that lost wires are re-lowered with
//!    [`CompiledPlan::compile_with_min_run`] at [`OPT_MIN_RUN`], so the
//!    sparse survivor columns (S3 step 3 keeps column 0, plus the last
//!    column on even sides, at stride `2·side`) still fuse into arithmetic
//!    runs instead of degrading to the scatter path. Untouched steps keep
//!    their canonical [`CompiledPlan::compile`] lowering, so a fully-live
//!    schedule optimizes to an IR-identical copy of itself.
//! 3. **Static convergence budget** — the optimizer re-runs the dataflow
//!    fixpoint **on the optimized schedule** (stripping changes the
//!    abstract transfer even though it preserves concrete behaviour: fact
//!    sets are not transitively closed, so a dead wire may still
//!    materialize derived facts) and records the proven
//!    [`DataflowSummary::converged_step`] as [`OptimizedPlan::static_bound`]
//!    — a cap under which *every* input provably sorts, replacing the
//!    Θ(N) step budget in the resilient runners and the batch engine's
//!    retirement horizon.
//!
//! Nothing downstream trusts the optimizer: [`certify`] re-proves every
//! obligation from the raw/optimized pair alone (comparator accounting,
//! deadness of each stripped wire, structural + IR conformance, sorted
//! fixed point, and the claimed bound), and the `optimizer_equivalence`
//! pass of `meshsort-analyze` additionally replays exhaustive/sampled 0-1
//! placements through both schedules demanding bit-identical behaviour.
//!
//! [`DataflowSummary::dead_first_cycle`]: absint::DataflowSummary::dead_first_cycle
//! [`DataflowSummary::converged_step`]: absint::DataflowSummary::converged_step

use crate::absint::lift::{self, LiftCertificate, LiftError, ScheduleFamily};
use crate::absint::{self, DeadWire};
use crate::error::MeshError;
use crate::fault::default_step_budget;
use crate::kernel::CompiledPlan;
use crate::order::TargetOrder;
use crate::plan::{Comparator, StepPlan};
use crate::schedule::CycleSchedule;
use crate::verify::{verify_schedule_ir, verify_schedule_structural, SchedulePolicy, VerifyError};
use std::fmt;

/// Run-fusion threshold for steps the optimizer stripped. The canonical
/// [`CompiledPlan::compile`] threshold (4) is tuned for dense phases;
/// stripped steps are sparse by construction — S3's step-3 survivors are
/// `⌈side/2⌉`-long columns at stride `2·side` — so pairs are worth fusing.
pub const OPT_MIN_RUN: usize = 2;

/// Default largest side at which the optimizer proves the exact static
/// convergence bound by running the dataflow fixpoint on the optimized
/// schedule. The worklist engine
/// ([`absint::analyze_schedule_worklist`]) pushed the affordable
/// crossover from 16 to 32 (~1–2 s per schedule there); above it,
/// [`optimize_with_family`] lifts a certified bound by periodicity
/// ([`absint::lift`]) and plain [`optimize`] falls back to the sound Θ(N)
/// budget ([`default_step_budget`]). Dead-wire elimination is *not*
/// gated: it needs only cycle 0 of the analysis, computed sparsely above
/// [`OPT_DENSE_MAX_CELLS`]. Tunable per-process via the
/// `MESHSORT_EXACT_BOUND_MAX_SIDE` env var — see
/// [`exact_bound_max_side`].
pub const OPT_EXACT_BOUND_MAX_SIDE: usize = 32;

/// Clamp range for the `MESHSORT_EXACT_BOUND_MAX_SIDE` override: below 4
/// the exact engine costs nothing to keep, above 64 a single fixpoint
/// run blows through any CI budget.
pub const OPT_EXACT_BOUND_SIDE_CLAMP: (usize, usize) = (4, 64);

/// The effective exact-fixpoint cutoff: [`OPT_EXACT_BOUND_MAX_SIDE`]
/// unless the `MESHSORT_EXACT_BOUND_MAX_SIDE` env var overrides it
/// (parsed as a side, clamped to [`OPT_EXACT_BOUND_SIDE_CLAMP`];
/// unparsable values fall back to the default). CI and bench use the
/// override to probe the dense/worklist/lifted crossover without
/// rebuilding.
pub fn exact_bound_max_side() -> usize {
    let (lo, hi) = OPT_EXACT_BOUND_SIDE_CLAMP;
    match std::env::var("MESHSORT_EXACT_BOUND_MAX_SIDE") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(side) => side.clamp(lo, hi),
            Err(_) => OPT_EXACT_BOUND_MAX_SIDE,
        },
        Err(_) => OPT_EXACT_BOUND_MAX_SIDE,
    }
}

/// Largest cell count analysed on the dense [`absint::OrderFacts`]
/// matrix (`cells²` bits — 2 MiB at side 64, 512 MiB at side 256).
/// Above it, first-cycle scans run on [`absint::SparseOrderFacts`],
/// which is proven to agree on every `le` query along the scan.
pub const OPT_DENSE_MAX_CELLS: usize = 4096;

/// The provably dead wires of one cycle, by the cheap first-cycle scan:
/// facts start unconstrained, and a wire whose `le(keep_min, keep_max)`
/// fact already holds when it executes is dead — on every later cycle
/// too, by monotonicity of the cycle-boundary facts. Equals
/// [`DataflowSummary::dead_first_cycle`] without paying for the fixpoint.
///
/// [`DataflowSummary::dead_first_cycle`]: absint::DataflowSummary::dead_first_cycle
pub fn first_cycle_dead_wires(schedule: &CycleSchedule, cells: usize) -> Vec<DeadWire> {
    if cells > OPT_DENSE_MAX_CELLS {
        return absint::first_cycle_dead_wires_sparse(schedule, cells);
    }
    let mut facts = absint::OrderFacts::unconstrained(cells);
    let mut dead = Vec::new();
    for (step, plan) in schedule.plans().iter().enumerate() {
        for &comparator in plan.comparators() {
            if facts.le(comparator.keep_min as usize, comparator.keep_max as usize) {
                dead.push(DeadWire { step, comparator });
            }
        }
        facts.apply_step(plan);
    }
    dead
}

/// A dead-wire-stripped, re-fused schedule plus its optimization
/// certificate obligations: what was stripped and the statically proven
/// convergence bound. Produced by [`optimize`], independently re-proven by
/// [`certify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizedPlan {
    /// The optimized schedule: same cycle length as the raw schedule, each
    /// step's comparators a subset of the raw step's.
    pub schedule: CycleSchedule,
    /// The wires stripped from the raw schedule, each claimed provably
    /// dead ([`certify`] re-proves every claim).
    pub stripped: Vec<DeadWire>,
    /// First step at which the dataflow fixpoint of the *optimized*
    /// schedule proves every input sorted; a sound cap for any run
    /// starting at cycle step 0. Above the exact cutoff this is the
    /// lifted bound of [`OptimizedPlan::lift`] when lifting succeeded —
    /// proven for the *raw* schedule, and sound for the optimized one
    /// because stripping dead wires leaves every concrete trajectory
    /// bit-identical — else the Θ(N) fallback.
    pub static_bound: u64,
    /// The lifting certificate backing [`OptimizedPlan::static_bound`]
    /// when the bound was lifted by periodicity rather than proven by the
    /// exact fixpoint ([`optimize_with_family`] above
    /// [`exact_bound_max_side`]). `None` below the cutoff (the exact
    /// fixpoint is authoritative) and when lifting was unavailable (the
    /// Θ(N) fallback needs no certificate).
    pub lift: Option<LiftCertificate>,
}

impl OptimizedPlan {
    /// Comparators per cycle of the optimized schedule.
    pub fn comparators_per_cycle(&self) -> u64 {
        self.schedule.plans().iter().map(|p| p.len() as u64).sum()
    }

    /// Comparators per cycle of the raw schedule this plan was derived
    /// from (survivors plus stripped).
    pub fn raw_comparators_per_cycle(&self) -> u64 {
        self.comparators_per_cycle() + self.stripped.len() as u64
    }

    /// Fraction of the raw cycle's comparators proven dead and stripped,
    /// in `[0, 1)` — the floor on the comparison-count win.
    pub fn dead_fraction(&self) -> f64 {
        let raw = self.raw_comparators_per_cycle();
        if raw == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.stripped.len() as f64 / raw as f64
        }
    }

    /// `true` when nothing was stripped: the optimized schedule is an
    /// IR-identical copy of the raw one and only the static bound differs
    /// from the Θ(N) default.
    pub fn is_identity(&self) -> bool {
        self.stripped.is_empty()
    }
}

/// A violated certificate obligation (or a failed optimization). Every
/// variant renders a distinct diagnostic; the mutation suite in
/// `meshsort-analyze` corrupts optimized plans to prove each one fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// Rebuilding a stripped step plan failed (cannot happen for subsets
    /// of valid plans; surfaced rather than unwrapped).
    Mesh(MeshError),
    /// The dataflow fixpoint of the optimized schedule does not prove the
    /// full target-order chain, so no static bound exists.
    UnprovableConvergence {
        /// Target-order chain links left unproven at the fixpoint.
        missing: usize,
    },
    /// The optimized plan plus the claimed stripped set does not reproduce
    /// the raw plan's comparator multiset at some step.
    StrippedSetMismatch {
        /// Cycle step (0-indexed) where the accounting first breaks.
        step: usize,
        /// Raw comparators at that step.
        raw: usize,
        /// Optimized comparators plus claimed-stripped wires at that step.
        accounted: usize,
    },
    /// A wire the optimizer claims dead is live: the raw schedule's facts
    /// do not prove `le(keep_min, keep_max)` when the wire executes.
    StrippedWireLive {
        /// Cycle step (0-indexed) of the wire.
        step: usize,
        /// The wrongly stripped comparator.
        comparator: Comparator,
    },
    /// The optimized schedule failed structural verification.
    Structural(VerifyError),
    /// The optimized schedule's segment IR does not expand to its step
    /// plans — a mis-fused stride run.
    IrConformance(VerifyError),
    /// A comparator of the optimized schedule can swap on a sorted grid.
    SortedNotFixedPoint {
        /// Cycle step (0-indexed) of the wire.
        step: usize,
        /// The offending comparator.
        comparator: Comparator,
    },
    /// The claimed static bound is not the one the dataflow fixpoint
    /// proves for the optimized schedule.
    BoundMismatch {
        /// The bound the plan claims.
        claimed: u64,
        /// The bound actually proven.
        proven: u64,
    },
    /// The proven static bound exceeds the Θ(N) step budget it is meant
    /// to replace.
    BoundExceedsBudget {
        /// The proven static bound.
        bound: u64,
        /// The Θ(N) budget ([`default_step_budget`]).
        budget: u64,
    },
    /// A lifting obligation (7–9: period correctness, boundary-fact
    /// closure, bound monotonicity under lifting) failed.
    Lift(LiftError),
    /// The plan carries a lifted bound but [`certify`] has no schedule
    /// family to re-verify the certificate against — lifted claims fail
    /// closed; use [`certify_with_family`].
    LiftUnverifiable,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Mesh(e) => write!(f, "optimized plan construction failed: {e}"),
            OptError::UnprovableConvergence { missing } => write!(
                f,
                "optimized schedule convergence unprovable: {missing} target-order chain links \
                 unproven at the fixpoint"
            ),
            OptError::StrippedSetMismatch { step, raw, accounted } => write!(
                f,
                "comparator accounting broken at step {step}: raw plan has {raw} comparators but \
                 optimized plan plus stripped set accounts for {accounted}"
            ),
            OptError::StrippedWireLive { step, comparator } => write!(
                f,
                "stripped comparator ({}, {}) at step {step} is live: deadness unproven on the \
                 raw schedule",
                comparator.keep_min, comparator.keep_max
            ),
            OptError::Structural(e) => write!(f, "optimized schedule structural violation: {e}"),
            OptError::IrConformance(e) => {
                write!(f, "optimized schedule IR mis-fused: {e}")
            }
            OptError::SortedNotFixedPoint { step, comparator } => write!(
                f,
                "optimized schedule can swap on a sorted grid: comparator ({}, {}) at step {step}",
                comparator.keep_min, comparator.keep_max
            ),
            OptError::BoundMismatch { claimed, proven } => write!(
                f,
                "static bound inflated or stale: claimed {claimed} but the optimized schedule's \
                 fixpoint proves {proven}"
            ),
            OptError::BoundExceedsBudget { bound, budget } => write!(
                f,
                "static bound {bound} exceeds the default step budget {budget} it replaces"
            ),
            OptError::Lift(e) => write!(f, "lifting obligation violated: {e}"),
            OptError::LiftUnverifiable => write!(
                f,
                "plan carries a lifted bound but no schedule family was provided to re-verify \
                 its certificate; use certify_with_family"
            ),
        }
    }
}

impl std::error::Error for OptError {}

impl From<MeshError> for OptError {
    fn from(e: MeshError) -> Self {
        OptError::Mesh(e)
    }
}

/// Optimizes one schedule: strips the provably dead wires, re-fuses the
/// stripped steps, and proves the static convergence bound of the result.
///
/// The returned plan is *claimed* correct; run [`certify`] (or the
/// `optimizer_equivalence` analyze pass, which also replays 0-1
/// placements) to machine-check it.
///
/// # Errors
///
/// [`OptError::UnprovableConvergence`] when the optimized schedule's
/// fixpoint (run at sides ≤ [`exact_bound_max_side`]) cannot prove
/// the target order — no static bound exists, so no optimized plan is
/// produced. [`OptError::Mesh`] is propagated from plan reconstruction
/// (unreachable for subsets of valid plans).
///
/// # Panics
///
/// As [`absint::analyze_schedule`]: when the schedule was not compiled
/// for `side * side` cells.
pub fn optimize(
    raw: &CycleSchedule,
    order: TargetOrder,
    side: usize,
) -> Result<OptimizedPlan, OptError> {
    let cells = side * side;
    let stripped = first_cycle_dead_wires(raw, cells);
    let mut plans = Vec::with_capacity(raw.cycle_len());
    let mut compiled = Vec::with_capacity(raw.cycle_len());
    for (step, plan) in raw.plans().iter().enumerate() {
        let survivors: Vec<Comparator> = plan
            .comparators()
            .iter()
            .copied()
            .filter(|c| !stripped.iter().any(|d| d.step == step && d.comparator == *c))
            .collect();
        let touched = survivors.len() != plan.len();
        let stripped_plan = StepPlan::new(survivors)?;
        compiled.push(if touched {
            CompiledPlan::compile_with_min_run(&stripped_plan, OPT_MIN_RUN)
        } else {
            CompiledPlan::compile(&stripped_plan)
        });
        plans.push(stripped_plan);
    }
    let schedule = CycleSchedule::from_parts(plans, compiled, cells)?;
    let static_bound = if side <= exact_bound_max_side() {
        let summary = absint::analyze_schedule_worklist(&schedule, order, side);
        summary
            .converged_step
            .ok_or(OptError::UnprovableConvergence { missing: summary.missing_chain_links.len() })?
    } else {
        default_step_budget(side)
    };
    Ok(OptimizedPlan { schedule, stripped, static_bound, lift: None })
}

/// [`optimize`], parameterized by the schedule *family* the raw schedule
/// belongs to, so bounds above [`exact_bound_max_side`] can be lifted by
/// periodicity ([`lift::lift_schedule`]) instead of falling back to the
/// Θ(N) budget. The lifted bound is proven for the raw schedule; it caps
/// the optimized one because dead-wire stripping leaves every concrete
/// trajectory bit-identical. When lifting fails (non-periodic family,
/// unprovable window) the plan soundly falls back to the Θ(N) budget with
/// [`OptimizedPlan::lift`]` = None` — lifting is an upgrade, never a
/// requirement.
///
/// # Errors
///
/// As [`optimize`].
///
/// # Panics
///
/// As [`optimize`].
pub fn optimize_with_family(
    family: &ScheduleFamily,
    order: TargetOrder,
    side: usize,
) -> Result<OptimizedPlan, OptError> {
    let raw = family(side)?;
    let mut plan = optimize(&raw, order, side)?;
    if side > exact_bound_max_side() {
        if let Ok(cert) = lift::lift_schedule(family, order, side) {
            plan.static_bound = cert.bound;
            plan.lift = Some(cert);
        }
    }
    Ok(plan)
}

/// Machine-checks an [`OptimizedPlan`] against the raw schedule it claims
/// to optimize. The obligations, in order:
///
/// 1. **Comparator accounting** — per step, the optimized plan's
///    comparators plus the claimed stripped wires reproduce exactly the
///    raw plan's comparator multiset (nothing dropped beyond the claim,
///    nothing invented).
/// 2. **Deadness** — replaying the raw schedule's first cycle in the
///    ordering-facts domain proves `le(keep_min, keep_max)` for every
///    stripped wire at the moment it would execute (monotonicity extends
///    this to every later cycle).
/// 3. **Structural conformance** — the optimized schedule passes
///    [`verify_schedule_structural`] against `policy` (a subset of a
///    conforming schedule conforms, but the verifier re-proves it).
/// 4. **IR conformance** — every optimized step's re-fused segment IR
///    expands to exactly its step plan ([`verify_schedule_ir`]); this is
///    what catches a mis-fused stride run.
/// 5. **Sorted fixed point** — the sorted state still cannot swap
///    ([`absint::verify_sorted_fixed_point_ranked`], the rank-based form
///    proven identical to the dense seed — affordable at every side).
/// 6. **Bound** — the dataflow fixpoint of the optimized schedule proves
///    convergence exactly at the claimed [`OptimizedPlan::static_bound`],
///    and that bound does not exceed [`default_step_budget`]. Above
///    [`exact_bound_max_side`] the fixpoint is unaffordable; the
///    admissible claims are a verified lifting certificate
///    ([`certify_with_family`], obligations 7–9) or the Θ(N) fallback
///    itself. A plan carrying a lifted bound fails this entry point with
///    [`OptError::LiftUnverifiable`] — no lifted bound ships unproven.
///
/// Behavioural 0-1 identity (raw and optimized runs bit-identical) is the
/// seventh analyze pass's additional dynamic check; obligations 1+2 imply
/// it, but the pass does not take the implication on faith.
///
/// # Errors
///
/// The first violated obligation, as a distinct [`OptError`] variant.
pub fn certify(
    raw: &CycleSchedule,
    optimized: &OptimizedPlan,
    policy: &SchedulePolicy,
) -> Result<(), OptError> {
    certify_core(raw, optimized, policy, None)
}

/// [`certify`], plus the lifting obligations for plans whose bound was
/// lifted by periodicity: the [`LiftCertificate`] is re-verified from
/// scratch against `family` ([`lift::verify_certificate`] — period
/// correctness, boundary-fact closure, bound monotonicity under lifting,
/// numbered 7–9) and the plan's bound must equal the certificate's.
///
/// # Errors
///
/// The first violated obligation, as a distinct [`OptError`] variant;
/// lifting violations arrive as [`OptError::Lift`].
pub fn certify_with_family(
    raw: &CycleSchedule,
    optimized: &OptimizedPlan,
    policy: &SchedulePolicy,
    family: &ScheduleFamily,
) -> Result<(), OptError> {
    certify_core(raw, optimized, policy, Some(family))
}

fn certify_core(
    raw: &CycleSchedule,
    optimized: &OptimizedPlan,
    policy: &SchedulePolicy,
    family: Option<&ScheduleFamily>,
) -> Result<(), OptError> {
    let side = policy.side();
    let order = policy.order();

    // Obligation 1: per-step comparator accounting.
    let key = |c: &Comparator| (c.keep_min, c.keep_max);
    for (step, raw_plan) in raw.plans().iter().enumerate() {
        let mut expected: Vec<Comparator> = raw_plan.comparators().to_vec();
        let mut accounted: Vec<Comparator> = optimized
            .schedule
            .plans()
            .get(step)
            .map(|p| p.comparators().to_vec())
            .unwrap_or_default();
        accounted
            .extend(optimized.stripped.iter().filter(|d| d.step == step).map(|d| d.comparator));
        expected.sort_unstable_by_key(key);
        accounted.sort_unstable_by_key(key);
        if expected != accounted {
            return Err(OptError::StrippedSetMismatch {
                step,
                raw: expected.len(),
                accounted: accounted.len(),
            });
        }
    }
    if optimized.schedule.cycle_len() != raw.cycle_len() {
        return Err(OptError::StrippedSetMismatch {
            step: raw.cycle_len(),
            raw: 0,
            accounted: optimized.schedule.plans().len().saturating_sub(raw.cycle_len()),
        });
    }

    // Obligation 2: every stripped wire is provably dead on the raw
    // schedule's first cycle. Sparse facts above the dense-matrix cell
    // cap — the lattices agree on every `le` query along the scan.
    let cells = side * side;
    if cells > OPT_DENSE_MAX_CELLS {
        let mut facts = absint::SparseOrderFacts::unconstrained(cells);
        for (step, plan) in raw.plans().iter().enumerate() {
            for dead in optimized.stripped.iter().filter(|d| d.step == step) {
                let c = dead.comparator;
                if !facts.le(c.keep_min as usize, c.keep_max as usize) {
                    return Err(OptError::StrippedWireLive { step, comparator: c });
                }
            }
            facts.apply_step(plan);
        }
    } else {
        let mut facts = absint::OrderFacts::unconstrained(cells);
        for (step, plan) in raw.plans().iter().enumerate() {
            for dead in optimized.stripped.iter().filter(|d| d.step == step) {
                let c = dead.comparator;
                if !facts.le(c.keep_min as usize, c.keep_max as usize) {
                    return Err(OptError::StrippedWireLive { step, comparator: c });
                }
            }
            facts.apply_step(plan);
        }
    }

    // Obligations 3 + 4: structural and IR conformance of the optimized
    // schedule.
    verify_schedule_structural(&optimized.schedule, policy).map_err(OptError::Structural)?;
    verify_schedule_ir(&optimized.schedule).map_err(OptError::IrConformance)?;

    // Obligation 5: sorted state remains a fixed point (rank-based form,
    // proven identical to the dense seed and affordable at every side).
    absint::verify_sorted_fixed_point_ranked(&optimized.schedule, order, side)
        .map_err(|w| OptError::SortedNotFixedPoint { step: w.step, comparator: w.comparator })?;

    // Obligation 6 (and 7–9 when lifted): the claimed bound is the proven
    // one and fits the budget it replaces. Above the exact-fixpoint side
    // the admissible claims are a re-verified lifting certificate or the
    // Θ(N) fallback itself; an unverifiable lifted claim fails closed.
    let budget = default_step_budget(side);
    let proven = if side <= exact_bound_max_side() {
        let summary = absint::analyze_schedule_worklist(&optimized.schedule, order, side);
        summary
            .converged_step
            .ok_or(OptError::UnprovableConvergence { missing: summary.missing_chain_links.len() })?
    } else if let Some(cert) = &optimized.lift {
        let Some(family) = family else {
            return Err(OptError::LiftUnverifiable);
        };
        lift::verify_certificate(family, order, cert).map_err(OptError::Lift)?;
        cert.bound
    } else {
        budget
    };
    if proven != optimized.static_bound {
        return Err(OptError::BoundMismatch { claimed: optimized.static_bound, proven });
    }
    if proven > budget {
        return Err(OptError::BoundExceedsBudget { bound: proven, budget });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::order::TargetOrder;

    /// Linear-array phase pairs: odd phase `(0,1), (2,3), …`, even phase
    /// `(1,2), (3,4), …` (the paper's 1-indexed odd/even steps).
    fn phase_pairs(side: usize, odd: bool) -> Vec<(usize, usize)> {
        let start = usize::from(!odd);
        (start..side.saturating_sub(1)).step_by(2).map(|a| (a, a + 1)).collect()
    }

    /// S3's canonical cycle (snake order, phase-aligned rows) rebuilt
    /// from the paper's step descriptions, mirroring
    /// `AlgorithmId::SnakePhaseAligned` without depending on `core`:
    /// row steps run *one* phase across all rows (paper-odd rows forward,
    /// paper-even rows reverse), column steps are parity-staggered.
    fn s3_schedule(side: usize) -> CycleSchedule {
        let rows = |odd_phase: bool| {
            let mut cs = Vec::new();
            for r in 0..side {
                let forward = r % 2 == 0; // paper-odd rows ascend left→right
                for (a, b) in phase_pairs(side, odd_phase) {
                    let left = (r * side + a) as u32;
                    let right = (r * side + b) as u32;
                    cs.push(if forward {
                        Comparator::new(left, right)
                    } else {
                        Comparator::new(right, left)
                    });
                }
            }
            StepPlan::new(cs).unwrap()
        };
        let staggered_cols = |odd_cols_phase_odd: bool| {
            let mut cs = Vec::new();
            for c in 0..side {
                let odd_phase = if c % 2 == 0 { odd_cols_phase_odd } else { !odd_cols_phase_odd };
                for (a, b) in phase_pairs(side, odd_phase) {
                    cs.push(Comparator::new((a * side + c) as u32, (b * side + c) as u32));
                }
            }
            StepPlan::new(cs).unwrap()
        };
        CycleSchedule::new(
            vec![rows(true), staggered_cols(true), rows(false), staggered_cols(false)],
            side * side,
        )
        .unwrap()
    }

    #[test]
    fn optimize_strips_s3_dead_wires_and_certifies() {
        let side = 8;
        let raw = s3_schedule(side);
        let order = TargetOrder::Snake;
        let opt = optimize(&raw, order, side).unwrap();
        assert!(!opt.stripped.is_empty(), "S3-style schedule must have dead wires");
        assert!(opt.stripped.iter().all(|d| d.step == 3), "dead wires live on the repeat step");
        let policy = crate::verify::SchedulePolicy::mesh_only(side, order, raw.cycle_len());
        certify(&raw, &opt, &policy).unwrap();
        assert!(opt.static_bound <= default_step_budget(side));
    }

    #[test]
    fn optimized_run_is_bit_identical_to_raw() {
        let side = 8;
        let raw = s3_schedule(side);
        let order = TargetOrder::Snake;
        let opt = optimize(&raw, order, side).unwrap();
        let cap = default_step_budget(side);
        for seed in 0..8u64 {
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let data: Vec<u32> = (0..side * side)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state & 0xffff) as u32
                })
                .collect();
            let mut a = Grid::from_rows(side, data.clone()).unwrap();
            let mut b = Grid::from_rows(side, data).unwrap();
            let ra = raw.run_until_sorted_kernel(&mut a, order, cap);
            let rb = opt.schedule.run_until_sorted_kernel(&mut b, order, cap);
            assert!(ra.sorted && rb.sorted);
            assert_eq!(a, b, "final grids must be bit-identical");
            assert_eq!(ra.steps, rb.steps);
            assert_eq!(ra.swaps, rb.swaps);
            assert!(
                rb.comparisons < ra.comparisons,
                "stripping dead wires must reduce comparison counts"
            );
            assert!(rb.steps <= opt.static_bound, "fault-free run exceeds static bound");
        }
    }

    #[test]
    fn fully_live_schedule_optimizes_to_identity() {
        // A 1-D odd-even transposition network has no dead wires.
        let side = 4;
        let odd: Vec<Comparator> = (0..side * side - 1)
            .step_by(2)
            .map(|i| Comparator::new(i as u32, i as u32 + 1))
            .collect();
        let even: Vec<Comparator> = (1..side * side - 1)
            .step_by(2)
            .map(|i| Comparator::new(i as u32, i as u32 + 1))
            .collect();
        let raw = CycleSchedule::new(
            vec![StepPlan::new(odd).unwrap(), StepPlan::new(even).unwrap()],
            side * side,
        )
        .unwrap();
        let opt = optimize(&raw, TargetOrder::RowMajor, side).unwrap();
        assert!(opt.is_identity());
        assert_eq!(opt.schedule, raw, "identity optimization must preserve the IR too");
        assert!((opt.dead_fraction() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn certify_rejects_live_wire_claimed_dead() {
        let side = 8;
        let raw = s3_schedule(side);
        let order = TargetOrder::Snake;
        let opt = optimize(&raw, order, side).unwrap();
        // Strip a genuinely live wire (from step 0) and claim it dead.
        let victim = raw.plans()[0].comparators()[0];
        let mut plans = opt.schedule.plans().to_vec();
        let survivors: Vec<Comparator> =
            plans[0].comparators().iter().copied().filter(|c| *c != victim).collect();
        plans[0] = StepPlan::new(survivors).unwrap();
        let mut compiled = opt.schedule.compiled_plans().to_vec();
        compiled[0] = CompiledPlan::compile_with_min_run(&plans[0], OPT_MIN_RUN);
        let schedule = CycleSchedule::from_parts(plans, compiled, side * side).unwrap();
        let mut stripped = opt.stripped.clone();
        stripped.push(DeadWire { step: 0, comparator: victim });
        let corrupted =
            OptimizedPlan { schedule, stripped, static_bound: opt.static_bound, lift: None };
        let policy = crate::verify::SchedulePolicy::mesh_only(side, order, raw.cycle_len());
        let err = certify(&raw, &corrupted, &policy).unwrap_err();
        assert!(matches!(err, OptError::StrippedWireLive { step: 0, .. }), "{err}");
        assert!(err.to_string().contains("is live"));
    }

    #[test]
    fn certify_rejects_inflated_bound() {
        let side = 8;
        let raw = s3_schedule(side);
        let order = TargetOrder::Snake;
        let mut opt = optimize(&raw, order, side).unwrap();
        opt.static_bound += 4;
        let policy = crate::verify::SchedulePolicy::mesh_only(side, order, raw.cycle_len());
        let err = certify(&raw, &opt, &policy).unwrap_err();
        assert!(matches!(err, OptError::BoundMismatch { .. }), "{err}");
        assert!(err.to_string().contains("inflated or stale"));
    }

    #[test]
    fn certify_rejects_unaccounted_drop() {
        let side = 8;
        let raw = s3_schedule(side);
        let order = TargetOrder::Snake;
        let mut opt = optimize(&raw, order, side).unwrap();
        // Forget one stripped wire from the claim: accounting breaks.
        opt.stripped.pop();
        let policy = crate::verify::SchedulePolicy::mesh_only(side, order, raw.cycle_len());
        let err = certify(&raw, &opt, &policy).unwrap_err();
        assert!(matches!(err, OptError::StrippedSetMismatch { .. }), "{err}");
        assert!(err.to_string().contains("accounting"));
    }

    #[test]
    fn certify_rejects_mis_fused_ir() {
        let side = 8;
        let raw = s3_schedule(side);
        let order = TargetOrder::Snake;
        let opt = optimize(&raw, order, side).unwrap();
        // Rebuild the optimized schedule with one step's IR compiled from
        // a doctored plan (first comparator dropped): expansion no longer
        // matches the step plan.
        let plans = opt.schedule.plans().to_vec();
        let mut compiled: Vec<CompiledPlan> = opt.schedule.compiled_plans().to_vec();
        let doctored = StepPlan::new(plans[3].comparators()[1..].to_vec()).unwrap();
        compiled[3] = CompiledPlan::compile_with_min_run(&doctored, OPT_MIN_RUN);
        let mis_fused = CycleSchedule::from_parts(plans, compiled, side * side).unwrap();
        let corrupted = OptimizedPlan { schedule: mis_fused, ..opt };
        let policy = crate::verify::SchedulePolicy::mesh_only(side, order, raw.cycle_len());
        let err = certify(&raw, &corrupted, &policy).unwrap_err();
        assert!(matches!(err, OptError::IrConformance(_)), "{err}");
        assert!(err.to_string().contains("mis-fused"));
    }

    #[test]
    fn stripped_steps_refuse_with_short_runs() {
        let side = 8;
        let raw = s3_schedule(side);
        let opt = optimize(&raw, TargetOrder::Snake, side).unwrap();
        // Step 3 survivors: column 0 (odd parities) — stride 2·side runs
        // that the canonical MIN_RUN=4 would scatter at this density.
        let refused = &opt.schedule.compiled_plans()[3];
        assert!(
            refused.run_segments() > 0,
            "survivor columns must re-fuse into stride runs, not scatter"
        );
    }
}
