//! Periodicity lifting: certified static bounds beyond the exact-fixpoint
//! wall.
//!
//! The dataflow fixpoint re-derives the paper's convergence facts
//! per-(algorithm, side), but even the worklist engine pays
//! `Ω(cells²)` bits of state — side 256 is out of reach. What rescues the
//! analysis is structure the schedules were *built* with: all five are
//! spatially periodic comparator networks with row/column period `(2, 2)`
//! (1-D odd/even phases along rows, parity-staggered column phases), so
//! the network a cell sees is determined by its position modulo the
//! period plus its distance to the boundary. This module exploits that in
//! three machine-checked moves:
//!
//! 1. **Period correctness** — prove the *target-side* schedule is
//!    translation-invariant: every comparator, translated by one period
//!    along either axis, either leaves the grid (boundary wires are
//!    vacuous) or lands on a comparator of the same step with the same
//!    `keep_min`/`keep_max` roles.
//! 2. **Windowed fixpoints** — run the exact fixpoint on a window of
//!    small sides ([`LIFT_WINDOW_MIN_SIDE`]`..=`[`LIFT_WINDOW_MAX_SIDE`],
//!    parity-matched to the target) where it costs milliseconds, and
//!    record each side's proven bound and first-cycle dead-wire set.
//! 3. **Bound lifting** — fit the window bounds with an exact-rational
//!    quadratic in the side (the paper's own growth order). Two models
//!    are admissible and explicit in the certificate: [`LiftModel::Exact`]
//!    when one quadratic reproduces *every* window value exactly
//!    (row-major/row-first `2s²−2s−1`, row-major/col-first `2s²−2s`,
//!    snake/phase-aligned `2s²−1`), and [`LiftModel::Envelope`] when the
//!    window sequence is not quasi-polynomial (snake/alternating and
//!    snake/staggered-cols): a tangent quadratic whose leading
//!    coefficient is the window's *maximum* second difference, anchored
//!    at the two largest window sides — by discrete convexity it
//!    dominates every window point, and it stays far below the Θ(N)
//!    budget it replaces.
//!
//! The resulting [`LiftCertificate`] carries everything needed to
//! re-verify the claim from scratch ([`verify_certificate`] — re-run by
//! `opt::certify` as obligations 7–9). Sides 2 and 3 are excluded from
//! the window on purpose: boundary transients break the asymptotic form
//! there (S3's side-2 bound is 5 where `2s²−1` predicts 7) — see
//! DESIGN.md §16 for the soundness discussion, including why an
//! [`LiftModel::Envelope`] bound is an *upper* bound claim and how the
//! runtime's sortedness verification backstops it.

use super::{first_cycle_dead_wires_sparse, DeadWire};
use crate::error::MeshError;
use crate::fault::default_step_budget;
use crate::order::TargetOrder;
use crate::schedule::CycleSchedule;
use std::collections::HashSet;
use std::fmt;

/// Smallest side admitted into the fit/verification window. Sides 2–3 are
/// boundary transients: their bounds sit off the asymptotic form every
/// algorithm settles into from side 4 on.
pub const LIFT_WINDOW_MIN_SIDE: usize = 4;

/// Largest side of the bounded window the exact fixpoint is run on.
pub const LIFT_WINDOW_MAX_SIDE: usize = 16;

/// Largest side a lifted bound is certified for.
pub const LIFT_MAX_SIDE: usize = 256;

/// The row/column translation period all five schedules share.
pub const LIFT_PERIOD: (usize, usize) = (2, 2);

/// A schedule *family*: the per-side constructor whose instances the
/// lifting argument relates (e.g. `AlgorithmId::schedule`). The `mesh`
/// crate has no notion of the five named algorithms, so consumers pass
/// the constructor down.
pub type ScheduleFamily<'a> = dyn Fn(usize) -> Result<CycleSchedule, MeshError> + 'a;

/// How the window bounds were lifted to the target side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiftModel {
    /// One quadratic reproduces every window bound exactly; the lifted
    /// bound is claimed to *be* the fixpoint bound at the target side.
    Exact,
    /// The window sequence is not quasi-polynomial; the quadratic is a
    /// certified upper envelope (max window second difference as leading
    /// term, tangent at the two largest window sides) and the lifted
    /// bound is claimed as an upper bound only.
    Envelope,
}

impl LiftModel {
    /// Short label used in analyze-pass details and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            LiftModel::Exact => "exact",
            LiftModel::Envelope => "envelope",
        }
    }
}

/// A quadratic in the side with exact rational coefficients
/// `(num_a·s² + num_b·s + num_c) / den`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadraticFit {
    /// Numerator of the `s²` coefficient.
    pub num_a: i128,
    /// Numerator of the `s` coefficient.
    pub num_b: i128,
    /// Numerator of the constant term.
    pub num_c: i128,
    /// Common denominator (8: second differences over a stride-2 side
    /// chain are `8a`, so eighths are exact).
    pub den: i128,
}

impl QuadraticFit {
    /// `den · fit(side)` — the scaled value all obligations compare in,
    /// avoiding rounding entirely.
    pub fn eval_scaled(&self, side: usize) -> i128 {
        let s = side as i128;
        self.num_a * s * s + self.num_b * s + self.num_c
    }

    /// `fit(side)` when it is a nonnegative integer; `None` otherwise.
    pub fn eval_exact(&self, side: usize) -> Option<u64> {
        let v = self.eval_scaled(side);
        if v < 0 || v % self.den != 0 {
            return None;
        }
        u64::try_from(v / self.den).ok()
    }

    /// `⌈fit(side)⌉` for nonnegative values; `None` when negative.
    pub fn eval_ceil(&self, side: usize) -> Option<u64> {
        let v = self.eval_scaled(side);
        if v < 0 {
            return None;
        }
        u64::try_from((v + self.den - 1) / self.den).ok()
    }
}

/// One window side's exact fixpoint results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSample {
    /// The window side.
    pub side: usize,
    /// The fixpoint's proven convergence bound at this side.
    pub bound: u64,
    /// First-cycle dead wires at this side.
    pub dead: Vec<DeadWire>,
}

/// A machine-checked claim that `bound` caps the convergence of the
/// family's schedule at `side`, produced by [`lift_schedule`] and
/// re-verified from scratch by [`verify_certificate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftCertificate {
    /// The target side the bound is claimed for.
    pub side: usize,
    /// The row/column translation period the schedule was proven
    /// invariant under (always [`LIFT_PERIOD`]).
    pub period: (usize, usize),
    /// Whether the fit reproduces the window exactly or only dominates it.
    pub model: LiftModel,
    /// The lifting quadratic.
    pub fit: QuadraticFit,
    /// The parity-matched window samples the fit was derived from.
    pub window: Vec<WindowSample>,
    /// The lifted static bound at `side`.
    pub bound: u64,
    /// The exact first-cycle dead-wire set at `side` (computed sparsely;
    /// deadness needs only cycle 0, never the full fixpoint).
    pub dead_wires: Vec<DeadWire>,
}

/// A violated lifting obligation. Every variant renders a distinct
/// diagnostic; the mutation suite corrupts certificates and schedules to
/// prove each one fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiftError {
    /// Constructing a family member failed.
    Mesh(MeshError),
    /// The target side is outside `[`[`LIFT_WINDOW_MIN_SIDE`]`,
    /// `[`LIFT_MAX_SIDE`]`]`.
    UnsupportedSide {
        /// The offending side.
        side: usize,
    },
    /// A comparator translated by one period lands in-bounds but on no
    /// comparator of its step: the schedule is not translation-invariant.
    PeriodBroken {
        /// Side at which the violation was found.
        side: usize,
        /// Cycle step (0-indexed) of the comparator.
        step: usize,
        /// The comparator whose translate is missing.
        comparator: crate::plan::Comparator,
        /// The violating `(row, col)` translation.
        translation: (isize, isize),
    },
    /// The certificate's period field is not the proven one.
    PeriodMismatch {
        /// The period the certificate claims.
        claimed: (usize, usize),
    },
    /// A window side's fixpoint cannot prove convergence at all.
    WindowUnprovable {
        /// The window side.
        window_side: usize,
        /// Unproven target-order chain links at its fixpoint.
        missing: usize,
    },
    /// The certificate's window does not list the canonical window sides.
    WindowShapeMismatch {
        /// Number of samples expected.
        expected: usize,
        /// Number of samples recorded.
        got: usize,
    },
    /// A recorded window bound disagrees with the recomputed fixpoint.
    WindowBoundMismatch {
        /// The window side.
        window_side: usize,
        /// The bound the certificate records.
        claimed: u64,
        /// The bound the fixpoint proves.
        proven: u64,
    },
    /// A recorded window dead-wire set disagrees with the recomputed one
    /// — e.g. a boundary wire dropped from the window.
    WindowDeadMismatch {
        /// The window side.
        window_side: usize,
        /// Recomputed dead wires missing from the certificate.
        missing: usize,
        /// Certificate dead wires the recomputation does not prove.
        extra: usize,
    },
    /// An [`LiftModel::Exact`] fit fails to reproduce a window bound.
    FitMismatch {
        /// The window side.
        window_side: usize,
        /// The fit's value there (`None`: not an integer).
        fitted: Option<u64>,
        /// The exact bound there.
        exact: u64,
    },
    /// An [`LiftModel::Envelope`] fit falls below a window bound.
    NotDominating {
        /// The window side.
        window_side: usize,
        /// `den ·` the fit's value there.
        fitted_scaled: i128,
        /// The exact bound there.
        exact: u64,
    },
    /// The fit is not monotone nondecreasing on the claimed side range.
    NotMonotone {
        /// First side at which the fit decreases (or goes negative).
        side: usize,
    },
    /// The certificate's bound is not the model's value at the target.
    BoundMismatch {
        /// The bound the certificate claims.
        claimed: u64,
        /// The bound the model evaluates to.
        evaluated: u64,
    },
    /// The recorded target-side dead-wire set disagrees with the
    /// recomputed one.
    TargetDeadMismatch {
        /// Recomputed dead wires missing from the certificate.
        missing: usize,
        /// Certificate dead wires the recomputation does not prove.
        extra: usize,
    },
    /// The lifted bound exceeds the Θ(N) budget it is meant to replace.
    ExceedsBudget {
        /// The lifted bound.
        bound: u64,
        /// The Θ(N) budget ([`default_step_budget`]).
        budget: u64,
    },
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::Mesh(e) => write!(f, "lift family construction failed: {e}"),
            LiftError::UnsupportedSide { side } => write!(
                f,
                "side {side} outside the liftable range \
                 [{LIFT_WINDOW_MIN_SIDE}, {LIFT_MAX_SIDE}]"
            ),
            LiftError::PeriodBroken { side, step, comparator, translation } => write!(
                f,
                "period broken at side {side}: comparator ({}, {}) of step {step} translated by \
                 ({}, {}) lands in-bounds but on no comparator of the step",
                comparator.keep_min, comparator.keep_max, translation.0, translation.1
            ),
            LiftError::PeriodMismatch { claimed } => write!(
                f,
                "certificate claims period ({}, {}) but the proven period is ({}, {})",
                claimed.0, claimed.1, LIFT_PERIOD.0, LIFT_PERIOD.1
            ),
            LiftError::WindowUnprovable { window_side, missing } => write!(
                f,
                "window side {window_side} cannot prove convergence: {missing} chain links \
                 unproven at the fixpoint"
            ),
            LiftError::WindowShapeMismatch { expected, got } => write!(
                f,
                "certificate window has {got} samples where the canonical window has {expected}"
            ),
            LiftError::WindowBoundMismatch { window_side, claimed, proven } => write!(
                f,
                "window bound forged at side {window_side}: certificate records {claimed} but \
                 the fixpoint proves {proven}"
            ),
            LiftError::WindowDeadMismatch { window_side, missing, extra } => write!(
                f,
                "window dead-wire set forged at side {window_side}: {missing} proven dead wires \
                 missing from the certificate, {extra} unproven extras recorded"
            ),
            LiftError::FitMismatch { window_side, fitted, exact } => write!(
                f,
                "exact fit fails at window side {window_side}: fit gives {fitted:?} but the \
                 fixpoint proves {exact}"
            ),
            LiftError::NotDominating { window_side, fitted_scaled, exact } => write!(
                f,
                "envelope fit falls below the window at side {window_side}: scaled fit \
                 {fitted_scaled} < scaled exact bound {}",
                *exact as i128 * 8
            ),
            LiftError::NotMonotone { side } => {
                write!(f, "lifted bound not monotone nondecreasing at side {side}")
            }
            LiftError::BoundMismatch { claimed, evaluated } => write!(
                f,
                "lifted bound forged: certificate claims {claimed} but the model evaluates to \
                 {evaluated}"
            ),
            LiftError::TargetDeadMismatch { missing, extra } => write!(
                f,
                "target dead-wire set forged: {missing} proven dead wires missing, {extra} \
                 unproven extras recorded"
            ),
            LiftError::ExceedsBudget { bound, budget } => write!(
                f,
                "lifted bound {bound} exceeds the default step budget {budget} it replaces"
            ),
        }
    }
}

impl std::error::Error for LiftError {}

impl From<MeshError> for LiftError {
    fn from(e: MeshError) -> Self {
        LiftError::Mesh(e)
    }
}

/// Proves `schedule` is translation-invariant under [`LIFT_PERIOD`]:
/// every comparator shifted by ±one period along either axis, when both
/// endpoints stay on the grid, must appear in the same step with the same
/// orientation. Boundary-crossing translates are vacuously fine — that is
/// precisely how wrap wires and row/column ends stay admissible.
///
/// # Errors
///
/// [`LiftError::PeriodBroken`] naming the first violating translate.
pub fn check_period(schedule: &CycleSchedule, side: usize) -> Result<(), LiftError> {
    let (pr, pc) = (LIFT_PERIOD.0 as isize, LIFT_PERIOD.1 as isize);
    let translations: [(isize, isize); 4] = [(pr, 0), (-pr, 0), (0, pc), (0, -pc)];
    let shift = |cell: u32, dr: isize, dc: isize| -> Option<u32> {
        let (r, c) = ((cell as usize / side) as isize, (cell as usize % side) as isize);
        let (nr, nc) = (r + dr, c + dc);
        if nr < 0 || nc < 0 || nr >= side as isize || nc >= side as isize {
            return None;
        }
        Some((nr * side as isize + nc) as u32)
    };
    for (step, plan) in schedule.plans().iter().enumerate() {
        let wires: HashSet<(u32, u32)> =
            plan.comparators().iter().map(|c| (c.keep_min, c.keep_max)).collect();
        for &comparator in plan.comparators() {
            for &(dr, dc) in &translations {
                let (Some(a), Some(b)) =
                    (shift(comparator.keep_min, dr, dc), shift(comparator.keep_max, dr, dc))
                else {
                    continue;
                };
                if !wires.contains(&(a, b)) {
                    return Err(LiftError::PeriodBroken {
                        side,
                        step,
                        comparator,
                        translation: (dr, dc),
                    });
                }
            }
        }
    }
    Ok(())
}

/// The canonical window sides for a target of `side`'s parity.
fn window_sides(side: usize) -> Vec<usize> {
    (LIFT_WINDOW_MIN_SIDE..=LIFT_WINDOW_MAX_SIDE).filter(|w| w % 2 == side % 2).collect()
}

/// Computes the window samples: per parity-matched window side, the
/// period check, the exact fixpoint bound, and the first-cycle dead set.
fn compute_window(
    family: &ScheduleFamily,
    order: TargetOrder,
    side: usize,
) -> Result<Vec<WindowSample>, LiftError> {
    let mut samples = Vec::new();
    for w in window_sides(side) {
        let schedule = family(w)?;
        check_period(&schedule, w)?;
        let summary = super::analyze_schedule_worklist(&schedule, order, w);
        let bound = summary.converged_step.ok_or(LiftError::WindowUnprovable {
            window_side: w,
            missing: summary.missing_chain_links.len(),
        })?;
        samples.push(WindowSample { side: w, bound, dead: summary.dead_first_cycle });
    }
    Ok(samples)
}

/// Fits the window bounds: [`LiftModel::Exact`] when one quadratic
/// reproduces every sample, else the [`LiftModel::Envelope`] tangent
/// majorant. Returns the model with its fit.
fn fit_window(samples: &[WindowSample]) -> (LiftModel, QuadraticFit) {
    let n = samples.len();
    debug_assert!(n >= 3, "window always holds ≥ 6 parity-matched sides");
    let (s0, f0) = (samples[n - 3].side as i128, samples[n - 3].bound as i128);
    let (s1, f1) = (samples[n - 2].side as i128, samples[n - 2].bound as i128);
    let (s2, f2) = (samples[n - 1].side as i128, samples[n - 1].bound as i128);
    debug_assert!(s1 - s0 == 2 && s2 - s1 == 2, "window sides form a stride-2 chain");
    // Interpolating quadratic through the three largest samples, in
    // eighths: second difference over a stride-2 chain is 8a.
    let exact_a = f2 - 2 * f1 + f0;
    let fit_through = |a: i128| {
        let b = 4 * (f2 - f1) - a * (s1 + s2);
        let c = 8 * f2 - a * s2 * s2 - b * s2;
        QuadraticFit { num_a: a, num_b: b, num_c: c, den: 8 }
    };
    let exact_fit = fit_through(exact_a);
    if samples.iter().all(|s| exact_fit.eval_scaled(s.side) == s.bound as i128 * 8) {
        return (LiftModel::Exact, exact_fit);
    }
    // Envelope: leading coefficient from the window's maximum second
    // difference, tangent at the two largest sides. By discrete convexity
    // (the majorant's second difference dominates every window second
    // difference, and the majorant touches the chain at its two largest
    // nodes) it dominates every window sample.
    let max_delta = samples
        .windows(3)
        .map(|t| t[2].bound as i128 - 2 * t[1].bound as i128 + t[0].bound as i128)
        .max()
        .unwrap_or(exact_a);
    (LiftModel::Envelope, fit_through(max_delta))
}

/// Checks the fit obligations shared by [`lift_schedule`] and
/// [`verify_certificate`]: window reproduction/domination, monotonicity
/// over the claimed range, and the model's value at the target side.
fn check_fit(
    model: LiftModel,
    fit: &QuadraticFit,
    samples: &[WindowSample],
    side: usize,
) -> Result<u64, LiftError> {
    for s in samples {
        match model {
            LiftModel::Exact => {
                if fit.eval_scaled(s.side) != s.bound as i128 * 8 {
                    return Err(LiftError::FitMismatch {
                        window_side: s.side,
                        fitted: fit.eval_exact(s.side),
                        exact: s.bound,
                    });
                }
            }
            LiftModel::Envelope => {
                let scaled = fit.eval_scaled(s.side);
                if scaled < s.bound as i128 * 8 {
                    return Err(LiftError::NotDominating {
                        window_side: s.side,
                        fitted_scaled: scaled,
                        exact: s.bound,
                    });
                }
            }
        }
    }
    // Monotone nondecreasing along the parity chain up to LIFT_MAX_SIDE.
    let top = samples.last().expect("window non-empty").side;
    let mut prev = fit.eval_scaled(top);
    let mut s = top;
    while s + 2 <= LIFT_MAX_SIDE {
        s += 2;
        let next = fit.eval_scaled(s);
        if next < prev || next < 0 {
            return Err(LiftError::NotMonotone { side: s });
        }
        prev = next;
    }
    // The model's bound at the target side. Within the window the exact
    // sample is authoritative (keeps lifted ≡ exact on all sides ≤ 16);
    // above it the fit extrapolates.
    if let Some(sample) = samples.iter().find(|s| s.side == side) {
        return Ok(sample.bound);
    }
    match model {
        LiftModel::Exact => fit.eval_exact(side).ok_or(LiftError::NotMonotone { side }),
        LiftModel::Envelope => fit.eval_ceil(side).ok_or(LiftError::NotMonotone { side }),
    }
}

/// Lifts the family's windowed fixpoints to a certified static bound and
/// dead-wire set at `side`.
///
/// # Errors
///
/// Any violated obligation as a [`LiftError`]; see the variant docs. For
/// the five canonical families every side in
/// `[`[`LIFT_WINDOW_MIN_SIDE`]`, `[`LIFT_MAX_SIDE`]`]` lifts.
pub fn lift_schedule(
    family: &ScheduleFamily,
    order: TargetOrder,
    side: usize,
) -> Result<LiftCertificate, LiftError> {
    if !(LIFT_WINDOW_MIN_SIDE..=LIFT_MAX_SIDE).contains(&side) {
        return Err(LiftError::UnsupportedSide { side });
    }
    let schedule = family(side)?;
    check_period(&schedule, side)?;
    let window = compute_window(family, order, side)?;
    let (model, fit) = fit_window(&window);
    let bound = check_fit(model, &fit, &window, side)?;
    let budget = default_step_budget(side);
    if bound > budget {
        return Err(LiftError::ExceedsBudget { bound, budget });
    }
    let dead_wires = first_cycle_dead_wires_sparse(&schedule, side * side);
    Ok(LiftCertificate { side, period: LIFT_PERIOD, model, fit, window, bound, dead_wires })
}

/// Re-verifies a [`LiftCertificate`] from scratch against the family it
/// claims to describe. This is the certifier's side of the bargain — run
/// by `opt::certify` as obligations 7–9:
///
/// 7. **Period correctness** — the target-side schedule (and every window
///    schedule) is translation-invariant under the claimed period.
/// 8. **Boundary-fact closure** — the recorded window is the canonical
///    one and every sample's bound *and* dead-wire set match a fresh
///    fixpoint run; the recorded target dead set matches a fresh sparse
///    first-cycle scan. Dropping a boundary wire from a window sample is
///    caught here.
/// 9. **Bound monotonicity under lifting** — the fit reproduces
///    (respectively dominates) the window per its model, is monotone
///    nondecreasing through [`LIFT_MAX_SIDE`], evaluates to exactly the
///    recorded bound at the target side, and stays within the Θ(N)
///    budget.
///
/// # Errors
///
/// The first violated obligation as a [`LiftError`].
pub fn verify_certificate(
    family: &ScheduleFamily,
    order: TargetOrder,
    cert: &LiftCertificate,
) -> Result<(), LiftError> {
    let side = cert.side;
    if !(LIFT_WINDOW_MIN_SIDE..=LIFT_MAX_SIDE).contains(&side) {
        return Err(LiftError::UnsupportedSide { side });
    }
    if cert.period != LIFT_PERIOD {
        return Err(LiftError::PeriodMismatch { claimed: cert.period });
    }
    // Obligation 7: period correctness at the target side (the window
    // schedules are re-checked inside compute_window).
    let schedule = family(side)?;
    check_period(&schedule, side)?;
    // Obligation 8: the window is canonical and honest.
    let proven = compute_window(family, order, side)?;
    if proven.len() != cert.window.len()
        || proven.iter().zip(cert.window.iter()).any(|(p, c)| p.side != c.side)
    {
        return Err(LiftError::WindowShapeMismatch {
            expected: proven.len(),
            got: cert.window.len(),
        });
    }
    for (p, c) in proven.iter().zip(cert.window.iter()) {
        if p.bound != c.bound {
            return Err(LiftError::WindowBoundMismatch {
                window_side: p.side,
                claimed: c.bound,
                proven: p.bound,
            });
        }
        if p.dead != c.dead {
            let missing = p.dead.iter().filter(|d| !c.dead.contains(d)).count();
            let extra = c.dead.iter().filter(|d| !p.dead.contains(d)).count();
            return Err(LiftError::WindowDeadMismatch { window_side: p.side, missing, extra });
        }
    }
    let target_dead = first_cycle_dead_wires_sparse(&schedule, side * side);
    if target_dead != cert.dead_wires {
        let missing = target_dead.iter().filter(|d| !cert.dead_wires.contains(d)).count();
        let extra = cert.dead_wires.iter().filter(|d| !target_dead.contains(d)).count();
        return Err(LiftError::TargetDeadMismatch { missing, extra });
    }
    // Obligation 9: the fit's claims, re-checked against the proven
    // window, and the recorded bound re-evaluated.
    let evaluated = check_fit(cert.model, &cert.fit, &proven, side)?;
    if evaluated != cert.bound {
        return Err(LiftError::BoundMismatch { claimed: cert.bound, evaluated });
    }
    let budget = default_step_budget(side);
    if cert.bound > budget {
        return Err(LiftError::ExceedsBudget { bound: cert.bound, budget });
    }
    Ok(())
}
