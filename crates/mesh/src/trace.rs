//! Trace sinks: observers of the simulation.
//!
//! The analysis crates (`meshsort-zeroone` in particular) need to watch
//! quantities like per-column zero counts *after specific steps*; examples
//! want to print the grid as it evolves. Both are served by cheap observer
//! hooks rather than by baking observation into the engine.

/// Receives swap events from [`crate::engine::apply_plan_traced`].
pub trait TraceSink {
    /// Called after each executed exchange with the step index and the two
    /// flat cell indices of the comparator (min-end first).
    fn on_swap(&mut self, step: u64, keep_min: u32, keep_max: u32);
    /// Called once per step with the number of swaps that step performed.
    fn on_step_end(&mut self, step: u64, swaps: u64);
}

/// A sink that ignores everything (zero-cost baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    #[inline]
    fn on_swap(&mut self, _step: u64, _keep_min: u32, _keep_max: u32) {}
    #[inline]
    fn on_step_end(&mut self, _step: u64, _swaps: u64) {}
}

/// Records every swap `(step, keep_min, keep_max)` and per-step totals.
#[derive(Debug, Default, Clone)]
pub struct SwapLog {
    swaps: Vec<(u64, u32, u32)>,
    step_totals: Vec<(u64, u64)>,
}

impl SwapLog {
    /// All recorded swaps in execution order.
    pub fn swaps(&self) -> &[(u64, u32, u32)] {
        &self.swaps
    }

    /// `(step, swap count)` pairs, one per traced step.
    pub fn step_totals(&self) -> &[(u64, u64)] {
        &self.step_totals
    }

    /// Total number of swaps across all traced steps.
    pub fn total_swaps(&self) -> u64 {
        self.step_totals.iter().map(|(_, s)| s).sum()
    }

    /// Index of the last step that performed at least one swap, if any.
    pub fn last_active_step(&self) -> Option<u64> {
        self.step_totals.iter().rev().find(|(_, s)| *s > 0).map(|(t, _)| *t)
    }

    /// Clears the log for reuse.
    pub fn clear(&mut self) {
        self.swaps.clear();
        self.step_totals.clear();
    }
}

impl TraceSink for SwapLog {
    fn on_swap(&mut self, step: u64, keep_min: u32, keep_max: u32) {
        self.swaps.push((step, keep_min, keep_max));
    }
    fn on_step_end(&mut self, step: u64, swaps: u64) {
        self.step_totals.push((step, swaps));
    }
}

/// Counts swaps per step without storing individual events — O(1) memory.
#[derive(Debug, Default, Clone)]
pub struct SwapCounter {
    total: u64,
    steps: u64,
    quiet_streak: u64,
}

impl SwapCounter {
    /// Total swaps observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of steps observed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of consecutive most-recent steps with zero swaps. A full
    /// cycle of quiet steps implies the grid is at a fixed point of the
    /// schedule.
    pub fn quiet_streak(&self) -> u64 {
        self.quiet_streak
    }
}

impl TraceSink for SwapCounter {
    #[inline]
    fn on_swap(&mut self, _step: u64, _keep_min: u32, _keep_max: u32) {}
    #[inline]
    fn on_step_end(&mut self, _step: u64, swaps: u64) {
        self.total += swaps;
        self.steps += 1;
        if swaps == 0 {
            self.quiet_streak += 1;
        } else {
            self.quiet_streak = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_trace_is_inert() {
        let mut t = NullTrace;
        t.on_swap(0, 1, 2);
        t.on_step_end(0, 1);
    }

    #[test]
    fn swap_log_records() {
        let mut log = SwapLog::default();
        log.on_swap(0, 1, 2);
        log.on_swap(0, 3, 4);
        log.on_step_end(0, 2);
        log.on_step_end(1, 0);
        assert_eq!(log.swaps().len(), 2);
        assert_eq!(log.total_swaps(), 2);
        assert_eq!(log.last_active_step(), Some(0));
        log.clear();
        assert!(log.swaps().is_empty());
        assert_eq!(log.last_active_step(), None);
    }

    #[test]
    fn swap_counter_quiet_streak() {
        let mut c = SwapCounter::default();
        c.on_step_end(0, 3);
        assert_eq!(c.quiet_streak(), 0);
        c.on_step_end(1, 0);
        c.on_step_end(2, 0);
        assert_eq!(c.quiet_streak(), 2);
        c.on_step_end(3, 1);
        assert_eq!(c.quiet_streak(), 0);
        assert_eq!(c.total(), 4);
        assert_eq!(c.steps(), 4);
    }
}
