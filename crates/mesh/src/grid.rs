//! The `side × side` grid of cell values.

use crate::error::MeshError;
use crate::order::TargetOrder;
use crate::pos::Pos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A square grid of values, stored row-major.
///
/// `Grid` is the state of the mesh: cell `(r, c)` holds `data[r*side + c]`.
/// Values only move via comparator exchanges (see [`crate::engine`]), so the
/// multiset of values is invariant over any simulation — a property the
/// tests rely on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Grid<T> {
    side: usize,
    data: Vec<T>,
}

impl<T> Grid<T> {
    /// Builds a grid from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::ZeroSide`] for `side == 0` and
    /// [`MeshError::BadDimensions`] when `data.len() != side * side`.
    pub fn from_rows(side: usize, data: Vec<T>) -> Result<Self, MeshError> {
        if side == 0 {
            return Err(MeshError::ZeroSide);
        }
        if data.len() != side * side {
            return Err(MeshError::BadDimensions { side, len: data.len() });
        }
        Ok(Grid { side, data })
    }

    /// Builds a grid by evaluating `f` at every position, row-major.
    pub fn from_fn(side: usize, mut f: impl FnMut(Pos) -> T) -> Result<Self, MeshError> {
        if side == 0 {
            return Err(MeshError::ZeroSide);
        }
        let mut data = Vec::with_capacity(side * side);
        for row in 0..side {
            for col in 0..side {
                data.push(f(Pos::new(row, col)));
            }
        }
        Ok(Grid { side, data })
    }

    /// Mesh side length (`√N` in the paper).
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Total number of cells (`N` in the paper).
    #[inline]
    pub fn cells(&self) -> usize {
        self.data.len()
    }

    /// Flat row-major index of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the coordinates are out of range; the
    /// subsequent slice index panics in all builds.
    #[inline]
    pub fn index(&self, row: usize, col: usize) -> u32 {
        debug_assert!(row < self.side && col < self.side);
        (row * self.side + col) as u32
    }

    /// Reference to the value at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> &T {
        &self.data[row * self.side + col]
    }

    /// Reference to the value at a [`Pos`].
    #[inline]
    pub fn at(&self, pos: Pos) -> &T {
        self.get(pos.row, pos.col)
    }

    /// Mutable reference to the value at `(row, col)`.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut T {
        &mut self.data[row * self.side + col]
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The backing row-major slice, mutably. Exposed for the engine; user
    /// code should prefer comparator application so that value-conservation
    /// invariants hold.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid, returning the row-major data.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterator over one row, left to right.
    pub fn row(&self, row: usize) -> impl Iterator<Item = &T> + '_ {
        let start = row * self.side;
        self.data[start..start + self.side].iter()
    }

    /// Iterator over one column, top to bottom.
    pub fn column(&self, col: usize) -> impl Iterator<Item = &T> + '_ {
        (0..self.side).map(move |r| &self.data[r * self.side + col])
    }

    /// Iterator over `(Pos, &T)` pairs in row-major order.
    pub fn enumerate(&self) -> impl Iterator<Item = (Pos, &T)> + '_ {
        let side = self.side;
        self.data.iter().enumerate().map(move |(i, v)| (Pos::from_flat(i, side), v))
    }

    /// Reads the grid in the rank order of `order`, i.e. the sequence the
    /// sort is supposed to make non-decreasing.
    pub fn read_in_order(&self, order: TargetOrder) -> Vec<&T> {
        (0..self.cells()).map(|rank| self.at(order.pos_of_rank(rank, self.side))).collect()
    }
}

impl<T: Ord> Grid<T> {
    /// `true` when the grid is sorted with respect to `order`: reading the
    /// cells in rank order yields a non-decreasing sequence.
    ///
    /// Works for arbitrary values including duplicates (the 0–1 matrices of
    /// the paper's analysis), not just permutations.
    pub fn is_sorted(&self, order: TargetOrder) -> bool {
        self.first_order_inversion(order).is_none()
    }

    /// Rank of the first adjacent inversion along the rank order — the
    /// smallest `r` such that the value of rank-`r`'s cell exceeds the
    /// value of rank-`r+1`'s cell — or `None` when the grid is sorted.
    ///
    /// Scans with early exit, so far-from-sorted grids answer in O(1)
    /// expected probes. The incremental counterpart is
    /// [`crate::sortedness::InversionTracker::first_inversion`].
    pub fn first_order_inversion(&self, order: TargetOrder) -> Option<usize> {
        let side = self.side;
        let mut prev: Option<&T> = None;
        for rank in 0..self.cells() {
            let v = self.at(order.pos_of_rank(rank, side));
            if let Some(p) = prev {
                if p > v {
                    return Some(rank - 1);
                }
            }
            prev = Some(v);
        }
        None
    }

    /// [`Grid::first_order_inversion`] specialized to scan the backing
    /// storage contiguously — the sortedness probe of the hybrid engine's
    /// scan mode ([`crate::CycleSchedule::run_until_sorted`]).
    ///
    /// Row-major rank order coincides with flat storage order, so the scan
    /// is a single `windows(2)` walk; snake order scans each row in its
    /// reading direction plus the row-boundary pairs. Either way every
    /// probe touches adjacent memory, where the generic walk pays
    /// coordinate arithmetic or a table indirection per rank. Same answer
    /// as [`Grid::first_order_inversion`] on every input.
    pub fn first_order_inversion_fast(&self, order: TargetOrder) -> Option<usize> {
        let side = self.side;
        let data = &self.data;
        match order {
            TargetOrder::RowMajor => data.windows(2).position(|w| w[0] > w[1]),
            TargetOrder::Snake => {
                for r in 0..side {
                    let base = r * side;
                    if r > 0 {
                        // Boundary pair (base - 1, base): rows r-1 and r
                        // meet at the bend column.
                        let col = bend_col(r - 1, side);
                        if data[base - side + col] > data[base + col] {
                            return Some(base - 1);
                        }
                    }
                    let row = &data[base..base + side];
                    if r % 2 == 0 {
                        if let Some(c) = row.windows(2).position(|w| w[0] > w[1]) {
                            return Some(base + c);
                        }
                    } else if row.windows(2).any(|w| w[0] < w[1]) {
                        // Odd rows read right→left: window c holds the rank
                        // pair (side-2-c, side-1-c), so the first inversion
                        // in rank order is the *last* ascending window.
                        let c = row.windows(2).rposition(|w| w[0] < w[1]).expect("found above");
                        return Some(base + side - 2 - c);
                    }
                }
                None
            }
        }
    }

    /// Whether the adjacent rank pair `(k, k+1)` is inverted — the O(1)
    /// witness probe of the hybrid engine: as long as one pair is known to
    /// be inverted, the grid is unsorted and no scan is needed.
    ///
    /// `k` must be below `cells() - 1`.
    pub fn order_pair_inverted(&self, order: TargetOrder, k: usize) -> bool {
        let side = self.side;
        let a = order.pos_of_rank(k, side).flat(side);
        let b = order.pos_of_rank(k + 1, side).flat(side);
        self.data[a] > self.data[b]
    }

    /// Finds *some* inverted adjacent rank pair at index `k` or later —
    /// not necessarily the first — scanning contiguously like
    /// [`Grid::first_order_inversion_fast`]. How the hybrid engine
    /// replaces a witness pair that a step fixed: inversions cluster near
    /// the old witness, so this usually answers after a short local walk.
    ///
    /// `None` guarantees no pair at index `k` or later is inverted (snake
    /// scans restart at `k`'s row boundary, so the guarantee actually
    /// covers slightly more); `Some(j)` is a genuinely inverted pair but
    /// `j` may be smaller than `k`.
    pub fn find_order_inversion_from(&self, order: TargetOrder, k: usize) -> Option<usize> {
        let side = self.side;
        let data = &self.data;
        match order {
            TargetOrder::RowMajor => data[k..].windows(2).position(|w| w[0] > w[1]).map(|c| k + c),
            TargetOrder::Snake => {
                for r in k / side..side {
                    let base = r * side;
                    if r > k / side {
                        let col = bend_col(r - 1, side);
                        if data[base - side + col] > data[base + col] {
                            return Some(base - 1);
                        }
                    }
                    let row = &data[base..base + side];
                    if r % 2 == 0 {
                        if let Some(c) = row.windows(2).position(|w| w[0] > w[1]) {
                            return Some(base + c);
                        }
                    } else if let Some(c) = row.windows(2).position(|w| w[0] < w[1]) {
                        return Some(base + side - 2 - c);
                    }
                }
                None
            }
        }
    }

    /// Number of adjacent inversions along the rank order — `0` iff sorted.
    /// Useful as a progress metric in traces and examples.
    pub fn order_inversions(&self, order: TargetOrder) -> usize {
        let seq = self.read_in_order(order);
        seq.windows(2).filter(|w| w[0] > w[1]).count()
    }
}

impl<T: Ord + Clone> Grid<T> {
    /// A new grid holding the same multiset of values, arranged sorted with
    /// respect to `order` — the unique target state of a sort.
    pub fn sorted_copy(&self, order: TargetOrder) -> Grid<T> {
        let mut values: Vec<T> = self.data.clone();
        values.sort();
        let side = self.side;
        let mut data: Vec<Option<T>> = vec![None; self.cells()];
        for (rank, v) in values.into_iter().enumerate() {
            let pos = order.pos_of_rank(rank, side);
            data[pos.flat(side)] = Some(v);
        }
        Grid { side, data: data.into_iter().map(|o| o.expect("all cells filled")).collect() }
    }
}

impl<T: fmt::Display> Grid<T> {
    /// Renders the grid as `side` lines of space-separated values — handy in
    /// examples and failing-test output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in 0..self.side {
            let row: Vec<String> = self.row(r).map(ToString::to_string).collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
        out
    }
}

/// Column where snake rows `r` and `r+1` meet (the "bend"): the right edge
/// after an even row, the left edge after an odd one.
#[inline]
fn bend_col(r: usize, side: usize) -> usize {
    if r % 2 == 0 {
        side - 1
    } else {
        0
    }
}

/// Builds the grid holding the identity permutation `0..side²` arranged
/// sorted in `order` — i.e. the fixed point every run should reach when the
/// input is a permutation of `0..side²`.
pub fn sorted_permutation_grid(side: usize, order: TargetOrder) -> Grid<u32> {
    Grid::from_fn(side, |p| order.rank_of(p, side) as u32).expect("side >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_checks_dimensions() {
        assert_eq!(
            Grid::from_rows(2, vec![1]).unwrap_err(),
            MeshError::BadDimensions { side: 2, len: 1 }
        );
        assert_eq!(Grid::<u32>::from_rows(0, vec![]).unwrap_err(), MeshError::ZeroSide);
        assert!(Grid::from_rows(2, vec![1, 2, 3, 4]).is_ok());
    }

    #[test]
    fn indexing_round_trip() {
        let g = Grid::from_fn(3, |p| p.row * 10 + p.col).unwrap();
        assert_eq!(*g.get(0, 0), 0);
        assert_eq!(*g.get(2, 1), 21);
        assert_eq!(*g.at(Pos::new(1, 2)), 12);
        assert_eq!(g.index(2, 1), 7);
    }

    #[test]
    fn rows_and_columns() {
        let g = Grid::from_rows(3, (0..9).collect::<Vec<i32>>()).unwrap();
        assert_eq!(g.row(1).copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(g.column(2).copied().collect::<Vec<_>>(), vec![2, 5, 8]);
    }

    #[test]
    fn enumerate_is_row_major() {
        let g = Grid::from_rows(2, vec![10, 20, 30, 40]).unwrap();
        let items: Vec<(Pos, i32)> = g.enumerate().map(|(p, v)| (p, *v)).collect();
        assert_eq!(
            items,
            vec![
                (Pos::new(0, 0), 10),
                (Pos::new(0, 1), 20),
                (Pos::new(1, 0), 30),
                (Pos::new(1, 1), 40)
            ]
        );
    }

    #[test]
    fn sorted_detection_row_major() {
        let g = Grid::from_rows(2, vec![0, 1, 2, 3]).unwrap();
        assert!(g.is_sorted(TargetOrder::RowMajor));
        assert!(!g.is_sorted(TargetOrder::Snake));
        let g = Grid::from_rows(2, vec![0, 1, 3, 2]).unwrap();
        assert!(!g.is_sorted(TargetOrder::RowMajor));
        assert!(g.is_sorted(TargetOrder::Snake));
    }

    #[test]
    fn sorted_detection_with_duplicates() {
        // 0-1 matrix sorted row-major: all zeros before all ones.
        let g = Grid::from_rows(2, vec![0, 0, 1, 1]).unwrap();
        assert!(g.is_sorted(TargetOrder::RowMajor));
        assert!(g.is_sorted(TargetOrder::Snake));
        let g = Grid::from_rows(2, vec![0, 1, 0, 1]).unwrap();
        assert!(!g.is_sorted(TargetOrder::RowMajor));
    }

    #[test]
    fn sorted_copy_matches_target() {
        let g = Grid::from_rows(2, vec![3u32, 0, 2, 1]).unwrap();
        let rm = g.sorted_copy(TargetOrder::RowMajor);
        assert_eq!(rm.as_slice(), &[0, 1, 2, 3]);
        let sn = g.sorted_copy(TargetOrder::Snake);
        assert_eq!(sn.as_slice(), &[0, 1, 3, 2]);
        assert!(sn.is_sorted(TargetOrder::Snake));
    }

    #[test]
    fn sorted_permutation_grid_is_sorted() {
        for side in 1..6 {
            for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
                let g = sorted_permutation_grid(side, order);
                assert!(g.is_sorted(order), "side {side} order {order:?}");
            }
        }
    }

    #[test]
    fn inversions_metric() {
        let g = Grid::from_rows(2, vec![0, 1, 2, 3]).unwrap();
        assert_eq!(g.order_inversions(TargetOrder::RowMajor), 0);
        let g = Grid::from_rows(2, vec![3, 2, 1, 0]).unwrap();
        assert_eq!(g.order_inversions(TargetOrder::RowMajor), 3);
    }

    #[test]
    fn first_order_inversion_rank() {
        let g = Grid::from_rows(2, vec![0, 1, 3, 2]).unwrap();
        assert_eq!(g.first_order_inversion(TargetOrder::RowMajor), Some(2));
        assert_eq!(g.first_order_inversion(TargetOrder::Snake), None);
        let g = Grid::from_rows(2, vec![1, 0, 2, 3]).unwrap();
        assert_eq!(g.first_order_inversion(TargetOrder::RowMajor), Some(0));
    }

    #[test]
    fn fast_inversion_scan_matches_generic_walk() {
        // LCG-driven grids across sizes and both orders, plus sorted and
        // reversed extremes: the contiguous scan must agree with the
        // generic per-rank walk on every one, including duplicate values.
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for side in [1usize, 2, 3, 4, 5, 8] {
            let n = side * side;
            for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
                for _ in 0..50 {
                    let data: Vec<u32> = (0..n).map(|_| next() % 7).collect();
                    let g = Grid::from_rows(side, data).unwrap();
                    assert_eq!(
                        g.first_order_inversion_fast(order),
                        g.first_order_inversion(order),
                        "side {side} {order:?}\n{}",
                        g.render()
                    );
                }
                let sorted = sorted_permutation_grid(side, order);
                assert_eq!(sorted.first_order_inversion_fast(order), None);
                let rev = Grid::from_rows(side, (0..n as u32).rev().collect()).unwrap();
                assert_eq!(rev.first_order_inversion_fast(order), rev.first_order_inversion(order));
            }
        }
    }

    #[test]
    fn witness_probe_and_local_scan_are_sound() {
        // The hybrid engine's primitives against brute force: the pair
        // probe must equal a direct rank-order comparison, and the local
        // scan must return a genuinely inverted pair — or, when `None`,
        // there must be no inversion at or after the start index.
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for side in [2usize, 3, 4, 5, 8] {
            let n = side * side;
            for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
                for _ in 0..30 {
                    let data: Vec<u32> = (0..n).map(|_| next() % 5).collect();
                    let g = Grid::from_rows(side, data).unwrap();
                    let seq = g.read_in_order(order);
                    for k in 0..n - 1 {
                        assert_eq!(
                            g.order_pair_inverted(order, k),
                            seq[k] > seq[k + 1],
                            "probe side {side} {order:?} k {k}"
                        );
                        match g.find_order_inversion_from(order, k) {
                            Some(j) => assert!(
                                seq[j] > seq[j + 1],
                                "side {side} {order:?} k {k}: pair {j} not inverted"
                            ),
                            None => assert!(
                                (k..n - 1).all(|j| seq[j] <= seq[j + 1]),
                                "side {side} {order:?} k {k}: missed an inversion"
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn render_layout() {
        let g = Grid::from_rows(2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(g.render(), "1 2\n3 4\n");
    }

    #[test]
    fn read_in_order_snake_reverses_even_paper_rows() {
        let g = Grid::from_rows(3, (0..9).collect::<Vec<i32>>()).unwrap();
        let seq: Vec<i32> = g.read_in_order(TargetOrder::Snake).into_iter().copied().collect();
        // Row 0 left→right, row 1 right→left, row 2 left→right.
        assert_eq!(seq, vec![0, 1, 2, 5, 4, 3, 6, 7, 8]);
    }
}
