//! ASCII visualisation of step plans and grids — for examples, docs, and
//! debugging mis-assembled schedules.
//!
//! A step plan renders as the mesh with arrows showing each comparator's
//! keep-min direction:
//!
//! ```text
//! ·<>·  ·<>·        ·  is an idle cell
//! ∨  ∨  ∨  ∨        <> is a row comparator (min kept left)
//! ·  ·  ·  ·        >< is a reversed row comparator (min kept right)
//! ```

use crate::grid::Grid;
use crate::plan::StepPlan;
use crate::pos::Pos;

/// How one cell participates in a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Idle,
    RowLeftMin,  // left end of a forward row comparator
    RowRightMin, // left end of a reversed row comparator
    ColTop,      // top end of a column comparator
    WrapOut,     // the (r, last) end of a wrap wire
}

fn roles(plan: &StepPlan, side: usize) -> Vec<Role> {
    let mut roles = vec![Role::Idle; side * side];
    for c in plan.comparators() {
        let a = Pos::from_flat(c.keep_min as usize, side);
        let b = Pos::from_flat(c.keep_max as usize, side);
        if a.row == b.row {
            if a.col + 1 == b.col {
                roles[a.flat(side)] = Role::RowLeftMin;
            } else if b.col + 1 == a.col {
                roles[b.flat(side)] = Role::RowRightMin;
            }
        } else if a.col == b.col && a.row + 1 == b.row {
            roles[a.flat(side)] = Role::ColTop;
        } else {
            // Wrap wire: keep_min at (r, last), keep_max at (r+1, 0).
            roles[a.flat(side)] = Role::WrapOut;
        }
    }
    roles
}

/// Renders a step plan as `2·side − 1` text lines: cell rows interleaved
/// with column-comparator rows.
pub fn render_plan(plan: &StepPlan, side: usize) -> String {
    let roles = roles(plan, side);
    let mut out = String::new();
    for r in 0..side {
        // Cell row: idle cells are `·`; row comparators render as `<>`
        // (forward) or `><` (reverse) between the two cells; wrap exits
        // render as `@`.
        let mut line = String::new();
        let mut c = 0;
        while c < side {
            match roles[r * side + c] {
                Role::RowLeftMin => {
                    line.push_str("o<>o");
                    c += 2;
                }
                Role::RowRightMin => {
                    line.push_str("o><o");
                    c += 2;
                }
                Role::WrapOut => {
                    line.push('@');
                    c += 1;
                }
                _ => {
                    line.push('.');
                    c += 1;
                }
            }
            if c < side {
                line.push(' ');
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        // Column-comparator row.
        if r + 1 < side {
            let mut line = String::new();
            for c in 0..side {
                line.push(if roles[r * side + c] == Role::ColTop { 'v' } else { ' ' });
                if c + 1 < side {
                    line.push_str("    ");
                }
            }
            let trimmed = line.trim_end();
            if !trimmed.is_empty() {
                out.push_str(trimmed);
                out.push('\n');
            }
        }
    }
    out
}

/// Renders a grid and a plan side by side: values with `*` marking the
/// cells the plan touches.
pub fn render_grid_with_plan<T: std::fmt::Display>(grid: &Grid<T>, plan: &StepPlan) -> String {
    let side = grid.side();
    let mut touched = vec![false; side * side];
    for c in plan.comparators() {
        touched[c.keep_min as usize] = true;
        touched[c.keep_max as usize] = true;
    }
    let mut out = String::new();
    for r in 0..side {
        let cells: Vec<String> = (0..side)
            .map(|c| {
                let mark = if touched[r * side + c] { "*" } else { " " };
                format!("{:>4}{mark}", grid.get(r, c))
            })
            .collect();
        out.push_str(&cells.join(""));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Comparator;

    #[test]
    fn renders_forward_row_comparator() {
        let plan = StepPlan::from_pairs(vec![(0, 1)]).unwrap();
        let s = render_plan(&plan, 2);
        assert!(s.contains("o<>o"), "{s}");
    }

    #[test]
    fn renders_reverse_row_comparator() {
        let plan = StepPlan::new(vec![Comparator::new(1, 0)]).unwrap();
        let s = render_plan(&plan, 2);
        assert!(s.contains("o><o"), "{s}");
    }

    #[test]
    fn renders_column_comparator() {
        let plan = StepPlan::from_pairs(vec![(0, 2)]).unwrap(); // (0,0)-(1,0) on side 2
        let s = render_plan(&plan, 2);
        assert!(s.contains('v'), "{s}");
    }

    #[test]
    fn renders_wrap_wire() {
        // side 2: wrap from (0,1)=idx 1 to (1,0)=idx 2, min kept at idx 1.
        let plan = StepPlan::from_pairs(vec![(1, 2)]).unwrap();
        let s = render_plan(&plan, 2);
        assert!(s.contains('@'), "{s}");
    }

    #[test]
    fn empty_plan_renders_idle_mesh() {
        let s = render_plan(&StepPlan::empty(), 3);
        assert_eq!(s.matches('.').count(), 9);
        assert!(!s.contains('v'));
    }

    #[test]
    fn line_count_is_bounded() {
        let plan = StepPlan::from_pairs(vec![(0, 4), (1, 5), (2, 6), (3, 7)]).unwrap();
        let s = render_plan(&plan, 4);
        assert!(s.lines().count() <= 2 * 4 - 1);
    }

    #[test]
    fn grid_with_plan_marks_touched_cells() {
        let grid = Grid::from_rows(2, vec![10u32, 20, 30, 40]).unwrap();
        let plan = StepPlan::from_pairs(vec![(0, 1)]).unwrap();
        let s = render_grid_with_plan(&grid, &plan);
        assert!(s.contains("10*"));
        assert!(s.contains("20*"));
        assert!(s.contains("30 "));
    }
}
