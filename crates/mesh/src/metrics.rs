//! Disorder metrics: how far a grid is from sorted.
//!
//! Used by the instrumented runners (`meshsort-core::instrument`) to
//! expose the *shape* of convergence — e.g. the row-major algorithms
//! spend most of their Θ(N) steps slowly draining a few overloaded
//! columns, which these metrics make visible.

use crate::grid::Grid;
use crate::order::TargetOrder;
use crate::pos::Pos;

/// Total number of inverted pairs with respect to the reading order —
/// the classical inversion count, `O(N log N)` by merge counting.
/// `0` iff the grid is sorted in `order` (for distinct values).
pub fn inversions<T: Ord + Clone>(grid: &Grid<T>, order: TargetOrder) -> u64 {
    let seq: Vec<T> = (0..grid.cells())
        .map(|rank| grid.at(order.pos_of_rank(rank, grid.side())).clone())
        .collect();
    count_inversions(seq)
}

fn count_inversions<T: Ord + Clone>(mut seq: Vec<T>) -> u64 {
    fn merge_count<T: Ord + Clone>(seq: &mut Vec<T>) -> u64 {
        let n = seq.len();
        if n < 2 {
            return 0;
        }
        let mut right = seq.split_off(n / 2);
        let mut inv = merge_count(seq) + merge_count(&mut right);
        let left = std::mem::take(seq);
        let (mut i, mut j) = (0usize, 0usize);
        while i < left.len() || j < right.len() {
            let take_left = j >= right.len() || (i < left.len() && left[i] <= right[j]);
            if take_left {
                seq.push(left[i].clone());
                i += 1;
            } else {
                inv += (left.len() - i) as u64;
                seq.push(right[j].clone());
                j += 1;
            }
        }
        inv
    }
    merge_count(&mut seq)
}

/// Sum over all values of the Manhattan distance between the value's
/// current cell and its final cell — a lower bound on the total work any
/// nearest-neighbour algorithm must perform (each step moves each value
/// at most one hop).
pub fn total_displacement(grid: &Grid<u32>, order: TargetOrder) -> u64 {
    let side = grid.side();
    let mut ranked: Vec<(u32, Pos)> = grid.enumerate().map(|(p, &v)| (v, p)).collect();
    ranked.sort_unstable_by_key(|(v, _)| *v);
    ranked
        .iter()
        .enumerate()
        .map(|(rank, (_, pos))| pos.manhattan(order.pos_of_rank(rank, side)) as u64)
        .sum()
}

/// The maximum per-value displacement — the paper's diameter-style lower
/// bound: at least this many steps are needed.
pub fn max_displacement(grid: &Grid<u32>, order: TargetOrder) -> u64 {
    let side = grid.side();
    let mut ranked: Vec<(u32, Pos)> = grid.enumerate().map(|(p, &v)| (v, p)).collect();
    ranked.sort_unstable_by_key(|(v, _)| *v);
    ranked
        .iter()
        .enumerate()
        .map(|(rank, (_, pos))| pos.manhattan(order.pos_of_rank(rank, side)) as u64)
        .max()
        .unwrap_or(0)
}

/// Order-independent multiset checksum of a value slice: the wrapping sum
/// of per-value hashes. Two slices holding the same multiset (in any
/// arrangement) produce the same checksum, so the resilient runner can
/// detect value loss or duplication — which no legal comparator exchange
/// can cause — by comparing the checksum before and after a run. Only
/// compared within one process, so `DefaultHasher`'s lack of cross-version
/// stability is irrelevant.
pub fn multiset_checksum<T: std::hash::Hash>(data: &[T]) -> u64 {
    use std::hash::Hasher;
    data.iter()
        .map(|v| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        })
        .fold(0u64, u64::wrapping_add)
}

/// [`max_displacement`] generalised to any `Ord` cell type: the largest
/// Manhattan distance between a value's current cell and its target cell,
/// with ties between equal values broken by current rank (so a grid that
/// reads sorted — duplicates included — has displacement `0`).
pub fn max_rank_displacement<T: Ord>(grid: &Grid<T>, order: TargetOrder) -> u64 {
    let side = grid.side();
    let by_rank: Vec<&T> = (0..grid.cells()).map(|r| grid.at(order.pos_of_rank(r, side))).collect();
    let mut current: Vec<usize> = (0..grid.cells()).collect();
    current.sort_by(|&a, &b| by_rank[a].cmp(by_rank[b]).then(a.cmp(&b)));
    current
        .iter()
        .enumerate()
        .map(|(target, &cur)| {
            order.pos_of_rank(cur, side).manhattan(order.pos_of_rank(target, side)) as u64
        })
        .max()
        .unwrap_or(0)
}

/// Number of *dirty* rows: rows containing at least one cell whose value
/// does not match the target arrangement. Convergence of the bubble
/// sorts shows up as the dirty band shrinking toward the final rows.
pub fn dirty_rows(grid: &Grid<u32>, order: TargetOrder) -> usize {
    let side = grid.side();
    let target: Vec<u32> = {
        let mut vals: Vec<u32> = grid.as_slice().to_vec();
        vals.sort_unstable();
        let mut t = vec![0u32; grid.cells()];
        for (rank, v) in vals.into_iter().enumerate() {
            t[order.pos_of_rank(rank, side).flat(side)] = v;
        }
        t
    };
    (0..side).filter(|&r| (0..side).any(|c| grid.get(r, c) != &target[r * side + c])).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversion_counting_matches_quadratic_reference() {
        fn brute(seq: &[u32]) -> u64 {
            let mut inv = 0;
            for i in 0..seq.len() {
                for j in i + 1..seq.len() {
                    if seq[i] > seq[j] {
                        inv += 1;
                    }
                }
            }
            inv
        }
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![1],
            vec![1, 2, 3, 4],
            vec![4, 3, 2, 1],
            vec![2, 1, 4, 3, 6, 5],
            vec![5, 1, 4, 2, 3],
            vec![1, 1, 1],
            vec![3, 1, 3, 1],
        ];
        for seq in cases {
            assert_eq!(count_inversions(seq.clone()), brute(&seq), "{seq:?}");
        }
    }

    #[test]
    fn inversions_zero_iff_sorted() {
        let sorted = crate::grid::sorted_permutation_grid(4, TargetOrder::Snake);
        assert_eq!(inversions(&sorted, TargetOrder::Snake), 0);
        let g = Grid::from_rows(4, (0..16u32).rev().collect()).unwrap();
        assert_eq!(inversions(&g, TargetOrder::RowMajor), 16 * 15 / 2);
    }

    #[test]
    fn displacement_of_sorted_is_zero() {
        let g = crate::grid::sorted_permutation_grid(5, TargetOrder::Snake);
        assert_eq!(total_displacement(&g, TargetOrder::Snake), 0);
        assert_eq!(max_displacement(&g, TargetOrder::Snake), 0);
        assert_eq!(dirty_rows(&g, TargetOrder::Snake), 0);
    }

    #[test]
    fn displacement_counts_hops() {
        // Swap two row-major-adjacent values: each is 1 hop from home.
        let mut g = crate::grid::sorted_permutation_grid(4, TargetOrder::RowMajor);
        g.as_mut_slice().swap(0, 1);
        assert_eq!(total_displacement(&g, TargetOrder::RowMajor), 2);
        assert_eq!(max_displacement(&g, TargetOrder::RowMajor), 1);
        assert_eq!(dirty_rows(&g, TargetOrder::RowMajor), 1);
    }

    #[test]
    fn reversed_grid_has_maximal_max_displacement() {
        let side = 6;
        let g = Grid::from_rows(side, (0..(side * side) as u32).rev().collect()).unwrap();
        // Value 0 sits at the bottom-right, must travel the full diameter.
        assert_eq!(max_displacement(&g, TargetOrder::RowMajor), (2 * side - 2) as u64);
        assert_eq!(dirty_rows(&g, TargetOrder::RowMajor), side);
    }

    #[test]
    fn checksum_is_order_independent() {
        let a = [5u32, 1, 4, 1, 3];
        let b = [1u32, 1, 3, 4, 5];
        assert_eq!(multiset_checksum(&a), multiset_checksum(&b));
        // Losing or duplicating a value changes the checksum.
        assert_ne!(multiset_checksum(&a), multiset_checksum(&[5u32, 1, 4, 1, 1]));
        assert_ne!(multiset_checksum(&a), multiset_checksum(&[5u32, 1, 4, 1]));
        assert_eq!(multiset_checksum::<u32>(&[]), 0);
    }

    #[test]
    fn rank_displacement_matches_u32_metric_on_permutations() {
        for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
            let g = Grid::from_rows(4, (0..16u32).rev().collect()).unwrap();
            assert_eq!(max_rank_displacement(&g, order), max_displacement(&g, order));
            let s = crate::grid::sorted_permutation_grid(4, order);
            assert_eq!(max_rank_displacement(&s, order), 0);
        }
    }

    #[test]
    fn rank_displacement_zero_on_sorted_duplicates() {
        // A sorted grid with duplicate values: stable tie-breaking must
        // report zero displacement.
        let g = Grid::from_rows(3, vec![0u8, 0, 1, 1, 1, 2, 2, 3, 3]).unwrap();
        assert_eq!(max_rank_displacement(&g, TargetOrder::RowMajor), 0);
        // One adjacent swap of unequal values displaces each by one hop.
        let mut h = g.clone();
        h.as_mut_slice().swap(1, 2);
        assert_eq!(max_rank_displacement(&h, TargetOrder::RowMajor), 1);
    }

    #[test]
    fn dirty_rows_partial() {
        let side = 4;
        let mut g = crate::grid::sorted_permutation_grid(side, TargetOrder::RowMajor);
        // Scramble only row 2.
        let base = 2 * side;
        g.as_mut_slice().swap(base, base + 3);
        assert_eq!(dirty_rows(&g, TargetOrder::RowMajor), 1);
    }
}
