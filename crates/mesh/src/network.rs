//! Finite comparator networks and the 0–1 principle.
//!
//! The five algorithms are *periodic* (a 4-step cycle repeated until
//! sorted), but many classical results — including the 0–1 principle the
//! paper's analysis rests on — are phrased for *finite* comparator
//! networks. This module provides that view: a [`ComparatorNetwork`] is a
//! fixed sequence of [`StepPlan`]s with a depth and size, which can be
//! checked exhaustively against the 0–1 principle on small meshes.
//!
//! The principle (Knuth, TAOCP vol. 3; [Leighton 1992], the paper's
//! reference \[1\]): an *oblivious* comparison-exchange network sorts every
//! input iff it sorts every 0–1 input. For lower bounds the paper uses
//! the cheap direction — any counterexample 0–1 input witnesses
//! unsortedness — which [`ComparatorNetwork::find_unsorted_zero_one`]
//! searches for.

use crate::engine::apply_plan;
use crate::error::MeshError;
use crate::grid::Grid;
use crate::order::TargetOrder;
use crate::plan::StepPlan;
use crate::schedule::CycleSchedule;

/// A finite sequence of synchronous comparator steps on a `side × side`
/// mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparatorNetwork {
    side: usize,
    steps: Vec<StepPlan>,
}

impl ComparatorNetwork {
    /// Builds a network, bounds-checking every step.
    ///
    /// # Errors
    ///
    /// Propagates [`StepPlan::check_bounds`] failures and rejects
    /// `side == 0`.
    pub fn new(side: usize, steps: Vec<StepPlan>) -> Result<Self, MeshError> {
        if side == 0 {
            return Err(MeshError::ZeroSide);
        }
        for s in &steps {
            s.check_bounds(side * side)?;
        }
        Ok(ComparatorNetwork { side, steps })
    }

    /// The first `steps` steps of a cyclic schedule, as a finite network.
    pub fn from_schedule(side: usize, schedule: &CycleSchedule, steps: u64) -> Self {
        let plans = (0..steps).map(|t| schedule.plan_at(t).clone()).collect();
        ComparatorNetwork { side, steps: plans }
    }

    /// Mesh side.
    pub fn side(&self) -> usize {
        self.side
    }

    /// **Depth**: the number of synchronous steps.
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// **Size**: the total number of comparators.
    pub fn size(&self) -> usize {
        self.steps.iter().map(StepPlan::len).sum()
    }

    /// Applies the whole network to a grid; returns the total swaps.
    pub fn apply<T: Ord>(&self, grid: &mut Grid<T>) -> u64 {
        let mut swaps = 0;
        for s in &self.steps {
            swaps += apply_plan(grid, s).swaps;
        }
        swaps
    }

    /// Concatenates two networks on the same side.
    ///
    /// # Panics
    ///
    /// Panics when the sides differ.
    pub fn then(&self, other: &ComparatorNetwork) -> ComparatorNetwork {
        assert_eq!(self.side, other.side, "network sides differ");
        let mut steps = self.steps.clone();
        steps.extend(other.steps.iter().cloned());
        ComparatorNetwork { side: self.side, steps }
    }

    /// Exhaustive 0–1 check: returns the first 0–1 input (as a bitmask,
    /// bit `i` set ⇒ cell `i` holds 1) that the network fails to sort
    /// into `order`, or `None` if the network sorts all of them — in
    /// which case, by the 0–1 principle, it sorts *every* input.
    ///
    /// # Panics
    ///
    /// Panics for meshes with more than 24 cells (2²⁴ inputs is the
    /// practical exhaustiveness limit; use sampling beyond).
    pub fn find_unsorted_zero_one(&self, order: TargetOrder) -> Option<u32> {
        let cells = self.side * self.side;
        assert!(cells <= 24, "exhaustive 0-1 check limited to 24 cells");
        for mask in 0u32..(1u32 << cells) {
            let data: Vec<u8> = (0..cells).map(|i| ((mask >> i) & 1) as u8).collect();
            let mut grid = Grid::from_rows(self.side, data).expect("dimensions match");
            self.apply(&mut grid);
            if !grid.is_sorted(order) {
                return Some(mask);
            }
        }
        None
    }

    /// `true` when the network is a sorting network for `order`
    /// (exhaustive 0–1 check; see [`ComparatorNetwork::find_unsorted_zero_one`]).
    pub fn is_sorting_network(&self, order: TargetOrder) -> bool {
        self.find_unsorted_zero_one(order).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Comparator;

    /// Brick-wall odd-even transposition over the flat row-major chain of
    /// a 2×2 mesh (4 cells): `depth` alternating odd/even steps.
    fn odd_even_chain(side: usize, depth: usize) -> ComparatorNetwork {
        let n = side * side;
        let mut steps = Vec::new();
        for t in 0..depth {
            let start = t % 2;
            let pairs: Vec<Comparator> = (start..n.saturating_sub(1))
                .step_by(2)
                .map(|i| Comparator::new(i as u32, i as u32 + 1))
                .collect();
            steps.push(StepPlan::new(pairs).unwrap());
        }
        ComparatorNetwork::new(side, steps).unwrap()
    }

    #[test]
    fn depth_and_size() {
        let net = odd_even_chain(2, 4);
        assert_eq!(net.depth(), 4);
        // Steps alternate 2 and 1 comparators on 4 cells.
        assert_eq!(net.size(), 2 + 1 + 2 + 1);
        assert_eq!(net.side(), 2);
    }

    #[test]
    fn full_depth_chain_is_a_sorting_network() {
        // N steps of odd-even transposition sort any input (classical).
        let net = odd_even_chain(2, 4);
        assert!(net.is_sorting_network(TargetOrder::RowMajor));
    }

    #[test]
    fn truncated_chain_is_not() {
        let net = odd_even_chain(2, 2);
        let witness = net.find_unsorted_zero_one(TargetOrder::RowMajor);
        assert!(witness.is_some());
        // Verify the witness really fails.
        let mask = witness.unwrap();
        let data: Vec<u8> = (0..4).map(|i| ((mask >> i) & 1) as u8).collect();
        let mut g = Grid::from_rows(2, data).unwrap();
        net.apply(&mut g);
        assert!(!g.is_sorted(TargetOrder::RowMajor));
    }

    #[test]
    fn composition_reaches_sortedness() {
        let half = odd_even_chain(2, 2);
        assert!(!half.is_sorting_network(TargetOrder::RowMajor));
        let whole = half.then(&half);
        assert_eq!(whole.depth(), 4);
        assert!(whole.is_sorting_network(TargetOrder::RowMajor));
    }

    #[test]
    fn from_schedule_prefix() {
        let sched = CycleSchedule::new(
            vec![
                StepPlan::from_pairs(vec![(0, 1), (2, 3)]).unwrap(),
                StepPlan::from_pairs(vec![(1, 2)]).unwrap(),
            ],
            4,
        )
        .unwrap();
        let net = ComparatorNetwork::from_schedule(2, &sched, 5);
        assert_eq!(net.depth(), 5);
        // Steps cycle: plan 0 appears at indices 0, 2, 4.
        assert_eq!(net.size(), 2 + 1 + 2 + 1 + 2);
    }

    #[test]
    fn apply_counts_swaps() {
        let net = odd_even_chain(2, 4);
        let mut g = Grid::from_rows(2, vec![3u32, 2, 1, 0]).unwrap();
        let swaps = net.apply(&mut g);
        assert!(swaps >= 4);
        assert!(g.is_sorted(TargetOrder::RowMajor));
    }

    #[test]
    #[should_panic(expected = "network sides differ")]
    fn then_requires_same_side() {
        let a = odd_even_chain(2, 1);
        let b = odd_even_chain(3, 1);
        let _ = a.then(&b);
    }

    #[test]
    fn zero_side_rejected() {
        assert!(matches!(ComparatorNetwork::new(0, vec![]), Err(MeshError::ZeroSide)));
    }
}
