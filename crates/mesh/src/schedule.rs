//! Cyclic step schedules.
//!
//! Every algorithm in the paper repeats a fixed cycle of steps (a 4-step
//! cycle for all five 2D algorithms, a 2-step cycle for the 1D odd-even
//! transposition sort). A [`CycleSchedule`] stores the validated plans of
//! one cycle — plus their branchless [`CompiledPlan`] lowerings, built once
//! at construction — and replays them forever.
//!
//! # Execution paths
//!
//! * [`CycleSchedule::run_until_sorted_reference`] — the original scalar
//!   loop with a full [`Grid::is_sorted`] rescan after every step. Kept as
//!   the behavioural oracle for differential tests.
//! * [`CycleSchedule::run_until_sorted`] — scalar comparators, but
//!   sortedness via the hybrid scan/tracker scheme described below.
//! * [`CycleSchedule::run_until_sorted_kernel`] — compiled branchless
//!   segment kernels (integer cell types) plus the hybrid scheme; the fast
//!   path the Monte-Carlo drivers use.
//!
//! All three produce bit-identical [`RunOutcome`]s and final grids; the
//! property tests in `tests/kernel_props.rs` and the cross-algorithm suite
//! in `meshsort-core` pin this.
//!
//! # Hybrid sortedness detection
//!
//! The runs must stop at the *first* sorted step, and a sorted state need
//! not be a fixed point of an arbitrary schedule, so sortedness is tested
//! after every step. Testing is cheap because unsortedness only needs a
//! *witness*: one adjacent rank pair known to be inverted. As long as the
//! witness pair stays inverted the check is a single probe; when a step
//! fixes it, a contiguous local scan finds a replacement, and only a clean
//! suffix forces a full rescan ([`Grid::first_order_inversion_fast`]).
//! Should a full rescan have to walk at least half the grid, the run
//! switches (once) to the O(1)-per-swap [`InversionTracker`] — built only
//! at that moment, so runs that never switch pay nothing for it.

use crate::engine::{
    apply_compiled, apply_compiled_faulty, apply_plan, apply_plan_faulty_tracked,
    apply_plan_traced_tracked, apply_plan_tracked, FaultyStepOutcome, StepOutcome,
};
use crate::error::MeshError;
use crate::fault::{self, FaultPlan, ResilientPolicy, ResilientReport};
use crate::grid::Grid;
use crate::kernel::{CompiledPlan, KernelValue};
use crate::metrics;
use crate::order::TargetOrder;
use crate::plan::StepPlan;
use crate::sortedness::InversionTracker;
use crate::trace::TraceSink;

/// Grids smaller than this run through the reference loop: at this size a
/// full rescan is a handful of comparisons and the tracker's table
/// allocations would dominate (the 0–1 subsystem sweeps millions of tiny
/// grids).
const SMALL_GRID_CELLS: usize = 64;

/// A repeating sequence of step plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSchedule {
    plans: Vec<StepPlan>,
    compiled: Vec<CompiledPlan>,
}

/// Result of driving a grid until it reached the target order (or a cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Steps executed before the grid first read sorted. If the input was
    /// already sorted this is `0`.
    pub steps: u64,
    /// Total swaps over those steps.
    pub swaps: u64,
    /// Total comparator evaluations over those steps.
    pub comparisons: u64,
    /// `false` when the step cap was hit before the grid sorted.
    pub sorted: bool,
}

impl CycleSchedule {
    /// Builds a schedule from the plans of one cycle, bounds-checking every
    /// plan against a mesh of `cells` cells and lowering each plan to its
    /// compiled segment form.
    ///
    /// # Errors
    ///
    /// [`MeshError::EmptySchedule`] for an empty plan list, or the first
    /// bounds violation from [`StepPlan::check_bounds`].
    pub fn new(plans: Vec<StepPlan>, cells: usize) -> Result<Self, MeshError> {
        if plans.is_empty() {
            return Err(MeshError::EmptySchedule);
        }
        for p in &plans {
            p.check_bounds(cells)?;
        }
        let compiled = plans.iter().map(CompiledPlan::compile).collect();
        Ok(CycleSchedule { plans, compiled })
    }

    /// Builds a schedule from plans and *pre-built* compiled lowerings,
    /// bounds-checking the plans but taking the compiled forms as given.
    ///
    /// This is the constructor for schedules whose IR was produced by
    /// something other than [`CompiledPlan::compile`] — the schedule
    /// optimizer re-fuses stripped steps with
    /// [`CompiledPlan::compile_with_min_run`]. Callers are responsible for
    /// certifying plan/IR agreement via `crate::verify::verify_schedule_ir`
    /// (the optimizer's certificate does exactly that); nothing here checks
    /// that `compiled[i]` expands to `plans[i]`.
    ///
    /// # Errors
    ///
    /// [`MeshError::EmptySchedule`] for an empty plan list,
    /// [`MeshError::ScheduleShapeMismatch`] when the plan and IR lists
    /// disagree in length, or the first bounds violation from
    /// [`StepPlan::check_bounds`].
    pub fn from_parts(
        plans: Vec<StepPlan>,
        compiled: Vec<CompiledPlan>,
        cells: usize,
    ) -> Result<Self, MeshError> {
        if plans.is_empty() {
            return Err(MeshError::EmptySchedule);
        }
        if plans.len() != compiled.len() {
            return Err(MeshError::ScheduleShapeMismatch {
                plans: plans.len(),
                compiled: compiled.len(),
            });
        }
        for p in &plans {
            p.check_bounds(cells)?;
        }
        Ok(CycleSchedule { plans, compiled })
    }

    /// Number of steps in one cycle.
    #[inline]
    pub fn cycle_len(&self) -> usize {
        self.plans.len()
    }

    /// The plan executed at (0-indexed) step `t`.
    #[inline]
    pub fn plan_at(&self, t: u64) -> &StepPlan {
        &self.plans[(t % self.plans.len() as u64) as usize]
    }

    /// All plans of one cycle.
    pub fn plans(&self) -> &[StepPlan] {
        &self.plans
    }

    /// The compiled lowerings of one cycle, index-aligned with
    /// [`CycleSchedule::plans`].
    pub fn compiled_plans(&self) -> &[CompiledPlan] {
        &self.compiled
    }

    /// Cycling iterator over plan indices starting at step `start` — the
    /// per-step `plan_at` modulo arithmetic hoisted out of the run loops.
    #[inline]
    fn cycle_indices(&self, start: u64) -> impl Iterator<Item = usize> + '_ {
        let offset = (start % self.plans.len() as u64) as usize;
        (0..self.plans.len()).cycle().skip(offset)
    }

    /// Executes exactly `steps` steps starting at step index `start`.
    pub fn run_steps<T: Ord>(&self, grid: &mut Grid<T>, start: u64, steps: u64) -> StepOutcome {
        let mut total = StepOutcome::default();
        let mut indices = self.cycle_indices(start);
        for _ in 0..steps {
            let i = indices.next().expect("cycle iterator never ends");
            total.absorb(apply_plan(grid, &self.plans[i]));
        }
        total
    }

    /// [`CycleSchedule::run_steps`] through the compiled branchless
    /// kernels. Identical grid and counts; `bench_ablation_kernel`
    /// measures the difference in time.
    pub fn run_steps_kernel<T: KernelValue>(
        &self,
        grid: &mut Grid<T>,
        start: u64,
        steps: u64,
    ) -> StepOutcome {
        let mut total = StepOutcome::default();
        let mut indices = self.cycle_indices(start);
        for _ in 0..steps {
            let i = indices.next().expect("cycle iterator never ends");
            total.absorb(apply_compiled(grid, &self.compiled[i]));
        }
        total
    }

    /// Executes steps from index `0` until the grid first reads sorted in
    /// `order`, checking after every step, up to `cap` steps.
    ///
    /// Scalar comparator loop with the hybrid scan/tracker sortedness
    /// check (see the module docs). Integer grids should prefer
    /// [`CycleSchedule::run_until_sorted_kernel`].
    pub fn run_until_sorted<T: Ord>(
        &self,
        grid: &mut Grid<T>,
        order: TargetOrder,
        cap: u64,
    ) -> RunOutcome {
        if grid.cells() < SMALL_GRID_CELLS {
            return self.run_until_sorted_reference(grid, order, cap);
        }
        self.run_hybrid(grid, order, cap, |g, i| apply_plan(g, &self.plans[i]))
    }

    /// [`CycleSchedule::run_until_sorted`] through the compiled branchless
    /// kernels — the fast path for integer grids. Bit-identical
    /// [`RunOutcome`] and final grid.
    pub fn run_until_sorted_kernel<T: KernelValue>(
        &self,
        grid: &mut Grid<T>,
        order: TargetOrder,
        cap: u64,
    ) -> RunOutcome {
        if grid.cells() < SMALL_GRID_CELLS {
            return self.run_until_sorted_reference(grid, order, cap);
        }
        self.run_hybrid(grid, order, cap, |g, i| apply_compiled(g, &self.compiled[i]))
    }

    /// Shared hybrid driver. In scan mode the engine holds a *witness* —
    /// an adjacent rank pair known to be inverted — so most steps settle
    /// sortedness with a single probe ([`Grid::order_pair_inverted`]).
    /// When a step fixes the witness, a contiguous local scan from the old
    /// witness finds a replacement ([`Grid::find_order_inversion_from`]:
    /// any inversion is valid evidence, not just the first); only when the
    /// whole suffix is clean does a full rescan
    /// ([`Grid::first_order_inversion_fast`]) run. A full rescan that has
    /// to walk at least half the grid flips the run into tracked mode —
    /// building the [`InversionTracker`] only then, so runs that never
    /// switch (the common case on random inputs) pay nothing for it —
    /// after which steps update the tracker in O(1) per swap and the check
    /// is O(1). `scan_step` executes one scan-mode step (scalar or
    /// compiled); tracked-mode steps are scalar either way because they
    /// must observe every individual exchange.
    fn run_hybrid<T: Ord>(
        &self,
        grid: &mut Grid<T>,
        order: TargetOrder,
        cap: u64,
        mut scan_step: impl FnMut(&mut Grid<T>, usize) -> StepOutcome,
    ) -> RunOutcome {
        let mut out = RunOutcome { steps: 0, swaps: 0, comparisons: 0, sorted: false };
        let Some(mut witness) = grid.first_order_inversion_fast(order) else {
            out.sorted = true;
            return out;
        };
        let switch_depth = grid.cells() / 2;
        let mut tracker: Option<InversionTracker> = None;
        let mut indices = self.cycle_indices(0);
        for t in 0..cap {
            let i = indices.next().expect("cycle iterator never ends");
            let step = match tracker.as_mut() {
                Some(tr) => apply_plan_tracked(grid, &self.plans[i], tr),
                None => scan_step(grid, i),
            };
            out.swaps += step.swaps;
            out.comparisons += step.comparisons;
            out.steps = t + 1;
            if let Some(tr) = tracker.as_ref() {
                if tr.is_sorted() {
                    out.sorted = true;
                    return out;
                }
            } else if !grid.order_pair_inverted(order, witness) {
                match grid.find_order_inversion_from(order, witness) {
                    Some(w) => witness = w,
                    None => match grid.first_order_inversion_fast(order) {
                        None => {
                            out.sorted = true;
                            return out;
                        }
                        Some(d) => {
                            witness = d;
                            if d >= switch_depth {
                                tracker = Some(InversionTracker::new(grid, order));
                            }
                        }
                    },
                }
            }
        }
        out
    }

    /// The original scalar loop with a full [`Grid::is_sorted`] rescan
    /// after every step — the behavioural oracle the optimized paths are
    /// differentially tested against, and the baseline that
    /// `bench_ablation_sorted_check` measures.
    pub fn run_until_sorted_reference<T: Ord>(
        &self,
        grid: &mut Grid<T>,
        order: TargetOrder,
        cap: u64,
    ) -> RunOutcome {
        let mut out =
            RunOutcome { steps: 0, swaps: 0, comparisons: 0, sorted: grid.is_sorted(order) };
        if out.sorted {
            return out;
        }
        for t in 0..cap {
            let step = apply_plan(grid, self.plan_at(t));
            out.swaps += step.swaps;
            out.comparisons += step.comparisons;
            out.steps = t + 1;
            if grid.is_sorted(order) {
                out.sorted = true;
                return out;
            }
        }
        out
    }

    /// Like [`CycleSchedule::run_until_sorted`] but reporting every
    /// exchange to a [`TraceSink`]. Used by the 0–1 observers.
    ///
    /// Tracing must observe each exchange individually, so execution is
    /// always scalar; sortedness still uses the O(1) tracker check.
    pub fn run_until_sorted_traced<T: Ord, S: TraceSink>(
        &self,
        grid: &mut Grid<T>,
        order: TargetOrder,
        cap: u64,
        sink: &mut S,
    ) -> RunOutcome {
        let mut tracker = InversionTracker::new(grid, order);
        let mut out =
            RunOutcome { steps: 0, swaps: 0, comparisons: 0, sorted: tracker.is_sorted() };
        if out.sorted {
            return out;
        }
        let mut indices = self.cycle_indices(0);
        for t in 0..cap {
            let i = indices.next().expect("cycle iterator never ends");
            let step = apply_plan_traced_tracked(grid, &self.plans[i], t, sink, &mut tracker);
            out.swaps += step.swaps;
            out.comparisons += step.comparisons;
            out.steps = t + 1;
            if tracker.is_sorted() {
                out.sorted = true;
                return out;
            }
        }
        out
    }

    /// Drives the grid toward `order` under a [`FaultPlan`], scalar
    /// comparator loop. Termination is unconditional: the main loop is
    /// bounded by `policy.step_budget`, an [`InversionTracker`]-fed
    /// watchdog aborts livelocks (no new inversion minimum for
    /// `policy.stall_window` steps), and recovery scrubbing — bounded
    /// extra *fault-free* cycles, granted `policy.recovery_attempts` times
    /// with the cycle allowance doubling per attempt — may still finish
    /// the sort after transient damage. The returned
    /// [`ResilientReport`] carries the classified
    /// [`fault::RunOutcome`] plus full step/swap/drop/stall/recovery
    /// accounting.
    ///
    /// With a no-op plan the outcome's step/swap/comparison counts are
    /// identical to [`CycleSchedule::run_until_sorted`] (pinned by
    /// `tests/fault_props.rs`).
    pub fn run_until_sorted_resilient<T: Ord + Clone + std::hash::Hash>(
        &self,
        grid: &mut Grid<T>,
        order: TargetOrder,
        faults: &FaultPlan,
        policy: &ResilientPolicy,
    ) -> ResilientReport {
        self.run_resilient_impl(
            grid,
            order,
            policy,
            |g, i, t, tr| apply_plan_faulty_tracked(g, &self.plans[i], t, faults, tr),
            |g, cap| self.run_until_sorted(g, order, cap),
            faults,
        )
    }

    /// [`CycleSchedule::run_until_sorted_resilient`] through the compiled
    /// kernels: clean steps execute branchlessly, faulty steps fall back
    /// to the filtered scalar loop. Bit-identical report and final grid —
    /// fault decisions are order-independent per-wire hashes and the
    /// tracker is recounted exactly, so the two paths cannot diverge.
    pub fn run_until_sorted_resilient_kernel<T: KernelValue + std::hash::Hash>(
        &self,
        grid: &mut Grid<T>,
        order: TargetOrder,
        faults: &FaultPlan,
        policy: &ResilientPolicy,
    ) -> ResilientReport {
        self.run_resilient_impl(
            grid,
            order,
            policy,
            |g, i, t, tr| {
                let out = apply_compiled_faulty(g, &self.compiled[i], &self.plans[i], t, faults);
                if out.swaps > 0 {
                    tr.recount(g.as_slice());
                }
                out
            },
            |g, cap| self.run_until_sorted_kernel(g, order, cap),
            faults,
        )
    }

    /// Shared resilient driver. `faulty_step` executes one step under the
    /// fault plan keeping `tracker` exact; `scrub` runs the fault-free
    /// engine up to a step cap (recovery scrubbing: the fault burst is
    /// over, so repair passes run clean). Both callbacks must be exact
    /// about counts — the scalar and kernel wrappers differ only in *how*
    /// they keep the tracker exact (O(1) per swap vs recount), never in
    /// its value.
    fn run_resilient_impl<T: Ord + Clone + std::hash::Hash>(
        &self,
        grid: &mut Grid<T>,
        order: TargetOrder,
        policy: &ResilientPolicy,
        mut faulty_step: impl FnMut(
            &mut Grid<T>,
            usize,
            u64,
            &mut InversionTracker,
        ) -> FaultyStepOutcome,
        mut scrub: impl FnMut(&mut Grid<T>, u64) -> RunOutcome,
        faults: &FaultPlan,
    ) -> ResilientReport {
        let checksum_before = metrics::multiset_checksum(grid.as_slice());
        let mut rep = ResilientReport {
            outcome: fault::RunOutcome::Converged { steps: 0 },
            steps: 0,
            swaps: 0,
            comparisons: 0,
            dropped: 0,
            stalled_steps: 0,
            recovery_attempts: 0,
            recovery_steps: 0,
        };
        let mut tracker = InversionTracker::new(grid, order);
        let cycle = self.plans.len() as u64;
        let mut best = tracker.inversions();
        let mut last_progress = 0u64;
        let mut livelocked = false;
        if !tracker.is_sorted() {
            let mut indices = self.cycle_indices(0);
            while rep.steps < policy.step_budget {
                let i = indices.next().expect("cycle iterator never ends");
                let t = rep.steps;
                if faults.step_stalled(t) {
                    rep.stalled_steps += 1;
                } else {
                    let out = faulty_step(grid, i, t, &mut tracker);
                    rep.swaps += out.swaps;
                    rep.comparisons += out.comparisons;
                    rep.dropped += out.dropped;
                }
                rep.steps += 1;
                if tracker.is_sorted() {
                    break;
                }
                // Watchdog at cycle boundaries: progress means a new
                // adjacent-inversion minimum; a full stall window without
                // one is a livelock (e.g. every useful wire stuck).
                if rep.steps % cycle == 0 {
                    let inv = tracker.inversions();
                    if inv < best {
                        best = inv;
                        last_progress = rep.steps;
                    } else if rep.steps - last_progress >= policy.stall_window {
                        livelocked = true;
                        break;
                    }
                }
            }
        }
        if !tracker.is_sorted() && policy.recovery_attempts > 0 && policy.recovery_cycles > 0 {
            let mut cycles = policy.recovery_cycles;
            for _ in 0..policy.recovery_attempts {
                rep.recovery_attempts += 1;
                let out = scrub(grid, cycles.saturating_mul(cycle));
                rep.recovery_steps += out.steps;
                rep.swaps += out.swaps;
                rep.comparisons += out.comparisons;
                if out.sorted {
                    break;
                }
                // Backoff: double the scrub allowance per attempt.
                cycles = cycles.saturating_mul(2);
            }
            tracker.recount(grid.as_slice());
        }
        let checksum_after = metrics::multiset_checksum(grid.as_slice());
        rep.outcome = if checksum_after != checksum_before {
            fault::RunOutcome::IntegrityViolation {
                expected: checksum_before,
                actual: checksum_after,
            }
        } else if tracker.is_sorted() {
            fault::RunOutcome::Converged { steps: rep.total_steps() }
        } else if livelocked {
            fault::RunOutcome::Degraded {
                residual_inversions: metrics::inversions(grid, order),
                max_displacement: metrics::max_rank_displacement(grid, order),
            }
        } else {
            fault::RunOutcome::BudgetExhausted {
                steps: rep.steps,
                residual_inversions: metrics::inversions(grid, order),
            }
        };
        rep
    }

    /// Runs whole cycles until one full cycle performs zero swaps (a fixed
    /// point of the schedule), up to `max_cycles` cycles. Returns the
    /// number of cycles executed *including* the final quiescent one — so
    /// an already-quiescent grid returns `Some(1)` — or `None` if the cap
    /// was hit before any cycle was swap-free.
    ///
    /// This is the termination notion for schedules whose fixed point is
    /// not a target order (e.g. experimental variants).
    pub fn run_to_fixed_point<T: Ord>(&self, grid: &mut Grid<T>, max_cycles: u64) -> Option<u64> {
        for cycle in 0..max_cycles {
            let out =
                self.run_steps(grid, cycle * self.plans.len() as u64, self.plans.len() as u64);
            if out.swaps == 0 {
                return Some(cycle + 1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Odd-even transposition on a 1×n grid expressed as a 2-step cycle —
    /// a minimal end-to-end exercise of the schedule machinery. (The real
    /// 1D implementation lives in `meshsort-linear`.)
    fn odd_even_row_schedule(n: usize) -> CycleSchedule {
        let odd: Vec<(u32, u32)> =
            (0..n.saturating_sub(1)).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
        let even: Vec<(u32, u32)> =
            (1..n.saturating_sub(1)).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
        CycleSchedule::new(
            vec![StepPlan::from_pairs(odd).unwrap(), StepPlan::from_pairs(even).unwrap()],
            n,
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(CycleSchedule::new(vec![], 4).unwrap_err(), MeshError::EmptySchedule);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let p = StepPlan::from_pairs(vec![(0, 9)]).unwrap();
        assert!(matches!(
            CycleSchedule::new(vec![p], 4),
            Err(MeshError::IndexOutOfRange { index: 9, cells: 4 })
        ));
    }

    #[test]
    fn plan_cycles() {
        let s = odd_even_row_schedule(4);
        assert_eq!(s.cycle_len(), 2);
        assert_eq!(s.plan_at(0), s.plan_at(2));
        assert_eq!(s.plan_at(1), s.plan_at(3));
        assert_ne!(s.plan_at(0), s.plan_at(1));
        assert_eq!(s.compiled_plans().len(), 2);
    }

    #[test]
    fn sorts_a_reversed_line() {
        // Classic result: odd-even transposition sorts n values in <= n
        // steps. The flat row-major data of a 2×2 grid is a 4-cell line.
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![3u32, 2, 1, 0]).unwrap();
        let out = s.run_until_sorted(&mut g, TargetOrder::RowMajor, 16);
        assert!(out.sorted);
        assert!(out.steps <= 4, "steps = {}", out.steps);
        assert_eq!(g.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn already_sorted_is_zero_steps() {
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![0u32, 1, 2, 3]).unwrap();
        let out = s.run_until_sorted(&mut g, TargetOrder::RowMajor, 16);
        assert!(out.sorted);
        assert_eq!(out.steps, 0);
        assert_eq!(out.swaps, 0);
    }

    #[test]
    fn cap_reports_unsorted() {
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![3u32, 2, 1, 0]).unwrap();
        let out = s.run_until_sorted(&mut g, TargetOrder::RowMajor, 1);
        assert!(!out.sorted);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn fixed_point_counts_executed_cycles() {
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![3u32, 2, 1, 0]).unwrap();
        let cycles = s.run_to_fixed_point(&mut g, 16).unwrap();
        // At least one working cycle plus the quiescent one; the reversed
        // 4-line sorts within two cycles, so at most 3 executed in total.
        assert!((2..=3).contains(&cycles), "cycles = {cycles}");
        assert_eq!(g.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn fixed_point_on_quiescent_grid_is_one_cycle() {
        // An already-sorted grid swaps nothing in its first cycle, which
        // still had to execute to detect quiescence.
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![0u32, 1, 2, 3]).unwrap();
        assert_eq!(s.run_to_fixed_point(&mut g, 16), Some(1));
    }

    #[test]
    fn fixed_point_cap_returns_none() {
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![3u32, 2, 1, 0]).unwrap();
        assert_eq!(s.run_to_fixed_point(&mut g, 1), None);
    }

    #[test]
    fn run_steps_counts() {
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![3u32, 2, 1, 0]).unwrap();
        let out = s.run_steps(&mut g, 0, 2);
        assert_eq!(out.comparisons, 3); // odd step: 2 comparators; even step: 1.
        assert!(out.swaps >= 2);
    }

    #[test]
    fn run_steps_kernel_matches_scalar() {
        let s = odd_even_row_schedule(16);
        let data: Vec<u32> = (0..16).map(|v: u32| v.wrapping_mul(2654435761) % 31).collect();
        let mut a = Grid::from_rows(4, data.clone()).unwrap();
        let mut b = Grid::from_rows(4, data).unwrap();
        // Misaligned start exercises the cycling iterator's offset.
        let oa = s.run_steps(&mut a, 3, 9);
        let ob = s.run_steps_kernel(&mut b, 3, 9);
        assert_eq!(oa, ob);
        assert_eq!(a, b);
    }

    #[test]
    fn hybrid_and_kernel_match_reference_on_large_line() {
        // 10×10 = 100 cells: above SMALL_GRID_CELLS, so the hybrid paths —
        // witness probes, local rescans and (on a reversed line) the
        // tracked-mode machinery — genuinely run.
        let n = 100usize;
        let s = odd_even_row_schedule(n);
        let data: Vec<u32> = (0..n as u32).rev().collect();
        let mut a = Grid::from_rows(10, data.clone()).unwrap();
        let mut b = Grid::from_rows(10, data.clone()).unwrap();
        let mut c = Grid::from_rows(10, data).unwrap();
        let cap = 4 * n as u64;
        let oa = s.run_until_sorted_reference(&mut a, TargetOrder::RowMajor, cap);
        let ob = s.run_until_sorted(&mut b, TargetOrder::RowMajor, cap);
        let oc = s.run_until_sorted_kernel(&mut c, TargetOrder::RowMajor, cap);
        assert!(oa.sorted);
        assert_eq!(oa, ob);
        assert_eq!(oa, oc);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn traced_run_matches_untraced() {
        use crate::trace::SwapCounter;
        let s = odd_even_row_schedule(4);
        let mut a = Grid::from_rows(2, vec![2u32, 0, 3, 1]).unwrap();
        let mut b = a.clone();
        let mut counter = SwapCounter::default();
        let oa = s.run_until_sorted(&mut a, TargetOrder::RowMajor, 16);
        let ob = s.run_until_sorted_traced(&mut b, TargetOrder::RowMajor, 16, &mut counter);
        assert_eq!(oa, ob);
        assert_eq!(a, b);
        assert_eq!(counter.total(), ob.swaps);
    }
}
