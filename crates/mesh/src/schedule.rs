//! Cyclic step schedules.
//!
//! Every algorithm in the paper repeats a fixed cycle of steps (a 4-step
//! cycle for all five 2D algorithms, a 2-step cycle for the 1D odd-even
//! transposition sort). A [`CycleSchedule`] stores the compiled plans of
//! one cycle and replays them forever.

use crate::engine::{apply_plan, apply_plan_traced, StepOutcome};
use crate::error::MeshError;
use crate::grid::Grid;
use crate::order::TargetOrder;
use crate::plan::StepPlan;
use crate::trace::TraceSink;

/// A repeating sequence of step plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSchedule {
    plans: Vec<StepPlan>,
}

/// Result of driving a grid until it reached the target order (or a cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Steps executed before the grid first read sorted. If the input was
    /// already sorted this is `0`.
    pub steps: u64,
    /// Total swaps over those steps.
    pub swaps: u64,
    /// Total comparator evaluations over those steps.
    pub comparisons: u64,
    /// `false` when the step cap was hit before the grid sorted.
    pub sorted: bool,
}

impl CycleSchedule {
    /// Builds a schedule from the plans of one cycle, bounds-checking every
    /// plan against a mesh of `cells` cells.
    ///
    /// # Errors
    ///
    /// [`MeshError::EmptySchedule`] for an empty plan list, or the first
    /// bounds violation from [`StepPlan::check_bounds`].
    pub fn new(plans: Vec<StepPlan>, cells: usize) -> Result<Self, MeshError> {
        if plans.is_empty() {
            return Err(MeshError::EmptySchedule);
        }
        for p in &plans {
            p.check_bounds(cells)?;
        }
        Ok(CycleSchedule { plans })
    }

    /// Number of steps in one cycle.
    #[inline]
    pub fn cycle_len(&self) -> usize {
        self.plans.len()
    }

    /// The plan executed at (0-indexed) step `t`.
    #[inline]
    pub fn plan_at(&self, t: u64) -> &StepPlan {
        &self.plans[(t % self.plans.len() as u64) as usize]
    }

    /// All plans of one cycle.
    pub fn plans(&self) -> &[StepPlan] {
        &self.plans
    }

    /// Executes exactly `steps` steps starting at step index `start`.
    pub fn run_steps<T: Ord>(&self, grid: &mut Grid<T>, start: u64, steps: u64) -> StepOutcome {
        let mut total = StepOutcome::default();
        for t in start..start + steps {
            total.absorb(apply_plan(grid, self.plan_at(t)));
        }
        total
    }

    /// Executes steps from index `0` until the grid first reads sorted in
    /// `order`, checking after every step, up to `cap` steps.
    ///
    /// The sorted state of every algorithm in this workspace is a fixed
    /// point of its schedule (tested in `meshsort-core`), so the first
    /// sorted step is well defined and stable.
    pub fn run_until_sorted<T: Ord>(
        &self,
        grid: &mut Grid<T>,
        order: TargetOrder,
        cap: u64,
    ) -> RunOutcome {
        let mut out =
            RunOutcome { steps: 0, swaps: 0, comparisons: 0, sorted: grid.is_sorted(order) };
        if out.sorted {
            return out;
        }
        for t in 0..cap {
            let step = apply_plan(grid, self.plan_at(t));
            out.swaps += step.swaps;
            out.comparisons += step.comparisons;
            out.steps = t + 1;
            if grid.is_sorted(order) {
                out.sorted = true;
                return out;
            }
        }
        out
    }

    /// Like [`CycleSchedule::run_until_sorted`] but reporting every
    /// exchange to a [`TraceSink`]. Used by the 0–1 observers.
    pub fn run_until_sorted_traced<T: Ord, S: TraceSink>(
        &self,
        grid: &mut Grid<T>,
        order: TargetOrder,
        cap: u64,
        sink: &mut S,
    ) -> RunOutcome {
        let mut out =
            RunOutcome { steps: 0, swaps: 0, comparisons: 0, sorted: grid.is_sorted(order) };
        if out.sorted {
            return out;
        }
        for t in 0..cap {
            let step = apply_plan_traced(grid, self.plan_at(t), t, sink);
            out.swaps += step.swaps;
            out.comparisons += step.comparisons;
            out.steps = t + 1;
            if grid.is_sorted(order) {
                out.sorted = true;
                return out;
            }
        }
        out
    }

    /// Runs whole cycles until one full cycle performs zero swaps (a fixed
    /// point of the schedule), up to `max_cycles` cycles. Returns the
    /// number of cycles executed, or `None` if the cap was hit first.
    ///
    /// This is the termination notion for schedules whose fixed point is
    /// not a target order (e.g. experimental variants).
    pub fn run_to_fixed_point<T: Ord>(&self, grid: &mut Grid<T>, max_cycles: u64) -> Option<u64> {
        for cycle in 0..max_cycles {
            let out = self.run_steps(grid, cycle * self.plans.len() as u64, self.plans.len() as u64);
            if out.swaps == 0 {
                return Some(cycle);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Odd-even transposition on a 1×n grid expressed as a 2-step cycle —
    /// a minimal end-to-end exercise of the schedule machinery. (The real
    /// 1D implementation lives in `meshsort-linear`.)
    fn odd_even_row_schedule(n: usize) -> CycleSchedule {
        let odd: Vec<(u32, u32)> =
            (0..n.saturating_sub(1)).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
        let even: Vec<(u32, u32)> =
            (1..n.saturating_sub(1)).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
        CycleSchedule::new(
            vec![StepPlan::from_pairs(odd).unwrap(), StepPlan::from_pairs(even).unwrap()],
            n,
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(CycleSchedule::new(vec![], 4).unwrap_err(), MeshError::EmptySchedule);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let p = StepPlan::from_pairs(vec![(0, 9)]).unwrap();
        assert!(matches!(
            CycleSchedule::new(vec![p], 4),
            Err(MeshError::IndexOutOfRange { index: 9, cells: 4 })
        ));
    }

    #[test]
    fn plan_cycles() {
        let s = odd_even_row_schedule(4);
        assert_eq!(s.cycle_len(), 2);
        assert_eq!(s.plan_at(0), s.plan_at(2));
        assert_eq!(s.plan_at(1), s.plan_at(3));
        assert_ne!(s.plan_at(0), s.plan_at(1));
    }

    #[test]
    fn sorts_a_reversed_line() {
        // Classic result: odd-even transposition sorts n values in <= n
        // steps. The flat row-major data of a 2×2 grid is a 4-cell line.
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![3u32, 2, 1, 0]).unwrap();
        let out = s.run_until_sorted(&mut g, TargetOrder::RowMajor, 16);
        assert!(out.sorted);
        assert!(out.steps <= 4, "steps = {}", out.steps);
        assert_eq!(g.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn already_sorted_is_zero_steps() {
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![0u32, 1, 2, 3]).unwrap();
        let out = s.run_until_sorted(&mut g, TargetOrder::RowMajor, 16);
        assert!(out.sorted);
        assert_eq!(out.steps, 0);
        assert_eq!(out.swaps, 0);
    }

    #[test]
    fn cap_reports_unsorted() {
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![3u32, 2, 1, 0]).unwrap();
        let out = s.run_until_sorted(&mut g, TargetOrder::RowMajor, 1);
        assert!(!out.sorted);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn fixed_point_detection() {
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![3u32, 2, 1, 0]).unwrap();
        let cycles = s.run_to_fixed_point(&mut g, 16).unwrap();
        assert!(cycles <= 4);
        assert_eq!(g.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn run_steps_counts() {
        let s = odd_even_row_schedule(4);
        let mut g = Grid::from_rows(2, vec![3u32, 2, 1, 0]).unwrap();
        let out = s.run_steps(&mut g, 0, 2);
        assert_eq!(out.comparisons, 3); // odd step: 2 comparators; even step: 1.
        assert!(out.swaps >= 2);
    }

    #[test]
    fn traced_run_matches_untraced() {
        use crate::trace::SwapCounter;
        let s = odd_even_row_schedule(4);
        let mut a = Grid::from_rows(2, vec![2u32, 0, 3, 1]).unwrap();
        let mut b = a.clone();
        let mut counter = SwapCounter::default();
        let oa = s.run_until_sorted(&mut a, TargetOrder::RowMajor, 16);
        let ob = s.run_until_sorted_traced(&mut b, TargetOrder::RowMajor, 16, &mut counter);
        assert_eq!(oa, ob);
        assert_eq!(a, b);
        assert_eq!(counter.total(), ob.swaps);
    }
}
