//! Error type shared across the mesh substrate.

use std::fmt;

/// Errors raised while constructing grids, plans, or schedules.
///
/// The simulator is strict: malformed inputs (a data vector whose length is
/// not `side²`, a comparator set that touches a cell twice in one step, an
/// algorithm instantiated on a side it does not support) are rejected at
/// construction time rather than producing silently wrong simulations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// The flat data vector does not have `side * side` elements.
    BadDimensions {
        /// Requested mesh side.
        side: usize,
        /// Length of the data vector actually provided.
        len: usize,
    },
    /// A mesh side of zero was requested.
    ZeroSide,
    /// A comparator refers to a flat cell index outside the grid.
    IndexOutOfRange {
        /// The offending flat index.
        index: u32,
        /// Number of cells in the grid.
        cells: usize,
    },
    /// Two comparators in the same step touch the same cell.
    OverlappingComparators {
        /// The flat cell index that appears in more than one comparator.
        index: u32,
    },
    /// A comparator compares a cell with itself.
    DegenerateComparator {
        /// The flat index used on both ends.
        index: u32,
    },
    /// An algorithm requiring an even side was given an odd one (or vice
    /// versa).
    UnsupportedSide {
        /// The side that was requested.
        side: usize,
        /// Human-readable constraint, e.g. `"even side >= 2"`.
        requirement: &'static str,
    },
    /// A schedule was built with no steps.
    EmptySchedule,
    /// A batch run was given grids of differing sides; lockstep execution
    /// requires every grid in the batch to share one mesh geometry.
    MixedBatchSides {
        /// Side of the first grid in the batch.
        expected: usize,
        /// The first differing side encountered.
        found: usize,
    },
    /// A fault-injection rate parameter was not a probability in `[0, 1]`.
    InvalidFaultRate {
        /// The offending parameter (`"drop_rate"` or `"stall_rate"`).
        param: &'static str,
    },
    /// A schedule was assembled from plan and compiled-IR lists of
    /// differing lengths ([`crate::CycleSchedule::from_parts`]).
    ScheduleShapeMismatch {
        /// Number of step plans supplied.
        plans: usize,
        /// Number of compiled plans supplied.
        compiled: usize,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::BadDimensions { side, len } => {
                write!(f, "data length {len} does not match side {side} (expected {})", side * side)
            }
            MeshError::ZeroSide => write!(f, "mesh side must be at least 1"),
            MeshError::IndexOutOfRange { index, cells } => {
                write!(f, "comparator index {index} out of range for {cells} cells")
            }
            MeshError::OverlappingComparators { index } => {
                write!(f, "cell {index} appears in more than one comparator in a single step")
            }
            MeshError::DegenerateComparator { index } => {
                write!(f, "comparator compares cell {index} with itself")
            }
            MeshError::UnsupportedSide { side, requirement } => {
                write!(f, "side {side} unsupported: algorithm requires {requirement}")
            }
            MeshError::EmptySchedule => write!(f, "schedule must contain at least one step"),
            MeshError::MixedBatchSides { expected, found } => {
                write!(f, "batch mixes grid sides: expected side {expected}, found {found}")
            }
            MeshError::InvalidFaultRate { param } => {
                write!(f, "fault rate {param} must be a probability in [0, 1]")
            }
            MeshError::ScheduleShapeMismatch { plans, compiled } => {
                write!(
                    f,
                    "schedule shape mismatch: {plans} step plans but {compiled} compiled plans"
                )
            }
        }
    }
}

impl std::error::Error for MeshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_bad_dimensions() {
        let e = MeshError::BadDimensions { side: 3, len: 8 };
        assert_eq!(e.to_string(), "data length 8 does not match side 3 (expected 9)");
    }

    #[test]
    fn display_zero_side() {
        assert_eq!(MeshError::ZeroSide.to_string(), "mesh side must be at least 1");
    }

    #[test]
    fn display_index_out_of_range() {
        let e = MeshError::IndexOutOfRange { index: 9, cells: 9 };
        assert!(e.to_string().contains("index 9"));
        assert!(e.to_string().contains("9 cells"));
    }

    #[test]
    fn display_overlapping() {
        let e = MeshError::OverlappingComparators { index: 4 };
        assert!(e.to_string().contains("cell 4"));
    }

    #[test]
    fn display_degenerate() {
        let e = MeshError::DegenerateComparator { index: 2 };
        assert!(e.to_string().contains("itself"));
    }

    #[test]
    fn display_unsupported_side() {
        let e = MeshError::UnsupportedSide { side: 5, requirement: "even side >= 2" };
        assert!(e.to_string().contains("side 5"));
        assert!(e.to_string().contains("even side >= 2"));
    }

    #[test]
    fn display_mixed_batch_sides() {
        let e = MeshError::MixedBatchSides { expected: 8, found: 4 };
        assert!(e.to_string().contains("expected side 8"));
        assert!(e.to_string().contains("found 4"));
    }

    #[test]
    fn display_invalid_fault_rate() {
        let e = MeshError::InvalidFaultRate { param: "drop_rate" };
        assert!(e.to_string().contains("drop_rate"));
        assert!(e.to_string().contains("[0, 1]"));
    }

    #[test]
    fn display_schedule_shape_mismatch() {
        let e = MeshError::ScheduleShapeMismatch { plans: 4, compiled: 3 };
        assert!(e.to_string().contains("4 step plans"));
        assert!(e.to_string().contains("3 compiled plans"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MeshError::EmptySchedule);
        assert!(e.to_string().contains("at least one step"));
    }
}
