//! Batched many-grid lockstep execution (structure-of-arrays).
//!
//! Every Monte-Carlo experiment in the suite is an expectation over
//! thousands of *independent* small-grid sorts, and per-grid execution
//! leaves almost all of the machine idle: each step of a side-8 sort is a
//! few dozen compare-exchanges, far too little work to fill vector units,
//! and the per-grid run loop re-pays its scheduling overhead N times. The
//! 0–1 subsystem already exploits this shape symbolically (64 placements
//! per pass via `u64` lane masks in `meshsort-zeroone`); this module is the
//! real-payload generalization for arbitrary [`KernelValue`] grids.
//!
//! # Layout and execution
//!
//! [`run_batch_until_sorted`] transposes a batch of `B` grids of `N` cells
//! from grid-major (`B` separate `Vec`s) to **cell-major lanes**: one flat
//! buffer of `N·B` values where `data[cell·B + lane]` holds `cell` of grid
//! `lane`. All grids then step in lockstep through one shared
//! [`CycleSchedule`]: for each comparator `(keep_min, keep_max)` of the
//! step's [`crate::CompiledPlan`], the engine runs the branchless
//! compare-exchange of [`crate::kernel`] across the batch dimension — two
//! contiguous `B`-wide rows, elementwise min/max, per-lane swap tallies —
//! which autovectorizes with no per-grid branching.
//!
//! # Retirement and faithfulness
//!
//! Each grid must report the *same* [`RunOutcome`] it would get from
//! [`CycleSchedule::run_until_sorted`]: steps to the first sorted state,
//! and swap/comparison totals over exactly those steps. Convergence is
//! detected by per-lane **quiescence**, not per-step sortedness scans
//! (which would cost strided loads across the whole buffer every step):
//! the per-lane swap tally already computed by the compare-exchange loop
//! doubles as a change detector. A step swaps a lane iff it changes that
//! lane's data, so a lane that goes one full schedule cycle without a
//! swap is at a fixed point of the cycle and will never change again.
//! At that moment the engine scans the lane once: if sorted, the lane
//! *retires* with `steps` equal to its **last swapping step** `s` — the
//! sorted-fixed-point certificate (below) makes `s` exactly the first
//! sorted step, because a sorted grid fires no wires (so sorting earlier
//! would have made step `s` swapless) — and with the swap/comparison
//! totals checkpointed when step `s` ran. If the scan finds the lane
//! unsorted it is stuck at a non-sorting fixed point and simply runs to
//! the cap, exactly like the scalar engines. Retired lanes clear their
//! bit in the batch bitset (`LaneMask`) and drop out of accounting
//! while the batch keeps stepping.
//!
//! Retired lanes keep flowing through the compare-exchanges, which is only
//! sound because the sorted state is a **fixed point** of the schedule —
//! every wire is dead on a sorted grid, so the data (and the would-be swap
//! count) of a retired lane never changes again. That property is exactly
//! what [`crate::absint::verify_sorted_fixed_point`] certifies statically,
//! so the entry point proves it *before* committing to lockstep execution
//! and falls back to faithful per-grid kernel runs for any schedule where
//! it fails to hold. All five paper algorithms pass the proof (pinned by
//! the absint test suite), so they always take the lockstep path.
//!
//! When at most half the lanes remain live the batch is *compacted*:
//! retired columns (whose final grids were written back at retirement) are
//! dropped and the live lanes re-packed contiguously, so long straggler
//! tails do not pay full-batch bandwidth.
//!
//! Sharding a batch across cores is layered above this module (see
//! `meshsort_core::SortJob::run_batch`, which shards through the
//! `MESHSORT_THREADS` plumbing of `meshsort-stats`); the engine here is
//! deliberately single-threaded and deterministic.

use crate::absint;
use crate::error::MeshError;
use crate::grid::Grid;
use crate::kernel::{cx_slots, CompiledPlan, KernelValue};
use crate::order::TargetOrder;
use crate::schedule::{CycleSchedule, RunOutcome};

/// Bitset of live (not yet sorted) batch lanes — the batch counterpart of
/// the scalar engine's [`crate::InversionTracker`] check: one bit per lane,
/// cleared when the lane's grid first reads sorted.
#[derive(Debug, Clone)]
struct LaneMask {
    words: Vec<u64>,
    live: usize,
}

impl LaneMask {
    fn full(lanes: usize) -> Self {
        let mut words = vec![u64::MAX; lanes.div_ceil(64)];
        if lanes % 64 != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (lanes % 64)) - 1;
            }
        }
        LaneMask { words, live: lanes }
    }

    fn clear(&mut self, lane: usize) {
        let word = &mut self.words[lane / 64];
        let bit = 1u64 << (lane % 64);
        if *word & bit != 0 {
            *word &= !bit;
            self.live -= 1;
        }
    }

    fn live(&self) -> usize {
        self.live
    }

    fn is_live(&self, lane: usize) -> bool {
        self.words[lane / 64] & (1u64 << (lane % 64)) != 0
    }

    /// Calls `f` for every live lane, in increasing lane order.
    fn for_each(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                f(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }
}

/// Drives a batch of independent grids to `order` in lockstep through one
/// shared schedule, up to `cap` steps each, returning one [`RunOutcome`]
/// per grid (index-aligned with `grids`).
///
/// Each grid's outcome and final contents are **bit-identical** to what a
/// standalone [`CycleSchedule::run_until_sorted`] /
/// [`CycleSchedule::run_until_sorted_kernel`] run would produce
/// (`tests/batch_props.rs` pins this differentially): same first-sorted
/// step, same swap and comparison totals over those steps, `steps == cap`
/// with `sorted == false` for grids that fail to sort within the cap, and
/// zero-cost outcomes for grids that are already sorted on entry.
///
/// Lockstep execution requires the sorted state to be a fixed point of the
/// schedule; the engine certifies that statically via
/// [`crate::absint::verify_sorted_fixed_point`] and silently falls back to
/// per-grid kernel runs when the proof fails, so the faithfulness contract
/// holds for *every* schedule while all five paper algorithms take the
/// fast path.
///
/// An empty batch returns an empty vector. As with the scalar run loops,
/// the schedule must have been validated against grids of this size (every
/// [`CycleSchedule`] is bounds-checked at construction).
///
/// # Errors
///
/// [`MeshError::MixedBatchSides`] if the grids do not all share one side.
pub fn run_batch_until_sorted<T: KernelValue>(
    schedule: &CycleSchedule,
    grids: &mut [Grid<T>],
    order: TargetOrder,
    cap: u64,
) -> Result<Vec<RunOutcome>, MeshError> {
    let Some(first) = grids.first() else {
        return Ok(Vec::new());
    };
    let side = first.side();
    if let Some(odd) = grids.iter().find(|g| g.side() != side) {
        return Err(MeshError::MixedBatchSides { expected: side, found: odd.side() });
    }
    if absint::verify_sorted_fixed_point(schedule, order, side).is_err() {
        // Sorted grids are not inert under this schedule, so lanes cannot
        // retire in place; run each grid through the (equally faithful)
        // per-grid kernel engine instead.
        let outcomes =
            grids.iter_mut().map(|g| schedule.run_until_sorted_kernel(g, order, cap)).collect();
        return Ok(outcomes);
    }
    Ok(run_lockstep(schedule, grids, order, cap, side))
}

/// Whether lane `col` of the cell-major buffer reads sorted: every
/// adjacent rank pair of `order`'s rank table is non-inverted. Full-lane
/// scans are strided and therefore only run at retirement candidacy
/// (quiescence), never per step.
fn lane_sorted<T: Ord>(soa: &[T], width: usize, col: usize, table: &[u32]) -> bool {
    table.windows(2).all(|w| soa[w[0] as usize * width + col] <= soa[w[1] as usize * width + col])
}

/// Branchless compare-exchange of one comparator across the whole batch:
/// cell row `lo` receives the per-lane minima, row `hi` the maxima, and
/// `swaps[lane]` counts the exchange. Same selects as the scalar kernel —
/// contiguous rows and a `u32` tally keep the loop vectorizable.
fn cx_lanes<T: KernelValue>(soa: &mut [T], width: usize, lo: usize, hi: usize, swaps: &mut [u32]) {
    let (lo_off, hi_off) = (lo * width, hi * width);
    if lo_off < hi_off {
        let (head, tail) = soa.split_at_mut(hi_off);
        let mins = &mut head[lo_off..lo_off + width];
        let maxs = &mut tail[..width];
        for ((mn, mx), sw) in mins.iter_mut().zip(maxs.iter_mut()).zip(swaps.iter_mut()) {
            cx_slots(mn, mx, sw);
        }
    } else {
        let (head, tail) = soa.split_at_mut(lo_off);
        let maxs = &mut head[hi_off..hi_off + width];
        let mins = &mut tail[..width];
        for ((mn, mx), sw) in mins.iter_mut().zip(maxs.iter_mut()).zip(swaps.iter_mut()) {
            cx_slots(mn, mx, sw);
        }
    }
}

/// Copies lane `col` of the cell-major buffer back into its source grid.
fn write_back<T: KernelValue>(grid: &mut Grid<T>, soa: &[T], width: usize, col: usize) {
    for (cell, slot) in grid.as_mut_slice().iter_mut().enumerate() {
        *slot = soa[cell * width + col];
    }
}

/// The lockstep engine proper; only entered once the sorted state is known
/// to be a fixed point of `schedule` (see [`run_batch_until_sorted`]).
fn run_lockstep<T: KernelValue>(
    schedule: &CycleSchedule,
    grids: &mut [Grid<T>],
    order: TargetOrder,
    cap: u64,
    side: usize,
) -> Vec<RunOutcome> {
    let cells = side * side;
    let batch = grids.len();
    let table = order.rank_to_flat_table(side);
    // Hoist each compiled step to a flat comparator pair list once; the
    // inner loops then vectorize across lanes, not across comparators.
    let step_pairs: Vec<Vec<(u32, u32)>> = schedule
        .compiled_plans()
        .iter()
        .map(|p| p.expand().iter().map(|c| (c.keep_min, c.keep_max)).collect())
        .collect();
    let step_comparisons: Vec<u64> =
        schedule.compiled_plans().iter().map(CompiledPlan::comparisons).collect();

    // Grid-major -> cell-major transpose.
    let mut soa: Vec<T> = Vec::with_capacity(cells * batch);
    for cell in 0..cells {
        for g in grids.iter() {
            soa.push(g.as_slice()[cell]);
        }
    }

    let mut outcomes =
        vec![RunOutcome { steps: 0, swaps: 0, comparisons: 0, sorted: false }; batch];
    // Column `col` of the (possibly compacted) buffer belongs to grid
    // `lane_of[col]`.
    let mut lane_of: Vec<u32> = (0..batch as u32).collect();
    let mut width = batch;
    let mut mask = LaneMask::full(width);
    let mut swaps_total: Vec<u64> = vec![0; width];
    let mut swaps_step: Vec<u32> = vec![0; width];
    // Quiescence bookkeeping: the step each lane last swapped at, and its
    // comparison total as of that step (its retirement snapshot).
    let mut last_swap: Vec<u64> = vec![0; width];
    let mut comp_at_last_swap: Vec<u64> = vec![0; width];
    let mut retiring: Vec<usize> = Vec::new();

    // Grids sorted on entry cost zero steps, exactly like the scalar runs.
    for col in 0..width {
        if lane_sorted(&soa, width, col, &table) {
            outcomes[lane_of[col] as usize].sorted = true;
            mask.clear(col);
        }
    }

    // A lane unchanged over this many consecutive steps has seen every
    // plan of the cycle act as the identity: it is at a fixed point of
    // the whole cycle and will never change again.
    let cycle = schedule.cycle_len() as u64;
    let quiet_window = cycle;
    let mut comparisons_so_far = 0u64;
    let mut t = 0u64;
    while t < cap && mask.live() > 0 {
        let i = (t % cycle) as usize;
        for &(lo, hi) in &step_pairs[i] {
            cx_lanes(&mut soa, width, lo as usize, hi as usize, &mut swaps_step);
        }
        comparisons_so_far += step_comparisons[i];
        t += 1;
        // Flush the vector-friendly u32 step tallies (a step swaps each
        // lane at most once per comparator, far below u32::MAX) into the
        // u64 running totals, and drive quiescence detection off the same
        // numbers: a swap timestamps the lane; a lane quiet for exactly
        // one full cycle gets its single sortedness scan. Retired lanes
        // tally zero forever (every wire is dead on sorted data) and the
        // `==` trigger fires at most once per lane, so neither re-enters.
        retiring.clear();
        for col in 0..width {
            let s = swaps_step[col];
            if s > 0 {
                swaps_step[col] = 0;
                swaps_total[col] += u64::from(s);
                last_swap[col] = t;
                comp_at_last_swap[col] = comparisons_so_far;
            } else if t - last_swap[col] == quiet_window
                && mask.is_live(col)
                && lane_sorted(&soa, width, col, &table)
            {
                retiring.push(col);
            }
        }
        for &col in &retiring {
            let lane = lane_of[col] as usize;
            outcomes[lane] = RunOutcome {
                steps: last_swap[col],
                swaps: swaps_total[col],
                comparisons: comp_at_last_swap[col],
                sorted: true,
            };
            write_back(&mut grids[lane], &soa, width, col);
            mask.clear(col);
        }
        // Straggler compaction: once at most half the columns are live,
        // re-pack them contiguously so the tail of slow lanes stops paying
        // full-batch bandwidth. Retired grids were written back above.
        if mask.live() * 2 <= width && mask.live() > 0 && width >= 8 {
            let mut live_cols = Vec::with_capacity(mask.live());
            mask.for_each(|col| live_cols.push(col));
            let mut packed = Vec::with_capacity(cells * live_cols.len());
            for cell in 0..cells {
                let row = &soa[cell * width..(cell + 1) * width];
                packed.extend(live_cols.iter().map(|&c| row[c]));
            }
            soa = packed;
            lane_of = live_cols.iter().map(|&c| lane_of[c]).collect();
            swaps_total = live_cols.iter().map(|&c| swaps_total[c]).collect();
            last_swap = live_cols.iter().map(|&c| last_swap[c]).collect();
            comp_at_last_swap = live_cols.iter().map(|&c| comp_at_last_swap[c]).collect();
            width = live_cols.len();
            swaps_step = vec![0; width];
            mask = LaneMask::full(width);
        }
    }

    // Lanes still live when the loop exits fall in two classes. A lane
    // that sorted within the last `quiet_window` steps before the cap has
    // not had its quiescence trigger yet — scan it now and retire it at
    // its last swapping step (its data has been fixed since). Anything
    // else genuinely failed to sort: steps == cap, sorted == false, the
    // same shape the scalar engines report.
    mask.for_each(|col| {
        let lane = lane_of[col] as usize;
        outcomes[lane] = if lane_sorted(&soa, width, col, &table) {
            RunOutcome {
                steps: last_swap[col],
                swaps: swaps_total[col],
                comparisons: comp_at_last_swap[col],
                sorted: true,
            }
        } else {
            RunOutcome {
                steps: t,
                swaps: swaps_total[col],
                comparisons: comparisons_so_far,
                sorted: false,
            }
        };
        write_back(&mut grids[lane], &soa, width, col);
    });
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StepPlan;

    /// Odd-even transposition on the flat row-major line of an n²-cell
    /// grid — a schedule whose sorted state is a fixed point, so the
    /// lockstep path genuinely runs.
    fn odd_even_schedule(cells: usize) -> CycleSchedule {
        let odd: Vec<(u32, u32)> =
            (0..cells.saturating_sub(1)).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
        let even: Vec<(u32, u32)> =
            (1..cells.saturating_sub(1)).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
        CycleSchedule::new(
            vec![StepPlan::from_pairs(odd).unwrap(), StepPlan::from_pairs(even).unwrap()],
            cells,
        )
        .unwrap()
    }

    fn scrambled(side: usize, salt: u32) -> Grid<u32> {
        let cells = (side * side) as u32;
        let data: Vec<u32> =
            (0..cells).map(|v| (v.wrapping_mul(2654435761).wrapping_add(salt)) % cells).collect();
        Grid::from_rows(side, data).unwrap()
    }

    fn check_against_scalar(side: usize, batch: usize, cap: u64) {
        let s = odd_even_schedule(side * side);
        let mut grids: Vec<Grid<u32>> = (0..batch).map(|i| scrambled(side, i as u32)).collect();
        let mut solo = grids.clone();
        let outcomes = run_batch_until_sorted(&s, &mut grids, TargetOrder::RowMajor, cap).unwrap();
        assert_eq!(outcomes.len(), batch);
        for (i, g) in solo.iter_mut().enumerate() {
            let expect = s.run_until_sorted(g, TargetOrder::RowMajor, cap);
            assert_eq!(outcomes[i], expect, "outcome diverged for grid {i}");
            assert_eq!(&grids[i], g, "final grid diverged for grid {i}");
        }
    }

    #[test]
    fn empty_batch() {
        let s = odd_even_schedule(16);
        let mut grids: Vec<Grid<u32>> = Vec::new();
        let out = run_batch_until_sorted(&s, &mut grids, TargetOrder::RowMajor, 64).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_grid_batch_matches_scalar() {
        check_against_scalar(4, 1, 64);
    }

    #[test]
    fn batch_matches_scalar_small() {
        check_against_scalar(4, 7, 64);
    }

    #[test]
    fn batch_matches_scalar_above_small_grid_threshold() {
        // 10×10 = 100 cells: the solo runs take the hybrid path while the
        // batch uses quiescence retirement; outcomes must still agree.
        check_against_scalar(10, 13, 1_000);
    }

    #[test]
    fn compaction_exercised() {
        // A batch much wider than the compaction floor with one straggler
        // (reversed line sorts slowest) forces several compaction rounds.
        let side = 4;
        let s = odd_even_schedule(side * side);
        let mut grids: Vec<Grid<u32>> = (0..33).map(|i| scrambled(side, i)).collect();
        grids[17] = Grid::from_rows(side, (0..16u32).rev().collect()).unwrap();
        let mut solo = grids.clone();
        let outcomes = run_batch_until_sorted(&s, &mut grids, TargetOrder::RowMajor, 64).unwrap();
        for (i, g) in solo.iter_mut().enumerate() {
            let expect = s.run_until_sorted(g, TargetOrder::RowMajor, 64);
            assert_eq!(outcomes[i], expect, "grid {i}");
            assert_eq!(&grids[i], g, "grid {i}");
        }
    }

    #[test]
    fn already_sorted_lane_costs_zero() {
        let side = 4;
        let s = odd_even_schedule(side * side);
        let mut grids =
            vec![Grid::from_rows(side, (0..16u32).collect()).unwrap(), scrambled(side, 9)];
        let outcomes = run_batch_until_sorted(&s, &mut grids, TargetOrder::RowMajor, 64).unwrap();
        assert_eq!(outcomes[0], RunOutcome { steps: 0, swaps: 0, comparisons: 0, sorted: true });
        assert!(outcomes[1].sorted);
        assert!(grids[0].is_sorted(TargetOrder::RowMajor));
    }

    #[test]
    fn cap_reports_unsorted_per_lane() {
        let side = 4;
        let s = odd_even_schedule(side * side);
        let mut grids = vec![
            Grid::from_rows(side, (0..16u32).rev().collect()).unwrap(),
            Grid::from_rows(side, (0..16u32).collect()).unwrap(),
        ];
        let mut solo = grids.clone();
        let outcomes = run_batch_until_sorted(&s, &mut grids, TargetOrder::RowMajor, 2).unwrap();
        for (i, g) in solo.iter_mut().enumerate() {
            let expect = s.run_until_sorted(g, TargetOrder::RowMajor, 2);
            assert_eq!(outcomes[i], expect, "grid {i}");
            assert_eq!(&grids[i], g, "grid {i}");
        }
        assert!(!outcomes[0].sorted);
        assert_eq!(outcomes[0].steps, 2);
        assert!(outcomes[1].sorted);
    }

    #[test]
    fn mixed_sides_rejected() {
        let s = odd_even_schedule(16);
        let mut grids = vec![scrambled(4, 0), scrambled(3, 0)];
        let err = run_batch_until_sorted(&s, &mut grids, TargetOrder::RowMajor, 64).unwrap_err();
        assert_eq!(err, MeshError::MixedBatchSides { expected: 4, found: 3 });
    }

    #[test]
    fn non_fixed_point_schedule_falls_back() {
        // Reverse bubble pairs (keep_min on the right) make the sorted
        // row-major state a *non*-fixed point: the proof fails and the
        // engine must fall back to per-grid runs, still matching them.
        let pairs: Vec<(u32, u32)> = (0..8).map(|k| (2 * k + 1, 2 * k)).collect();
        let s = CycleSchedule::new(vec![StepPlan::from_pairs(pairs).unwrap()], 16).unwrap();
        assert!(absint::verify_sorted_fixed_point(&s, TargetOrder::RowMajor, 4).is_err());
        let mut grids: Vec<Grid<u32>> = (0..5).map(|i| scrambled(4, i)).collect();
        let mut solo = grids.clone();
        let outcomes = run_batch_until_sorted(&s, &mut grids, TargetOrder::RowMajor, 8).unwrap();
        for (i, g) in solo.iter_mut().enumerate() {
            let expect = s.run_until_sorted_kernel(g, TargetOrder::RowMajor, 8);
            assert_eq!(outcomes[i], expect, "grid {i}");
            assert_eq!(&grids[i], g, "grid {i}");
        }
    }

    #[test]
    fn lane_mask_semantics() {
        let mut m = LaneMask::full(67);
        assert_eq!(m.live(), 67);
        m.clear(0);
        m.clear(64);
        m.clear(64); // double-clear is a no-op
        assert_eq!(m.live(), 65);
        let mut seen = Vec::new();
        m.for_each(|l| seen.push(l));
        assert_eq!(seen.len(), 65);
        assert!(!seen.contains(&0));
        assert!(!seen.contains(&64));
        assert!(seen.contains(&66));
    }
}
