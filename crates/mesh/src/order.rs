//! Target orders: what "sorted" means on the mesh.
//!
//! The paper's first two algorithms finish in **row-major** order: the
//! m-th smallest number (1-indexed m) ends in row `⌊(m−1)/√N⌋ + 1` and
//! column `[(m−1) mod √N] + 1`. The other three finish in **snakelike**
//! order, where even-numbered (paper 1-indexed) rows run right-to-left.

use crate::pos::Pos;
use serde::{Deserialize, Serialize};

/// The two final arrangements used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetOrder {
    /// Row-major: every row ascends left→right, rows stacked smallest-first.
    RowMajor,
    /// Snakelike (boustrophedon): paper-odd rows ascend left→right,
    /// paper-even rows ascend right→left.
    Snake,
}

impl TargetOrder {
    /// Rank (0-indexed: `m − 1` in the paper) of the value that cell `pos`
    /// holds once sorting is complete.
    #[inline]
    pub fn rank_of(self, pos: Pos, side: usize) -> usize {
        match self {
            TargetOrder::RowMajor => pos.row * side + pos.col,
            TargetOrder::Snake => {
                if pos.row % 2 == 0 {
                    pos.row * side + pos.col
                } else {
                    pos.row * side + (side - 1 - pos.col)
                }
            }
        }
    }

    /// Cell that holds the value of 0-indexed `rank` once sorting is
    /// complete — the inverse of [`TargetOrder::rank_of`].
    #[inline]
    pub fn pos_of_rank(self, rank: usize, side: usize) -> Pos {
        let row = rank / side;
        let offset = rank % side;
        let col = match self {
            TargetOrder::RowMajor => offset,
            TargetOrder::Snake => {
                if row % 2 == 0 {
                    offset
                } else {
                    side - 1 - offset
                }
            }
        };
        Pos::new(row, col)
    }

    /// Lookup table mapping each rank to the flat row-major index of the
    /// cell that holds it once sorted: `table[rank] =
    /// pos_of_rank(rank).flat(side)`. The engine's sortedness machinery
    /// ([`crate::sortedness::InversionTracker`]) walks this table instead
    /// of recomputing coordinate arithmetic per rank.
    pub fn rank_to_flat_table(self, side: usize) -> Vec<u32> {
        (0..side * side).map(|rank| self.pos_of_rank(rank, side).flat(side) as u32).collect()
    }

    /// Inverse of [`TargetOrder::rank_to_flat_table`]: the rank each flat
    /// cell index holds once sorted.
    pub fn flat_to_rank_table(self, side: usize) -> Vec<u32> {
        (0..side * side).map(|flat| self.rank_of(Pos::from_flat(flat, side), side) as u32).collect()
    }

    /// Short machine-friendly name used in experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            TargetOrder::RowMajor => "row-major",
            TargetOrder::Snake => "snake",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_matches_paper_formula() {
        // Paper: m-th smallest in row ⌊(m−1)/√N⌋+1, column [(m−1) mod √N]+1.
        let side = 6;
        for m in 1..=side * side {
            let pos = TargetOrder::RowMajor.pos_of_rank(m - 1, side);
            assert_eq!(pos.paper_row(), (m - 1) / side + 1);
            assert_eq!(pos.paper_col(), (m - 1) % side + 1);
        }
    }

    #[test]
    fn snake_matches_paper_formula() {
        // Paper: R_m = ⌊(m−1)/√N⌋+1; column [(m−1) mod √N]+1 if R_m odd,
        // √N − [(m−1) mod √N] if R_m even.
        let side = 6;
        for m in 1..=side * side {
            let pos = TargetOrder::Snake.pos_of_rank(m - 1, side);
            let r_m = (m - 1) / side + 1;
            assert_eq!(pos.paper_row(), r_m);
            let expected_col =
                if r_m % 2 == 1 { (m - 1) % side + 1 } else { side - (m - 1) % side };
            assert_eq!(pos.paper_col(), expected_col, "m={m}");
        }
    }

    #[test]
    fn rank_pos_round_trip() {
        for side in [1usize, 2, 3, 4, 5, 8] {
            for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
                for rank in 0..side * side {
                    let pos = order.pos_of_rank(rank, side);
                    assert_eq!(order.rank_of(pos, side), rank, "side={side} order={order:?}");
                }
            }
        }
    }

    #[test]
    fn snake_example_4x4() {
        // 4×4 snake: row 1: 1..4; row 2: 8,7,6,5; ...
        let side = 4;
        let o = TargetOrder::Snake;
        assert_eq!(o.pos_of_rank(4, side), Pos::new(1, 3)); // 5th smallest at right end of row 2
        assert_eq!(o.pos_of_rank(7, side), Pos::new(1, 0)); // 8th smallest at left end of row 2
        assert_eq!(o.pos_of_rank(8, side), Pos::new(2, 0)); // 9th smallest back to the left
    }

    #[test]
    fn columns_ascend_in_both_orders() {
        // Needed for the sorted state to be a fixed point of column sorts:
        // in either target order, every column ascends top→bottom.
        for side in [2usize, 3, 4, 5, 6] {
            for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
                for col in 0..side {
                    let ranks: Vec<usize> =
                        (0..side).map(|row| order.rank_of(Pos::new(row, col), side)).collect();
                    assert!(
                        ranks.windows(2).all(|w| w[0] < w[1]),
                        "side={side} {order:?} col={col}"
                    );
                }
            }
        }
    }

    #[test]
    fn tables_match_scalar_maps() {
        for side in [1usize, 2, 3, 4, 5, 8] {
            for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
                let r2f = order.rank_to_flat_table(side);
                let f2r = order.flat_to_rank_table(side);
                assert_eq!(r2f.len(), side * side);
                for rank in 0..side * side {
                    assert_eq!(r2f[rank] as usize, order.pos_of_rank(rank, side).flat(side));
                    assert_eq!(f2r[r2f[rank] as usize] as usize, rank);
                }
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(TargetOrder::RowMajor.label(), "row-major");
        assert_eq!(TargetOrder::Snake.label(), "snake");
    }
}
