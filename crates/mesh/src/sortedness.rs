//! Incremental sortedness tracking.
//!
//! `run_until_sorted` must detect the *first* step after which the grid
//! reads sorted in the target order. The reference engine answers that
//! with a full O(N) rescan after every step; near the end of a run — when
//! the grid is almost sorted and scans no longer exit early — that rescan
//! dominates. [`InversionTracker`] instead maintains the number of
//! *adjacent-rank inversions*: pairs of consecutive ranks whose cells hold
//! out-of-order values. The count is zero exactly when the grid is sorted,
//! and a comparator exchange moves at most four adjacency pairs, so the
//! count updates in O(1) per executed swap.

use crate::grid::Grid;
use crate::order::TargetOrder;

/// Counts adjacent-rank inversions of a grid under a fixed target order,
/// updatable in O(1) per exchanged comparator.
///
/// The tracker owns the order's rank↔flat lookup tables, so constructing
/// one costs O(N); [`InversionTracker::apply_swap`] keeps the count exact
/// afterwards. `inversions() == 0` iff the grid is sorted — the same
/// predicate as [`Grid::is_sorted`], pinned by differential tests.
#[derive(Debug, Clone)]
pub struct InversionTracker {
    rank_to_flat: Vec<u32>,
    flat_to_rank: Vec<u32>,
    inversions: u64,
}

impl InversionTracker {
    /// Builds a tracker for `grid` under `order` and counts its current
    /// inversions.
    pub fn new<T: Ord>(grid: &Grid<T>, order: TargetOrder) -> Self {
        let side = grid.side();
        let mut tracker = InversionTracker {
            rank_to_flat: order.rank_to_flat_table(side),
            flat_to_rank: order.flat_to_rank_table(side),
            inversions: 0,
        };
        tracker.recount(grid.as_slice());
        tracker
    }

    /// Recounts inversions from scratch in O(N). Used at construction and
    /// when the engine switches a run from untracked to tracked mode.
    pub fn recount<T: Ord>(&mut self, data: &[T]) {
        self.inversions = self
            .rank_to_flat
            .windows(2)
            .filter(|w| data[w[0] as usize] > data[w[1] as usize])
            .count() as u64;
    }

    /// Rank of the first adjacent inversion, or `None` when sorted.
    ///
    /// This is the table-driven early-exit sortedness scan: on a grid far
    /// from sorted it returns after O(1) expected probes, and the returned
    /// depth tells the engine when scans are getting expensive enough that
    /// switching to incremental tracking pays.
    #[inline]
    pub fn first_inversion<T: Ord>(&self, data: &[T]) -> Option<usize> {
        self.rank_to_flat.windows(2).position(|w| data[w[0] as usize] > data[w[1] as usize])
    }

    /// Current number of adjacent-rank inversions.
    #[inline]
    pub fn inversions(&self) -> u64 {
        self.inversions
    }

    /// `true` iff the tracked grid is sorted in the target order.
    #[inline]
    pub fn is_sorted(&self) -> bool {
        self.inversions == 0
    }

    /// Updates the count after the cells at flat indices `a` and `b`
    /// exchanged values. `data` is the grid slice *after* the exchange;
    /// pre-exchange values are recovered by substitution (`a` held what is
    /// now at `b` and vice versa). Only the ≤ 4 adjacency pairs touching
    /// rank(a) or rank(b) can change state.
    #[inline]
    pub fn apply_swap<T: Ord>(&mut self, data: &[T], a: u32, b: u32) {
        let ra = self.flat_to_rank[a as usize];
        let rb = self.flat_to_rank[b as usize];
        let last_left = (self.rank_to_flat.len() - 1) as u32; // pairs have left rank < this

        // Left ranks of the affected adjacency pairs, deduplicated.
        // `wrapping_sub` sends rank 0's underflow past `last_left`, so the
        // bounds check filters it out.
        let mut lefts = [0u32; 4];
        let mut n = 0usize;
        for cand in [ra.wrapping_sub(1), ra, rb.wrapping_sub(1), rb] {
            if cand < last_left && !lefts[..n].contains(&cand) {
                lefts[n] = cand;
                n += 1;
            }
        }

        let pre = |f: u32| -> &T {
            if f == a {
                &data[b as usize]
            } else if f == b {
                &data[a as usize]
            } else {
                &data[f as usize]
            }
        };

        let mut delta = 0i64;
        for &r in &lefts[..n] {
            let f1 = self.rank_to_flat[r as usize];
            let f2 = self.rank_to_flat[r as usize + 1];
            let was = pre(f1) > pre(f2);
            let now = data[f1 as usize] > data[f2 as usize];
            delta += i64::from(now) - i64::from(was);
        }
        self.inversions = (self.inversions as i64 + delta) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_count_matches_grid_metric() {
        for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
            let g = Grid::from_rows(3, vec![8u32, 1, 6, 3, 5, 7, 4, 9, 2]).unwrap();
            let t = InversionTracker::new(&g, order);
            assert_eq!(t.inversions(), g.order_inversions(order) as u64);
            assert_eq!(t.is_sorted(), g.is_sorted(order));
        }
    }

    #[test]
    fn sorted_grid_has_zero() {
        let g = Grid::from_rows(2, vec![0u32, 1, 3, 2]).unwrap();
        let t = InversionTracker::new(&g, TargetOrder::Snake);
        assert!(t.is_sorted());
        assert_eq!(t.first_inversion(g.as_slice()), None);
    }

    #[test]
    fn first_inversion_rank() {
        // Row-major: 0 1 | 3 2 → first adjacent inversion at left rank 2.
        let g = Grid::from_rows(2, vec![0u32, 1, 3, 2]).unwrap();
        let t = InversionTracker::new(&g, TargetOrder::RowMajor);
        assert_eq!(t.first_inversion(g.as_slice()), Some(2));
        assert_eq!(t.inversions(), 1);
    }

    #[test]
    fn swap_updates_match_recount_exhaustively() {
        // Every swap of two distinct cells on a 3×3, both orders, with
        // duplicate values present.
        let base = vec![4u32, 1, 2, 2, 0, 4, 3, 1, 0];
        for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
            for a in 0..9u32 {
                for b in 0..9u32 {
                    if a == b {
                        continue;
                    }
                    let mut g = Grid::from_rows(3, base.clone()).unwrap();
                    let mut t = InversionTracker::new(&g, order);
                    g.as_mut_slice().swap(a as usize, b as usize);
                    t.apply_swap(g.as_slice(), a, b);
                    let mut fresh = t.clone();
                    fresh.recount(g.as_slice());
                    assert_eq!(t.inversions(), fresh.inversions(), "order={order:?} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn chained_swaps_stay_exact() {
        let mut g = Grid::from_rows(4, (0..16u32).rev().collect()).unwrap();
        let mut t = InversionTracker::new(&g, TargetOrder::Snake);
        // Deterministic pseudo-random swap walk.
        let mut x = 0x9e3779b9u32;
        for _ in 0..200 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let a = (x >> 8) % 16;
            let b = (x >> 16) % 16;
            if a == b {
                continue;
            }
            g.as_mut_slice().swap(a as usize, b as usize);
            t.apply_swap(g.as_slice(), a, b);
        }
        let mut fresh = t.clone();
        fresh.recount(g.as_slice());
        assert_eq!(t.inversions(), fresh.inversions());
    }

    #[test]
    fn single_cell_grid() {
        let g = Grid::from_rows(1, vec![7u32]).unwrap();
        let t = InversionTracker::new(&g, TargetOrder::RowMajor);
        assert!(t.is_sorted());
    }
}
