//! Properties of the fault-injection layer and the resilient runner:
//! determinism (same seed ⇒ identical trace and final grid), scalar vs
//! compiled-kernel differential equality under faults, recovery after
//! transient damage, and watchdog termination under permanent faults.
//!
//! The suite runs under the *static* convergence budget: every policy is
//! derived from the `absint` fixpoint bound of the schedule under test
//! ([`ResilientPolicy::from_static_bound`]), several times tighter than
//! the Θ(N) `for_side` default it replaced —
//! `static_bound_policy_is_tighter_than_theta` pins the gap.

use meshsort_mesh::fault::{self, FaultEvent, FaultSpec};
use meshsort_mesh::{
    absint, CycleSchedule, FaultPlan, Grid, ResilientPolicy, StepPlan, StuckWire, TargetOrder,
};

/// Odd-even transposition over the flat data of a `side × side` grid, as
/// a 2-step cycle — a convergent schedule with no algorithm-crate
/// dependency (mirrors the fixture in `schedule.rs`).
fn line_schedule(side: usize) -> CycleSchedule {
    let n = side * side;
    let odd: Vec<(u32, u32)> = (0..n - 1).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
    let even: Vec<(u32, u32)> = (1..n - 1).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
    CycleSchedule::new(
        vec![StepPlan::from_pairs(odd).unwrap(), StepPlan::from_pairs(even).unwrap()],
        n,
    )
    .unwrap()
}

/// Deterministic pseudo-random permutation grid (SplitMix-style walk; no
/// external RNG so the fixture is reproducible byte-for-byte).
fn scrambled_grid(side: usize, seed: u64) -> Grid<u32> {
    let n = side * side;
    let mut vals: Vec<u32> = (0..n as u32).collect();
    let mut s = seed;
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        vals.swap(i, j);
    }
    Grid::from_rows(side, vals).unwrap()
}

/// The statically proven convergence bound of `s`: the `absint` fixpoint
/// step after which every input is sorted.
fn static_bound(s: &CycleSchedule, side: usize) -> u64 {
    let summary = absint::analyze_schedule(s, TargetOrder::RowMajor, side);
    summary.converged_step.expect("line-schedule convergence is provable")
}

/// Resilient policy sized from the static bound of the schedule under
/// test — the budget the runners actually use, not the Θ(N) default.
fn policy(s: &CycleSchedule, side: usize) -> ResilientPolicy {
    ResilientPolicy::from_static_bound(static_bound(s, side), s.cycle_len())
}

#[test]
fn static_bound_policy_is_tighter_than_theta() {
    // The static-bound policy must beat the Θ(N) `for_side` budget on
    // every axis while still admitting the worst fault-free run.
    for side in [4, 6, 8, 10] {
        let s = line_schedule(side);
        let pol = policy(&s, side);
        let theta = ResilientPolicy::for_side(side);
        assert!(pol.step_budget < theta.step_budget, "side {side}");
        assert!(pol.stall_window < theta.stall_window, "side {side}");
        assert!(pol.recovery_cycles < theta.recovery_cycles, "side {side}");
        // The fault-free run finishes inside the stall window, so the
        // tighter watchdog never misfires on a healthy machine.
        let mut g = scrambled_grid(side, 1);
        let out = s.run_until_sorted_kernel(&mut g, TargetOrder::RowMajor, pol.stall_window);
        assert!(out.sorted, "side {side}: fault-free run missed the stall window");
    }
}

#[test]
fn noop_faults_match_fault_free_run_exactly() {
    // ISSUE acceptance: with fault rate 0 the resilient runner's counts
    // are identical to the existing engine's, on both engines.
    for side in [6, 10] {
        let s = line_schedule(side);
        let faults = FaultPlan::none();
        let mut plain = scrambled_grid(side, 42);
        let mut scalar = plain.clone();
        let mut kernel = plain.clone();
        let cap = fault::default_step_budget(side);
        let base = s.run_until_sorted_kernel(&mut plain, TargetOrder::RowMajor, cap);
        assert!(base.sorted);
        let rs = s.run_until_sorted_resilient(
            &mut scalar,
            TargetOrder::RowMajor,
            &faults,
            &policy(&s, side),
        );
        let rk = s.run_until_sorted_resilient_kernel(
            &mut kernel,
            TargetOrder::RowMajor,
            &faults,
            &policy(&s, side),
        );
        assert_eq!(rs, rk);
        assert_eq!(rs.outcome, fault::RunOutcome::Converged { steps: base.steps });
        assert_eq!(
            (rs.steps, rs.swaps, rs.comparisons),
            (base.steps, base.swaps, base.comparisons)
        );
        assert_eq!(
            (rs.dropped, rs.stalled_steps, rs.recovery_attempts, rs.recovery_steps),
            (0, 0, 0, 0)
        );
        assert_eq!(plain, scalar);
        assert_eq!(plain, kernel);
    }
}

#[test]
fn same_seed_identical_trace_and_final_grid() {
    let side = 8;
    let s = line_schedule(side);
    let mut spec = FaultSpec::transient(0xDEAD_BEEF, 0.05);
    spec.stall_rate = 0.02;
    spec.random_stuck = 1;
    let a = FaultPlan::compile(&spec, &s).unwrap();
    let b = FaultPlan::compile(&spec, &s).unwrap();
    assert_eq!(a.trace(&s, 1024), b.trace(&s, 1024));
    let mut ga = scrambled_grid(side, 7);
    let mut gb = ga.clone();
    let ra = s.run_until_sorted_resilient(&mut ga, TargetOrder::RowMajor, &a, &policy(&s, side));
    let rb = s.run_until_sorted_resilient(&mut gb, TargetOrder::RowMajor, &b, &policy(&s, side));
    assert_eq!(ra, rb);
    assert_eq!(ga, gb);
}

#[test]
fn scalar_and_kernel_paths_agree_under_faults() {
    // The differential acceptance criterion: bit-identical report and
    // final grid across the scalar and compiled-kernel resilient paths,
    // across fault regimes.
    let side = 8;
    let s = line_schedule(side);
    for (seed, drop_rate, stall_rate, stuck) in
        [(1u64, 0.0, 0.0, 0usize), (2, 0.05, 0.0, 0), (3, 0.2, 0.1, 2), (4, 0.5, 0.0, 1)]
    {
        let mut spec = FaultSpec::transient(seed, drop_rate);
        spec.stall_rate = stall_rate;
        spec.random_stuck = stuck;
        let faults = FaultPlan::compile(&spec, &s).unwrap();
        for gseed in 0..4 {
            let mut ga = scrambled_grid(side, gseed);
            let mut gb = ga.clone();
            let ra = s.run_until_sorted_resilient(
                &mut ga,
                TargetOrder::RowMajor,
                &faults,
                &policy(&s, side),
            );
            let rb = s.run_until_sorted_resilient_kernel(
                &mut gb,
                TargetOrder::RowMajor,
                &faults,
                &policy(&s, side),
            );
            assert_eq!(ra, rb, "seed={seed} gseed={gseed}");
            assert_eq!(ga, gb, "seed={seed} gseed={gseed}");
        }
    }
}

#[test]
fn recovery_scrubs_transient_damage_to_fault_free_result() {
    // Heavy transient misfires livelock or exhaust the main run, but the
    // scrub phase runs fault-free, so the run still converges — to the
    // exact grid the fault-free engine produces.
    let side = 8;
    let s = line_schedule(side);
    let faults = FaultPlan::compile(&FaultSpec::transient(99, 0.6), &s).unwrap();
    let mut damaged = scrambled_grid(side, 3);
    let mut clean = damaged.clone();
    let cap = fault::default_step_budget(side);
    let base = s.run_until_sorted_kernel(&mut clean, TargetOrder::RowMajor, cap);
    assert!(base.sorted);
    let rep = s.run_until_sorted_resilient_kernel(
        &mut damaged,
        TargetOrder::RowMajor,
        &faults,
        &policy(&s, side),
    );
    assert!(rep.outcome.converged(), "outcome = {:?}", rep.outcome);
    assert!(rep.dropped > 0, "fixture too tame: no fault ever fired");
    assert_eq!(damaged, clean);
    assert_eq!(rep.outcome, fault::RunOutcome::Converged { steps: rep.total_steps() });
}

#[test]
fn stuck_comparator_on_zero_one_input_degrades_without_hanging() {
    // ISSUE watchdog criterion: a permanently stuck comparator on a 0-1
    // input yields Degraded/BudgetExhausted, never a hang. Recovery is
    // disabled — a scrub would model repaired hardware and finish the
    // sort, masking the damage this test asserts.
    let side = 4;
    let s = line_schedule(side);
    let mut spec = FaultSpec::none(0);
    // Cell 0 holds a 1 that can only leave through wire (0,1).
    spec.stuck.push(StuckWire::permanent(0, 1));
    let faults = FaultPlan::compile(&spec, &s).unwrap();
    let mut data = vec![0u8; side * side];
    data[0] = 1;
    let mut g = Grid::from_rows(side, data).unwrap();
    let pol = policy(&s, side).without_recovery();
    let rep = s.run_until_sorted_resilient(&mut g, TargetOrder::RowMajor, &faults, &pol);
    assert!(
        matches!(
            rep.outcome,
            fault::RunOutcome::Degraded { .. } | fault::RunOutcome::BudgetExhausted { .. }
        ),
        "outcome = {:?}",
        rep.outcome
    );
    assert!(rep.steps <= pol.step_budget);
    assert!(!g.is_sorted(TargetOrder::RowMajor));
    // The kernel path reaches the same verdict on the same input.
    let mut data = vec![0u8; side * side];
    data[0] = 1;
    let mut gk = Grid::from_rows(side, data).unwrap();
    let repk = s.run_until_sorted_resilient_kernel(&mut gk, TargetOrder::RowMajor, &faults, &pol);
    assert_eq!(rep, repk);
    assert_eq!(g, gk);
}

#[test]
fn drop_rate_one_trips_watchdog_within_budget() {
    let side = 6;
    let s = line_schedule(side);
    let faults = FaultPlan::compile(&FaultSpec::transient(5, 1.0), &s).unwrap();
    let mut g = scrambled_grid(side, 11);
    let before = g.clone();
    let pol = policy(&s, side).without_recovery();
    let rep = s.run_until_sorted_resilient(&mut g, TargetOrder::RowMajor, &faults, &pol);
    match rep.outcome {
        fault::RunOutcome::Degraded { residual_inversions, .. } => {
            assert!(residual_inversions > 0);
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
    // Nothing ever fires: the grid is untouched and the watchdog fired
    // before the full budget was burned.
    assert_eq!(g, before);
    assert_eq!(rep.swaps, 0);
    assert!(rep.steps < pol.step_budget);
}

#[test]
fn stall_rate_one_executes_nothing() {
    let side = 6;
    let s = line_schedule(side);
    let mut spec = FaultSpec::none(8);
    spec.stall_rate = 1.0;
    let faults = FaultPlan::compile(&spec, &s).unwrap();
    let mut g = scrambled_grid(side, 2);
    let pol = policy(&s, side).without_recovery();
    let rep = s.run_until_sorted_resilient(&mut g, TargetOrder::RowMajor, &faults, &pol);
    assert_eq!(rep.stalled_steps, rep.steps);
    assert_eq!((rep.swaps, rep.comparisons, rep.dropped), (0, 0, 0));
    assert!(!rep.outcome.converged());
}

#[test]
fn already_sorted_grid_is_zero_steps_even_under_faults() {
    let side = 6;
    let s = line_schedule(side);
    let faults = FaultPlan::compile(&FaultSpec::transient(1, 0.9), &s).unwrap();
    let mut g = Grid::from_rows(side, (0..(side * side) as u32).collect()).unwrap();
    let rep =
        s.run_until_sorted_resilient(&mut g, TargetOrder::RowMajor, &faults, &policy(&s, side));
    assert_eq!(rep.outcome, fault::RunOutcome::Converged { steps: 0 });
    assert_eq!(rep.steps, 0);
}

#[test]
fn trace_events_are_step_ordered_and_complete() {
    let side = 6;
    let s = line_schedule(side);
    let mut spec = FaultSpec::transient(21, 0.1);
    spec.stall_rate = 0.05;
    let faults = FaultPlan::compile(&spec, &s).unwrap();
    let steps = 256;
    let trace = faults.trace(&s, steps);
    assert!(!trace.is_empty());
    let step_of = |e: &FaultEvent| match *e {
        FaultEvent::Dropped { step, .. } | FaultEvent::Stalled { step } => step,
    };
    for w in trace.windows(2) {
        assert!(step_of(&w[0]) <= step_of(&w[1]), "trace out of order: {w:?}");
    }
    // The trace is exactly the concatenation of per-step events.
    let rebuilt: Vec<FaultEvent> =
        (0..steps).flat_map(|t| faults.step_events(t, s.plan_at(t))).collect();
    assert_eq!(trace, rebuilt);
}
