//! Differential properties of the SoA lockstep batch engine.
//!
//! The faithfulness contract (DESIGN.md "Batch engine"): for every grid in
//! a batch, the final grid contents AND the per-grid counters (steps,
//! swaps, comparisons, sorted flag) are bit-identical to what the scalar
//! engines produce on that grid alone — for all five Savari algorithms,
//! for random and adversarial batches, for ragged batches, for
//! single-grid batches, and for any shard width / thread count.
//!
//! Randomness is a hand-rolled LCG (no proptest, no `rand`) so the suite
//! runs identically in every environment.

use meshsort_core::{optimized_for, runner, schedule_for, AlgorithmId, Budget, SortJob};
use meshsort_mesh::schedule::RunOutcome;
use meshsort_mesh::{run_batch_until_sorted, Grid, TargetOrder};

/// Minimal deterministic RNG for permutation shuffles.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 ^ (self.0 >> 29)
    }
}

/// A pseudo-random permutation of `0..side²` (Fisher–Yates over the LCG).
fn permutation_grid(side: usize, seed: u64) -> Grid<u32> {
    let cells = side * side;
    let mut v: Vec<u32> = (0..cells as u32).collect();
    let mut rng = Lcg(seed ^ 0x9E37_79B9_7F4A_7C15);
    for i in (1..cells).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    Grid::from_rows(side, v).unwrap()
}

fn reversed_grid(side: usize) -> Grid<u32> {
    Grid::from_rows(side, (0..(side * side) as u32).rev().collect()).unwrap()
}

fn sorted_grid(side: usize, order: TargetOrder) -> Grid<u32> {
    let table = order.rank_to_flat_table(side);
    let mut v = vec![0u32; side * side];
    for (rank, &flat) in table.iter().enumerate() {
        v[flat as usize] = rank as u32;
    }
    let g = Grid::from_rows(side, v).unwrap();
    assert!(g.is_sorted(order));
    g
}

/// Grid with duplicate keys — the engines only assume `Ord`, not
/// distinctness, so the contract must hold beyond permutations.
fn duplicate_heavy_grid(side: usize, seed: u64) -> Grid<u32> {
    let cells = side * side;
    let mut rng = Lcg(seed.wrapping_mul(0xA24B_AED4_963E_E407));
    let v: Vec<u32> = (0..cells).map(|_| (rng.next() % 4) as u32).collect();
    Grid::from_rows(side, v).unwrap()
}

/// Runs `grids` through the mesh-level lockstep engine and checks every
/// lane against both scalar engines (kernel and reference) grid by grid.
fn assert_batch_faithful(algorithm: AlgorithmId, side: usize, grids: &[Grid<u32>], cap: u64) {
    let schedule = schedule_for(algorithm, side).unwrap();
    let order = algorithm.order();

    let mut batch = grids.to_vec();
    let outcomes = run_batch_until_sorted(&schedule, &mut batch, order, cap).unwrap();
    assert_eq!(outcomes.len(), grids.len());

    for (i, original) in grids.iter().enumerate() {
        let mut kernel = original.clone();
        let expect_kernel: RunOutcome = schedule.run_until_sorted_kernel(&mut kernel, order, cap);
        let mut reference = original.clone();
        let expect_ref = schedule.run_until_sorted_reference(&mut reference, order, cap);

        assert_eq!(outcomes[i], expect_kernel, "{algorithm} side {side}: counters, grid {i}");
        assert_eq!(outcomes[i], expect_ref, "{algorithm} side {side}: engines disagree, grid {i}");
        assert_eq!(batch[i], kernel, "{algorithm} side {side}: final grid, grid {i}");
        assert_eq!(batch[i], reference, "{algorithm} side {side}: reference grid, grid {i}");
    }
}

/// Sides exercised per algorithm: the row-major algorithms are defined for
/// even sides only; the snakes for any side ≥ 1. Side 8 crosses the
/// `SMALL_GRID_CELLS` threshold, side 4 stays under it.
fn supported_sides(algorithm: AlgorithmId) -> Vec<usize> {
    [4, 5, 8, 9].into_iter().filter(|&s| algorithm.schedule(s).is_ok()).collect()
}

#[test]
fn random_batches_bit_identical_all_five() {
    for algorithm in AlgorithmId::ALL {
        for side in supported_sides(algorithm) {
            let cap = runner::default_step_cap(side);
            let grids: Vec<Grid<u32>> =
                (0..13).map(|i| permutation_grid(side, i * 37 + side as u64)).collect();
            assert_batch_faithful(algorithm, side, &grids, cap);
        }
    }
}

#[test]
fn adversarial_batches_bit_identical_all_five() {
    for algorithm in AlgorithmId::ALL {
        for side in supported_sides(algorithm) {
            let cap = runner::default_step_cap(side);
            let order = algorithm.order();
            // Reversed (the Corollary-1-style adversary), already sorted
            // (must retire at step 0), duplicate-heavy, and near-sorted
            // grids in one batch, so retirement is maximally staggered.
            let mut near = sorted_grid(side, order);
            let flat = near.side(); // single swapped pair in row 0
            {
                let rows = near.as_mut_slice();
                rows.swap(0, flat.min(rows.len() - 1));
            }
            let grids = vec![
                reversed_grid(side),
                sorted_grid(side, order),
                duplicate_heavy_grid(side, 5),
                near,
                permutation_grid(side, 99),
            ];
            assert_batch_faithful(algorithm, side, &grids, cap);
        }
    }
}

#[test]
fn single_grid_batches_match_solo_jobs() {
    for algorithm in AlgorithmId::ALL {
        for side in supported_sides(algorithm) {
            let mut solo = permutation_grid(side, 7);
            let mut batch = vec![solo.clone()];
            let runs = SortJob::new(algorithm, side)
                .threads(1)
                .shard_width(1)
                .run_batch(&mut batch)
                .unwrap();
            let expect = SortJob::new(algorithm, side).run(&mut solo).unwrap();
            assert_eq!(runs.len(), 1);
            assert_eq!(runs[0], expect, "{algorithm} side {side}");
            assert_eq!(batch[0], solo, "{algorithm} side {side}");
        }
    }
}

#[test]
fn ragged_batches_invariant_under_shard_width_and_threads() {
    // 29 grids: not a multiple of any shard width below, so every
    // configuration ends in a ragged tail shard.
    let algorithm = AlgorithmId::SnakeStaggeredCols;
    let side = 8;
    let cap = runner::default_step_cap(side);
    let baseline: Vec<Grid<u32>> = (0..29).map(|i| permutation_grid(side, i)).collect();

    let job = SortJob::new(algorithm, side).budget(Budget::Steps(cap));
    let mut expect = baseline.clone();
    let expect_runs = job.clone().threads(1).shard_width(29).run_batch(&mut expect).unwrap();
    for (i, g) in expect.iter().enumerate() {
        let mut solo = baseline[i].clone();
        let solo_run = job.run(&mut solo).unwrap();
        assert_eq!(expect_runs[i], solo_run, "grid {i}");
        assert_eq!(*g, solo, "grid {i}");
    }

    for (threads, width) in [(1, 4), (2, 5), (4, 3), (3, 8), (16, 1), (2, 1000)] {
        let mut grids = baseline.clone();
        let runs = job.clone().threads(threads).shard_width(width).run_batch(&mut grids).unwrap();
        assert_eq!(runs, expect_runs, "threads={threads} width={width}");
        assert_eq!(grids, expect, "threads={threads} width={width}");
    }
}

#[test]
fn capped_batches_report_faithful_partial_counters() {
    for algorithm in AlgorithmId::ALL {
        let side = 8;
        for cap in [0, 1, 5] {
            let grids: Vec<Grid<u32>> = (0..6).map(|i| permutation_grid(side, i + 3)).collect();
            assert_batch_faithful(algorithm, side, &grids, cap);
        }
    }
}

#[test]
fn optimized_plans_execute_directly_in_the_lockstep_engine() {
    // The batch engine takes any `CycleSchedule`, so a certified
    // dead-wire-stripped plan runs through the same SoA lockstep path as
    // the raw schedule. Certificate obligations guarantee stripped wires
    // never swap: final grids, steps, and swaps must be bit-identical,
    // with comparisons strictly reduced wherever wires were stripped.
    for algorithm in AlgorithmId::ALL {
        for side in supported_sides(algorithm) {
            let raw = schedule_for(algorithm, side).unwrap();
            let plan = optimized_for(algorithm, side).unwrap();
            let order = algorithm.order();
            let cap = runner::default_step_cap(side);
            let grids: Vec<Grid<u32>> = (0..7)
                .map(|i| permutation_grid(side, i * 11 + 1))
                .chain([reversed_grid(side)])
                .collect();

            let mut raw_batch = grids.clone();
            let raw_out = run_batch_until_sorted(&raw, &mut raw_batch, order, cap).unwrap();
            let mut opt_batch = grids.clone();
            let opt_out =
                run_batch_until_sorted(&plan.schedule, &mut opt_batch, order, cap).unwrap();

            assert_eq!(raw_batch, opt_batch, "{algorithm} side {side}: final grids");
            let mut reduced = false;
            for (i, (r, o)) in raw_out.iter().zip(&opt_out).enumerate() {
                assert_eq!(r.steps, o.steps, "{algorithm} side {side}: steps, grid {i}");
                assert_eq!(r.swaps, o.swaps, "{algorithm} side {side}: swaps, grid {i}");
                assert_eq!(r.sorted, o.sorted, "{algorithm} side {side}: sorted, grid {i}");
                assert!(
                    o.comparisons <= r.comparisons,
                    "{algorithm} side {side}: optimized plan must never compare more, grid {i}"
                );
                reduced |= o.comparisons < r.comparisons;
            }
            assert_eq!(
                reduced,
                !plan.stripped.is_empty(),
                "{algorithm} side {side}: comparator reduction iff wires were stripped"
            );
        }
    }
}

#[test]
fn optimized_batch_jobs_match_raw_batch_jobs() {
    // Same property one level up: `SortJob::run_batch` with
    // `.optimized(true)` feeds the stripped plan straight into the
    // lockstep engine (no per-grid fallback), so server batches get the
    // comparator-reduction win with unchanged results.
    for algorithm in AlgorithmId::ALL {
        for side in supported_sides(algorithm) {
            let grids: Vec<Grid<u32>> = (0..5).map(|i| permutation_grid(side, i * 7 + 2)).collect();
            let mut raw_batch = grids.clone();
            let raw_runs = SortJob::new(algorithm, side).run_batch(&mut raw_batch).unwrap();
            let mut opt_batch = grids.clone();
            let opt_runs =
                SortJob::new(algorithm, side).optimized(true).run_batch(&mut opt_batch).unwrap();
            assert_eq!(raw_batch, opt_batch, "{algorithm} side {side}: final grids");
            for (i, (r, o)) in raw_runs.iter().zip(&opt_runs).enumerate() {
                assert_eq!(r.steps, o.steps, "{algorithm} side {side}: steps, grid {i}");
                assert_eq!(r.swaps, o.swaps, "{algorithm} side {side}: swaps, grid {i}");
                assert_eq!(
                    r.convergence, o.convergence,
                    "{algorithm} side {side}: convergence, grid {i}"
                );
            }
        }
    }
}

#[test]
fn mass_retirement_batch_exercises_compaction() {
    // One hard straggler among many instantly-sorted lanes forces the
    // engine through its live-lane compaction path; faithfulness must
    // survive the re-pack.
    let algorithm = AlgorithmId::SnakeAlternating;
    let side = 8;
    let order = algorithm.order();
    let cap = runner::default_step_cap(side);
    let mut grids: Vec<Grid<u32>> = (0..70).map(|_| sorted_grid(side, order)).collect();
    grids[37] = reversed_grid(side);
    assert_batch_faithful(algorithm, side, &grids, cap);
}
