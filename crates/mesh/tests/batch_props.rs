//! Differential properties of the SoA lockstep batch engine.
//!
//! The faithfulness contract (DESIGN.md "Batch engine"): for every grid in
//! a batch, the final grid contents AND the per-grid counters (steps,
//! swaps, comparisons, sorted flag) are bit-identical to what the scalar
//! engines produce on that grid alone — for all five Savari algorithms,
//! for random and adversarial batches, for ragged batches, for
//! single-grid batches, and for any shard width / thread count.
//!
//! Randomness is a hand-rolled LCG (no proptest, no `rand`) so the suite
//! runs identically in every environment.

use meshsort_core::{runner, schedule_for, sort_batch_with, AlgorithmId};
use meshsort_mesh::schedule::RunOutcome;
use meshsort_mesh::{run_batch_until_sorted, Grid, TargetOrder};

/// Minimal deterministic RNG for permutation shuffles.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 ^ (self.0 >> 29)
    }
}

/// A pseudo-random permutation of `0..side²` (Fisher–Yates over the LCG).
fn permutation_grid(side: usize, seed: u64) -> Grid<u32> {
    let cells = side * side;
    let mut v: Vec<u32> = (0..cells as u32).collect();
    let mut rng = Lcg(seed ^ 0x9E37_79B9_7F4A_7C15);
    for i in (1..cells).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    Grid::from_rows(side, v).unwrap()
}

fn reversed_grid(side: usize) -> Grid<u32> {
    Grid::from_rows(side, (0..(side * side) as u32).rev().collect()).unwrap()
}

fn sorted_grid(side: usize, order: TargetOrder) -> Grid<u32> {
    let table = order.rank_to_flat_table(side);
    let mut v = vec![0u32; side * side];
    for (rank, &flat) in table.iter().enumerate() {
        v[flat as usize] = rank as u32;
    }
    let g = Grid::from_rows(side, v).unwrap();
    assert!(g.is_sorted(order));
    g
}

/// Grid with duplicate keys — the engines only assume `Ord`, not
/// distinctness, so the contract must hold beyond permutations.
fn duplicate_heavy_grid(side: usize, seed: u64) -> Grid<u32> {
    let cells = side * side;
    let mut rng = Lcg(seed.wrapping_mul(0xA24B_AED4_963E_E407));
    let v: Vec<u32> = (0..cells).map(|_| (rng.next() % 4) as u32).collect();
    Grid::from_rows(side, v).unwrap()
}

/// Runs `grids` through the mesh-level lockstep engine and checks every
/// lane against both scalar engines (kernel and reference) grid by grid.
fn assert_batch_faithful(algorithm: AlgorithmId, side: usize, grids: &[Grid<u32>], cap: u64) {
    let schedule = schedule_for(algorithm, side).unwrap();
    let order = algorithm.order();

    let mut batch = grids.to_vec();
    let outcomes = run_batch_until_sorted(&schedule, &mut batch, order, cap).unwrap();
    assert_eq!(outcomes.len(), grids.len());

    for (i, original) in grids.iter().enumerate() {
        let mut kernel = original.clone();
        let expect_kernel: RunOutcome = schedule.run_until_sorted_kernel(&mut kernel, order, cap);
        let mut reference = original.clone();
        let expect_ref = schedule.run_until_sorted_reference(&mut reference, order, cap);

        assert_eq!(outcomes[i], expect_kernel, "{algorithm} side {side}: counters, grid {i}");
        assert_eq!(outcomes[i], expect_ref, "{algorithm} side {side}: engines disagree, grid {i}");
        assert_eq!(batch[i], kernel, "{algorithm} side {side}: final grid, grid {i}");
        assert_eq!(batch[i], reference, "{algorithm} side {side}: reference grid, grid {i}");
    }
}

/// Sides exercised per algorithm: the row-major algorithms are defined for
/// even sides only; the snakes for any side ≥ 1. Side 8 crosses the
/// `SMALL_GRID_CELLS` threshold, side 4 stays under it.
fn supported_sides(algorithm: AlgorithmId) -> Vec<usize> {
    [4, 5, 8, 9].into_iter().filter(|&s| algorithm.schedule(s).is_ok()).collect()
}

#[test]
fn random_batches_bit_identical_all_five() {
    for algorithm in AlgorithmId::ALL {
        for side in supported_sides(algorithm) {
            let cap = runner::default_step_cap(side);
            let grids: Vec<Grid<u32>> =
                (0..13).map(|i| permutation_grid(side, i * 37 + side as u64)).collect();
            assert_batch_faithful(algorithm, side, &grids, cap);
        }
    }
}

#[test]
fn adversarial_batches_bit_identical_all_five() {
    for algorithm in AlgorithmId::ALL {
        for side in supported_sides(algorithm) {
            let cap = runner::default_step_cap(side);
            let order = algorithm.order();
            // Reversed (the Corollary-1-style adversary), already sorted
            // (must retire at step 0), duplicate-heavy, and near-sorted
            // grids in one batch, so retirement is maximally staggered.
            let mut near = sorted_grid(side, order);
            let flat = near.side(); // single swapped pair in row 0
            {
                let rows = near.as_mut_slice();
                rows.swap(0, flat.min(rows.len() - 1));
            }
            let grids = vec![
                reversed_grid(side),
                sorted_grid(side, order),
                duplicate_heavy_grid(side, 5),
                near,
                permutation_grid(side, 99),
            ];
            assert_batch_faithful(algorithm, side, &grids, cap);
        }
    }
}

#[test]
fn single_grid_batches_match_sort_to_completion() {
    for algorithm in AlgorithmId::ALL {
        for side in supported_sides(algorithm) {
            let mut solo = permutation_grid(side, 7);
            let mut batch = vec![solo.clone()];
            let runs = sort_batch_with(algorithm, &mut batch, runner::default_step_cap(side), 1, 1)
                .unwrap();
            let expect = runner::sort_to_completion(algorithm, &mut solo).unwrap();
            assert_eq!(runs.len(), 1);
            assert_eq!(runs[0], expect, "{algorithm} side {side}");
            assert_eq!(batch[0], solo, "{algorithm} side {side}");
        }
    }
}

#[test]
fn ragged_batches_invariant_under_shard_width_and_threads() {
    // 29 grids: not a multiple of any shard width below, so every
    // configuration ends in a ragged tail shard.
    let algorithm = AlgorithmId::SnakeStaggeredCols;
    let side = 8;
    let cap = runner::default_step_cap(side);
    let baseline: Vec<Grid<u32>> = (0..29).map(|i| permutation_grid(side, i)).collect();

    let mut expect = baseline.clone();
    let expect_runs = sort_batch_with(algorithm, &mut expect, cap, 1, 29).unwrap();
    for (i, g) in expect.iter().enumerate() {
        let mut solo = baseline[i].clone();
        let solo_run = runner::sort_to_completion(algorithm, &mut solo).unwrap();
        assert_eq!(expect_runs[i], solo_run, "grid {i}");
        assert_eq!(*g, solo, "grid {i}");
    }

    for (threads, width) in [(1, 4), (2, 5), (4, 3), (3, 8), (16, 1), (2, 1000)] {
        let mut grids = baseline.clone();
        let runs = sort_batch_with(algorithm, &mut grids, cap, threads, width).unwrap();
        assert_eq!(runs, expect_runs, "threads={threads} width={width}");
        assert_eq!(grids, expect, "threads={threads} width={width}");
    }
}

#[test]
fn capped_batches_report_faithful_partial_counters() {
    for algorithm in AlgorithmId::ALL {
        let side = 8;
        for cap in [0, 1, 5] {
            let grids: Vec<Grid<u32>> = (0..6).map(|i| permutation_grid(side, i + 3)).collect();
            assert_batch_faithful(algorithm, side, &grids, cap);
        }
    }
}

#[test]
fn mass_retirement_batch_exercises_compaction() {
    // One hard straggler among many instantly-sorted lanes forces the
    // engine through its live-lane compaction path; faithfulness must
    // survive the re-pack.
    let algorithm = AlgorithmId::SnakeAlternating;
    let side = 8;
    let order = algorithm.order();
    let cap = runner::default_step_cap(side);
    let mut grids: Vec<Grid<u32>> = (0..70).map(|_| sorted_grid(side, order)).collect();
    grids[37] = reversed_grid(side);
    assert_batch_faithful(algorithm, side, &grids, cap);
}
