//! Differential property tests pinning the optimized execution paths —
//! compiled branchless kernels, hybrid sortedness detection, incremental
//! inversion tracking — to the reference scalar engine. Every paper
//! number flows through these paths, so the contract is bit-identical
//! observability: same final grid, same swap/comparison counts, same
//! first-sorted step.

use meshsort_mesh::engine::{apply_plan, apply_plan_tracked};
use meshsort_mesh::plan::{Comparator, StepPlan};
use meshsort_mesh::trace::SwapCounter;
use meshsort_mesh::{CompiledPlan, CycleSchedule, Grid, InversionTracker, TargetOrder};
use proptest::prelude::*;

/// A random valid step plan on `cells` cells: a random matching over a
/// shuffled cell list, with random comparator directions. Deliberately
/// unstructured — no run of it resembles a row or column phase — so the
/// compiler's scatter fallback and run detection both get exercised.
fn arb_plan(cells: usize) -> impl Strategy<Value = StepPlan> {
    let indices: Vec<u32> = (0..cells as u32).collect();
    (Just(indices).prop_shuffle(), prop::collection::vec(any::<bool>(), cells / 2)).prop_map(
        |(order, dirs)| {
            let comparators: Vec<Comparator> = order
                .chunks_exact(2)
                .zip(dirs)
                .map(|(pair, rev)| {
                    if rev {
                        Comparator::new(pair[1], pair[0])
                    } else {
                        Comparator::new(pair[0], pair[1])
                    }
                })
                .collect();
            StepPlan::new(comparators).expect("matching is disjoint")
        },
    )
}

/// A random cyclic schedule of 1–4 random plans over `cells` cells.
fn arb_schedule(cells: usize) -> impl Strategy<Value = CycleSchedule> {
    prop::collection::vec(arb_plan(cells), 1..=4)
        .prop_map(move |plans| CycleSchedule::new(plans, cells).expect("plans are in bounds"))
}

fn arb_order() -> impl Strategy<Value = TargetOrder> {
    prop_oneof![Just(TargetOrder::RowMajor), Just(TargetOrder::Snake)]
}

/// Asserts all run paths agree with the reference on one (schedule, grid,
/// order) instance, returning nothing but panicking with context on any
/// divergence. `cap` is small so unsortable random schedules terminate.
fn assert_paths_agree<T>(schedule: &CycleSchedule, grid: &Grid<T>, order: TargetOrder, cap: u64)
where
    T: meshsort_mesh::KernelValue + std::fmt::Debug,
{
    let mut reference = grid.clone();
    let mut hybrid = grid.clone();
    let mut kernel = grid.clone();
    let mut traced = grid.clone();
    let out_ref = schedule.run_until_sorted_reference(&mut reference, order, cap);
    let out_hyb = schedule.run_until_sorted(&mut hybrid, order, cap);
    let out_ker = schedule.run_until_sorted_kernel(&mut kernel, order, cap);
    let mut counter = SwapCounter::default();
    let out_tra = schedule.run_until_sorted_traced(&mut traced, order, cap, &mut counter);
    assert_eq!(out_ref, out_hyb, "hybrid outcome diverged");
    assert_eq!(out_ref, out_ker, "kernel outcome diverged");
    assert_eq!(out_ref, out_tra, "traced outcome diverged");
    assert_eq!(reference, hybrid, "hybrid grid diverged");
    assert_eq!(reference, kernel, "kernel grid diverged");
    assert_eq!(reference, traced, "traced grid diverged");
    assert_eq!(counter.total(), out_ref.swaps, "trace sink missed swaps");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_plan_matches_scalar_on_random_grids(
        plan in arb_plan(36),
        data in prop::collection::vec(0u32..50, 36),
    ) {
        let mut scalar = Grid::from_rows(6, data.clone()).unwrap();
        let mut compiled_grid = Grid::from_rows(6, data).unwrap();
        let compiled = CompiledPlan::compile(&plan);
        let out = apply_plan(&mut scalar, &plan);
        let swaps = compiled.execute(compiled_grid.as_mut_slice());
        prop_assert_eq!(scalar, compiled_grid);
        prop_assert_eq!(out.swaps, swaps);
        prop_assert_eq!(out.comparisons, compiled.comparisons());
    }

    #[test]
    fn compiled_plan_matches_scalar_on_zero_one_grids(
        plan in arb_plan(36),
        data in prop::collection::vec(0u8..=1, 36),
    ) {
        // The paper's 0-1 analysis: tiny value domain, maximal duplicate
        // pressure on the strict-greater swap condition.
        let mut scalar = Grid::from_rows(6, data.clone()).unwrap();
        let mut compiled_grid = Grid::from_rows(6, data).unwrap();
        let compiled = CompiledPlan::compile(&plan);
        let out = apply_plan(&mut scalar, &plan);
        let swaps = compiled.execute(compiled_grid.as_mut_slice());
        prop_assert_eq!(scalar, compiled_grid);
        prop_assert_eq!(out.swaps, swaps);
    }

    #[test]
    fn compile_is_lossless_up_to_order(plan in arb_plan(64)) {
        let compiled = CompiledPlan::compile(&plan);
        let mut expanded = compiled.expand();
        let mut original = plan.comparators().to_vec();
        let key = |c: &Comparator| (c.keep_min, c.keep_max);
        expanded.sort_unstable_by_key(key);
        original.sort_unstable_by_key(key);
        prop_assert_eq!(expanded, original);
        prop_assert_eq!(compiled.comparisons(), plan.len() as u64);
    }

    #[test]
    fn tracker_stays_exact_under_plan_application(
        plans in prop::collection::vec(arb_plan(25), 1..6),
        data in prop::collection::vec(0u32..20, 25),
        order in arb_order(),
    ) {
        let mut grid = Grid::from_rows(5, data).unwrap();
        let mut tracker = InversionTracker::new(&grid, order);
        for plan in &plans {
            apply_plan_tracked(&mut grid, plan, &mut tracker);
            prop_assert_eq!(
                tracker.inversions(),
                grid.order_inversions(order) as u64
            );
            prop_assert_eq!(tracker.is_sorted(), grid.is_sorted(order));
        }
    }

    #[test]
    fn run_paths_agree_on_small_grids(
        schedule in arb_schedule(16),
        data in prop::collection::vec(0u32..30, 16),
        order in arb_order(),
    ) {
        // Below the hybrid threshold: exercises the reference fallback and
        // the always-tracked traced path against each other.
        let grid = Grid::from_rows(4, data).unwrap();
        assert_paths_agree(&schedule, &grid, order, 48);
    }

    #[test]
    fn run_paths_agree_on_large_grids(
        schedule in arb_schedule(100),
        data in prop::collection::vec(0u32..60, 100),
        order in arb_order(),
    ) {
        // Above the hybrid threshold: scan mode, the tracked-mode switch,
        // and compiled execution all engage. Random schedules rarely sort,
        // so this also pins cap-hit outcomes; duplicates are present, so
        // transient sorted states under arbitrary schedules are too.
        let grid = Grid::from_rows(10, data).unwrap();
        assert_paths_agree(&schedule, &grid, order, 64);
    }

    #[test]
    fn run_paths_agree_on_zero_one_large_grids(
        schedule in arb_schedule(100),
        ones in 0usize..=100,
        order in arb_order(),
    ) {
        // Adversarial 0-1 block layout: all ones before all zeros.
        let data: Vec<u8> = (0..100).map(|i| u8::from(i < ones)).collect();
        let grid = Grid::from_rows(10, data).unwrap();
        assert_paths_agree(&schedule, &grid, order, 64);
    }
}

#[test]
fn run_paths_agree_on_reversed_and_sorted_grids() {
    // Deterministic adversarial cases on an odd-even transposition line
    // embedded in a 10×10 grid (the same construction as the schedule unit
    // tests, but driven through every path).
    let n = 100usize;
    let odd: Vec<(u32, u32)> = (0..n - 1).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
    let even: Vec<(u32, u32)> = (1..n - 1).step_by(2).map(|i| (i as u32, i as u32 + 1)).collect();
    let schedule = CycleSchedule::new(
        vec![StepPlan::from_pairs(odd).unwrap(), StepPlan::from_pairs(even).unwrap()],
        n,
    )
    .unwrap();
    for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
        let reversed = Grid::from_rows(10, (0..n as u32).rev().collect()).unwrap();
        assert_paths_agree(&schedule, &reversed, order, 4 * n as u64);
        let sorted = meshsort_mesh::grid::sorted_permutation_grid(10, order);
        assert_paths_agree(&schedule, &sorted, order, 4 * n as u64);
    }
}
