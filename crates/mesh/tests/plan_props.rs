//! Property-based tests for the mesh substrate: plan validation, engine
//! semantics, order bijections, and network composition.

use meshsort_mesh::network::ComparatorNetwork;
use meshsort_mesh::plan::{Comparator, StepPlan};
use meshsort_mesh::{apply_plan, Grid, Pos, TargetOrder};
use proptest::prelude::*;

/// A random valid step plan on `cells` cells: a random matching over a
/// shuffled cell list, with random comparator directions.
fn arb_plan(cells: usize) -> impl Strategy<Value = StepPlan> {
    let indices: Vec<u32> = (0..cells as u32).collect();
    (Just(indices).prop_shuffle(), prop::collection::vec(any::<bool>(), cells / 2)).prop_map(
        |(order, dirs)| {
            let comparators: Vec<Comparator> = order
                .chunks_exact(2)
                .zip(dirs)
                .map(|(pair, rev)| {
                    if rev {
                        Comparator::new(pair[1], pair[0])
                    } else {
                        Comparator::new(pair[0], pair[1])
                    }
                })
                .collect();
            StepPlan::new(comparators).expect("matching is disjoint")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_preserves_multiset(
        data in prop::collection::vec(0u32..100, 16),
        plan in arb_plan(16),
    ) {
        let mut grid = Grid::from_rows(4, data.clone()).unwrap();
        apply_plan(&mut grid, &plan);
        let mut before = data;
        let mut after = grid.into_vec();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn engine_establishes_comparator_postcondition(
        data in prop::collection::vec(0u32..100, 16),
        plan in arb_plan(16),
    ) {
        let mut grid = Grid::from_rows(4, data).unwrap();
        apply_plan(&mut grid, &plan);
        for c in plan.comparators() {
            prop_assert!(
                grid.as_slice()[c.keep_min as usize] <= grid.as_slice()[c.keep_max as usize]
            );
        }
    }

    #[test]
    fn engine_is_idempotent_per_plan(
        data in prop::collection::vec(0u32..100, 16),
        plan in arb_plan(16),
    ) {
        let mut grid = Grid::from_rows(4, data).unwrap();
        apply_plan(&mut grid, &plan);
        let snapshot = grid.clone();
        let second = apply_plan(&mut grid, &plan);
        prop_assert_eq!(second.swaps, 0);
        prop_assert_eq!(grid, snapshot);
    }

    #[test]
    fn swaps_never_exceed_comparisons(
        data in prop::collection::vec(0u32..10, 16),
        plan in arb_plan(16),
    ) {
        let mut grid = Grid::from_rows(4, data).unwrap();
        let out = apply_plan(&mut grid, &plan);
        prop_assert!(out.swaps <= out.comparisons);
        prop_assert_eq!(out.comparisons, plan.len() as u64);
    }

    #[test]
    fn order_bijection(side in 1usize..12, seed in any::<u64>()) {
        let order = if seed % 2 == 0 { TargetOrder::RowMajor } else { TargetOrder::Snake };
        let rank = (seed as usize) % (side * side);
        let pos = order.pos_of_rank(rank, side);
        prop_assert!(pos.row < side && pos.col < side);
        prop_assert_eq!(order.rank_of(pos, side), rank);
    }

    #[test]
    fn rank_adjacency_is_mesh_adjacency_for_snake(side in 2usize..10, rank in 0usize..80) {
        // Consecutive snake ranks are mesh neighbours — the property that
        // makes the snake order realizable by nearest-neighbour moves.
        let rank = rank % (side * side - 1);
        let a = TargetOrder::Snake.pos_of_rank(rank, side);
        let b = TargetOrder::Snake.pos_of_rank(rank + 1, side);
        prop_assert_eq!(a.manhattan(b), 1);
    }

    #[test]
    fn sorted_copy_is_sorted_and_same_multiset(
        side in 2usize..6,
        seed in any::<u64>(),
    ) {
        let data: Vec<u32> =
            (0..side * side).map(|i| ((seed >> (i % 48)) & 0xF) as u32).collect();
        let grid = Grid::from_rows(side, data.clone()).unwrap();
        for order in [TargetOrder::RowMajor, TargetOrder::Snake] {
            let sorted = grid.sorted_copy(order);
            prop_assert!(sorted.is_sorted(order));
            let mut a = data.clone();
            let mut b = sorted.into_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn network_composition_adds_depth_and_size(
        p1 in arb_plan(16),
        p2 in arb_plan(16),
    ) {
        let a = ComparatorNetwork::new(4, vec![p1]).unwrap();
        let b = ComparatorNetwork::new(4, vec![p2]).unwrap();
        let ab = a.then(&b);
        prop_assert_eq!(ab.depth(), a.depth() + b.depth());
        prop_assert_eq!(ab.size(), a.size() + b.size());
    }

    #[test]
    fn overlapping_plans_rejected(i in 0u32..15, j in 0u32..15) {
        let j2 = if j == i { (j + 1) % 16 } else { j };
        // Two comparators sharing cell i must be rejected.
        let k = (i + 7) % 16;
        let k = if k == j2 || k == i { (k + 1) % 16 } else { k };
        prop_assume!(i != j2 && i != k && j2 != k);
        let res = StepPlan::from_pairs(vec![(i, j2), (k, i)]);
        prop_assert!(res.is_err());
    }
}
