//! # meshsort-baselines — context for the paper's headline
//!
//! The paper's point is that the natural bubble-sort generalizations need
//! `Θ(N)` steps *on average*, far above the `Ω(√N)` diameter bound. The
//! canonical mesh algorithm sitting near that bound is **Shearsort**
//! (Scherson–Sen–Shamir 1986; also [Leighton 1992], the paper's
//! reference \[1\]): alternately snake-sort all rows and sort all columns;
//! after `⌈log₂ √N⌉ + 1` row phases the mesh is in snakelike order, for
//! `O(√N log N)` comparison-exchange steps — worst case *and* average.
//!
//! Shearsort here is compiled to the very same [`meshsort_mesh`] step
//! plans as the five bubble sorts, so step counts are directly
//! comparable (experiment E14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counts;
pub mod shearsort;

pub use shearsort::{shearsort_schedule, shearsort_until_sorted};
