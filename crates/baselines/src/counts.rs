//! Theoretical step counts for the baseline comparison (experiment E14).

/// Shearsort's worst-case step count on a `side × side` mesh:
/// `(2·(⌈log₂ side⌉ + 1) − 1) · side` odd-even steps.
pub fn shearsort_worst_case_steps(side: usize) -> u64 {
    let rounds = crate::shearsort::phase_count(side) as u64;
    (2 * rounds - 1) * side as u64
}

/// The paper's average-case step floor for the five bubble sorts:
/// roughly `cN` with `c ∈ {1/2, 3/8}` — returned here as the weakest of
/// the five constants (`3N/8`) for a conservative comparison line.
pub fn bubble_average_floor(side: usize) -> f64 {
    3.0 * (side * side) as f64 / 8.0
}

/// The mesh diameter bound `2√N − 2` every algorithm is subject to.
pub fn diameter_bound(side: usize) -> u64 {
    meshsort_mesh::pos::mesh_diameter(side) as u64
}

/// The smallest side at which the bubble sorts' average-case floor
/// exceeds Shearsort's *worst case* — i.e. where the asymptotic ordering
/// has definitively kicked in.
pub fn crossover_side() -> usize {
    (2..).find(|&s| bubble_average_floor(s) > shearsort_worst_case_steps(s) as f64).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shearsort_counts() {
        assert_eq!(shearsort_worst_case_steps(4), 5 * 4);
        assert_eq!(shearsort_worst_case_steps(8), 7 * 8);
        assert_eq!(shearsort_worst_case_steps(16), 9 * 16);
    }

    #[test]
    fn bubble_floor() {
        assert_eq!(bubble_average_floor(4), 6.0);
        assert_eq!(bubble_average_floor(8), 24.0);
    }

    #[test]
    fn diameter() {
        assert_eq!(diameter_bound(8), 14);
    }

    #[test]
    fn crossover_exists_and_is_small() {
        let s = crossover_side();
        assert!(s >= 2 && s <= 32, "crossover at side {s}");
        // Past the crossover the gap only widens.
        for side in [s, 2 * s, 4 * s] {
            assert!(bubble_average_floor(side) > shearsort_worst_case_steps(side) as f64);
        }
    }
}
