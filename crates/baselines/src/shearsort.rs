//! Shearsort compiled to mesh step plans.

use meshsort_linear::array::{phase_pairs, Phase};
use meshsort_mesh::plan::{Comparator, StepPlan};
use meshsort_mesh::{CycleSchedule, Grid, KernelValue, MeshError, TargetOrder};
use serde::{Deserialize, Serialize};

/// One odd-even step over all rows in snake directions: 0-indexed even
/// rows keep the smaller value left (ascending), odd rows keep it right
/// (descending).
fn snake_row_step(side: usize, phase: Phase) -> StepPlan {
    let mut comparators = Vec::new();
    for row in 0..side {
        for (a, b) in phase_pairs(side, phase) {
            let left = (row * side + a) as u32;
            let right = (row * side + b) as u32;
            if row % 2 == 0 {
                comparators.push(Comparator::new(left, right));
            } else {
                comparators.push(Comparator::new(right, left));
            }
        }
    }
    StepPlan::new(comparators).expect("pairs within rows are disjoint")
}

/// One odd-even step over all columns, smaller value on top.
fn col_step(side: usize, phase: Phase) -> StepPlan {
    let mut comparators = Vec::new();
    for col in 0..side {
        for (a, b) in phase_pairs(side, phase) {
            comparators.push(Comparator::new((a * side + col) as u32, (b * side + col) as u32));
        }
    }
    StepPlan::new(comparators).expect("pairs within columns are disjoint")
}

/// Number of row phases Shearsort needs: `⌈log₂ side⌉ + 1`.
pub fn phase_count(side: usize) -> usize {
    (usize::BITS - side.next_power_of_two().leading_zeros() - 1) as usize + 1
}

/// The full Shearsort step sequence for one pass: `⌈log₂ side⌉ + 1`
/// alternating (row phase, column phase) rounds, each phase being `side`
/// odd-even steps, with the final column phase omitted (the last row
/// phase completes the snake order). Wrapped in a [`CycleSchedule`] so
/// the same engine and measurement drivers apply; one cycle always
/// suffices (verified by tests), and step counts are comparable one-for-
/// one with the bubble-sort algorithms.
///
/// # Errors
///
/// [`MeshError::ZeroSide`] for `side == 0`.
pub fn shearsort_schedule(side: usize) -> Result<CycleSchedule, MeshError> {
    if side == 0 {
        return Err(MeshError::ZeroSide);
    }
    let rounds = phase_count(side);
    let mut plans = Vec::with_capacity(2 * rounds * side);
    for round in 0..rounds {
        for s in 0..side.max(1) {
            let phase = if s % 2 == 0 { Phase::Odd } else { Phase::Even };
            plans.push(snake_row_step(side, phase));
        }
        if round + 1 < rounds {
            for s in 0..side.max(1) {
                let phase = if s % 2 == 0 { Phase::Odd } else { Phase::Even };
                plans.push(col_step(side, phase));
            }
        }
    }
    if plans.is_empty() {
        plans.push(StepPlan::empty());
    }
    CycleSchedule::new(plans, side * side)
}

/// Measurement of one Shearsort run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShearsortRun {
    /// Steps until the grid first read snake-sorted.
    pub steps: u64,
    /// Total exchanges.
    pub swaps: u64,
    /// Whether sorting completed within one pass (always true; a false
    /// here would be an implementation bug).
    pub sorted: bool,
}

/// Runs Shearsort to completion, counting steps until the grid is in
/// snakelike order (checked after every step — the same measurement
/// semantics as the bubble-sort runners). Runs through the branchless
/// compiled kernels, like the bubble-sort drivers, so baseline
/// comparisons stay apples-to-apples.
pub fn shearsort_until_sorted<T: KernelValue>(grid: &mut Grid<T>) -> ShearsortRun {
    let side = grid.side();
    let schedule = shearsort_schedule(side).expect("side >= 1");
    let cap = schedule.cycle_len() as u64 + 4;
    let out = schedule.run_until_sorted_kernel(grid, TargetOrder::Snake, cap);
    ShearsortRun { steps: out.steps, swaps: out.swaps, sorted: out.sorted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

    #[test]
    fn phase_counts() {
        assert_eq!(phase_count(1), 1);
        assert_eq!(phase_count(2), 2);
        assert_eq!(phase_count(4), 3);
        assert_eq!(phase_count(8), 4);
        assert_eq!(phase_count(16), 5);
        // Non-powers of two round up.
        assert_eq!(phase_count(6), 4);
        assert_eq!(phase_count(5), 4);
    }

    #[test]
    fn sorts_reverse_inputs() {
        for side in [2usize, 3, 4, 5, 6, 8, 9, 16] {
            let n = side * side;
            let mut g = Grid::from_rows(side, (0..n as u32).rev().collect()).unwrap();
            let run = shearsort_until_sorted(&mut g);
            assert!(run.sorted, "side {side}");
            assert!(g.is_sorted(TargetOrder::Snake));
        }
    }

    #[test]
    fn exhaustive_zero_one_4x4() {
        // 0-1 principle: Shearsort is oblivious too.
        for mask in 0u32..(1 << 16) {
            let data: Vec<u8> = (0..16).map(|i| ((mask >> i) & 1) as u8).collect();
            let mut g = Grid::from_rows(4, data).unwrap();
            let run = shearsort_until_sorted(&mut g);
            assert!(run.sorted, "mask {mask:#x}");
        }
    }

    #[test]
    fn random_permutations_sort() {
        let mut rng = StdRng::seed_from_u64(0x5EAE);
        for side in [4usize, 7, 8, 12] {
            for _ in 0..10 {
                let n = side * side;
                let mut data: Vec<u32> = (0..n as u32).collect();
                data.shuffle(&mut rng);
                let mut g = Grid::from_rows(side, data).unwrap();
                let run = shearsort_until_sorted(&mut g);
                assert!(run.sorted, "side {side}");
            }
        }
    }

    #[test]
    fn step_count_is_sqrt_n_log_n() {
        // One pass is at most (2·rounds − 1)·side steps.
        for side in [4usize, 8, 16] {
            let schedule = shearsort_schedule(side).unwrap();
            let rounds = phase_count(side);
            assert_eq!(schedule.cycle_len(), (2 * rounds - 1) * side);
        }
    }

    #[test]
    fn asymptotically_beats_theta_n() {
        // For side 32: shearsort cap = 11·32 = 352 steps, while the
        // paper's algorithms average ≥ N/2 = 512. The gap grows with N.
        let side = 32;
        let schedule = shearsort_schedule(side).unwrap();
        assert!(schedule.cycle_len() < (side * side) / 2);
    }

    #[test]
    fn sorted_input_zero_steps() {
        let mut g = meshsort_mesh::grid::sorted_permutation_grid(6, TargetOrder::Snake);
        let run = shearsort_until_sorted(&mut g);
        assert_eq!(run.steps, 0);
        assert!(run.sorted);
    }

    #[test]
    fn side_one() {
        let mut g = Grid::from_rows(1, vec![5u32]).unwrap();
        let run = shearsort_until_sorted(&mut g);
        assert!(run.sorted);
    }
}
