//! Structural properties of the five compiled schedules: the paper's
//! step descriptions, re-checked against the generated comparator lists
//! for arbitrary sides.

use meshsort_core::AlgorithmId;
use meshsort_mesh::plan::Comparator;
use proptest::prelude::*;

fn row_of(idx: u32, side: usize) -> usize {
    idx as usize / side
}

fn col_of(idx: u32, side: usize) -> usize {
    idx as usize % side
}

/// Classifies a comparator on a mesh of the given side.
#[derive(Debug, PartialEq)]
enum Kind {
    /// Within one row, keep-min on the left (ascending).
    RowForward,
    /// Within one row, keep-min on the right (descending — the paper's
    /// reverse bubble sort).
    RowReverse,
    /// Within one column, keep-min on top.
    Column,
    /// The wrap-around wire (last column, row r) → (first column, row r+1).
    Wrap,
}

fn classify(c: &Comparator, side: usize) -> Kind {
    let (r1, c1) = (row_of(c.keep_min, side), col_of(c.keep_min, side));
    let (r2, c2) = (row_of(c.keep_max, side), col_of(c.keep_max, side));
    if r1 == r2 {
        if c1 + 1 == c2 {
            Kind::RowForward
        } else if c2 + 1 == c1 {
            Kind::RowReverse
        } else {
            panic!("non-adjacent row comparator: {c:?}");
        }
    } else if c1 == c2 {
        assert!(r1 + 1 == r2, "column comparator must keep min on top: {c:?}");
        Kind::Column
    } else {
        assert!(
            c1 == side - 1 && c2 == 0 && r2 == r1 + 1,
            "unexpected wiring: {c:?} on side {side}"
        );
        Kind::Wrap
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_comparators_are_legal_wirings(side in 2usize..20) {
        for alg in AlgorithmId::ALL {
            if !alg.supports_side(side) {
                continue;
            }
            let schedule = alg.schedule(side).unwrap();
            for plan in schedule.plans() {
                for c in plan.comparators() {
                    let kind = classify(c, side);
                    if kind == Kind::Wrap {
                        prop_assert!(alg.uses_wraparound(), "{alg} has a wrap wire");
                    }
                }
            }
        }
    }

    #[test]
    fn row_major_algorithms_never_reverse(side in 2usize..16) {
        prop_assume!(side % 2 == 0);
        for alg in AlgorithmId::ROW_MAJOR {
            let schedule = alg.schedule(side).unwrap();
            for plan in schedule.plans() {
                for c in plan.comparators() {
                    prop_assert_ne!(classify(c, side), Kind::RowReverse, "{alg}");
                }
            }
        }
    }

    #[test]
    fn snake_row_directions_follow_paper_parity(side in 2usize..16) {
        // Paper-odd rows (0-indexed even) bubble forward; paper-even rows
        // run the reverse bubble sort. Columns always forward.
        for alg in AlgorithmId::SNAKE {
            let schedule = alg.schedule(side).unwrap();
            for plan in schedule.plans() {
                for c in plan.comparators() {
                    match classify(c, side) {
                        Kind::RowForward => {
                            prop_assert_eq!(row_of(c.keep_min, side) % 2, 0, "{alg}")
                        }
                        Kind::RowReverse => {
                            prop_assert_eq!(row_of(c.keep_min, side) % 2, 1, "{alg}")
                        }
                        Kind::Column => {}
                        Kind::Wrap => prop_assert!(false, "{alg} must not wrap"),
                    }
                }
            }
        }
    }

    #[test]
    fn cycle_alternates_row_and_column_steps(side in 2usize..16) {
        prop_assume!(side % 2 == 0);
        // For every algorithm, steps 0 and 2 of the cycle are row steps
        // (possibly with wrap) and steps 1 and 3 are column steps — except
        // R2, which starts with a column step.
        for alg in AlgorithmId::ALL {
            let schedule = alg.schedule(side).unwrap();
            let col_first = alg == AlgorithmId::RowMajorColFirst;
            for (i, plan) in schedule.plans().iter().enumerate() {
                let expect_row = (i % 2 == 0) != col_first;
                for c in plan.comparators() {
                    let is_row = matches!(
                        classify(c, side),
                        Kind::RowForward | Kind::RowReverse | Kind::Wrap
                    );
                    prop_assert_eq!(is_row, expect_row, "{alg} step {i}");
                }
            }
        }
    }

    #[test]
    fn comparator_counts_match_formulas(side in 2usize..20) {
        prop_assume!(side % 2 == 0);
        let n = side;
        // R1: odd rows step = n·(n/2); col odd = n·(n/2); row even + wrap
        // = n·(n/2 − 1) + (n − 1); col even = n·(n/2 − 1).
        let schedule = AlgorithmId::RowMajorRowFirst.schedule(side).unwrap();
        let sizes: Vec<usize> = schedule.plans().iter().map(|p| p.len()).collect();
        prop_assert_eq!(
            sizes,
            vec![n * (n / 2), n * (n / 2), n * (n / 2 - 1) + (n - 1), n * (n / 2 - 1)]
        );
        // Snake S1 on an even side: every row busy in both row steps.
        let schedule = AlgorithmId::SnakeAlternating.schedule(side).unwrap();
        let sizes: Vec<usize> = schedule.plans().iter().map(|p| p.len()).collect();
        // Step 0: odd rows n/2 pairs each (n/2 rows), even rows n/2 − 1.
        let half = n / 2;
        prop_assert_eq!(
            sizes,
            vec![
                half * half + half * (half - 1),
                n * half,
                half * (half - 1) + half * half,
                n * (half - 1)
            ]
        );
    }

    #[test]
    fn schedules_touch_every_cell_over_a_cycle(side in 2usize..14) {
        // Every cell participates in at least one comparator per cycle
        // (no dead processors) — for sides >= 2.
        for alg in AlgorithmId::ALL {
            if !alg.supports_side(side) {
                continue;
            }
            let schedule = alg.schedule(side).unwrap();
            let mut touched = vec![false; side * side];
            for plan in schedule.plans() {
                for c in plan.comparators() {
                    touched[c.keep_min as usize] = true;
                    touched[c.keep_max as usize] = true;
                }
            }
            prop_assert!(
                touched.iter().all(|&t| t),
                "{} leaves cells idle on side {}",
                alg,
                side
            );
        }
    }
}
