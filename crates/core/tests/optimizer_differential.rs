//! CI differential smoke for the schedule optimizer (DESIGN.md §13).
//!
//! The dead-wire-stripped, re-fused plans must be behaviourally
//! indistinguishable from the raw schedules on real data: for every
//! algorithm the final grids are bit-identical and the step/swap
//! trajectories agree across the scalar runner, the per-grid kernel
//! path, and the batch lockstep engine. The certificate proves this on
//! 0-1 lanes (the seventh analyze pass); this suite spot-checks the
//! same claim on random permutation grids end to end.

use meshsort_core::{optimized_for, schedule_for, static_step_bound, AlgorithmId, Budget, SortJob};
use meshsort_mesh::Grid;

fn scrambled(side: usize, salt: u32) -> Grid<u32> {
    let cells = (side * side) as u32;
    let data: Vec<u32> =
        (0..cells).map(|v| (v.wrapping_mul(2_654_435_761).wrapping_add(salt)) % cells).collect();
    Grid::from_rows(side, data).unwrap()
}

fn sides_for(a: AlgorithmId) -> Vec<usize> {
    [4usize, 6, 8].into_iter().filter(|&s| a.supports_side(s)).collect()
}

#[test]
fn optimized_runner_matches_raw_bit_for_bit() {
    for a in AlgorithmId::ALL {
        for side in sides_for(a) {
            for salt in 0..4u32 {
                let mut raw_grid = scrambled(side, salt);
                let mut opt_grid = raw_grid.clone();
                let raw = SortJob::new(a, side).run(&mut raw_grid).unwrap();
                let opt = SortJob::new(a, side)
                    .optimized(true)
                    .budget(Budget::Static)
                    .run(&mut opt_grid)
                    .unwrap();
                assert_eq!(raw_grid, opt_grid, "{a} side {side} salt {salt}: final grids");
                assert_eq!(raw.steps, opt.steps, "{a} side {side} salt {salt}");
                assert_eq!(raw.swaps, opt.swaps, "{a} side {side} salt {salt}");
                assert!(opt.sorted(), "{a} side {side} salt {salt}");
                assert!(
                    opt.comparisons <= raw.comparisons,
                    "{a} side {side} salt {salt}: the optimized plan must never compare more"
                );
            }
        }
    }
}

#[test]
fn optimized_kernel_path_matches_raw_bit_for_bit() {
    for a in AlgorithmId::ALL {
        for side in sides_for(a) {
            let raw = schedule_for(a, side).unwrap();
            let plan = optimized_for(a, side).unwrap();
            let cap = static_step_bound(a, side);
            let order = a.order();
            for salt in 10..14u32 {
                let mut raw_grid = scrambled(side, salt);
                let mut opt_grid = raw_grid.clone();
                let r = raw.run_until_sorted_kernel(&mut raw_grid, order, cap);
                let o = plan.schedule.run_until_sorted_kernel(&mut opt_grid, order, cap);
                assert_eq!(raw_grid, opt_grid, "{a} side {side} salt {salt}: final grids");
                assert_eq!((r.steps, r.swaps, r.sorted), (o.steps, o.swaps, o.sorted));
            }
        }
    }
}

#[test]
fn batch_engine_matches_optimized_per_grid_runs() {
    let side = 8;
    for a in AlgorithmId::ALL {
        let mut grids: Vec<Grid<u32>> = (20..28u32).map(|salt| scrambled(side, salt)).collect();
        let mut solo = grids.clone();
        let runs = SortJob::new(a, side).budget(Budget::Static).run_batch(&mut grids).unwrap();
        for (i, g) in solo.iter_mut().enumerate() {
            let run = SortJob::new(a, side).optimized(true).budget(Budget::Static).run(g).unwrap();
            assert_eq!(&grids[i], g, "{a}: grid {i} final state");
            assert_eq!(runs[i].steps, run.steps, "{a}: grid {i}");
            assert_eq!(runs[i].swaps, run.swaps, "{a}: grid {i}");
        }
    }
}
