//! Differential equivalence of the engine's execution paths across all
//! five paper algorithms: the reference scalar loop, the hybrid
//! scan/tracker path, the compiled branchless kernel path, and the traced
//! path must produce bit-identical `RunOutcome`s and final grids on every
//! input class the experiments use — random permutations, 0-1 matrices,
//! adversarial (reversed / anti-sorted) layouts, and already-sorted grids.

use meshsort_core::{runner, AlgorithmId, SortJob};
use meshsort_mesh::grid::sorted_permutation_grid;
use meshsort_mesh::trace::SwapCounter;
use meshsort_mesh::{Grid, KernelValue};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Runs every path of `alg` on `grid` and asserts pairwise identity.
/// Returns the common outcome's step count for extra assertions.
fn assert_all_paths_agree<T>(alg: AlgorithmId, grid: &Grid<T>) -> u64
where
    T: KernelValue + std::fmt::Debug + std::hash::Hash,
{
    let side = grid.side();
    let schedule = alg.schedule(side).expect("side supported by algorithm");
    let order = alg.order();
    let cap = runner::default_step_cap(side);

    let mut reference = grid.clone();
    let mut hybrid = grid.clone();
    let mut kernel = grid.clone();
    let mut traced = grid.clone();
    let out_ref = schedule.run_until_sorted_reference(&mut reference, order, cap);
    let out_hyb = schedule.run_until_sorted(&mut hybrid, order, cap);
    let out_ker = schedule.run_until_sorted_kernel(&mut kernel, order, cap);
    let mut counter = SwapCounter::default();
    let out_tra = schedule.run_until_sorted_traced(&mut traced, order, cap, &mut counter);

    assert!(out_ref.sorted, "{alg}: reference failed to sort within cap");
    assert_eq!(out_ref, out_hyb, "{alg} side {side}: hybrid outcome diverged");
    assert_eq!(out_ref, out_ker, "{alg} side {side}: kernel outcome diverged");
    assert_eq!(out_ref, out_tra, "{alg} side {side}: traced outcome diverged");
    assert_eq!(&reference, &hybrid, "{alg} side {side}: hybrid grid diverged");
    assert_eq!(&reference, &kernel, "{alg} side {side}: kernel grid diverged");
    assert_eq!(&reference, &traced, "{alg} side {side}: traced grid diverged");
    assert_eq!(counter.total(), out_ref.swaps, "{alg} side {side}: trace missed swaps");

    // The public driver must match the engine paths too.
    let mut driver = grid.clone();
    let run = SortJob::new(alg, side).run(&mut driver).expect("side supported");
    assert_eq!(run.steps, out_ref.steps, "{alg} side {side}: driver steps diverged");
    assert_eq!(run.swaps, out_ref.swaps);
    assert_eq!(run.comparisons, out_ref.comparisons);
    assert_eq!(&reference, &driver);

    out_ref.steps
}

/// Sides covering both parities; row-major algorithms skip odd sides
/// (they are undefined there), snake algorithms run on all of them.
/// Side 10 (100 cells) exceeds the engine's small-grid threshold, so the
/// hybrid and kernel machinery genuinely engages.
fn supported_sides(alg: AlgorithmId) -> Vec<usize> {
    [4usize, 5, 7, 8, 10, 11].into_iter().filter(|&s| alg.supports_side(s)).collect()
}

#[test]
fn random_permutations_all_algorithms_all_parities() {
    let mut rng = StdRng::seed_from_u64(0x5AFA_1993);
    for alg in AlgorithmId::ALL {
        for side in supported_sides(alg) {
            for _ in 0..3 {
                let n = side * side;
                let mut data: Vec<u32> = (0..n as u32).collect();
                data.shuffle(&mut rng);
                let grid = Grid::from_rows(side, data).unwrap();
                assert_all_paths_agree(alg, &grid);
            }
        }
    }
}

#[test]
fn zero_one_matrices_all_algorithms() {
    let mut rng = StdRng::seed_from_u64(7);
    for alg in AlgorithmId::ALL {
        for side in supported_sides(alg) {
            let n = side * side;
            // Random 0-1 fill plus the adversarial all-ones-first block.
            let mut random: Vec<u8> = (0..n).map(|i| u8::from(i % 3 == 0)).collect();
            random.shuffle(&mut rng);
            let block: Vec<u8> = (0..n).map(|i| u8::from(i < n / 2)).collect();
            for data in [random.clone(), block] {
                let grid = Grid::from_rows(side, data).unwrap();
                assert_all_paths_agree(alg, &grid);
            }
        }
    }
}

#[test]
fn adversarial_reversed_inputs() {
    for alg in AlgorithmId::ALL {
        for side in supported_sides(alg) {
            let n = side * side;
            let grid = Grid::from_rows(side, (0..n as u32).rev().collect()).unwrap();
            let steps = assert_all_paths_agree(alg, &grid);
            // Θ(N) regime: reversed inputs are expensive.
            assert!(steps >= side as u64, "{alg} side {side}: {steps}");
        }
    }
}

#[test]
fn sorted_inputs_cost_zero_on_every_path() {
    for alg in AlgorithmId::ALL {
        for side in supported_sides(alg) {
            let grid = sorted_permutation_grid(side, alg.order());
            let steps = assert_all_paths_agree(alg, &grid);
            assert_eq!(steps, 0, "{alg} side {side}");
        }
    }
}
