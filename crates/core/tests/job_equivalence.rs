//! Equivalence contract for the SortJob migration (DESIGN.md §14): every
//! deprecated entry point and its [`SortJob`] replacement are
//! bit-identical — same final grids, same step/swap/comparison
//! trajectories, same fault statistics and convergence labels — so
//! callers migrate mechanically, with no behavioural review. If a shim
//! ever drifts from the builder path, this suite is the tripwire.

#![allow(deprecated)] // the legacy shims are the subject under test

use meshsort_core::runner::{
    self, fault_plan_for, resilient_policy_for, sort_resilient, sort_to_completion,
    sort_to_completion_optimized, sort_with_cap,
};
use meshsort_core::{
    sort_batch, sort_batch_with, AlgorithmId, Budget, Engine, SortJob, DEFAULT_SHARD_WIDTH,
};
use meshsort_mesh::fault::FaultSpec;
use meshsort_mesh::Grid;

fn scrambled(side: usize, salt: u32) -> Grid<u32> {
    let cells = (side * side) as u32;
    let data: Vec<u32> =
        (0..cells).map(|v| (v.wrapping_mul(2_654_435_761).wrapping_add(salt)) % cells).collect();
    Grid::from_rows(side, data).unwrap()
}

fn sides_for(a: AlgorithmId) -> Vec<usize> {
    [4usize, 5, 8].into_iter().filter(|&s| a.supports_side(s)).collect()
}

#[test]
fn run_matches_sort_to_completion() {
    for a in AlgorithmId::ALL {
        for side in sides_for(a) {
            for salt in 0..3u32 {
                let mut old_grid = scrambled(side, salt);
                let mut new_grid = old_grid.clone();
                let old = sort_to_completion(a, &mut old_grid).unwrap();
                let new = SortJob::new(a, side).run(&mut new_grid).unwrap();
                assert_eq!(old_grid, new_grid, "{a} side {side} salt {salt}: final grids");
                assert_eq!(old.outcome.steps, new.steps, "{a} side {side} salt {salt}");
                assert_eq!(old.outcome.swaps, new.swaps, "{a} side {side} salt {salt}");
                assert_eq!(old.outcome.comparisons, new.comparisons, "{a} side {side}");
                assert_eq!(old.outcome.sorted, new.sorted(), "{a} side {side} salt {salt}");
            }
        }
    }
}

#[test]
fn budget_steps_matches_sort_with_cap() {
    let side = 8;
    for a in AlgorithmId::ALL {
        // A starving cap (budget exhausted), a tight one, and the
        // default: the shim and the builder must agree on all three.
        for cap in [3u64, 40, runner::default_step_cap(side)] {
            let mut old_grid = scrambled(side, 7);
            let mut new_grid = old_grid.clone();
            let old = sort_with_cap(a, &mut old_grid, cap).unwrap();
            let new = SortJob::new(a, side).budget(Budget::Steps(cap)).run(&mut new_grid).unwrap();
            assert_eq!(old_grid, new_grid, "{a} cap {cap}: final grids");
            assert_eq!(old.outcome.steps, new.steps, "{a} cap {cap}");
            assert_eq!(old.outcome.swaps, new.swaps, "{a} cap {cap}");
            assert_eq!(old.outcome.sorted, new.sorted(), "{a} cap {cap}");
        }
    }
}

#[test]
fn optimized_static_matches_sort_to_completion_optimized() {
    for a in AlgorithmId::ALL {
        for side in sides_for(a) {
            let mut old_grid = scrambled(side, 11);
            let mut new_grid = old_grid.clone();
            let old = sort_to_completion_optimized(a, &mut old_grid).unwrap();
            let new = SortJob::new(a, side)
                .optimized(true)
                .budget(Budget::Static)
                .run(&mut new_grid)
                .unwrap();
            assert_eq!(old_grid, new_grid, "{a} side {side}: final grids");
            assert_eq!(old.outcome.steps, new.steps, "{a} side {side}");
            assert_eq!(old.outcome.swaps, new.swaps, "{a} side {side}");
            assert_eq!(old.outcome.comparisons, new.comparisons, "{a} side {side}");
            assert!(new.sorted(), "{a} side {side}");
        }
    }
}

#[test]
fn run_batch_matches_sort_batch() {
    let side = 8;
    for a in AlgorithmId::ALL {
        let mut old_grids: Vec<Grid<u32>> = (0..6u32).map(|s| scrambled(side, s)).collect();
        let mut new_grids = old_grids.clone();
        let old = sort_batch(a, &mut old_grids).unwrap();
        let new = SortJob::new(a, side).budget(Budget::Static).run_batch(&mut new_grids).unwrap();
        assert_eq!(old_grids, new_grids, "{a}: final grids");
        assert_eq!(old.len(), new.len(), "{a}");
        for (i, (o, n)) in old.iter().zip(&new).enumerate() {
            assert_eq!(o.outcome.steps, n.steps, "{a}: grid {i}");
            assert_eq!(o.outcome.swaps, n.swaps, "{a}: grid {i}");
            assert_eq!(o.outcome.sorted, n.sorted(), "{a}: grid {i}");
        }
    }
}

#[test]
fn run_batch_matches_sort_batch_with() {
    let side = 8;
    let cap = runner::default_step_cap(side);
    for a in AlgorithmId::ALL {
        let mut old_grids: Vec<Grid<u32>> = (30..38u32).map(|s| scrambled(side, s)).collect();
        let mut new_grids = old_grids.clone();
        let old = sort_batch_with(a, &mut old_grids, cap, 2, DEFAULT_SHARD_WIDTH).unwrap();
        let new = SortJob::new(a, side)
            .budget(Budget::Steps(cap))
            .threads(2)
            .shard_width(DEFAULT_SHARD_WIDTH)
            .run_batch(&mut new_grids)
            .unwrap();
        assert_eq!(old_grids, new_grids, "{a}: final grids");
        for (i, (o, n)) in old.iter().zip(&new).enumerate() {
            assert_eq!(o.outcome.steps, n.steps, "{a}: grid {i}");
            assert_eq!(o.outcome.swaps, n.swaps, "{a}: grid {i}");
        }
    }
}

#[test]
fn fault_spec_matches_fault_plan_for_plus_sort_resilient() {
    let side = 8;
    // Transient misfires plus one permanently stuck wire: exercises the
    // drop path, the watchdog and (usually) a recovery scrub.
    let spec =
        FaultSpec { seed: 42, drop_rate: 0.02, stall_rate: 0.01, random_stuck: 1, stuck: vec![] };
    for a in AlgorithmId::ALL {
        let policy = resilient_policy_for(a, side);
        let mut old_grid = scrambled(side, 5);
        let mut new_grid = old_grid.clone();
        let plan = fault_plan_for(a, side, &spec).unwrap();
        let old = sort_resilient(a, &mut old_grid, &plan, &policy).unwrap();
        let new = SortJob::new(a, side)
            .fault_spec(spec.clone())
            .resilient_policy(policy)
            .run(&mut new_grid)
            .unwrap();
        let faults = new.faults.expect("resilient runs report fault stats");
        assert_eq!(old_grid, new_grid, "{a}: final grids");
        assert_eq!(old.report.outcome, new.convergence, "{a}: convergence label");
        assert_eq!(old.report.steps, new.steps, "{a}");
        assert_eq!(old.report.swaps, new.swaps, "{a}");
        assert_eq!(old.report.comparisons, new.comparisons, "{a}");
        assert_eq!(old.report.dropped, faults.dropped, "{a}");
        assert_eq!(old.report.stalled_steps, faults.stalled_steps, "{a}");
        assert_eq!(old.report.recovery_attempts, faults.recovery_attempts, "{a}");
        assert_eq!(old.report.recovery_steps, faults.recovery_steps, "{a}");
    }
}

#[test]
fn every_engine_agrees_with_the_legacy_default() {
    // The engine knob is new surface with no legacy twin; pin it to the
    // shim's behaviour so Engine::Auto stays a pure dispatch choice.
    let side = 8;
    for a in AlgorithmId::ALL {
        let mut reference = scrambled(side, 23);
        let baseline = sort_to_completion(a, &mut reference).unwrap();
        for engine in [Engine::Auto, Engine::Scalar, Engine::Kernel, Engine::Batch] {
            let mut grid = scrambled(side, 23);
            let run = SortJob::new(a, side).engine(engine).run(&mut grid).unwrap();
            assert_eq!(grid, reference, "{a} {engine:?}: final grid");
            assert_eq!(run.steps, baseline.outcome.steps, "{a} {engine:?}");
            assert_eq!(run.swaps, baseline.outcome.swaps, "{a} {engine:?}");
            assert_eq!(run.comparisons, baseline.outcome.comparisons, "{a} {engine:?}");
        }
    }
}
