//! Differential tests for the scalable dataflow engines (DESIGN.md §16):
//! every fast path must be **bit-identical** to the dense reference it
//! replaces, on every canonical schedule at every side where both are
//! affordable. The worklist engine, the sparse dead-wire scan, and the
//! rank-based sorted-fixpoint check are all pure optimizations — any
//! divergence, down to milestone steps and wire order, is a bug.

use meshsort_core::AlgorithmId;
use meshsort_mesh::absint::{self, lift};
use meshsort_mesh::{opt, Comparator, CycleSchedule, StepPlan};

/// Every `(algorithm, side)` pair with `side` drawn from `sides` that the
/// algorithm supports.
fn subjects(sides: impl IntoIterator<Item = usize>) -> Vec<(AlgorithmId, usize)> {
    let mut out = Vec::new();
    for side in sides {
        for a in AlgorithmId::ALL {
            if a.supports_side(side) {
                out.push((a, side));
            }
        }
    }
    out
}

#[test]
fn worklist_summary_is_bit_identical_to_dense() {
    // The whole DataflowSummary — bound, fixpoint cycle count, fact
    // count, dead wires, every sortedness milestone, and the missing
    // chain links — must agree field for field.
    for (a, side) in subjects(4..=16) {
        let schedule = a.schedule(side).unwrap();
        let dense = absint::analyze_schedule(&schedule, a.order(), side);
        let worklist = absint::analyze_schedule_worklist(&schedule, a.order(), side);
        assert_eq!(dense, worklist, "{a} side {side}");
    }
}

#[test]
fn sparse_dead_wire_scan_matches_dense() {
    // Below OPT_DENSE_MAX_CELLS, `opt::first_cycle_dead_wires` runs the
    // dense bit-matrix scan; the sparse walk must reproduce its output
    // exactly, including wire order.
    for (a, side) in subjects([4, 5, 8, 16, 32]) {
        let cells = side * side;
        assert!(cells <= opt::OPT_DENSE_MAX_CELLS, "side {side} must exercise the dense path");
        let schedule = a.schedule(side).unwrap();
        let dense = opt::first_cycle_dead_wires(&schedule, cells);
        let sparse = absint::first_cycle_dead_wires_sparse(&schedule, cells);
        assert_eq!(dense, sparse, "{a} side {side}");
    }
}

#[test]
fn ranked_sorted_fixpoint_matches_dense() {
    // Pristine schedules: both verifiers accept. With any one comparator
    // flipped, both must reject with the identical first offender.
    for (a, side) in subjects([4, 5, 6, 8]) {
        let schedule = a.schedule(side).unwrap();
        let order = a.order();
        assert_eq!(
            absint::verify_sorted_fixed_point(&schedule, order, side),
            absint::verify_sorted_fixed_point_ranked(&schedule, order, side),
            "{a} side {side} pristine"
        );
        for step in 0..schedule.cycle_len() {
            let mut plans = schedule.plans().to_vec();
            let mut comparators = plans[step].comparators().to_vec();
            let c = comparators[0];
            comparators[0] = Comparator::new(c.keep_max, c.keep_min);
            plans[step] = StepPlan::new(comparators).unwrap();
            let mutated = CycleSchedule::new(plans, side * side).unwrap();
            let dense = absint::verify_sorted_fixed_point(&mutated, order, side);
            let ranked = absint::verify_sorted_fixed_point_ranked(&mutated, order, side);
            assert!(dense.is_err(), "{a} side {side} step {step}: flip must be caught");
            assert_eq!(dense, ranked, "{a} side {side} step {step}");
        }
    }
}

#[test]
fn lifted_bound_equals_exact_on_window_sides() {
    // On sides the exact fixpoint still covers, a verified certificate
    // must agree with it exactly — same bound, same dead-wire set. This
    // is the ground-truth anchor for the extrapolated sides above 32.
    for (a, side) in subjects(8..=16) {
        let order = a.order();
        let family = |s: usize| a.schedule(s);
        let cert = lift::lift_schedule(&family, order, side)
            .unwrap_or_else(|e| panic!("{a} side {side}: {e}"));
        lift::verify_certificate(&family, order, &cert)
            .unwrap_or_else(|e| panic!("{a} side {side}: {e}"));
        let schedule = a.schedule(side).unwrap();
        let summary = absint::analyze_schedule_worklist(&schedule, order, side);
        let exact = summary.converged_step.expect("canonical schedules converge");
        assert_eq!(cert.bound, exact, "{a} side {side}: lifted bound must equal the fixpoint");
        assert_eq!(cert.dead_wires, summary.dead_first_cycle, "{a} side {side}");
    }
}
