//! Batched sorting: many independent grids through one shared plan.
//!
//! The canonical implementation lives in [`crate::SortJob::run_batch`]:
//! it resolves the shared compiled schedule from the [`crate::cache`],
//! shards the batch into fixed-width sub-batches, and fans the shards out
//! across worker threads via `meshsort_stats::parallel::map_chunks` — the
//! same `MESHSORT_THREADS` plumbing the Monte-Carlo drivers use. Each
//! shard executes the SoA lockstep engine; per-grid outcomes are faithful
//! to a standalone [`crate::SortJob::run`] regardless of batch
//! composition, shard width, or thread count (`mesh/tests/batch_props.rs`
//! pins this differentially).
//!
//! [`sort_batch`] / [`sort_batch_with`] are **deprecated shims** over the
//! job API, kept for existing callers; this module's lasting exports are
//! the tuning constants [`DEFAULT_SHARD_WIDTH`] and [`LOCKSTEP_MAX_CELLS`].

use crate::algorithm::AlgorithmId;
use crate::job::{Budget, SortJob};
use crate::runner::{static_step_bound, SortRun};
use meshsort_mesh::{Grid, KernelValue, MeshError};
use meshsort_stats::parallel;
use std::hash::Hash;

/// Default shard width for [`sort_batch`]: wide enough that the lockstep
/// inner loops stay vector-friendly and per-step overhead amortizes
/// (measured side-8 throughput is within noise of the serial optimum at
/// 512 lanes and gains < 10% beyond it; see `BENCH_meshsort.json`),
/// narrow enough that a typical experiment batch still splits into
/// several shards per worker for load balance, and small enough that a
/// side-16 shard's structure-of-arrays buffer (512 KiB) stays near L2.
pub const DEFAULT_SHARD_WIDTH: usize = 512;

/// Largest grid (in cells) the lockstep engine is profitable for. Bigger
/// grids mean narrower effective batches per unit of work and a
/// structure-of-arrays buffer far outside cache, where the measured
/// lockstep throughput falls *behind* the per-grid kernel loop; above
/// this, [`sort_batch_with`] runs each grid through the per-grid kernel
/// engine instead (still sharded across threads, still bit-faithful).
pub const LOCKSTEP_MAX_CELLS: usize = 1024;

/// Sorts every grid of `grids` in place with `algorithm`, batched — the
/// many-grid counterpart of [`crate::runner::sort_to_completion`], with the
/// retirement horizon set to the statically proven convergence bound
/// ([`static_step_bound`]; the Θ(N) cap above the fixpoint gate),
/// [`parallel::default_threads`] workers (the
/// `MESHSORT_THREADS` override applies) and [`DEFAULT_SHARD_WIDTH`] shards.
///
/// Returns one [`SortRun`] per grid, index-aligned with `grids` and
/// bit-identical (outcome and final grid) to what a standalone
/// `sort_to_completion` on that grid would produce.
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] when the algorithm is not defined for the
/// batch's side; [`MeshError::MixedBatchSides`] when the grids do not all
/// share one side.
#[deprecated(note = "use SortJob::new(algorithm, side).budget(Budget::Static).run_batch(grids)")]
pub fn sort_batch<T: KernelValue + Hash + Send>(
    algorithm: AlgorithmId,
    grids: &mut [Grid<T>],
) -> Result<Vec<SortRun>, MeshError> {
    let cap = static_step_bound(algorithm, grids.first().map_or(1, Grid::side));
    #[allow(deprecated)]
    sort_batch_with(algorithm, grids, cap, parallel::default_threads(), DEFAULT_SHARD_WIDTH)
}

/// [`sort_batch`] with explicit step cap, worker count, and shard width.
///
/// Determinism contract: outcomes and final grids are identical for every
/// `threads` and `shard_width` — sharding only changes scheduling, never
/// per-grid results (each grid's run is independent; the lockstep engine
/// is faithful per lane). Grids above [`LOCKSTEP_MAX_CELLS`] cells are
/// executed per grid through the kernel engine (sharded across the same
/// workers) instead of in lockstep; because both engines are bit-faithful
/// the switch is invisible in the results, only in throughput.
///
/// # Errors
///
/// As for [`sort_batch`].
///
/// # Panics
///
/// Panics if `shard_width` is zero.
#[deprecated(
    note = "use SortJob::new(algorithm, side).budget(Budget::Steps(cap)).threads(..).shard_width(..).run_batch(grids)"
)]
pub fn sort_batch_with<T: KernelValue + Hash + Send>(
    algorithm: AlgorithmId,
    grids: &mut [Grid<T>],
    cap: u64,
    threads: usize,
    shard_width: usize,
) -> Result<Vec<SortRun>, MeshError> {
    assert!(shard_width > 0, "shard_width must be non-zero");
    let Some(first) = grids.first() else {
        return Ok(Vec::new());
    };
    let side = first.side();
    let runs = SortJob::new(algorithm, side)
        .budget(Budget::Steps(cap))
        .threads(threads)
        .shard_width(shard_width)
        .run_batch(grids)
        .map_err(crate::error::demote_to_mesh)?;
    Ok(runs.iter().map(|r| SortRun { algorithm, side, outcome: r.into() }).collect())
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay pinned by their original tests
mod tests {
    use super::*;
    use crate::runner::{default_step_cap, sort_to_completion, sort_with_cap};

    fn scrambled(side: usize, salt: u32) -> Grid<u32> {
        let cells = (side * side) as u32;
        let data: Vec<u32> =
            (0..cells).map(|v| (v.wrapping_mul(2654435761).wrapping_add(salt)) % cells).collect();
        Grid::from_rows(side, data).unwrap()
    }

    #[test]
    fn batch_matches_per_grid_runs_all_five() {
        let side = 8;
        for a in AlgorithmId::ALL {
            let mut grids: Vec<Grid<u32>> = (0..9).map(|i| scrambled(side, i)).collect();
            grids.push(Grid::from_rows(side, (0..64u32).rev().collect()).unwrap());
            let mut solo = grids.clone();
            let runs = sort_batch(a, &mut grids).unwrap();
            assert_eq!(runs.len(), grids.len());
            for (i, g) in solo.iter_mut().enumerate() {
                let expect = sort_to_completion(a, g).unwrap();
                assert_eq!(runs[i], expect, "{a}: grid {i}");
                assert_eq!(&grids[i], g, "{a}: grid {i}");
            }
        }
    }

    #[test]
    fn sharding_and_threads_do_not_change_results() {
        let side = 8;
        let a = AlgorithmId::SnakeAlternating;
        let baseline: Vec<Grid<u32>> = (0..10).map(|i| scrambled(side, i)).collect();
        let cap = default_step_cap(side);
        let mut expect = baseline.clone();
        let expect_runs = sort_batch_with(a, &mut expect, cap, 1, 3).unwrap();
        // Ragged shards (10 % 3 != 0, 10 % 4 != 0) and varying threads.
        for (threads, width) in [(1, 4), (2, 3), (4, 4), (3, 100)] {
            let mut grids = baseline.clone();
            let runs = sort_batch_with(a, &mut grids, cap, threads, width).unwrap();
            assert_eq!(runs, expect_runs, "threads={threads} width={width}");
            assert_eq!(grids, expect, "threads={threads} width={width}");
        }
    }

    #[test]
    fn batch_cap_matches_per_grid_cap() {
        let side = 8;
        let a = AlgorithmId::SnakePhaseAligned;
        let mut grids: Vec<Grid<u32>> = (0..4).map(|i| scrambled(side, i)).collect();
        let mut solo = grids.clone();
        let runs = sort_batch_with(a, &mut grids, 3, 1, 2).unwrap();
        for (i, g) in solo.iter_mut().enumerate() {
            let expect = sort_with_cap(a, g, 3).unwrap();
            assert_eq!(runs[i], expect, "grid {i}");
            assert_eq!(&grids[i], g, "grid {i}");
        }
    }

    #[test]
    fn large_grids_take_kernel_fallback_and_still_match() {
        // 34 * 34 = 1156 cells > LOCKSTEP_MAX_CELLS, so this batch runs
        // through the per-grid kernel branch; results must be identical
        // to standalone runs all the same.
        let side = 34;
        assert!(side * side > LOCKSTEP_MAX_CELLS);
        let a = AlgorithmId::SnakeAlternating;
        let mut grids: Vec<Grid<u32>> = (0..3).map(|i| scrambled(side, i)).collect();
        let mut solo = grids.clone();
        let runs = sort_batch(a, &mut grids).unwrap();
        for (i, g) in solo.iter_mut().enumerate() {
            let expect = sort_to_completion(a, g).unwrap();
            assert_eq!(runs[i], expect, "grid {i}");
            assert_eq!(&grids[i], g, "grid {i}");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut grids: Vec<Grid<u32>> = Vec::new();
        assert!(sort_batch(AlgorithmId::SnakeAlternating, &mut grids).unwrap().is_empty());
    }

    #[test]
    fn batch_errors_propagate() {
        let mut odd = vec![scrambled(3, 0)];
        assert!(matches!(
            sort_batch(AlgorithmId::RowMajorRowFirst, &mut odd),
            Err(MeshError::UnsupportedSide { side: 3, .. })
        ));
        let mut mixed = vec![scrambled(4, 0), scrambled(8, 0)];
        assert_eq!(
            sort_batch(AlgorithmId::SnakeAlternating, &mut mixed).unwrap_err(),
            MeshError::MixedBatchSides { expected: 4, found: 8 }
        );
    }
}
