//! `SortJob` — the one entry point for every sorting request.
//!
//! Historically the crate grew six divergent drivers
//! (`sort_to_completion`, `sort_with_cap`, `sort_to_completion_optimized`,
//! `sort_resilient`, `sort_batch`, `sort_batch_with`), each hard-wiring
//! one point of the engine × budget × plan × fault space. [`SortJob`] is
//! the redesign: a builder that names each axis explicitly and resolves
//! to exactly the same engine calls, so the library, the CLI, and the
//! `meshsortd` wire protocol all speak one request shape. The old
//! functions survive as deprecated shims delegating here
//! (`tests/job_equivalence.rs` proves bit-identical results).
//!
//! ```
//! use meshsort_core::{AlgorithmId, Budget, SortJob};
//! use meshsort_mesh::Grid;
//!
//! let mut grid = Grid::from_rows(4, (0..16u32).rev().collect()).unwrap();
//! let run = SortJob::new(AlgorithmId::SnakeAlternating, 4)
//!     .budget(Budget::Static)
//!     .optimized(true)
//!     .run(&mut grid)
//!     .unwrap();
//! assert!(run.sorted());
//! assert!(run.steps <= run.budget);
//! ```
//!
//! Every job resolves its compiled schedule through [`crate::cache`], so
//! no request ever recompiles a plan — the property the `meshsortd`
//! batcher leans on.

use crate::algorithm::AlgorithmId;
use crate::batch::{DEFAULT_SHARD_WIDTH, LOCKSTEP_MAX_CELLS};
use crate::cache;
use crate::error::Error;
use crate::runner::{default_step_cap, resilient_policy_for, static_step_bound, RunStats};
use meshsort_mesh::fault::derive_seed;
use meshsort_mesh::{
    batch as mesh_batch, CycleSchedule, FaultPlan, FaultSpec, Grid, KernelValue, OptimizedPlan,
    ResilientPolicy, ResilientReport,
};
use meshsort_stats::parallel;
use serde::{Deserialize, Serialize};
use std::hash::Hash;
use std::sync::Arc;

/// Re-export of the convergence taxonomy every run is classified into
/// ([`meshsort_mesh::fault::RunOutcome`]): `Converged`, `Degraded`,
/// `BudgetExhausted`, or `IntegrityViolation`.
pub use meshsort_mesh::fault::RunOutcome as Convergence;

/// Which execution engine a [`SortJob`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Engine {
    /// Pick the best engine for the shape: the branchless kernel for
    /// single grids, the SoA lockstep engine (with kernel fallback above
    /// [`LOCKSTEP_MAX_CELLS`]) for batches.
    #[default]
    Auto,
    /// The reference scalar engine — the executable form of the paper's
    /// definitions. Slow; kept for differential testing.
    Scalar,
    /// The branchless compiled-kernel engine, per grid.
    Kernel,
    /// The SoA lockstep batch engine (grids above [`LOCKSTEP_MAX_CELLS`]
    /// cells fall back to the kernel engine, bit-faithfully).
    Batch,
}

/// How many steps a [`SortJob`] may spend before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Budget {
    /// The generous Θ(N) cap ([`default_step_cap`]).
    #[default]
    Default,
    /// The tightest sound cap: the statically proven convergence bound
    /// ([`static_step_bound`]), intersected with the optimized plan's
    /// certified bound when [`SortJob::optimized`] is set.
    Static,
    /// An explicit step cap.
    Steps(u64),
}

/// Fault injection requested for a job: either a pre-compiled plan or a
/// spec compiled against the job's schedule at run time (seed derived per
/// `(algorithm, side)` exactly like [`crate::runner::fault_plan_for`]).
#[derive(Debug, Clone, PartialEq)]
enum FaultSource {
    Plan(FaultPlan),
    Spec(FaultSpec),
}

/// Builder for one sorting request; see the module docs.
///
/// The builder is cheap (no plan is resolved until [`SortJob::run`] /
/// [`SortJob::run_batch`]) and reusable: running does not consume it, so
/// the server batcher can apply one job to many grids.
#[derive(Debug, Clone, PartialEq)]
pub struct SortJob {
    algorithm: AlgorithmId,
    side: usize,
    engine: Engine,
    budget: Budget,
    optimized: bool,
    faults: Option<FaultSource>,
    policy: Option<ResilientPolicy>,
    threads: Option<usize>,
    shard_width: Option<usize>,
}

/// The unified result of a [`SortJob`]: engine totals, the classified
/// convergence outcome, and the budget the run was granted. The sorted
/// grid itself is mutated in place by [`SortJob::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Which algorithm ran.
    pub algorithm: AlgorithmId,
    /// Mesh side.
    pub side: usize,
    /// Steps executed before the grid first read sorted (or the budget
    /// ran out).
    pub steps: u64,
    /// Total exchanges performed (recovery scrubbing included for
    /// resilient runs).
    pub swaps: u64,
    /// Total comparator evaluations.
    pub comparisons: u64,
    /// Classified outcome: converged, degraded, budget-exhausted, or
    /// integrity violation.
    pub convergence: Convergence,
    /// The step budget the run was granted (the resolved [`Budget`], or
    /// the resilient policy's `step_budget`).
    pub budget: u64,
    /// Fault-run accounting; `None` for fault-free jobs.
    pub faults: Option<FaultStats>,
}

impl RunOutcome {
    /// `true` when the run converged to the target order.
    pub fn sorted(&self) -> bool {
        self.convergence.converged()
    }
}

/// Fault-injection accounting of a resilient run, flattened from
/// [`ResilientReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Comparators suppressed by stuck wires or transient drops.
    pub dropped: u64,
    /// Whole steps lost to stalls.
    pub stalled_steps: u64,
    /// Recovery scrub attempts performed.
    pub recovery_attempts: u64,
    /// Steps executed by recovery scrubbing.
    pub recovery_steps: u64,
}

impl SortJob {
    /// A job for `algorithm` on `side × side` grids, with the default
    /// axes: [`Engine::Auto`], [`Budget::Default`], raw (un-optimized)
    /// plan, no fault injection.
    pub fn new(algorithm: AlgorithmId, side: usize) -> Self {
        SortJob {
            algorithm,
            side,
            engine: Engine::default(),
            budget: Budget::default(),
            optimized: false,
            faults: None,
            policy: None,
            threads: None,
            shard_width: None,
        }
    }

    /// Selects the execution engine.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the step budget.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Runs through the certified dead-wire-stripped plan
    /// ([`cache::optimized_for`]) instead of the raw schedule.
    #[must_use]
    pub fn optimized(mut self, optimized: bool) -> Self {
        self.optimized = optimized;
        self
    }

    /// Injects a pre-compiled fault plan; the run goes through the
    /// resilient engine (budget rail, livelock watchdog, recovery
    /// scrubbing).
    #[must_use]
    pub fn fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(FaultSource::Plan(faults));
        self
    }

    /// Injects faults from a spec, compiled against the job's schedule at
    /// run time with the seed derived per `(algorithm, side)` — the same
    /// derivation as [`crate::runner::fault_plan_for`].
    #[must_use]
    pub fn fault_spec(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(FaultSource::Spec(spec));
        self
    }

    /// Overrides the resilient policy (default:
    /// [`resilient_policy_for`]). Setting a policy forces the resilient
    /// engine even without faults.
    #[must_use]
    pub fn resilient_policy(mut self, policy: ResilientPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Worker threads for [`SortJob::run_batch`] (default:
    /// [`parallel::default_threads`], honouring `MESHSORT_THREADS`).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Shard width for [`SortJob::run_batch`] (default:
    /// [`DEFAULT_SHARD_WIDTH`]). Zero is rejected as
    /// [`Error::InvalidJob`].
    #[must_use]
    pub fn shard_width(mut self, shard_width: usize) -> Self {
        self.shard_width = Some(shard_width);
        self
    }

    /// The job's algorithm.
    pub fn algorithm(&self) -> AlgorithmId {
        self.algorithm
    }

    /// The job's mesh side.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Whether the job runs the optimized plan.
    pub fn is_optimized(&self) -> bool {
        self.optimized
    }

    /// The resolved step cap this job grants a fault-free run — what
    /// [`RunOutcome::budget`] will report.
    pub fn resolved_budget(&self) -> Result<u64, Error> {
        let plan = if self.optimized {
            Some(cache::optimized_for(self.algorithm, self.side)?)
        } else {
            None
        };
        Ok(self.resolve_cap(plan.as_deref()))
    }

    fn resolve_cap(&self, plan: Option<&OptimizedPlan>) -> u64 {
        match self.budget {
            Budget::Default => default_step_cap(self.side),
            Budget::Static => {
                let bound = static_step_bound(self.algorithm, self.side);
                plan.map_or(bound, |p| bound.min(p.static_bound))
            }
            Budget::Steps(cap) => cap,
        }
    }

    /// The compiled schedule this job executes: the optimized plan's when
    /// [`SortJob::optimized`] is set, the raw cached schedule otherwise.
    /// Both come from the process-wide [`crate::cache`]; nothing is
    /// recompiled per call.
    fn resolve(&self) -> Result<(ScheduleRef, u64), Error> {
        if self.optimized {
            let plan = cache::optimized_for(self.algorithm, self.side)?;
            let cap = self.resolve_cap(Some(&plan));
            Ok((ScheduleRef::Optimized(plan), cap))
        } else {
            let schedule = cache::schedule_for(self.algorithm, self.side)?;
            let cap = self.resolve_cap(None);
            Ok((ScheduleRef::Raw(schedule), cap))
        }
    }

    fn resolve_faults(&self, schedule: &CycleSchedule) -> Result<Option<FaultPlan>, Error> {
        match &self.faults {
            None => Ok(None),
            Some(FaultSource::Plan(plan)) => Ok(Some(plan.clone())),
            Some(FaultSource::Spec(spec)) => {
                let mut derived = spec.clone();
                derived.seed =
                    derive_seed(spec.seed, &format!("{}/{}", self.algorithm.name(), self.side));
                Ok(Some(FaultPlan::compile(&derived, schedule)?))
            }
        }
    }

    fn check_side<T: Ord + Clone>(&self, grid: &Grid<T>) -> Result<(), Error> {
        if grid.side() == self.side {
            Ok(())
        } else {
            Err(Error::InvalidJob {
                reason: format!(
                    "job is for side {} but the grid has side {}",
                    self.side,
                    grid.side()
                ),
            })
        }
    }

    /// Sorts `grid` in place and reports the unified outcome.
    ///
    /// # Errors
    ///
    /// [`Error::Mesh`] when the algorithm is not defined for the job's
    /// side or the fault spec is invalid; [`Error::InvalidJob`] when the
    /// grid's side differs from the job's.
    pub fn run<T: KernelValue + Hash>(&self, grid: &mut Grid<T>) -> Result<RunOutcome, Error> {
        self.check_side(grid)?;
        let order = self.algorithm.order();
        let (schedule, cap) = self.resolve()?;
        let schedule = schedule.as_schedule();
        let faults = self.resolve_faults(schedule)?;

        if faults.is_some() || self.policy.is_some() {
            let policy =
                self.policy.unwrap_or_else(|| resilient_policy_for(self.algorithm, self.side));
            let faults = faults.unwrap_or_else(FaultPlan::none);
            let report = match self.engine {
                Engine::Scalar => {
                    schedule.run_until_sorted_resilient(grid, order, &faults, &policy)
                }
                Engine::Auto | Engine::Kernel | Engine::Batch => {
                    schedule.run_until_sorted_resilient_kernel(grid, order, &faults, &policy)
                }
            };
            return Ok(outcome_from_report(self.algorithm, self.side, &report, &policy));
        }

        let stats: RunStats = match self.engine {
            Engine::Scalar => schedule.run_until_sorted(grid, order, cap).into(),
            Engine::Auto | Engine::Kernel => {
                schedule.run_until_sorted_kernel(grid, order, cap).into()
            }
            Engine::Batch => {
                let lane = std::slice::from_mut(grid);
                let mut outcomes = mesh_batch::run_batch_until_sorted(schedule, lane, order, cap)?;
                outcomes.pop().expect("one lane in, one outcome out").into()
            }
        };
        Ok(outcome_from_stats(self.algorithm, self.side, stats, grid, cap))
    }

    /// Sorts every grid of `grids` in place, batched — sharded across
    /// worker threads, stepped in SoA lockstep through the one shared
    /// schedule (with the per-grid kernel fallback above
    /// [`LOCKSTEP_MAX_CELLS`] cells). Outcomes are index-aligned with
    /// `grids` and bit-identical to per-grid [`SortJob::run`] calls
    /// regardless of batch composition, shard width, or thread count.
    ///
    /// With [`SortJob::optimized`] set the lockstep engine executes the
    /// dead-wire-stripped plan directly — server batches get the
    /// comparator-reduction win without leaving the batch path.
    ///
    /// # Errors
    ///
    /// As for [`SortJob::run`], plus [`MeshError::MixedBatchSides`] when
    /// the grids do not all share the job's side and
    /// [`Error::InvalidJob`] for a zero shard width.
    ///
    /// [`MeshError::MixedBatchSides`]: meshsort_mesh::MeshError::MixedBatchSides
    pub fn run_batch<T: KernelValue + Hash + Send>(
        &self,
        grids: &mut [Grid<T>],
    ) -> Result<Vec<RunOutcome>, Error> {
        let Some(first) = grids.first() else {
            return Ok(Vec::new());
        };
        self.check_side(first)?;
        if let Some(odd) = grids.iter().find(|g| g.side() != self.side) {
            return Err(Error::Mesh(meshsort_mesh::MeshError::MixedBatchSides {
                expected: self.side,
                found: odd.side(),
            }));
        }
        let shard_width = self.shard_width.unwrap_or(DEFAULT_SHARD_WIDTH);
        if shard_width == 0 {
            return Err(Error::InvalidJob { reason: "shard width must be non-zero".into() });
        }
        let threads = self.threads.unwrap_or_else(parallel::default_threads);
        let order = self.algorithm.order();
        let (schedule, cap) = self.resolve()?;
        let schedule = schedule.as_schedule();
        let faults = self.resolve_faults(schedule)?;

        if faults.is_some() || self.policy.is_some() {
            let policy =
                self.policy.unwrap_or_else(|| resilient_policy_for(self.algorithm, self.side));
            let faults = faults.unwrap_or_else(FaultPlan::none);
            let scalar = self.engine == Engine::Scalar;
            let shards = parallel::map_chunks(grids, shard_width, threads, |_, shard| {
                shard
                    .iter_mut()
                    .map(|g| {
                        if scalar {
                            schedule.run_until_sorted_resilient(g, order, &faults, &policy)
                        } else {
                            schedule.run_until_sorted_resilient_kernel(g, order, &faults, &policy)
                        }
                    })
                    .collect::<Vec<_>>()
            });
            let mut runs = Vec::with_capacity(shards.iter().map(Vec::len).sum());
            for report in shards.iter().flatten() {
                runs.push(outcome_from_report(self.algorithm, self.side, report, &policy));
            }
            return Ok(runs);
        }

        let engine = self.engine;
        let lockstep = self.side * self.side <= LOCKSTEP_MAX_CELLS;
        let shards = parallel::map_chunks(grids, shard_width, threads, |_, shard| match engine {
            Engine::Scalar => Ok(shard
                .iter_mut()
                .map(|g| schedule.run_until_sorted(g, order, cap))
                .collect::<Vec<_>>()),
            Engine::Kernel => Ok(shard
                .iter_mut()
                .map(|g| schedule.run_until_sorted_kernel(g, order, cap))
                .collect::<Vec<_>>()),
            Engine::Auto | Engine::Batch => {
                if lockstep {
                    mesh_batch::run_batch_until_sorted(schedule, shard, order, cap)
                } else {
                    Ok(shard
                        .iter_mut()
                        .map(|g| schedule.run_until_sorted_kernel(g, order, cap))
                        .collect::<Vec<_>>())
                }
            }
        });
        let mut stats = Vec::with_capacity(grids.len());
        for shard in shards {
            stats.extend(shard?.into_iter().map(RunStats::from));
        }
        Ok(stats
            .into_iter()
            .zip(grids.iter())
            .map(|(s, g)| outcome_from_stats(self.algorithm, self.side, s, g, cap))
            .collect())
    }
}

/// The schedule a job resolved to — raw or optimized, both `Arc`s out of
/// the process-wide cache.
enum ScheduleRef {
    Raw(Arc<CycleSchedule>),
    Optimized(Arc<OptimizedPlan>),
}

impl ScheduleRef {
    fn as_schedule(&self) -> &CycleSchedule {
        match self {
            ScheduleRef::Raw(s) => s,
            ScheduleRef::Optimized(p) => &p.schedule,
        }
    }
}

fn outcome_from_stats<T: Ord + Clone>(
    algorithm: AlgorithmId,
    side: usize,
    stats: RunStats,
    grid: &Grid<T>,
    cap: u64,
) -> RunOutcome {
    RunOutcome {
        algorithm,
        side,
        steps: stats.steps,
        swaps: stats.swaps,
        comparisons: stats.comparisons,
        convergence: stats.classify(grid, algorithm.order()),
        budget: cap,
        faults: None,
    }
}

fn outcome_from_report(
    algorithm: AlgorithmId,
    side: usize,
    report: &ResilientReport,
    policy: &ResilientPolicy,
) -> RunOutcome {
    RunOutcome {
        algorithm,
        side,
        steps: report.steps,
        swaps: report.swaps,
        comparisons: report.comparisons,
        convergence: report.outcome,
        budget: policy.step_budget,
        faults: Some(FaultStats {
            dropped: report.dropped,
            stalled_steps: report.stalled_steps,
            recovery_attempts: report.recovery_attempts,
            recovery_steps: report.recovery_steps,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshsort_mesh::MeshError;

    fn reversed(side: usize) -> Grid<u32> {
        Grid::from_rows(side, (0..(side * side) as u32).rev().collect()).unwrap()
    }

    #[test]
    fn default_job_sorts_all_five() {
        for a in AlgorithmId::ALL {
            let mut g = reversed(8);
            let run = SortJob::new(a, 8).run(&mut g).unwrap();
            assert!(run.sorted(), "{a}");
            assert!(g.is_sorted(a.order()), "{a}");
            assert_eq!(run.convergence, Convergence::Converged { steps: run.steps }, "{a}");
            assert_eq!(run.budget, default_step_cap(8), "{a}");
            assert!(run.faults.is_none(), "{a}");
        }
    }

    #[test]
    fn engines_agree_bit_for_bit() {
        for a in AlgorithmId::ALL {
            let mut grids = [reversed(8), reversed(8), reversed(8), reversed(8)];
            let runs: Vec<RunOutcome> =
                [Engine::Auto, Engine::Scalar, Engine::Kernel, Engine::Batch]
                    .iter()
                    .zip(grids.iter_mut())
                    .map(|(e, g)| SortJob::new(a, 8).engine(*e).run(g).unwrap())
                    .collect();
            for run in &runs[1..] {
                assert_eq!(run, &runs[0], "{a}");
            }
            for g in &grids[1..] {
                assert_eq!(g, &grids[0], "{a}");
            }
        }
    }

    #[test]
    fn static_budget_is_tighter_and_still_sorts() {
        for a in AlgorithmId::ALL {
            let mut g = reversed(8);
            let run = SortJob::new(a, 8).budget(Budget::Static).run(&mut g).unwrap();
            assert!(run.sorted(), "{a}");
            assert!(run.budget < default_step_cap(8), "{a}");
            assert!(run.steps <= run.budget, "{a}");
        }
    }

    #[test]
    fn explicit_budget_exhaustion_classifies() {
        let mut g = reversed(8);
        let run = SortJob::new(AlgorithmId::SnakeAlternating, 8)
            .budget(Budget::Steps(2))
            .run(&mut g)
            .unwrap();
        assert!(!run.sorted());
        assert_eq!(run.budget, 2);
        match run.convergence {
            Convergence::BudgetExhausted { steps, residual_inversions } => {
                assert_eq!(steps, 2);
                assert!(residual_inversions > 0);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn optimized_job_matches_raw() {
        for a in AlgorithmId::ALL {
            let mut raw = reversed(8);
            let mut opt = reversed(8);
            let base = SortJob::new(a, 8).run(&mut raw).unwrap();
            let run =
                SortJob::new(a, 8).optimized(true).budget(Budget::Static).run(&mut opt).unwrap();
            assert!(run.sorted(), "{a}");
            assert_eq!(raw, opt, "{a}");
            assert_eq!(base.steps, run.steps, "{a}");
            assert_eq!(base.swaps, run.swaps, "{a}");
            if a == AlgorithmId::SnakePhaseAligned {
                assert!(run.comparisons < base.comparisons, "{a}: dead wires must be stripped");
            }
        }
    }

    #[test]
    fn fault_spec_job_converges_and_accounts() {
        let mut g = reversed(8);
        let run = SortJob::new(AlgorithmId::SnakeAlternating, 8)
            .fault_spec(FaultSpec::transient(0xFA11, 0.02))
            .run(&mut g)
            .unwrap();
        assert!(run.sorted(), "{:?}", run.convergence);
        assert!(g.is_sorted(meshsort_mesh::TargetOrder::Snake));
        let faults = run.faults.expect("fault stats present");
        assert!(faults.dropped > 0, "transient faults must drop comparators");
        assert_eq!(run.budget, resilient_policy_for(AlgorithmId::SnakeAlternating, 8).step_budget);
    }

    #[test]
    fn policy_without_faults_uses_resilient_engine() {
        let mut g = reversed(8);
        let policy = ResilientPolicy::for_side(8);
        let run = SortJob::new(AlgorithmId::SnakeAlternating, 8)
            .resilient_policy(policy)
            .run(&mut g)
            .unwrap();
        assert!(run.sorted());
        assert_eq!(run.budget, policy.step_budget);
        assert_eq!(run.faults.unwrap().dropped, 0);
    }

    #[test]
    fn batch_matches_per_grid_runs() {
        for a in AlgorithmId::ALL {
            let job = SortJob::new(a, 8).budget(Budget::Static);
            let mut grids: Vec<Grid<u32>> = (0..5).map(|_| reversed(8)).collect();
            let mut solo = grids.clone();
            let runs = job.run_batch(&mut grids).unwrap();
            for (i, g) in solo.iter_mut().enumerate() {
                let expect = job.run(g).unwrap();
                assert_eq!(runs[i], expect, "{a}: grid {i}");
                assert_eq!(&grids[i], g, "{a}: grid {i}");
            }
        }
    }

    #[test]
    fn optimized_batch_matches_raw_batch() {
        for a in AlgorithmId::ALL {
            let mut raw: Vec<Grid<u32>> = (0..6).map(|_| reversed(8)).collect();
            let mut opt = raw.clone();
            let base = SortJob::new(a, 8).run_batch(&mut raw).unwrap();
            let runs = SortJob::new(a, 8).optimized(true).run_batch(&mut opt).unwrap();
            assert_eq!(raw, opt, "{a}");
            for (b, r) in base.iter().zip(&runs) {
                assert_eq!(b.steps, r.steps, "{a}");
                assert_eq!(b.swaps, r.swaps, "{a}");
            }
        }
    }

    #[test]
    fn side_mismatch_is_invalid_job() {
        let mut g = reversed(4);
        let err = SortJob::new(AlgorithmId::SnakeAlternating, 8).run(&mut g).unwrap_err();
        assert_eq!(err.code(), 400);
        assert!(matches!(err, Error::InvalidJob { .. }));
    }

    #[test]
    fn zero_shard_width_is_invalid_job_not_a_panic() {
        let mut grids = vec![reversed(8)];
        let err = SortJob::new(AlgorithmId::SnakeAlternating, 8)
            .shard_width(0)
            .run_batch(&mut grids)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidJob { .. }));
    }

    #[test]
    fn mixed_sides_and_unsupported_sides_propagate() {
        let mut mixed = vec![reversed(8), reversed(4)];
        let err = SortJob::new(AlgorithmId::SnakeAlternating, 8).run_batch(&mut mixed).unwrap_err();
        assert_eq!(err, Error::Mesh(MeshError::MixedBatchSides { expected: 8, found: 4 }));
        let mut odd = reversed(3);
        let err = SortJob::new(AlgorithmId::RowMajorRowFirst, 3).run(&mut odd).unwrap_err();
        assert!(matches!(err, Error::Mesh(MeshError::UnsupportedSide { side: 3, .. })));
        assert_eq!(err.code(), 105);
    }

    #[test]
    fn resolved_budget_matches_run_report() {
        let job =
            SortJob::new(AlgorithmId::SnakePhaseAligned, 8).optimized(true).budget(Budget::Static);
        let mut g = reversed(8);
        let run = job.run(&mut g).unwrap();
        assert_eq!(job.resolved_budget().unwrap(), run.budget);
        assert_eq!(run.budget, 127, "S3 side 8 certified bound");
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut grids: Vec<Grid<u32>> = Vec::new();
        assert!(SortJob::new(AlgorithmId::SnakeAlternating, 8)
            .run_batch(&mut grids)
            .unwrap()
            .is_empty());
    }
}
