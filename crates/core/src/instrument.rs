//! Instrumented runs: per-step time series of disorder metrics.
//!
//! The theorems say *how long* sorting takes; these observables show
//! *why*: the displacement budget drains at a bounded rate (each step
//! moves each value at most one hop), inversions fall monotonically for
//! the embedded-chain steps, and the dirty region contracts.

use crate::algorithm::AlgorithmId;
use meshsort_mesh::metrics::{dirty_rows, inversions, total_displacement};
use meshsort_mesh::{apply_plan, Grid, MeshError};
use serde::{Deserialize, Serialize};

/// One sampled point of an instrumented run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// Step index the sample was taken after (0 = initial state).
    pub step: u64,
    /// Inversion count along the target reading order.
    pub inversions: u64,
    /// Total Manhattan displacement from the target arrangement.
    pub displacement: u64,
    /// Number of rows not yet in final form.
    pub dirty_rows: usize,
    /// Swaps performed by the step (0 for the initial sample).
    pub swaps: u64,
}

/// The full time series of one instrumented run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunTimeline {
    /// Which algorithm ran.
    pub algorithm: AlgorithmId,
    /// Mesh side.
    pub side: usize,
    /// Samples, every `stride` steps (plus the initial and final states).
    pub samples: Vec<Sample>,
    /// Total steps until sorted.
    pub steps: u64,
    /// Whether the run sorted within the cap.
    pub sorted: bool,
}

impl RunTimeline {
    /// `true` when displacement never increases between samples — the
    /// sanity property the drivers assert in tests. (Individual steps
    /// can only move values one hop, and never away from a sorted
    /// configuration in aggregate for these algorithms.)
    pub fn displacement_non_increasing(&self) -> bool {
        self.samples.windows(2).all(|w| w[1].displacement <= w[0].displacement)
    }

    /// The displacement drained per step, averaged over the run — at
    /// most 2·(swap hops)/step; a proxy for how much parallelism the
    /// algorithm actually extracts.
    pub fn mean_drain_rate(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        let first = self.samples.first().map(|s| s.displacement).unwrap_or(0);
        first as f64 / self.steps as f64
    }
}

/// Runs `algorithm` on `grid`, sampling metrics every `stride` steps.
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] when the algorithm rejects the side.
pub fn run_instrumented(
    algorithm: AlgorithmId,
    grid: &mut Grid<u32>,
    stride: u64,
    cap: u64,
) -> Result<RunTimeline, MeshError> {
    let side = grid.side();
    let order = algorithm.order();
    let schedule = algorithm.schedule(side)?;
    let stride = stride.max(1);

    let sample_of = |grid: &Grid<u32>, step: u64, swaps: u64| Sample {
        step,
        inversions: inversions(grid, order),
        displacement: total_displacement(grid, order),
        dirty_rows: dirty_rows(grid, order),
        swaps,
    };

    let mut samples = vec![sample_of(grid, 0, 0)];
    let mut sorted = grid.is_sorted(order);
    let mut t = 0u64;
    while !sorted && t < cap {
        let out = apply_plan(grid, schedule.plan_at(t));
        t += 1;
        sorted = grid.is_sorted(order);
        if sorted || t % stride == 0 {
            samples.push(sample_of(grid, t, out.swaps));
        }
    }
    Ok(RunTimeline { algorithm, side, samples, steps: t, sorted })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reversed(side: usize) -> Grid<u32> {
        Grid::from_rows(side, (0..(side * side) as u32).rev().collect()).unwrap()
    }

    #[test]
    fn timeline_ends_sorted_with_zero_metrics() {
        for alg in AlgorithmId::ALL {
            let side = 6;
            let mut g = reversed(side);
            let tl = run_instrumented(alg, &mut g, 4, 16 * 36 + 64).unwrap();
            assert!(tl.sorted, "{alg}");
            let last = tl.samples.last().unwrap();
            assert_eq!(last.inversions, 0, "{alg}");
            assert_eq!(last.displacement, 0, "{alg}");
            assert_eq!(last.dirty_rows, 0, "{alg}");
            assert_eq!(last.step, tl.steps);
        }
    }

    #[test]
    fn initial_sample_is_step_zero() {
        let mut g = reversed(4);
        let tl = run_instrumented(AlgorithmId::SnakeAlternating, &mut g, 2, 1000).unwrap();
        assert_eq!(tl.samples[0].step, 0);
        assert!(tl.samples[0].displacement > 0);
    }

    #[test]
    fn drain_rate_bounded_by_parallelism() {
        // Each step moves at most N/2 comparator pairs, each shifting two
        // values one hop: displacement can fall by at most N per step.
        let side = 8;
        let n = (side * side) as f64;
        let mut g = reversed(side);
        let tl = run_instrumented(AlgorithmId::RowMajorRowFirst, &mut g, 1, 4096).unwrap();
        assert!(tl.sorted);
        assert!(tl.mean_drain_rate() <= n, "{}", tl.mean_drain_rate());
        assert!(tl.mean_drain_rate() > 0.0);
    }

    #[test]
    fn sorted_input_yields_single_sample() {
        let mut g =
            meshsort_mesh::grid::sorted_permutation_grid(4, meshsort_mesh::TargetOrder::Snake);
        let tl = run_instrumented(AlgorithmId::SnakeStaggeredCols, &mut g, 1, 100).unwrap();
        assert_eq!(tl.steps, 0);
        assert_eq!(tl.samples.len(), 1);
        assert!(tl.displacement_non_increasing());
    }

    #[test]
    fn stride_controls_sampling_density() {
        let mut a = reversed(6);
        let dense = run_instrumented(AlgorithmId::SnakeAlternating, &mut a, 1, 10_000).unwrap();
        let mut b = reversed(6);
        let sparse = run_instrumented(AlgorithmId::SnakeAlternating, &mut b, 16, 10_000).unwrap();
        assert_eq!(dense.steps, sparse.steps);
        assert!(dense.samples.len() > sparse.samples.len());
    }

    #[test]
    fn unsupported_side_propagates() {
        let mut g = reversed(3);
        assert!(run_instrumented(AlgorithmId::RowMajorRowFirst, &mut g, 1, 10).is_err());
    }
}
