//! The two row-major algorithms (paper §1, analysed in §2).
//!
//! Both assume `√N = 2n` and use wrap-around wires between column `2n` and
//! column `1`. The first begins with a row sort:
//!
//! 1. step 4i+1 — each row performs an **odd** step of the bubble sort;
//! 2. step 4i+2 — each column performs an **odd** step (smaller on top);
//! 3. step 4i+3 — each row performs an **even** step, *simultaneously*
//!    with the wrap-around comparisons;
//! 4. step 4i+4 — each column performs an **even** step.
//!
//! The second algorithm swaps adjacent steps: "steps 2i+1 and 2i+2 of this
//! algorithm are steps 2i+2 and 2i+1 of the first algorithm, respectively",
//! i.e. its cycle is column-odd, row-odd, column-even, row-even + wrap.

use crate::phases::{cols_plan, rows_plan, rows_with_wrap, Phase, SortDirection};
use meshsort_mesh::{CycleSchedule, MeshError};

fn row_odd(side: usize) -> meshsort_mesh::StepPlan {
    rows_plan(side, |_| Some((Phase::Odd, SortDirection::Forward)))
}

fn col_odd(side: usize) -> meshsort_mesh::StepPlan {
    cols_plan(side, |_| Some(Phase::Odd))
}

fn row_even_with_wrap(side: usize) -> Result<meshsort_mesh::StepPlan, MeshError> {
    rows_with_wrap(side, |_| Some((Phase::Even, SortDirection::Forward)))
}

fn col_even(side: usize) -> meshsort_mesh::StepPlan {
    cols_plan(side, |_| Some(Phase::Even))
}

/// Cycle of the algorithm that begins with a row sorting step.
pub fn row_first_schedule(side: usize) -> Result<CycleSchedule, MeshError> {
    CycleSchedule::new(
        vec![row_odd(side), col_odd(side), row_even_with_wrap(side)?, col_even(side)],
        side * side,
    )
}

/// Cycle of the algorithm that begins with a column sorting step.
pub fn col_first_schedule(side: usize) -> Result<CycleSchedule, MeshError> {
    CycleSchedule::new(
        vec![col_odd(side), row_odd(side), col_even(side), row_even_with_wrap(side)?],
        side * side,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshsort_mesh::{Grid, TargetOrder};

    fn run(side: usize, data: Vec<u32>, schedule: &CycleSchedule) -> (u64, bool) {
        let mut g = Grid::from_rows(side, data).unwrap();
        let cap = 16 * (side * side) as u64 + 64;
        let out = schedule.run_until_sorted(&mut g, TargetOrder::RowMajor, cap);
        assert!(g.is_sorted(TargetOrder::RowMajor) == out.sorted);
        (out.steps, out.sorted)
    }

    #[test]
    fn row_first_sorts_reverse_4x4() {
        let s = row_first_schedule(4).unwrap();
        let (steps, sorted) = run(4, (0..16).rev().collect(), &s);
        assert!(sorted, "did not sort");
        assert!(steps > 0);
    }

    #[test]
    fn col_first_sorts_reverse_4x4() {
        let s = col_first_schedule(4).unwrap();
        let (_, sorted) = run(4, (0..16).rev().collect(), &s);
        assert!(sorted);
    }

    #[test]
    fn steps_swapped_pairwise_between_the_two() {
        // R2's steps (2i+1, 2i+2) are R1's (2i+2, 2i+1).
        let side = 6;
        let r1 = row_first_schedule(side).unwrap();
        let r2 = col_first_schedule(side).unwrap();
        assert_eq!(r2.plans()[0], r1.plans()[1]);
        assert_eq!(r2.plans()[1], r1.plans()[0]);
        assert_eq!(r2.plans()[2], r1.plans()[3]);
        assert_eq!(r2.plans()[3], r1.plans()[2]);
    }

    #[test]
    fn sorted_state_is_fixed_point() {
        for side in [2usize, 4, 6] {
            for schedule in [row_first_schedule(side).unwrap(), col_first_schedule(side).unwrap()] {
                let mut g =
                    meshsort_mesh::grid::sorted_permutation_grid(side, TargetOrder::RowMajor);
                let out = schedule.run_steps(&mut g, 0, 8);
                assert_eq!(out.swaps, 0, "side {side}: sorted state moved");
                assert!(g.is_sorted(TargetOrder::RowMajor));
            }
        }
    }

    #[test]
    fn worst_case_column_of_smallest_eventually_sorts() {
        // Paper: the worst case is attained when the smallest 2n entries
        // begin in the same column. Without wrap-around wires this input
        // would never sort; with them it must.
        let side = 4;
        let mut data = vec![0u32; side * side];
        let mut next = side as u32; // values side.. for the rest
        for r in 0..side {
            for c in 0..side {
                data[r * side + c] = if c == 0 {
                    r as u32 // smallest `side` values down column 1
                } else {
                    let v = next;
                    next += 1;
                    v
                };
            }
        }
        let s = row_first_schedule(side).unwrap();
        let (steps, sorted) = run(side, data.clone(), &s);
        assert!(sorted, "wrap-around must rescue the pathological column");
        // Theorem 1 / Corollary 1 regime: this input is expensive —
        // it must cost more than a small multiple of the side.
        assert!(steps as usize > 2 * side, "steps={steps}");
        let s2 = col_first_schedule(side).unwrap();
        let (_, sorted2) = run(side, data, &s2);
        assert!(sorted2);
    }

    #[test]
    fn exhaustive_zero_one_4x4_row_first() {
        // 0-1 principle: an oblivious comparison-exchange algorithm sorts
        // all inputs iff it sorts all 0-1 inputs. Exhaustively check every
        // 0-1 matrix on the 4×4 mesh (2^16 inputs).
        let side = 4;
        let s = row_first_schedule(side).unwrap();
        let cap = 16 * (side * side) as u64 + 64;
        let mut max_steps = 0u64;
        for mask in 0u32..(1 << 16) {
            let data: Vec<u8> = (0..16).map(|i| ((mask >> i) & 1) as u8).collect();
            let mut g = Grid::from_rows(side, data).unwrap();
            let out = s.run_until_sorted(&mut g, TargetOrder::RowMajor, cap);
            assert!(out.sorted, "mask {mask:#x} failed to sort");
            max_steps = max_steps.max(out.steps);
        }
        // Worst case is Θ(N); record the constant in range for 4×4.
        assert!(max_steps >= 16, "worst 0-1 case should cost >= N steps, got {max_steps}");
        assert!(max_steps <= 64, "worst 0-1 case unexpectedly large: {max_steps}");
    }

    #[test]
    fn exhaustive_zero_one_2x2_both() {
        for schedule in [row_first_schedule(2).unwrap(), col_first_schedule(2).unwrap()] {
            for mask in 0u32..16 {
                let data: Vec<u8> = (0..4).map(|i| ((mask >> i) & 1) as u8).collect();
                let mut g = Grid::from_rows(2, data).unwrap();
                let out = schedule.run_until_sorted(&mut g, TargetOrder::RowMajor, 200);
                assert!(out.sorted, "mask {mask:#x}");
            }
        }
    }

    #[test]
    fn random_permutations_sort_on_even_sides() {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5eed);
        for side in [2usize, 4, 6, 8] {
            for schedule in [row_first_schedule(side).unwrap(), col_first_schedule(side).unwrap()] {
                for _ in 0..10 {
                    let mut data: Vec<u32> = (0..(side * side) as u32).collect();
                    data.shuffle(&mut rng);
                    let mut g = Grid::from_rows(side, data).unwrap();
                    let cap = 16 * (side * side) as u64 + 64;
                    let out = schedule.run_until_sorted(&mut g, TargetOrder::RowMajor, cap);
                    assert!(out.sorted, "side {side}");
                    assert_eq!(
                        g.as_slice(),
                        (0..(side * side) as u32).collect::<Vec<_>>().as_slice()
                    );
                }
            }
        }
    }
}
