//! # meshsort-core — the five two-dimensional bubble sorting algorithms
//!
//! This crate is the reproduction of the primary contribution of
//! Savari, *Average Case Analysis of Five Two-Dimensional Bubble Sorting
//! Algorithms* (SPAA 1993): five generalizations of the odd-even
//! transposition sort to a `√N × √N` mesh of processors.
//!
//! Two algorithms finish in **row-major** order and require wrap-around
//! wires between the leftmost and rightmost columns
//! ([`AlgorithmId::RowMajorRowFirst`], [`AlgorithmId::RowMajorColFirst`]);
//! three finish in **snakelike** order
//! ([`AlgorithmId::SnakeAlternating`], [`AlgorithmId::SnakeStaggeredCols`],
//! [`AlgorithmId::SnakePhaseAligned`]). Each repeats a fixed 4-step cycle
//! of synchronous comparison-exchange steps; the cycles are compiled once
//! into [`meshsort_mesh::CycleSchedule`]s and replayed by the engine.
//!
//! The paper proves all five need `Θ(N)` steps on a random permutation
//! both on average and with high probability — far worse than the
//! `Ω(√N)` diameter bound. The experiment harness in
//! `meshsort-experiments` validates every one of those statements
//! empirically against this implementation.
//!
//! ```
//! use meshsort_core::{AlgorithmId, SortJob};
//! use meshsort_mesh::Grid;
//!
//! // Sort a 4×4 permutation with the first row-major algorithm.
//! let data: Vec<u32> = (0..16).rev().collect();
//! let mut grid = Grid::from_rows(4, data).unwrap();
//! let run = SortJob::new(AlgorithmId::RowMajorRowFirst, 4).run(&mut grid).unwrap();
//! assert!(run.sorted());
//! assert!(grid.is_sorted(meshsort_mesh::TargetOrder::RowMajor));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod batch;
pub mod cache;
pub mod error;
pub mod instrument;
pub mod job;
pub mod min_tracker;
pub mod phases;
pub mod row_major;
pub mod runner;
pub mod snake;
pub mod variants;

pub use algorithm::AlgorithmId;
#[allow(deprecated)] // legacy surface: re-exported so downstream deprecation is gradual
pub use batch::{sort_batch, sort_batch_with};
pub use batch::{DEFAULT_SHARD_WIDTH, LOCKSTEP_MAX_CELLS};
pub use cache::{optimized_for, schedule_for, static_bound_for};
pub use error::Error;
pub use job::{Budget, Convergence, Engine, FaultStats, RunOutcome, SortJob};
pub use runner::{fault_plan_for, resilient_policy_for, static_step_bound, ResilientRun, SortRun};
#[allow(deprecated)] // legacy surface: re-exported so downstream deprecation is gradual
pub use runner::{sort_resilient, sort_to_completion, sort_to_completion_optimized};
