//! The three snakelike algorithms (paper §1, analysed in §3 and the
//! appendix).
//!
//! All three finish with the input in snakelike order: paper-odd rows
//! ascend left→right, paper-even rows ascend right→left. Paper-even rows
//! therefore run the *reverse bubble sort* of Definition 1 (smaller value
//! to the rightmost cell). No wrap-around wires are used.
//!
//! * **S1 (alternating)** — step 4i+1: odd rows bubble-odd, even rows
//!   reverse-**even**; step 4i+2: all columns odd; step 4i+3: odd rows
//!   bubble-even, even rows reverse-**odd**; step 4i+4: all columns even.
//! * **S2 (staggered columns)** — S1's row steps; column steps staggered:
//!   step 4i+2: odd columns odd-phase, even columns even-phase;
//!   step 4i+4: odd columns even-phase, even columns odd-phase.
//! * **S3 (phase-aligned rows)** — S2's column steps; row steps aligned:
//!   step 4i+1: odd rows bubble-odd, even rows reverse-**odd**;
//!   step 4i+3: odd rows bubble-even, even rows reverse-**even**.
//!
//! "Odd rows/columns" use the paper's 1-indexed numbering: 0-indexed rows
//! 0, 2, 4, … are the paper's odd rows.
//!
//! The paper analyses even sides `√N = 2n` in §3 and odd sides
//! `√N = 2n + 1` in the appendix; the step definitions are identical, so
//! these builders accept any side ≥ 1.

use crate::phases::{cols_plan, rows_plan, Phase, SortDirection};
use meshsort_mesh::{CycleSchedule, MeshError, StepPlan};

fn is_paper_odd(index0: usize) -> bool {
    index0 % 2 == 0
}

/// Row step: paper-odd rows bubble with `odd_phase`, paper-even rows
/// reverse with `even_phase`.
fn snake_rows(side: usize, odd_phase: Phase, even_phase: Phase) -> StepPlan {
    rows_plan(side, |r| {
        if is_paper_odd(r) {
            Some((odd_phase, SortDirection::Forward))
        } else {
            Some((even_phase, SortDirection::Reverse))
        }
    })
}

/// Column step where every column runs the same phase.
fn uniform_cols(side: usize, phase: Phase) -> StepPlan {
    cols_plan(side, |_| Some(phase))
}

/// Column step where paper-odd columns run `odd_phase` and paper-even
/// columns run the flipped phase.
fn staggered_cols(side: usize, odd_phase: Phase) -> StepPlan {
    cols_plan(side, |c| Some(if is_paper_odd(c) { odd_phase } else { odd_phase.flip() }))
}

/// Cycle of the first snakelike algorithm.
pub fn alternating_schedule(side: usize) -> Result<CycleSchedule, MeshError> {
    CycleSchedule::new(
        vec![
            snake_rows(side, Phase::Odd, Phase::Even),
            uniform_cols(side, Phase::Odd),
            snake_rows(side, Phase::Even, Phase::Odd),
            uniform_cols(side, Phase::Even),
        ],
        side * side,
    )
}

/// Cycle of the second snakelike algorithm.
pub fn staggered_cols_schedule(side: usize) -> Result<CycleSchedule, MeshError> {
    CycleSchedule::new(
        vec![
            snake_rows(side, Phase::Odd, Phase::Even),
            staggered_cols(side, Phase::Odd),
            snake_rows(side, Phase::Even, Phase::Odd),
            staggered_cols(side, Phase::Even),
        ],
        side * side,
    )
}

/// Cycle of the third snakelike algorithm.
pub fn phase_aligned_schedule(side: usize) -> Result<CycleSchedule, MeshError> {
    CycleSchedule::new(
        vec![
            snake_rows(side, Phase::Odd, Phase::Odd),
            staggered_cols(side, Phase::Odd),
            snake_rows(side, Phase::Even, Phase::Even),
            staggered_cols(side, Phase::Even),
        ],
        side * side,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshsort_mesh::{Grid, TargetOrder};

    fn schedules(side: usize) -> Vec<(&'static str, CycleSchedule)> {
        vec![
            ("S1", alternating_schedule(side).unwrap()),
            ("S2", staggered_cols_schedule(side).unwrap()),
            ("S3", phase_aligned_schedule(side).unwrap()),
        ]
    }

    #[test]
    fn s2_shares_s1_row_steps() {
        let side = 6;
        let s1 = alternating_schedule(side).unwrap();
        let s2 = staggered_cols_schedule(side).unwrap();
        assert_eq!(s1.plans()[0], s2.plans()[0]);
        assert_eq!(s1.plans()[2], s2.plans()[2]);
        assert_ne!(s1.plans()[1], s2.plans()[1]);
        assert_ne!(s1.plans()[3], s2.plans()[3]);
    }

    #[test]
    fn s3_shares_s2_col_steps() {
        let side = 6;
        let s2 = staggered_cols_schedule(side).unwrap();
        let s3 = phase_aligned_schedule(side).unwrap();
        assert_eq!(s2.plans()[1], s3.plans()[1]);
        assert_eq!(s2.plans()[3], s3.plans()[3]);
        assert_ne!(s2.plans()[0], s3.plans()[0]);
        assert_ne!(s2.plans()[2], s3.plans()[2]);
    }

    #[test]
    fn sorted_snake_state_is_fixed_point() {
        for side in [2usize, 3, 4, 5, 6, 7] {
            for (name, s) in schedules(side) {
                let mut g = meshsort_mesh::grid::sorted_permutation_grid(side, TargetOrder::Snake);
                let out = s.run_steps(&mut g, 0, 8);
                assert_eq!(out.swaps, 0, "{name} side {side}: sorted state moved");
            }
        }
    }

    #[test]
    fn sorts_reverse_inputs_even_and_odd_sides() {
        for side in [2usize, 3, 4, 5, 6, 7, 8, 9] {
            for (name, s) in schedules(side) {
                let n = side * side;
                let mut g = Grid::from_rows(side, (0..n as u32).rev().collect()).unwrap();
                let out = s.run_until_sorted(&mut g, TargetOrder::Snake, 16 * n as u64 + 64);
                assert!(out.sorted, "{name} side {side} failed");
            }
        }
    }

    #[test]
    fn exhaustive_zero_one_4x4_all_three() {
        // 0-1 principle over all 2^16 matrices for each snake algorithm.
        let side = 4;
        for (name, s) in schedules(side) {
            let cap = 16 * (side * side) as u64 + 64;
            let mut max_steps = 0u64;
            for mask in 0u32..(1 << 16) {
                let data: Vec<u8> = (0..16).map(|i| ((mask >> i) & 1) as u8).collect();
                let mut g = Grid::from_rows(side, data).unwrap();
                let out = s.run_until_sorted(&mut g, TargetOrder::Snake, cap);
                assert!(out.sorted, "{name}: mask {mask:#x} failed to sort");
                max_steps = max_steps.max(out.steps);
            }
            assert!(max_steps <= 4 * 16 + 16, "{name}: worst case {max_steps} out of Θ(N) range");
        }
    }

    #[test]
    fn exhaustive_zero_one_3x3_all_three() {
        // Odd side (appendix regime), exhaustive over 2^9 matrices.
        let side = 3;
        for (name, s) in schedules(side) {
            for mask in 0u32..(1 << 9) {
                let data: Vec<u8> = (0..9).map(|i| ((mask >> i) & 1) as u8).collect();
                let mut g = Grid::from_rows(side, data).unwrap();
                let out = s.run_until_sorted(&mut g, TargetOrder::Snake, 400);
                assert!(out.sorted, "{name}: mask {mask:#x} failed to sort on odd side");
            }
        }
    }

    #[test]
    fn random_permutations_sort() {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xfeed);
        for side in [3usize, 4, 5, 6, 7, 8] {
            for (name, s) in schedules(side) {
                for _ in 0..8 {
                    let n = side * side;
                    let mut data: Vec<u32> = (0..n as u32).collect();
                    data.shuffle(&mut rng);
                    let mut g = Grid::from_rows(side, data).unwrap();
                    let out = s.run_until_sorted(&mut g, TargetOrder::Snake, 16 * n as u64 + 64);
                    assert!(out.sorted, "{name} side {side}");
                    assert!(g.is_sorted(TargetOrder::Snake));
                }
            }
        }
    }

    #[test]
    fn side_one_trivial() {
        for (name, s) in schedules(1) {
            let mut g = Grid::from_rows(1, vec![42u32]).unwrap();
            let out = s.run_until_sorted(&mut g, TargetOrder::Snake, 4);
            assert!(out.sorted, "{name}");
            assert_eq!(out.steps, 0);
        }
    }
}
