//! Plan builders: compiling the paper's step descriptions into
//! [`StepPlan`]s.
//!
//! All five algorithms are assembled from four ingredients:
//!
//! * a **row phase** where each row acts as a linear array (possibly with
//!   different phase/direction per row parity),
//! * a **column phase** where each column acts as a linear array with the
//!   smaller value always output in the *top-most* cell (possibly
//!   phase-staggered by column parity),
//! * the **wrap-around comparisons** of the row-major algorithms
//!   (paper §1, step 4i+3), and
//! * [`StepPlan::merge`] to run the wrap simultaneously with a row phase.
//!
//! Pair patterns come from `meshsort-linear`'s [`phase_pairs`] so the 1D
//! and 2D semantics cannot drift apart.

use meshsort_mesh::plan::{Comparator, StepPlan};
use meshsort_mesh::MeshError;

/// Odd/even phase of a linear-array step — re-exported from the 1D crate.
pub use meshsort_linear::array::Phase;
/// Forward (ascending) vs paper Definition 1 reverse (descending) —
/// re-exported from the 1D crate.
pub use meshsort_linear::array::SortDirection;

use meshsort_linear::array::phase_pairs;

/// Per-row instruction for a row phase: which pair phase and direction the
/// row executes, or `None` for an idle row.
pub type RowSpec = Option<(Phase, SortDirection)>;

/// Per-column instruction for a column phase: which pair phase the column
/// executes (columns always keep the smaller value on top), or `None` for
/// an idle column.
pub type ColSpec = Option<Phase>;

/// Builds the plan of one row phase. `spec` receives the 0-indexed row and
/// returns what that row does. (Remember the paper's "odd rows" are the
/// 0-indexed rows 0, 2, 4, … — see [`meshsort_mesh::Pos::paper_row_is_odd`].)
pub fn rows_plan(side: usize, spec: impl Fn(usize) -> RowSpec) -> StepPlan {
    let mut comparators = Vec::new();
    for row in 0..side {
        if let Some((phase, direction)) = spec(row) {
            for (a, b) in phase_pairs(side, phase) {
                let left = (row * side + a) as u32;
                let right = (row * side + b) as u32;
                comparators.push(match direction {
                    SortDirection::Forward => Comparator::new(left, right),
                    SortDirection::Reverse => Comparator::new(right, left),
                });
            }
        }
    }
    StepPlan::new(comparators).expect("rows are disjoint; pairs within a row are disjoint")
}

/// Builds the plan of one column phase. `spec` receives the 0-indexed
/// column. The smaller value always goes to the top cell of the pair
/// (every column sort in the paper is in the ordinary direction).
pub fn cols_plan(side: usize, spec: impl Fn(usize) -> ColSpec) -> StepPlan {
    let mut comparators = Vec::new();
    for col in 0..side {
        if let Some(phase) = spec(col) {
            for (a, b) in phase_pairs(side, phase) {
                let top = (a * side + col) as u32;
                let bottom = (b * side + col) as u32;
                comparators.push(Comparator::new(top, bottom));
            }
        }
    }
    StepPlan::new(comparators).expect("columns are disjoint; pairs within a column are disjoint")
}

/// The wrap-around comparisons of the row-major algorithms (paper §1,
/// step 4i+3): for paper rows `h = 1 .. √N−1`, compare the `h`-th row of
/// the last column with the `h+1`-st row of the first column; the smaller
/// value is placed in the `h`-th row of the last column.
///
/// In 0-indexed terms: for `r in 0..side−1`, `keep_min = (r, side−1)`,
/// `keep_max = (r+1, 0)`. Cells `(0, 0)` and `(side−1, side−1)` are idle.
/// These are exactly the adjacent pairs of the row-major linear chain that
/// the row phases do not cover, which is why an `N`-cell linear array is
/// "essentially embedded" in the mesh (paper §1).
pub fn wrap_plan(side: usize) -> StepPlan {
    let mut comparators = Vec::with_capacity(side.saturating_sub(1));
    for r in 0..side.saturating_sub(1) {
        let last_col = (r * side + side - 1) as u32;
        let first_col_next_row = ((r + 1) * side) as u32;
        comparators.push(Comparator::new(last_col, first_col_next_row));
    }
    StepPlan::new(comparators).expect("wrap cells are pairwise distinct")
}

/// Merges a row phase with the wrap plan into one simultaneous step,
/// verifying cell-disjointness (the row *even* phase leaves the first and
/// last column untouched, so the merge is legal exactly as the paper
/// requires).
pub fn rows_with_wrap(side: usize, spec: impl Fn(usize) -> RowSpec) -> Result<StepPlan, MeshError> {
    rows_plan(side, spec).merge(&wrap_plan(side))
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshsort_mesh::{apply_plan, Grid};

    #[test]
    fn rows_plan_all_forward_odd() {
        let p = rows_plan(4, |_| Some((Phase::Odd, SortDirection::Forward)));
        // 4 rows × 2 pairs.
        assert_eq!(p.len(), 8);
        let mut g = Grid::from_rows(4, (0..16u32).rev().collect()).unwrap();
        apply_plan(&mut g, &p);
        // Row 0 was 15 14 13 12 → 14 15 12 13.
        assert_eq!(g.row(0).copied().collect::<Vec<_>>(), vec![14, 15, 12, 13]);
    }

    #[test]
    fn rows_plan_reverse_direction() {
        let p = rows_plan(2, |_| Some((Phase::Odd, SortDirection::Reverse)));
        let mut g = Grid::from_rows(2, vec![1u32, 2, 3, 4]).unwrap();
        apply_plan(&mut g, &p);
        // Each row pair keeps the smaller value on the right.
        assert_eq!(g.as_slice(), &[2, 1, 4, 3]);
    }

    #[test]
    fn rows_plan_idle_rows() {
        let p = rows_plan(4, |r| {
            if r % 2 == 0 {
                Some((Phase::Odd, SortDirection::Forward))
            } else {
                None
            }
        });
        assert_eq!(p.len(), 4); // only rows 0 and 2
    }

    #[test]
    fn even_phase_skips_row_ends() {
        let p = rows_plan(4, |_| Some((Phase::Even, SortDirection::Forward)));
        // Pairs (1,2) per row only → 4 comparators; columns 0 and 3 idle.
        assert_eq!(p.len(), 4);
        for c in p.comparators() {
            assert_ne!(c.keep_min % 4, 0);
            assert_ne!(c.keep_max % 4, 3);
        }
    }

    #[test]
    fn cols_plan_smaller_on_top() {
        let p = cols_plan(2, |_| Some(Phase::Odd));
        let mut g = Grid::from_rows(2, vec![3u32, 4, 1, 2]).unwrap();
        apply_plan(&mut g, &p);
        assert_eq!(g.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn cols_plan_staggered() {
        let p = cols_plan(4, |c| if c % 2 == 0 { Some(Phase::Odd) } else { Some(Phase::Even) });
        // Odd (paper) columns: pairs (0,1),(2,3) → 2 each for cols 0,2.
        // Even (paper) columns: pair (1,2) → 1 each for cols 1,3.
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn wrap_plan_matches_paper_definition() {
        let side = 4;
        let p = wrap_plan(side);
        assert_eq!(p.len(), side - 1);
        // h-th row of column 2n keeps the min vs h+1-st row of column 1.
        for (h, c) in p.comparators().iter().enumerate() {
            assert_eq!(c.keep_min as usize, h * side + side - 1);
            assert_eq!(c.keep_max as usize, (h + 1) * side);
        }
    }

    #[test]
    fn wrap_plan_moves_value_around_the_edge() {
        let side = 2;
        // Grid: [[5, 9], [1, 7]] — wrap compares (0,1)=9 with (1,0)=1.
        let mut g = Grid::from_rows(side, vec![5u32, 9, 1, 7]).unwrap();
        apply_plan(&mut g, &wrap_plan(side));
        assert_eq!(g.as_slice(), &[5, 1, 9, 7]);
    }

    #[test]
    fn rows_with_wrap_is_disjoint_for_even_phase() {
        // Paper step 4i+3: row even phase + wrap must not collide.
        for side in [2usize, 4, 6, 8] {
            let p = rows_with_wrap(side, |_| Some((Phase::Even, SortDirection::Forward)));
            assert!(p.is_ok(), "side {side}");
        }
    }

    #[test]
    fn rows_with_wrap_collides_for_odd_phase() {
        // Sanity: the odd row phase *does* touch the first column, so
        // merging with the wrap must fail — guards against mis-assembling
        // the cycle.
        let res = rows_with_wrap(4, |_| Some((Phase::Odd, SortDirection::Forward)));
        assert!(res.is_err());
    }

    #[test]
    fn wrap_chain_is_row_major_linear_array() {
        // The row phases + wrap cover exactly the adjacent pairs of the
        // row-major chain: (k, k+1) for all flat k. Verify the union.
        let side = 4;
        let odd = rows_plan(side, |_| Some((Phase::Odd, SortDirection::Forward)));
        let even_wrap =
            rows_with_wrap(side, |_| Some((Phase::Even, SortDirection::Forward))).unwrap();
        let mut pairs: Vec<(u32, u32)> = odd
            .comparators()
            .iter()
            .chain(even_wrap.comparators())
            .map(|c| (c.keep_min, c.keep_max))
            .collect();
        pairs.sort_unstable();
        let expected: Vec<(u32, u32)> = (0..(side * side - 1) as u32).map(|k| (k, k + 1)).collect();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn side_one_plans_are_empty() {
        assert!(rows_plan(1, |_| Some((Phase::Odd, SortDirection::Forward))).is_empty());
        assert!(cols_plan(1, |_| Some(Phase::Odd)).is_empty());
        assert!(wrap_plan(1).is_empty());
    }
}
