//! The catalogue of the paper's five algorithms.

use crate::{row_major, snake};
use meshsort_mesh::{Comparator, CycleSchedule, MeshError, SchedulePolicy, TargetOrder};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one of the five 2D bubble sorting algorithms analysed in
/// the paper, in the order the paper introduces them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmId {
    /// Row-major algorithm that begins with a row sorting step (paper §1,
    /// first listed algorithm; analysed in Theorems 2 and 3).
    RowMajorRowFirst,
    /// Row-major algorithm that begins with a column sorting step —
    /// adjacent steps of the first algorithm swapped pairwise (Theorems 4
    /// and 5).
    RowMajorColFirst,
    /// First snakelike algorithm: row phases alternate the pair phase
    /// between odd rows (bubble) and even rows (reverse bubble); uniform
    /// column sorts (Theorems 7 and 8).
    SnakeAlternating,
    /// Second snakelike algorithm: same row steps as the first, but the
    /// column steps are phase-staggered between odd and even columns
    /// (Theorems 10 and 11).
    SnakeStaggeredCols,
    /// Third snakelike algorithm: staggered column steps of the second, and
    /// row steps whose pair phase is *aligned* between odd (bubble) and
    /// even (reverse bubble) rows (Theorem 12 — analysed through the path
    /// of the smallest element).
    SnakePhaseAligned,
}

impl AlgorithmId {
    /// All five algorithms in paper order.
    pub const ALL: [AlgorithmId; 5] = [
        AlgorithmId::RowMajorRowFirst,
        AlgorithmId::RowMajorColFirst,
        AlgorithmId::SnakeAlternating,
        AlgorithmId::SnakeStaggeredCols,
        AlgorithmId::SnakePhaseAligned,
    ];

    /// The two row-major algorithms (paper §2).
    pub const ROW_MAJOR: [AlgorithmId; 2] =
        [AlgorithmId::RowMajorRowFirst, AlgorithmId::RowMajorColFirst];

    /// The three snakelike algorithms (paper §3).
    pub const SNAKE: [AlgorithmId; 3] = [
        AlgorithmId::SnakeAlternating,
        AlgorithmId::SnakeStaggeredCols,
        AlgorithmId::SnakePhaseAligned,
    ];

    /// Human-readable name used in reports and benches.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmId::RowMajorRowFirst => "row-major/row-first",
            AlgorithmId::RowMajorColFirst => "row-major/col-first",
            AlgorithmId::SnakeAlternating => "snake/alternating",
            AlgorithmId::SnakeStaggeredCols => "snake/staggered-cols",
            AlgorithmId::SnakePhaseAligned => "snake/phase-aligned",
        }
    }

    /// The order the algorithm sorts into.
    pub fn order(self) -> TargetOrder {
        match self {
            AlgorithmId::RowMajorRowFirst | AlgorithmId::RowMajorColFirst => TargetOrder::RowMajor,
            _ => TargetOrder::Snake,
        }
    }

    /// Whether the algorithm is defined on a mesh of the given side.
    ///
    /// The row-major algorithms assume `√N = 2n` (paper §1); the snakelike
    /// algorithms are analysed for `√N = 2n` in §3 and for `√N = 2n + 1`
    /// in the appendix, so they accept any side ≥ 1.
    pub fn supports_side(self, side: usize) -> bool {
        match self {
            AlgorithmId::RowMajorRowFirst | AlgorithmId::RowMajorColFirst => {
                side >= 2 && side % 2 == 0
            }
            _ => side >= 1,
        }
    }

    /// Compiles the algorithm's 4-step cycle for a mesh of the given side.
    ///
    /// # Errors
    ///
    /// [`MeshError::UnsupportedSide`] when [`AlgorithmId::supports_side`]
    /// is false.
    pub fn schedule(self, side: usize) -> Result<CycleSchedule, MeshError> {
        if !self.supports_side(side) {
            return Err(MeshError::UnsupportedSide {
                side,
                requirement: match self {
                    AlgorithmId::RowMajorRowFirst | AlgorithmId::RowMajorColFirst => {
                        "even side >= 2 (paper assumes sqrt(N) = 2n)"
                    }
                    _ => "side >= 1",
                },
            });
        }
        match self {
            AlgorithmId::RowMajorRowFirst => row_major::row_first_schedule(side),
            AlgorithmId::RowMajorColFirst => row_major::col_first_schedule(side),
            AlgorithmId::SnakeAlternating => snake::alternating_schedule(side),
            AlgorithmId::SnakeStaggeredCols => snake::staggered_cols_schedule(side),
            AlgorithmId::SnakePhaseAligned => snake::phase_aligned_schedule(side),
        }
    }

    /// `true` for the algorithms that use wrap-around wires.
    pub fn uses_wraparound(self) -> bool {
        matches!(self, AlgorithmId::RowMajorRowFirst | AlgorithmId::RowMajorColFirst)
    }

    /// The (0-indexed) cycle step that carries the wrap-around wires, or
    /// `None` for the snakelike algorithms. The paper merges the wraps into
    /// step 4i+3 — the row *even* phase — which is the third step of R1's
    /// cycle and, with R2's pairwise step swap, the fourth of R2's.
    pub fn wrap_step_index(self) -> Option<usize> {
        match self {
            AlgorithmId::RowMajorRowFirst => Some(2),
            AlgorithmId::RowMajorColFirst => Some(3),
            _ => None,
        }
    }

    /// The [`SchedulePolicy`] this algorithm's schedule must satisfy on the
    /// given side: its target order, 4-step cycle, and wrap-around wires
    /// admitted only on [`AlgorithmId::wrap_step_index`]. This is the
    /// contract the `meshcheck` structural pass
    /// ([`meshsort_mesh::verify::verify_schedule_structural`]) checks
    /// compiled schedules against.
    pub fn schedule_policy(self, side: usize) -> SchedulePolicy {
        match self.wrap_step_index() {
            Some(step) => SchedulePolicy::with_wrap_at(side, self.order(), 4, &[step]),
            None => SchedulePolicy::mesh_only(side, self.order(), 4),
        }
    }

    /// `true` when `comparator`, at cycle step `step` of this algorithm's
    /// canonical schedule for `side`, is *expected* to be dead: provably
    /// unable to swap for any input at any execution.
    ///
    /// Four of the five schedules are fully live. The exception —
    /// surfaced by the `meshsort_mesh::absint` dataflow analyzer and
    /// confirmed by brute force over every 0-1 placement and random
    /// permutations — is S3 ([`AlgorithmId::SnakePhaseAligned`]): its
    /// phase-aligned row steps feed the *second* staggered column step
    /// (cycle step 3) values already ordered along every interior column,
    /// so every step-3 wire outside column 0 (and, on even sides, outside
    /// the last column) is dead. Closed form: a vertical wire in column
    /// `c` of step 3 is dead iff `c ≠ 0` and (`side` odd or
    /// `c ≠ side - 1`) — 3 wires at side 4, 8 at side 5, 21 at side 8.
    ///
    /// The `dataflow` pass of `meshsort-analyze` gates on the analyzed
    /// dead set being *exactly* the wires this predicate admits: an
    /// injected redundant comparator is flagged as unexpectedly dead, and
    /// an S3 schedule change that revives a characterized wire is flagged
    /// as an expected-dead regression.
    pub fn expected_dead_wire(self, side: usize, step: usize, comparator: Comparator) -> bool {
        if self != AlgorithmId::SnakePhaseAligned || step != 3 {
            return false;
        }
        // Only the canonical downward column wires are characterized.
        if comparator.keep_max as usize != comparator.keep_min as usize + side {
            return false;
        }
        let col = comparator.keep_min as usize % side;
        col != 0 && (side % 2 == 1 || col != side - 1)
    }

    /// Index of the first *row* sorting step within the cycle (0-indexed),
    /// i.e. the step after which the paper's `Z₁`/`M` statistics are read.
    ///
    /// For [`AlgorithmId::RowMajorRowFirst`] and all snakelike algorithms
    /// this is step 0; for [`AlgorithmId::RowMajorColFirst`] the first row
    /// sort is the second step of the cycle.
    pub fn first_row_sort_step(self) -> u64 {
        match self {
            AlgorithmId::RowMajorColFirst => 1,
            _ => 0,
        }
    }
}

impl fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_algorithms() {
        assert_eq!(AlgorithmId::ALL.len(), 5);
        assert_eq!(AlgorithmId::ROW_MAJOR.len() + AlgorithmId::SNAKE.len(), 5);
    }

    #[test]
    fn orders() {
        assert_eq!(AlgorithmId::RowMajorRowFirst.order(), TargetOrder::RowMajor);
        assert_eq!(AlgorithmId::RowMajorColFirst.order(), TargetOrder::RowMajor);
        for a in AlgorithmId::SNAKE {
            assert_eq!(a.order(), TargetOrder::Snake);
        }
    }

    #[test]
    fn side_support() {
        for a in AlgorithmId::ROW_MAJOR {
            assert!(!a.supports_side(0));
            assert!(!a.supports_side(3));
            assert!(!a.supports_side(7));
            assert!(a.supports_side(2));
            assert!(a.supports_side(8));
        }
        for a in AlgorithmId::SNAKE {
            assert!(a.supports_side(2));
            assert!(a.supports_side(3), "appendix covers odd sides");
            assert!(a.supports_side(7));
            assert!(!a.supports_side(0));
        }
    }

    #[test]
    fn unsupported_side_errors() {
        let err = AlgorithmId::RowMajorRowFirst.schedule(5).unwrap_err();
        assert!(matches!(err, MeshError::UnsupportedSide { side: 5, .. }));
    }

    #[test]
    fn all_schedules_have_four_steps() {
        for a in AlgorithmId::ALL {
            let side = 6;
            let s = a.schedule(side).unwrap();
            assert_eq!(s.cycle_len(), 4, "{a}");
        }
    }

    #[test]
    fn wraparound_flag() {
        assert!(AlgorithmId::RowMajorRowFirst.uses_wraparound());
        assert!(AlgorithmId::RowMajorColFirst.uses_wraparound());
        for a in AlgorithmId::SNAKE {
            assert!(!a.uses_wraparound());
        }
    }

    #[test]
    fn wrap_step_indices() {
        assert_eq!(AlgorithmId::RowMajorRowFirst.wrap_step_index(), Some(2));
        assert_eq!(AlgorithmId::RowMajorColFirst.wrap_step_index(), Some(3));
        for a in AlgorithmId::SNAKE {
            assert_eq!(a.wrap_step_index(), None, "{a}");
        }
        // The flag and the index must agree.
        for a in AlgorithmId::ALL {
            assert_eq!(a.uses_wraparound(), a.wrap_step_index().is_some(), "{a}");
        }
    }

    #[test]
    fn schedules_satisfy_their_policies() {
        for a in AlgorithmId::ALL {
            for side in [2, 3, 4, 5, 6, 8] {
                if !a.supports_side(side) {
                    continue;
                }
                let schedule = a.schedule(side).unwrap();
                let policy = a.schedule_policy(side);
                assert_eq!(policy.side(), side);
                assert_eq!(policy.order(), a.order());
                assert_eq!(policy.cycle_len(), 4);
                meshsort_mesh::verify::verify_schedule(&schedule, &policy)
                    .unwrap_or_else(|e| panic!("{a} side {side}: {e}"));
            }
        }
    }

    #[test]
    fn dataflow_proves_convergence_for_all_five() {
        // The pairwise ordering-facts domain is strong enough to prove
        // every canonical schedule sorts, well inside the step budget.
        for a in AlgorithmId::ALL {
            for side in [2, 3, 4, 5, 6] {
                if !a.supports_side(side) {
                    continue;
                }
                let schedule = a.schedule(side).unwrap();
                let summary = meshsort_mesh::absint::analyze_schedule(&schedule, a.order(), side);
                let bound = summary.converged_step.unwrap_or_else(|| {
                    panic!("{a} side {side}: convergence unprovable ({summary:?})")
                });
                assert!(bound <= crate::runner::default_step_cap(side), "{a} side {side}");
                // Preservation lemma: once row order is provable for every
                // input it persists — except on the degenerate 2×2 mesh,
                // where row order becomes provable early and one column
                // pair (half the grid) concretely breaks it again.
                if side >= 3 {
                    assert_eq!(summary.rows_regressed_step, None, "{a} side {side}");
                }
            }
        }
    }

    #[test]
    fn expected_dead_wires_match_the_analysis_exactly() {
        // The closed-form S3 characterization is pinned to the analyzer:
        // every analyzed-dead wire is predicted and every predicted wire
        // is analyzed-dead, for all five algorithms at every side 2..=16
        // (the range the exact static bound is affordable for). The cheap
        // first-cycle scan used here reports the same dead set as the full
        // fixpoint — `first_cycle_scan_matches_full_fixpoint` pins that.
        for a in AlgorithmId::ALL {
            for side in 2..=16 {
                if !a.supports_side(side) {
                    continue;
                }
                let schedule = a.schedule(side).unwrap();
                let dead = meshsort_mesh::opt::first_cycle_dead_wires(&schedule, side * side);
                for d in &dead {
                    assert!(
                        a.expected_dead_wire(side, d.step, d.comparator),
                        "{a} side {side}: unexpected dead wire {d:?}"
                    );
                }
                for (step, plan) in schedule.plans().iter().enumerate() {
                    for &c in plan.comparators() {
                        if a.expected_dead_wire(side, step, c) {
                            assert!(
                                dead.iter().any(|d| d.step == step && d.comparator == c),
                                "{a} side {side}: predicted-dead wire {c:?} at step {step} is live"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn first_cycle_scan_matches_full_fixpoint() {
        // The optimizer's cheap cycle-0 scan and the full dataflow
        // fixpoint must agree on the dead set (both start from
        // unconstrained facts; cycle 0 is where first-cycle deadness is
        // decided). S3 at side 8 is the richest case: 21 dead wires.
        let a = AlgorithmId::SnakePhaseAligned;
        let schedule = a.schedule(8).unwrap();
        let summary = meshsort_mesh::absint::analyze_schedule(&schedule, a.order(), 8);
        let scan = meshsort_mesh::opt::first_cycle_dead_wires(&schedule, 64);
        assert_eq!(scan, summary.dead_first_cycle);
    }

    #[test]
    fn s3_dead_wire_counts() {
        // The closed form summed per column — floor(side/2) wires for each
        // dead odd column, floor((side-1)/2) for each dead even column —
        // over the whole pinned range; brute force confirms the small
        // sides: 3 at side 4, 8 at side 5, 21 at side 8, 105 at side 16.
        let table = [
            (2, 0),
            (3, 2),
            (4, 3),
            (5, 8),
            (6, 10),
            (7, 18),
            (8, 21),
            (9, 32),
            (10, 36),
            (11, 50),
            (12, 55),
            (13, 72),
            (14, 78),
            (15, 98),
            (16, 105),
        ];
        for (side, expected) in table {
            let a = AlgorithmId::SnakePhaseAligned;
            let schedule = a.schedule(side).unwrap();
            let dead = meshsort_mesh::opt::first_cycle_dead_wires(&schedule, side * side);
            assert_eq!(dead.len(), expected, "side {side}");
        }
    }

    #[test]
    fn sorted_state_is_a_fixed_point_of_every_schedule() {
        for a in AlgorithmId::ALL {
            for side in [2, 3, 4, 5, 6] {
                if !a.supports_side(side) {
                    continue;
                }
                let schedule = a.schedule(side).unwrap();
                meshsort_mesh::absint::verify_sorted_fixed_point(&schedule, a.order(), side)
                    .unwrap_or_else(|w| panic!("{a} side {side}: live wire on sorted grid {w:?}"));
            }
        }
    }

    #[test]
    fn first_row_sort_step() {
        assert_eq!(AlgorithmId::RowMajorRowFirst.first_row_sort_step(), 0);
        assert_eq!(AlgorithmId::RowMajorColFirst.first_row_sort_step(), 1);
        assert_eq!(AlgorithmId::SnakeAlternating.first_row_sort_step(), 0);
    }

    #[test]
    fn display_names_unique() {
        let mut names: Vec<&str> = AlgorithmId::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
