//! High-level sorting drivers with paper-appropriate step caps.

use crate::algorithm::AlgorithmId;
use meshsort_mesh::{Grid, KernelValue, MeshError};
use serde::{Deserialize, Serialize};

/// Generous step cap for a run of any of the five algorithms.
///
/// The paper shows the worst case of each algorithm is `Θ(N)`; exhaustive
/// small-mesh 0-1 sweeps in this workspace put the observed constant well
/// under 4, so `8N + 8√N + 64` leaves a wide margin while still bounding
/// runaway loops if an implementation bug breaks convergence.
#[inline]
pub fn default_step_cap(side: usize) -> u64 {
    let n = (side * side) as u64;
    8 * n + 8 * side as u64 + 64
}

/// Measurement of one sorting run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortRun {
    /// Which algorithm ran.
    pub algorithm: AlgorithmId,
    /// Mesh side.
    pub side: usize,
    /// The engine-level outcome.
    pub outcome: RunStats,
}

/// Flattened, serializable mirror of [`meshsort_mesh::schedule::RunOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Steps executed before the grid first read sorted.
    pub steps: u64,
    /// Total exchanges performed.
    pub swaps: u64,
    /// Total comparator evaluations.
    pub comparisons: u64,
    /// Whether the run finished sorted (always true unless the cap was
    /// hit, which indicates a bug).
    pub sorted: bool,
}

impl From<meshsort_mesh::schedule::RunOutcome> for RunStats {
    fn from(o: meshsort_mesh::schedule::RunOutcome) -> Self {
        RunStats { steps: o.steps, swaps: o.swaps, comparisons: o.comparisons, sorted: o.sorted }
    }
}

/// Sorts `grid` in place with `algorithm`, running until the grid reaches
/// the algorithm's target order (or the default cap).
///
/// Cell types are bounded by [`KernelValue`] (the primitive integers) so
/// the run executes through the branchless compiled kernels — the
/// Monte-Carlo hot path. The scalar engine remains reachable via
/// [`meshsort_mesh::CycleSchedule::run_until_sorted`] for exotic `Ord`
/// types; both produce bit-identical outcomes (see
/// `tests/engine_equivalence.rs`).
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] when the algorithm is not defined for
/// the grid's side (row-major algorithms on odd sides).
pub fn sort_to_completion<T: KernelValue>(
    algorithm: AlgorithmId,
    grid: &mut Grid<T>,
) -> Result<SortRun, MeshError> {
    sort_with_cap(algorithm, grid, default_step_cap(grid.side()))
}

/// Like [`sort_to_completion`] with an explicit step cap.
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] as for [`sort_to_completion`].
pub fn sort_with_cap<T: KernelValue>(
    algorithm: AlgorithmId,
    grid: &mut Grid<T>,
    cap: u64,
) -> Result<SortRun, MeshError> {
    let side = grid.side();
    let schedule = algorithm.schedule(side)?;
    let outcome = schedule.run_until_sorted_kernel(grid, algorithm.order(), cap);
    Ok(SortRun { algorithm, side, outcome: outcome.into() })
}

/// Runs `algorithm` for exactly `steps` steps from the cycle start,
/// returning the engine totals — used by the 0–1 observers that need the
/// state "immediately after step t".
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] as for [`sort_to_completion`].
pub fn run_exact_steps<T: KernelValue>(
    algorithm: AlgorithmId,
    grid: &mut Grid<T>,
    steps: u64,
) -> Result<RunStats, MeshError> {
    let schedule = algorithm.schedule(grid.side())?;
    let out = schedule.run_steps_kernel(grid, 0, steps);
    Ok(RunStats { steps, swaps: out.swaps, comparisons: out.comparisons, sorted: false })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshsort_mesh::TargetOrder;

    #[test]
    fn cap_is_theta_n() {
        assert!(default_step_cap(4) >= 8 * 16);
        assert!(default_step_cap(32) >= 8 * 1024);
    }

    #[test]
    fn sort_to_completion_all_five_8x8() {
        let side = 8;
        let n = side * side;
        for a in AlgorithmId::ALL {
            let mut g = Grid::from_rows(side, (0..n as u32).rev().collect()).unwrap();
            let run = sort_to_completion(a, &mut g).unwrap();
            assert!(run.outcome.sorted, "{a}");
            assert!(g.is_sorted(a.order()), "{a}");
            assert_eq!(run.side, side);
            assert_eq!(run.algorithm, a);
            // Θ(N) regime: a reversed input is expensive.
            assert!(run.outcome.steps >= side as u64, "{a}: {}", run.outcome.steps);
            assert!(run.outcome.steps <= default_step_cap(side), "{a}");
        }
    }

    #[test]
    fn unsupported_side_propagates() {
        let mut g = Grid::from_rows(3, (0..9u32).collect()).unwrap();
        assert!(sort_to_completion(AlgorithmId::RowMajorRowFirst, &mut g).is_err());
        assert!(sort_to_completion(AlgorithmId::SnakeAlternating, &mut g).is_ok());
    }

    #[test]
    fn run_exact_steps_counts() {
        let side = 4;
        let mut g = Grid::from_rows(side, (0..16u32).rev().collect()).unwrap();
        let stats = run_exact_steps(AlgorithmId::RowMajorRowFirst, &mut g, 1).unwrap();
        assert_eq!(stats.steps, 1);
        // One odd row step on a reversed grid swaps every pair.
        assert_eq!(stats.swaps, 8);
        assert_eq!(stats.comparisons, 8);
    }

    #[test]
    fn sort_with_tight_cap_reports_unsorted() {
        let side = 8;
        let mut g = Grid::from_rows(side, (0..64u32).rev().collect()).unwrap();
        let run = sort_with_cap(AlgorithmId::SnakeAlternating, &mut g, 2).unwrap();
        assert!(!run.outcome.sorted);
        assert_eq!(run.outcome.steps, 2);
        assert!(!g.is_sorted(TargetOrder::Snake));
    }

    #[test]
    fn already_sorted_costs_zero() {
        for a in AlgorithmId::ALL {
            let side = 4;
            let mut g = meshsort_mesh::grid::sorted_permutation_grid(side, a.order());
            let run = sort_to_completion(a, &mut g).unwrap();
            assert_eq!(run.outcome.steps, 0, "{a}");
            assert!(run.outcome.sorted);
        }
    }
}
