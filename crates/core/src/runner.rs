//! High-level sorting drivers with paper-appropriate step caps.
//!
//! Every entry point resolves its compiled schedule through the shared
//! [`crate::cache`], so repeated sorts of the same `(algorithm, side)` —
//! the shape of every Monte-Carlo sweep — never recompile a plan.
//!
//! The single-run drivers here (`sort_to_completion` and friends) are
//! **deprecated shims** over [`crate::SortJob`], kept so existing callers
//! and the differential suites keep compiling; `tests/job_equivalence.rs`
//! proves each shim bit-identical to its job. New code should build a
//! [`crate::SortJob`] directly. The cap/bound/policy helpers
//! ([`default_step_cap`], [`static_step_bound`], [`resilient_policy_for`],
//! [`fault_plan_for`], [`run_exact_steps`]) remain first-class.

use crate::algorithm::AlgorithmId;
use crate::cache;
use crate::job::{Budget, SortJob};
use meshsort_mesh::fault::{self, derive_seed};
use meshsort_mesh::{
    FaultPlan, FaultSpec, Grid, KernelValue, MeshError, ResilientPolicy, ResilientReport,
};
use serde::{Deserialize, Serialize};
use std::hash::Hash;

/// Generous step cap for a run of any of the five algorithms.
///
/// The paper shows the worst case of each algorithm is `Θ(N)`; exhaustive
/// small-mesh 0-1 sweeps in this workspace put the observed constant well
/// under 4, so a budget of `8N + 8√N + 64` (the workspace-wide constant,
/// [`meshsort_mesh::fault::default_step_budget`]) leaves a wide margin
/// while still bounding runaway loops if an implementation bug breaks
/// convergence.
#[inline]
pub fn default_step_cap(side: usize) -> u64 {
    fault::default_step_budget(side)
}

/// The tightest sound step cap known for `(algorithm, side)`: the
/// statically proven convergence bound — the exact dataflow fixpoint up
/// to [`meshsort_mesh::opt::exact_bound_max_side`], a verified
/// periodicity-lifted bound above it through side 256 (process-cached
/// via [`cache::static_bound_for`] either way) — roughly 3.5–5× tighter
/// than [`default_step_cap`] for the canonical schedules, falling back
/// to the Θ(N) budget for unsupported sides and beyond the liftable
/// range.
///
/// Every input provably sorts within the returned cap, so using it as a
/// retirement horizon (the batch engine) or budget rail changes no
/// observable outcome of a fault-free run.
pub fn static_step_bound(algorithm: AlgorithmId, side: usize) -> u64 {
    cache::static_bound_for(algorithm, side).unwrap_or_else(|| default_step_cap(side))
}

/// The resilient-run policy for `(algorithm, side)`: derived from the
/// static convergence bound
/// ([`ResilientPolicy::from_static_bound`] — watchdog, budget, and
/// recovery scrub all sized in proven-bound units, each tighter than the
/// Θ(N) defaults) when the bound is known, else
/// [`ResilientPolicy::for_side`].
pub fn resilient_policy_for(algorithm: AlgorithmId, side: usize) -> ResilientPolicy {
    match (cache::static_bound_for(algorithm, side), cache::schedule_for(algorithm, side)) {
        (Some(bound), Ok(schedule)) => {
            ResilientPolicy::from_static_bound(bound, schedule.cycle_len())
        }
        _ => ResilientPolicy::for_side(side),
    }
}

/// Measurement of one sorting run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortRun {
    /// Which algorithm ran.
    pub algorithm: AlgorithmId,
    /// Mesh side.
    pub side: usize,
    /// The engine-level outcome.
    pub outcome: RunStats,
}

/// Flattened, serializable mirror of [`meshsort_mesh::schedule::RunOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Steps executed before the grid first read sorted.
    pub steps: u64,
    /// Total exchanges performed.
    pub swaps: u64,
    /// Total comparator evaluations.
    pub comparisons: u64,
    /// Whether the run finished sorted (always true unless the cap was
    /// hit, which indicates a bug).
    pub sorted: bool,
}

impl From<meshsort_mesh::schedule::RunOutcome> for RunStats {
    fn from(o: meshsort_mesh::schedule::RunOutcome) -> Self {
        RunStats { steps: o.steps, swaps: o.swaps, comparisons: o.comparisons, sorted: o.sorted }
    }
}

impl From<&crate::job::RunOutcome> for RunStats {
    fn from(run: &crate::job::RunOutcome) -> Self {
        RunStats {
            steps: run.steps,
            swaps: run.swaps,
            comparisons: run.comparisons,
            sorted: run.sorted(),
        }
    }
}

impl RunStats {
    /// Classifies a legacy (fault-free) run against the grid it produced,
    /// lifting the bare `sorted` flag into the resilient
    /// [`fault::RunOutcome`] taxonomy: a capped run reports
    /// `BudgetExhausted` with its residual inversions instead of a silent
    /// boolean.
    pub fn classify<T: Ord + Clone>(
        &self,
        grid: &Grid<T>,
        order: meshsort_mesh::TargetOrder,
    ) -> fault::RunOutcome {
        if self.sorted {
            fault::RunOutcome::Converged { steps: self.steps }
        } else {
            fault::RunOutcome::BudgetExhausted {
                steps: self.steps,
                residual_inversions: meshsort_mesh::metrics::inversions(grid, order),
            }
        }
    }
}

/// Measurement of one resilient (fault-injected) sorting run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilientRun {
    /// Which algorithm ran.
    pub algorithm: AlgorithmId,
    /// Mesh side.
    pub side: usize,
    /// The engine-level resilient report (classified outcome included).
    pub report: ResilientReport,
}

/// Compiles `spec` into a [`FaultPlan`] for `(algorithm, side)`, deriving
/// the plan seed from `spec.seed` and the `"name/side"` label so the same
/// root seed yields decorrelated — but individually reproducible — fault
/// streams per algorithm and side.
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] when the algorithm is not defined for
/// `side`; [`MeshError::InvalidFaultRate`] for rates outside `[0, 1]`.
pub fn fault_plan_for(
    algorithm: AlgorithmId,
    side: usize,
    spec: &FaultSpec,
) -> Result<FaultPlan, MeshError> {
    let schedule = cache::schedule_for(algorithm, side)?;
    let mut derived = spec.clone();
    derived.seed = derive_seed(spec.seed, &format!("{}/{side}", algorithm.name()));
    FaultPlan::compile(&derived, &schedule)
}

/// Sorts `grid` in place with `algorithm` under a fault plan, through the
/// resilient kernel runner ([`ResilientPolicy`] budget, livelock
/// watchdog, recovery scrubbing). Always terminates; the report carries
/// the classified outcome.
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] as for [`sort_to_completion`].
#[deprecated(
    note = "use SortJob::new(algorithm, grid.side()).fault_plan(..).resilient_policy(..).run(grid)"
)]
pub fn sort_resilient<T: KernelValue + Hash>(
    algorithm: AlgorithmId,
    grid: &mut Grid<T>,
    faults: &FaultPlan,
    policy: &ResilientPolicy,
) -> Result<ResilientRun, MeshError> {
    let side = grid.side();
    let run = SortJob::new(algorithm, side)
        .fault_plan(faults.clone())
        .resilient_policy(*policy)
        .run(grid)
        .map_err(crate::error::demote_to_mesh)?;
    let f = run.faults.expect("resilient runs always report fault stats");
    Ok(ResilientRun {
        algorithm,
        side,
        report: ResilientReport {
            outcome: run.convergence,
            steps: run.steps,
            swaps: run.swaps,
            comparisons: run.comparisons,
            dropped: f.dropped,
            stalled_steps: f.stalled_steps,
            recovery_attempts: f.recovery_attempts,
            recovery_steps: f.recovery_steps,
        },
    })
}

/// Sorts `grid` in place with `algorithm`, running until the grid reaches
/// the algorithm's target order (or the default cap).
///
/// Cell types are bounded by [`KernelValue`] (the primitive integers) so
/// the run executes through the branchless compiled kernels — the
/// Monte-Carlo hot path. The scalar engine remains reachable via
/// [`meshsort_mesh::CycleSchedule::run_until_sorted`] for exotic `Ord`
/// types; both produce bit-identical outcomes (see
/// `tests/engine_equivalence.rs`).
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] when the algorithm is not defined for
/// the grid's side (row-major algorithms on odd sides).
#[deprecated(note = "use SortJob::new(algorithm, grid.side()).run(grid)")]
pub fn sort_to_completion<T: KernelValue + Hash>(
    algorithm: AlgorithmId,
    grid: &mut Grid<T>,
) -> Result<SortRun, MeshError> {
    let side = grid.side();
    let run = SortJob::new(algorithm, side).run(grid).map_err(crate::error::demote_to_mesh)?;
    Ok(SortRun { algorithm, side, outcome: (&run).into() })
}

/// Like [`sort_to_completion`] with an explicit step cap.
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] as for [`sort_to_completion`].
#[deprecated(
    note = "use SortJob::new(algorithm, grid.side()).budget(Budget::Steps(cap)).run(grid)"
)]
pub fn sort_with_cap<T: KernelValue + Hash>(
    algorithm: AlgorithmId,
    grid: &mut Grid<T>,
    cap: u64,
) -> Result<SortRun, MeshError> {
    let side = grid.side();
    let run = SortJob::new(algorithm, side)
        .budget(Budget::Steps(cap))
        .run(grid)
        .map_err(crate::error::demote_to_mesh)?;
    Ok(SortRun { algorithm, side, outcome: (&run).into() })
}

/// [`sort_to_completion`] through the certified dead-wire-stripped plan
/// ([`cache::optimized_for`]), capped by the static convergence bound.
///
/// Bit-identical to the raw-plan run in final grid, steps, and swaps —
/// stripped wires never swap — with strictly fewer comparator evaluations
/// whenever the schedule has dead wires (S3). The default entry points
/// keep the raw plans; this surface is opt-in, mirrored by
/// `meshsort schedule --optimized`.
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] as for [`sort_to_completion`].
#[deprecated(
    note = "use SortJob::new(algorithm, grid.side()).optimized(true).budget(Budget::Static).run(grid)"
)]
pub fn sort_to_completion_optimized<T: KernelValue + Hash>(
    algorithm: AlgorithmId,
    grid: &mut Grid<T>,
) -> Result<SortRun, MeshError> {
    let side = grid.side();
    let run = SortJob::new(algorithm, side)
        .optimized(true)
        .budget(Budget::Static)
        .run(grid)
        .map_err(crate::error::demote_to_mesh)?;
    Ok(SortRun { algorithm, side, outcome: (&run).into() })
}

/// Runs `algorithm` for exactly `steps` steps from the cycle start,
/// returning the engine totals — used by the 0–1 observers that need the
/// state "immediately after step t".
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] as for [`sort_to_completion`].
pub fn run_exact_steps<T: KernelValue>(
    algorithm: AlgorithmId,
    grid: &mut Grid<T>,
    steps: u64,
) -> Result<RunStats, MeshError> {
    let schedule = cache::schedule_for(algorithm, grid.side())?;
    let out = schedule.run_steps_kernel(grid, 0, steps);
    Ok(RunStats { steps, swaps: out.swaps, comparisons: out.comparisons, sorted: false })
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay pinned by their original tests
mod tests {
    use super::*;
    use meshsort_mesh::TargetOrder;

    #[test]
    fn cap_is_theta_n() {
        assert!(default_step_cap(4) >= 8 * 16);
        assert!(default_step_cap(32) >= 8 * 1024);
    }

    #[test]
    fn sort_to_completion_all_five_8x8() {
        let side = 8;
        let n = side * side;
        for a in AlgorithmId::ALL {
            let mut g = Grid::from_rows(side, (0..n as u32).rev().collect()).unwrap();
            let run = sort_to_completion(a, &mut g).unwrap();
            assert!(run.outcome.sorted, "{a}");
            assert!(g.is_sorted(a.order()), "{a}");
            assert_eq!(run.side, side);
            assert_eq!(run.algorithm, a);
            // Θ(N) regime: a reversed input is expensive.
            assert!(run.outcome.steps >= side as u64, "{a}: {}", run.outcome.steps);
            assert!(run.outcome.steps <= default_step_cap(side), "{a}");
        }
    }

    #[test]
    fn unsupported_side_propagates() {
        let mut g = Grid::from_rows(3, (0..9u32).collect()).unwrap();
        assert!(sort_to_completion(AlgorithmId::RowMajorRowFirst, &mut g).is_err());
        assert!(sort_to_completion(AlgorithmId::SnakeAlternating, &mut g).is_ok());
    }

    #[test]
    fn run_exact_steps_counts() {
        let side = 4;
        let mut g = Grid::from_rows(side, (0..16u32).rev().collect()).unwrap();
        let stats = run_exact_steps(AlgorithmId::RowMajorRowFirst, &mut g, 1).unwrap();
        assert_eq!(stats.steps, 1);
        // One odd row step on a reversed grid swaps every pair.
        assert_eq!(stats.swaps, 8);
        assert_eq!(stats.comparisons, 8);
    }

    #[test]
    fn sort_with_tight_cap_reports_unsorted() {
        let side = 8;
        let mut g = Grid::from_rows(side, (0..64u32).rev().collect()).unwrap();
        let run = sort_with_cap(AlgorithmId::SnakeAlternating, &mut g, 2).unwrap();
        assert!(!run.outcome.sorted);
        assert_eq!(run.outcome.steps, 2);
        assert!(!g.is_sorted(TargetOrder::Snake));
    }

    #[test]
    fn fault_plan_for_is_deterministic_and_algorithm_keyed() {
        let spec = FaultSpec::transient(0x5EED, 0.1);
        let a = fault_plan_for(AlgorithmId::SnakeAlternating, 8, &spec).unwrap();
        let b = fault_plan_for(AlgorithmId::SnakeAlternating, 8, &spec).unwrap();
        assert_eq!(a, b);
        let sched = AlgorithmId::SnakeAlternating.schedule(8).unwrap();
        let other = fault_plan_for(AlgorithmId::SnakePhaseAligned, 8, &spec).unwrap();
        assert_ne!(a.trace(&sched, 256), other.trace(&sched, 256));
        // Unsupported sides and bad rates propagate.
        assert!(fault_plan_for(AlgorithmId::RowMajorRowFirst, 3, &spec).is_err());
        let bad = FaultSpec::transient(1, 2.0);
        assert_eq!(
            fault_plan_for(AlgorithmId::SnakeAlternating, 8, &bad).unwrap_err(),
            MeshError::InvalidFaultRate { param: "drop_rate" }
        );
    }

    #[test]
    fn sort_resilient_all_five_converge_under_mild_faults() {
        let side = 8;
        let n = side * side;
        let policy = ResilientPolicy::for_side(side);
        for a in AlgorithmId::ALL {
            let spec = FaultSpec::transient(0xFA11, 0.02);
            let faults = fault_plan_for(a, side, &spec).unwrap();
            let mut g = Grid::from_rows(side, (0..n as u32).rev().collect()).unwrap();
            let run = sort_resilient(a, &mut g, &faults, &policy).unwrap();
            assert!(run.report.outcome.converged(), "{a}: {:?}", run.report.outcome);
            assert!(g.is_sorted(a.order()), "{a}");
            assert_eq!(run.side, side);
            assert_eq!(run.algorithm, a);
        }
    }

    #[test]
    fn sort_resilient_noop_faults_match_sort_to_completion() {
        let side = 8;
        let n = side * side;
        let policy = ResilientPolicy::for_side(side);
        for a in AlgorithmId::ALL {
            let mut g1 = Grid::from_rows(side, (0..n as u32).rev().collect()).unwrap();
            let mut g2 = g1.clone();
            let base = sort_to_completion(a, &mut g1).unwrap();
            let run = sort_resilient(a, &mut g2, &FaultPlan::none(), &policy).unwrap();
            assert_eq!(
                run.report.outcome,
                meshsort_mesh::fault::RunOutcome::Converged { steps: base.outcome.steps },
                "{a}"
            );
            assert_eq!(run.report.swaps, base.outcome.swaps, "{a}");
            assert_eq!(run.report.comparisons, base.outcome.comparisons, "{a}");
            assert_eq!(g1, g2, "{a}");
        }
    }

    #[test]
    fn classify_lifts_the_sorted_flag() {
        let side = 8;
        let mut g = Grid::from_rows(side, (0..64u32).rev().collect()).unwrap();
        let run = sort_with_cap(AlgorithmId::SnakeAlternating, &mut g, 2).unwrap();
        match run.outcome.classify(&g, TargetOrder::Snake) {
            meshsort_mesh::fault::RunOutcome::BudgetExhausted { steps, residual_inversions } => {
                assert_eq!(steps, 2);
                assert!(residual_inversions > 0);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        let full = sort_to_completion(AlgorithmId::SnakeAlternating, &mut g).unwrap();
        assert_eq!(
            full.outcome.classify(&g, TargetOrder::Snake),
            meshsort_mesh::fault::RunOutcome::Converged { steps: full.outcome.steps }
        );
    }

    #[test]
    fn static_bound_is_tighter_than_theta_and_falls_back_above_gate() {
        for a in AlgorithmId::ALL {
            for side in [4usize, 5, 8, 16] {
                if !a.supports_side(side) {
                    continue;
                }
                let bound = static_step_bound(a, side);
                assert!(bound > 0, "{a} side {side}");
                assert!(bound < default_step_cap(side), "{a} side {side}: {bound}");
            }
            // Above the exact-fixpoint gate the lifted bound still beats
            // the Θ(N) budget — the whole point of periodicity lifting.
            if a.supports_side(64) {
                let lifted = static_step_bound(a, 64);
                assert!(lifted < default_step_cap(64), "{a}: {lifted}");
            }
            // Beyond the liftable range the Θ(N) budget is the cap.
            if a.supports_side(512) {
                assert_eq!(static_step_bound(a, 512), default_step_cap(512), "{a}");
            }
        }
        // Unsupported sides also fall back rather than erroring.
        assert_eq!(static_step_bound(AlgorithmId::RowMajorRowFirst, 5), default_step_cap(5));
    }

    #[test]
    fn resilient_policy_from_static_bound_is_tighter_than_default() {
        for a in AlgorithmId::ALL {
            let policy = resilient_policy_for(a, 8);
            let default = ResilientPolicy::for_side(8);
            assert!(policy.step_budget < default.step_budget, "{a}");
            assert!(policy.stall_window < default.stall_window, "{a}");
            assert!(policy.recovery_cycles < default.recovery_cycles, "{a}");
            // A whole number of cycles, so the watchdog checks line up.
            assert_eq!(policy.stall_window % 4, 0, "{a}");
        }
        // Above the exact gate the lifted bound still tightens the
        // policy; beyond the liftable range the Θ(N) policy is unchanged.
        let lifted = resilient_policy_for(AlgorithmId::SnakeAlternating, 64);
        assert!(lifted.step_budget < ResilientPolicy::for_side(64).step_budget);
        assert_eq!(
            resilient_policy_for(AlgorithmId::SnakeAlternating, 512),
            ResilientPolicy::for_side(512)
        );
    }

    #[test]
    fn optimized_sort_matches_raw_bit_for_bit() {
        let side = 8;
        let n = side * side;
        for a in AlgorithmId::ALL {
            let mut raw = Grid::from_rows(side, (0..n as u32).rev().collect()).unwrap();
            let mut opt = raw.clone();
            let base = sort_to_completion(a, &mut raw).unwrap();
            let run = sort_to_completion_optimized(a, &mut opt).unwrap();
            assert!(base.outcome.sorted && run.outcome.sorted, "{a}");
            assert_eq!(raw, opt, "{a}: final grids must be bit-identical");
            assert_eq!(base.outcome.steps, run.outcome.steps, "{a}");
            assert_eq!(base.outcome.swaps, run.outcome.swaps, "{a}");
            if a == AlgorithmId::SnakePhaseAligned {
                assert!(
                    run.outcome.comparisons < base.outcome.comparisons,
                    "{a}: dead-wire stripping must reduce comparisons"
                );
            } else {
                assert_eq!(base.outcome.comparisons, run.outcome.comparisons, "{a}");
            }
        }
    }

    #[test]
    fn optimized_run_respects_the_static_bound() {
        let side = 8;
        for a in AlgorithmId::ALL {
            let mut g = Grid::from_rows(side, (0..64u32).rev().collect()).unwrap();
            let run = sort_to_completion_optimized(a, &mut g).unwrap();
            assert!(run.outcome.sorted, "{a}");
            assert!(run.outcome.steps <= static_step_bound(a, side), "{a}");
        }
    }

    #[test]
    fn already_sorted_costs_zero() {
        for a in AlgorithmId::ALL {
            let side = 4;
            let mut g = meshsort_mesh::grid::sorted_permutation_grid(side, a.order());
            let run = sort_to_completion(a, &mut g).unwrap();
            assert_eq!(run.outcome.steps, 0, "{a}");
            assert!(run.outcome.sorted);
        }
    }
}
