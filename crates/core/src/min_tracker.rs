//! Tracking the smallest element — the observable behind Theorem 12.
//!
//! The paper analyses the third snakelike algorithm through the path of
//! the smallest entry: since the minimum wins every comparison it takes
//! part in, its trajectory is a deterministic function of its position and
//! the step plans. Lemmas 12–13 (even side) and 15–16 (odd side) show that
//! under S3 the minimum's *final snake rank* decreases by at most one per
//! two steps, hence at least `2m − 3` steps are needed when the minimum
//! starts in the cell of final rank `m` — giving the Θ(N) "high
//! probability" bound of Theorem 12.

use crate::algorithm::AlgorithmId;
use meshsort_mesh::{apply_plan, Grid, MeshError, Pos, TargetOrder};
use serde::{Deserialize, Serialize};

/// The recorded trajectory of the minimum value over one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinPath {
    /// Mesh side.
    pub side: usize,
    /// `positions[t]` is the cell holding the minimum immediately after
    /// step `t`; `positions[0]` is the initial cell.
    pub positions: Vec<Pos>,
    /// Whether the grid was sorted when tracking stopped.
    pub sorted: bool,
}

impl MinPath {
    /// The paper's 1-indexed final snake rank `m` of the cell at `pos`:
    /// the minimum is "home" when `m = 1` (the top-left cell).
    pub fn snake_rank(pos: Pos, side: usize) -> usize {
        TargetOrder::Snake.rank_of(pos, side) + 1
    }

    /// Snake rank of the initial cell — the `m` of Theorem 12's bound.
    pub fn initial_rank(&self) -> usize {
        Self::snake_rank(self.positions[0], self.side)
    }

    /// First step index after which the minimum occupies the top-left
    /// cell, or `None` if it never arrived within the recorded window.
    pub fn steps_until_home(&self) -> Option<u64> {
        self.positions.iter().position(|p| *p == Pos::new(0, 0)).map(|i| i as u64)
    }

    /// The snake-rank sequence sampled at the paper's `(j(i), k(i))`
    /// instants: entry `i` is the rank immediately after step `2i`.
    pub fn rank_walk(&self) -> Vec<usize> {
        self.positions
            .iter()
            .enumerate()
            .filter(|(t, _)| t % 2 == 0)
            .map(|(_, p)| Self::snake_rank(*p, self.side))
            .collect()
    }

    /// Verifies Lemmas 12 and 13 (and their odd-side analogues 15 and 16)
    /// on this trajectory:
    ///
    /// * Lemma 12/15: from `(j(2i), k(2i))` to `(j(2i+1), k(2i+1))` the
    ///   final rank stays or decreases by exactly one;
    /// * Lemma 13/16: from `(j(2i+1), k(2i+1))` to `(j(2i+2), k(2i+2))`
    ///   the final rank decreases by exactly one — while the minimum is
    ///   not yet home.
    ///
    /// Returns the first violated transition as
    /// `Err((walk_index, from_rank, to_rank))`.
    pub fn verify_rank_lemmas(&self) -> Result<(), (usize, usize, usize)> {
        let walk = self.rank_walk();
        for (i, w) in walk.windows(2).enumerate() {
            let (from, to) = (w[0], w[1]);
            if from == 1 {
                if to != 1 {
                    return Err((i, from, to));
                }
                continue;
            }
            let ok = if i % 2 == 0 {
                // (j(2i),k(2i)) → (j(2i+1),k(2i+1)): m or m−1.
                to == from || to == from - 1
            } else {
                // (j(2i+1),k(2i+1)) → (j(2i+2),k(2i+2)): exactly m−1.
                to == from - 1
            };
            if !ok {
                return Err((i, from, to));
            }
        }
        Ok(())
    }
}

fn min_position<T: Ord>(grid: &Grid<T>) -> Pos {
    grid.enumerate()
        .min_by(|a, b| a.1.cmp(b.1))
        .map(|(p, _)| p)
        .expect("grid has at least one cell")
}

/// Runs `algorithm` on `grid`, recording the position of the smallest
/// value after every step, until the grid is sorted in the algorithm's
/// target order or `cap` steps elapse.
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] when the algorithm rejects the side.
pub fn track_min<T: Ord>(
    algorithm: AlgorithmId,
    grid: &mut Grid<T>,
    cap: u64,
) -> Result<MinPath, MeshError> {
    let side = grid.side();
    let schedule = crate::cache::schedule_for(algorithm, side)?;
    let order = algorithm.order();
    let mut positions = vec![min_position(grid)];
    let mut sorted = grid.is_sorted(order);
    let mut t = 0u64;
    while !sorted && t < cap {
        apply_plan(grid, schedule.plan_at(t));
        positions.push(min_position(grid));
        t += 1;
        sorted = grid.is_sorted(order);
    }
    Ok(MinPath { side, positions, sorted })
}

/// Theorem 12's per-input lower bound: when the minimum starts in the
/// cell of final snake rank `m`, at least `2m − 3` steps are needed
/// (trivially 0 for `m ≤ 1`).
#[inline]
pub fn theorem12_lower_bound(initial_rank: usize) -> u64 {
    (2 * initial_rank).saturating_sub(3) as u64
}

/// Theorem 12's tail bound: the probability that the third snakelike
/// algorithm needs fewer than `δN` steps is at most `δ/2 + δ/(2N)`.
#[inline]
pub fn theorem12_tail_bound(delta: f64, n_cells: usize) -> f64 {
    delta / 2.0 + delta / (2.0 * n_cells as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_min_at(side: usize, pos: Pos) -> Grid<u32> {
        // Minimum 0 at `pos`; everything else large and ascending so the
        // rest of the grid does not interfere quickly.
        let mut next = 1u32;
        Grid::from_fn(side, |p| {
            if p == pos {
                0
            } else {
                let v = next;
                next += 1;
                v
            }
        })
        .unwrap()
    }

    #[test]
    fn snake_rank_examples() {
        // 4×4: cell (1,3) holds the 5th smallest (m=5) in snake order.
        assert_eq!(MinPath::snake_rank(Pos::new(0, 0), 4), 1);
        assert_eq!(MinPath::snake_rank(Pos::new(1, 3), 4), 5);
        assert_eq!(MinPath::snake_rank(Pos::new(1, 0), 4), 8);
    }

    #[test]
    fn s3_rank_lemmas_hold_from_every_start_even_side() {
        let side = 6;
        for r in 0..side {
            for c in 0..side {
                let mut g = grid_with_min_at(side, Pos::new(r, c));
                let path =
                    track_min(AlgorithmId::SnakePhaseAligned, &mut g, 8 * (side * side) as u64)
                        .unwrap();
                assert!(path.sorted, "start ({r},{c}) did not sort");
                path.verify_rank_lemmas().unwrap_or_else(|(i, from, to)| {
                    panic!("start ({r},{c}): walk step {i} went {from} -> {to}")
                });
            }
        }
    }

    #[test]
    fn s3_rank_lemmas_hold_from_every_start_odd_side() {
        // Appendix regime (Lemmas 15–16).
        let side = 5;
        for r in 0..side {
            for c in 0..side {
                let mut g = grid_with_min_at(side, Pos::new(r, c));
                let path =
                    track_min(AlgorithmId::SnakePhaseAligned, &mut g, 8 * (side * side) as u64)
                        .unwrap();
                assert!(path.sorted);
                path.verify_rank_lemmas().unwrap_or_else(|(i, from, to)| {
                    panic!("odd side start ({r},{c}): walk step {i} went {from} -> {to}")
                });
            }
        }
    }

    #[test]
    fn s3_min_needs_at_least_2m_minus_3_steps() {
        for side in [4usize, 5, 6] {
            for r in 0..side {
                for c in 0..side {
                    let start = Pos::new(r, c);
                    let mut g = grid_with_min_at(side, start);
                    let m = MinPath::snake_rank(start, side);
                    let path =
                        track_min(AlgorithmId::SnakePhaseAligned, &mut g, 8 * (side * side) as u64)
                            .unwrap();
                    let home = path.steps_until_home().expect("min reaches (0,0) once sorted");
                    assert!(
                        home >= theorem12_lower_bound(m),
                        "side {side} start {start}: home after {home} < 2·{m}−3"
                    );
                }
            }
        }
    }

    #[test]
    fn s1_min_can_move_faster_than_s3() {
        // Contrast claim from the paper's §3 conclusion: for the *other*
        // algorithms the minimum reaches home in Θ(√N) average steps,
        // while S3 forces Θ(N). Spot-check one far-away start.
        let side = 8;
        let start = Pos::new(side - 1, 0); // snake rank 8*8 = 64 on even side
        let m = MinPath::snake_rank(start, side);
        assert_eq!(m, side * side);

        let mut g1 = grid_with_min_at(side, start);
        let p1 = track_min(AlgorithmId::SnakeAlternating, &mut g1, 8 * 64).unwrap();
        let mut g3 = grid_with_min_at(side, start);
        let p3 = track_min(AlgorithmId::SnakePhaseAligned, &mut g3, 8 * 64).unwrap();

        let h1 = p1.steps_until_home().unwrap();
        let h3 = p3.steps_until_home().unwrap();
        assert!(h3 >= theorem12_lower_bound(m));
        assert!(h1 < h3, "S1 home {h1} should beat S3 home {h3}");
    }

    #[test]
    fn min_at_home_stays_home() {
        let side = 4;
        let mut g = grid_with_min_at(side, Pos::new(0, 0));
        let path = track_min(AlgorithmId::SnakePhaseAligned, &mut g, 8 * 16).unwrap();
        assert_eq!(path.steps_until_home(), Some(0));
        assert!(path.positions.iter().all(|p| *p == Pos::new(0, 0)));
    }

    #[test]
    fn tail_bound_formula() {
        // δ/2 + δ/(2N)
        let b = theorem12_tail_bound(0.5, 100);
        assert!((b - (0.25 + 0.0025)).abs() < 1e-12);
        assert_eq!(theorem12_tail_bound(0.0, 64), 0.0);
    }

    #[test]
    fn lower_bound_formula() {
        assert_eq!(theorem12_lower_bound(1), 0);
        assert_eq!(theorem12_lower_bound(2), 1);
        assert_eq!(theorem12_lower_bound(10), 17);
    }
}
