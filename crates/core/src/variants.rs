//! Algorithm variants that *illuminate* the paper's design choices.
//!
//! * [`row_first_no_wrap_schedule`] — R1 with the wrap-around
//!   comparisons removed. The paper (§1): *"Suppose that we did not have
//!   them and the smallest 2n numbers were initially stored by the cells
//!   in column 1. Then the smallest 2n numbers will be forced to stay in
//!   the same column at each step and we would never get the desired
//!   ordering."* The variant exists so that claim is executable
//!   ([`wrap_is_necessary_witness`] returns the stuck input).
//!
//! * [`chain_only_schedule`] — only the row phases plus the wrap, i.e.
//!   the pure `N`-cell linear-array odd-even transposition sort embedded
//!   in the mesh (the chain that gives R1 its `O(N)` worst-case proof).
//!   Comparing it against full R1 shows what the column phases buy
//!   (constant factors) and what they do not (the Θ(N) asymptotics).

use crate::phases::{cols_plan, rows_plan, rows_with_wrap, Phase, SortDirection};
use meshsort_mesh::{CycleSchedule, Grid, MeshError, TargetOrder};

/// R1 without the wrap-around comparisons: the row-even phase runs
/// alone at step 4i+3.
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] for odd or zero sides (same constraint
/// as R1).
pub fn row_first_no_wrap_schedule(side: usize) -> Result<CycleSchedule, MeshError> {
    if side == 0 || side % 2 != 0 {
        return Err(MeshError::UnsupportedSide { side, requirement: "even side >= 2" });
    }
    CycleSchedule::new(
        vec![
            rows_plan(side, |_| Some((Phase::Odd, SortDirection::Forward))),
            cols_plan(side, |_| Some(Phase::Odd)),
            rows_plan(side, |_| Some((Phase::Even, SortDirection::Forward))),
            cols_plan(side, |_| Some(Phase::Even)),
        ],
        side * side,
    )
}

/// The embedded `N`-cell chain only: row-odd, then row-even + wrap — a
/// 2-step cycle identical to the 1D odd-even transposition sort on the
/// row-major snake-through-the-wrap chain.
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] for odd or zero sides.
pub fn chain_only_schedule(side: usize) -> Result<CycleSchedule, MeshError> {
    if side == 0 || side % 2 != 0 {
        return Err(MeshError::UnsupportedSide { side, requirement: "even side >= 2" });
    }
    CycleSchedule::new(
        vec![
            rows_plan(side, |_| Some((Phase::Odd, SortDirection::Forward))),
            rows_with_wrap(side, |_| Some((Phase::Even, SortDirection::Forward)))?,
        ],
        side * side,
    )
}

/// The paper's stuck input for the no-wrap variant: the smallest `side`
/// values down column 0. Running [`row_first_no_wrap_schedule`] on it
/// reaches a fixed point that is **not** sorted — the executable witness
/// that the wrap-around wires are necessary.
pub fn wrap_is_necessary_witness(side: usize) -> Grid<u32> {
    meshsort_workloads_free_smallest_in_column(side)
}

// A tiny local copy of the adversarial builder so this crate does not
// depend on `meshsort-workloads` (which depends back on nothing from
// core, but keeping core's dependency footprint minimal matters for the
// substrate layering). Equivalent to
// `meshsort_workloads::adversarial::smallest_in_one_column(side, 0)`;
// the integration tests assert the two agree.
fn meshsort_workloads_free_smallest_in_column(side: usize) -> Grid<u32> {
    let mut next = side as u32;
    Grid::from_fn(side, |p| {
        if p.col == 0 {
            p.row as u32
        } else {
            let v = next;
            next += 1;
            v
        }
    })
    .expect("side >= 1")
}

/// A row-major bubble sort for **any** side ≥ 2, including the odd sides
/// the paper excludes ("for these algorithms, we will assume √N = 2n").
///
/// Why the paper's 4-step cycle cannot work on odd sides: the wrap-around
/// comparisons need both end columns idle during some row phase, but on
/// an odd-length row the odd phase touches column 1 and the even phase
/// touches the last column — no single phase frees both. The natural
/// generalization gives the wrap its own step, making a 5-step cycle:
///
/// 1. rows odd phase, 2. columns odd, 3. rows even phase,
/// 4. columns even, 5. wrap-around comparisons alone.
///
/// On even sides this function returns the paper's original 4-step R1.
/// Tests verify the odd-side variant sorts exhaustively (every 0–1 input
/// on 3×3) and on random permutations, and that the sorted state is a
/// fixed point — a "future work" item of the paper, executed.
pub fn row_major_any_side_schedule(side: usize) -> Result<CycleSchedule, MeshError> {
    if side < 2 {
        return Err(MeshError::UnsupportedSide { side, requirement: "side >= 2" });
    }
    if side % 2 == 0 {
        return crate::row_major::row_first_schedule(side);
    }
    CycleSchedule::new(
        vec![
            rows_plan(side, |_| Some((Phase::Odd, SortDirection::Forward))),
            cols_plan(side, |_| Some(Phase::Odd)),
            rows_plan(side, |_| Some((Phase::Even, SortDirection::Forward))),
            cols_plan(side, |_| Some(Phase::Even)),
            crate::phases::wrap_plan(side),
        ],
        side * side,
    )
}

/// Outcome of probing a schedule on an input until it either sorts or
/// reaches a fixed point of the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Convergence {
    /// Reached the target order after the given number of steps.
    Sorted(u64),
    /// Reached a cycle fixed point that is *not* the target order after
    /// the given number of whole cycles.
    StuckUnsorted(u64),
    /// Hit the step cap without either.
    CapExceeded,
}

/// Drives `schedule` until sorted in `order` or until one whole cycle
/// performs no swaps, up to `max_cycles` cycles.
pub fn probe_convergence<T: Ord>(
    schedule: &CycleSchedule,
    grid: &mut Grid<T>,
    order: TargetOrder,
    max_cycles: u64,
) -> Convergence {
    if grid.is_sorted(order) {
        return Convergence::Sorted(0);
    }
    let cycle = schedule.cycle_len() as u64;
    for c in 0..max_cycles {
        let mut swaps = 0u64;
        for k in 0..cycle {
            let out = meshsort_mesh::apply_plan(grid, schedule.plan_at(c * cycle + k));
            swaps += out.swaps;
            if grid.is_sorted(order) {
                return Convergence::Sorted(c * cycle + k + 1);
            }
        }
        if swaps == 0 {
            return Convergence::StuckUnsorted(c + 1);
        }
    }
    Convergence::CapExceeded
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_wrap_gets_stuck_on_the_papers_input() {
        // The §1 claim, executed: without wrap-around wires, the column
        // of smallest values never disperses.
        for side in [4usize, 6, 8] {
            let schedule = row_first_no_wrap_schedule(side).unwrap();
            let mut grid = wrap_is_necessary_witness(side);
            let result = probe_convergence(
                &schedule,
                &mut grid,
                TargetOrder::RowMajor,
                4 * (side * side) as u64,
            );
            match result {
                Convergence::StuckUnsorted(_) => {
                    // The smallest `side` values are still all in column 0.
                    let col: Vec<u32> = grid.column(0).copied().collect();
                    assert!(col.iter().all(|&v| (v as usize) < side), "side {side}: {col:?}");
                }
                other => panic!("side {side}: expected stuck, got {other:?}"),
            }
        }
    }

    #[test]
    fn no_wrap_converges_to_young_tableau_fixed_points() {
        // Without the wrap there is no exchange along the row-major total
        // order, so the variant converges to a state where every row AND
        // every column is ascending (a standard-Young-tableau-like
        // arrangement) — which is row-major sorted only for exceptional
        // inputs. On random permutations it essentially never sorts; the
        // paper's motivating example is thus the tip of the iceberg.
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let side = 6;
        let schedule = row_first_no_wrap_schedule(side).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut stuck = 0;
        for _ in 0..20 {
            let mut data: Vec<u32> = (0..36).collect();
            data.shuffle(&mut rng);
            let mut grid = Grid::from_rows(side, data).unwrap();
            match probe_convergence(&schedule, &mut grid, TargetOrder::RowMajor, 400) {
                Convergence::StuckUnsorted(_) => {
                    stuck += 1;
                    // The fixed point: rows ascending and columns ascending.
                    for r in 0..side {
                        let row: Vec<u32> = grid.row(r).copied().collect();
                        assert!(row.windows(2).all(|w| w[0] < w[1]), "row {r} not sorted");
                    }
                    for c in 0..side {
                        let col: Vec<u32> = grid.column(c).copied().collect();
                        assert!(col.windows(2).all(|w| w[0] < w[1]), "col {c} not sorted");
                    }
                }
                Convergence::Sorted(_) => {} // possible but rare
                Convergence::CapExceeded => panic!("no fixed point within the cap"),
            }
        }
        assert!(stuck >= 15, "expected most runs stuck; only {stuck}/20 were");
    }

    #[test]
    fn with_wrap_the_witness_sorts() {
        let side = 6;
        let schedule = crate::row_major::row_first_schedule(side).unwrap();
        let mut grid = wrap_is_necessary_witness(side);
        let result = probe_convergence(&schedule, &mut grid, TargetOrder::RowMajor, 16 * 36);
        assert!(matches!(result, Convergence::Sorted(_)), "{result:?}");
    }

    #[test]
    fn chain_only_sorts_everything_within_n_steps_of_chain_bound() {
        // The chain variant IS the 1D odd-even sort on N cells: it sorts
        // any input within ~N steps.
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let side = 6;
        let n = (side * side) as u64;
        let schedule = chain_only_schedule(side).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let mut data: Vec<u32> = (0..36).collect();
            data.shuffle(&mut rng);
            let mut grid = Grid::from_rows(side, data).unwrap();
            let out = schedule.run_until_sorted(&mut grid, TargetOrder::RowMajor, 2 * n);
            assert!(out.sorted);
            assert!(out.steps <= n + 2, "steps {}", out.steps);
        }
    }

    #[test]
    fn chain_only_matches_linear_array_semantics() {
        // Step-for-step equivalence with meshsort-linear on the flattened
        // data.
        use meshsort_linear::array::{step_slice, Phase as LPhase, SortDirection as LDir};
        let side = 4;
        let schedule = chain_only_schedule(side).unwrap();
        let mut grid = Grid::from_rows(side, (0..16u32).rev().collect()).unwrap();
        let mut flat: Vec<u32> = grid.as_slice().to_vec();
        for t in 0..20u64 {
            meshsort_mesh::apply_plan(&mut grid, schedule.plan_at(t));
            let phase = if t % 2 == 0 { LPhase::Odd } else { LPhase::Even };
            step_slice(&mut flat, phase, LDir::Forward);
            assert_eq!(grid.as_slice(), flat.as_slice(), "diverged at step {t}");
        }
    }

    #[test]
    fn odd_sides_rejected() {
        assert!(row_first_no_wrap_schedule(5).is_err());
        assert!(chain_only_schedule(3).is_err());
        assert!(chain_only_schedule(0).is_err());
    }

    #[test]
    fn any_side_schedule_even_is_paper_r1() {
        let a = row_major_any_side_schedule(6).unwrap();
        let b = crate::row_major::row_first_schedule(6).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn any_side_odd_sorts_exhaustively_3x3() {
        // 0-1 principle over all 2^9 inputs on the odd side 3.
        let schedule = row_major_any_side_schedule(3).unwrap();
        for mask in 0u32..(1 << 9) {
            let data: Vec<u8> = (0..9).map(|i| ((mask >> i) & 1) as u8).collect();
            let mut g = Grid::from_rows(3, data).unwrap();
            let out = schedule.run_until_sorted(&mut g, TargetOrder::RowMajor, 600);
            assert!(out.sorted, "mask {mask:#x} failed on the odd-side variant");
        }
    }

    #[test]
    fn any_side_odd_sorts_random_permutations() {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for side in [3usize, 5, 7] {
            let schedule = row_major_any_side_schedule(side).unwrap();
            for _ in 0..12 {
                let n = side * side;
                let mut data: Vec<u32> = (0..n as u32).collect();
                data.shuffle(&mut rng);
                let mut g = Grid::from_rows(side, data).unwrap();
                let out =
                    schedule.run_until_sorted(&mut g, TargetOrder::RowMajor, 20 * n as u64 + 64);
                assert!(out.sorted, "side {side}");
                assert_eq!(g.as_slice(), (0..n as u32).collect::<Vec<_>>().as_slice());
            }
        }
    }

    #[test]
    fn any_side_odd_sorted_state_is_fixed_point() {
        for side in [3usize, 5, 7] {
            let schedule = row_major_any_side_schedule(side).unwrap();
            let mut g = meshsort_mesh::grid::sorted_permutation_grid(side, TargetOrder::RowMajor);
            let out = schedule.run_steps(&mut g, 0, 10);
            assert_eq!(out.swaps, 0, "side {side}");
        }
    }

    #[test]
    fn any_side_odd_cycle_has_five_steps() {
        assert_eq!(row_major_any_side_schedule(5).unwrap().cycle_len(), 5);
        assert_eq!(row_major_any_side_schedule(4).unwrap().cycle_len(), 4);
        assert!(row_major_any_side_schedule(1).is_err());
    }

    #[test]
    fn any_side_odd_worst_case_column_is_theta_n() {
        // The Corollary 1 adversary on the odd-side variant: still Θ(N).
        let side = 5;
        let schedule = row_major_any_side_schedule(side).unwrap();
        let mut g = Grid::from_fn(side, |p| u8::from(p.col != 0)).unwrap();
        let out = schedule.run_until_sorted(&mut g, TargetOrder::RowMajor, 4000);
        assert!(out.sorted);
        assert!(out.steps as usize > side * side, "steps {}", out.steps);
    }

    #[test]
    fn probe_detects_already_sorted() {
        let side = 4;
        let schedule = chain_only_schedule(side).unwrap();
        let mut grid = meshsort_mesh::grid::sorted_permutation_grid(side, TargetOrder::RowMajor);
        assert_eq!(
            probe_convergence(&schedule, &mut grid, TargetOrder::RowMajor, 10),
            Convergence::Sorted(0)
        );
    }
}
