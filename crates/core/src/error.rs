//! The unified error surface of the workspace.
//!
//! Before the `SortJob` redesign every layer surfaced its own enum —
//! [`MeshError`] from construction, [`VerifyError`] from the static
//! passes, [`OptError`] from the plan optimizer — and the batch/runner
//! entry points panicked on contract violations. [`Error`] folds all of
//! them into one type with a **stable numeric discriminant**
//! ([`Error::code`]) so the `meshsortd` wire protocol can encode any
//! failure as a fixed `u16` that never changes meaning across releases:
//!
//! * `100–199` — mesh construction errors ([`MeshError`])
//! * `200–299` — static verification errors ([`VerifyError`])
//! * `300–399` — optimizer/certification errors ([`OptError`])
//! * `400–499` — job-level contract violations ([`Error::InvalidJob`])
//! * `500–599` — service-level conditions: overload ([`Error::QueueFull`]
//!   = 503) and deadline shedding ([`Error::DeadlineExceeded`] = 504)
//!
//! Within each band the code is `base + declaration index` of the
//! wrapped enum's variant; new variants append, existing codes are
//! frozen (pinned by `codes_are_stable` below).

use meshsort_mesh::{MeshError, OptError, VerifyError};
use std::fmt;

/// Any failure reachable from the public `meshsort-core` surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Grid/plan/schedule construction failed.
    Mesh(MeshError),
    /// A schedule failed static structural or IR-conformance checks.
    Verify(VerifyError),
    /// Plan optimization or certificate checking failed.
    Optimizer(OptError),
    /// A [`crate::SortJob`] was configured inconsistently (side mismatch,
    /// zero shard width, …). The reason is human-readable; the
    /// discriminant is what the wire carries.
    InvalidJob {
        /// What was wrong with the job.
        reason: String,
    },
    /// A bounded service queue rejected the request instead of buffering
    /// it unboundedly; retry with backoff.
    QueueFull {
        /// The queue's bound at the time of rejection.
        capacity: usize,
    },
    /// The request carried a deadline and the service could not start it
    /// in time; it was shed before any work was wasted on it. Retrying
    /// is pointless unless the client grants a fresh deadline.
    DeadlineExceeded {
        /// The deadline the request carried, in milliseconds.
        deadline_ms: u64,
        /// How long the request had already waited when it was shed.
        waited_ms: u64,
    },
}

impl Error {
    /// The stable wire discriminant (see module docs for the bands).
    pub fn code(&self) -> u16 {
        match self {
            Error::Mesh(e) => {
                100 + match e {
                    MeshError::BadDimensions { .. } => 0,
                    MeshError::ZeroSide => 1,
                    MeshError::IndexOutOfRange { .. } => 2,
                    MeshError::OverlappingComparators { .. } => 3,
                    MeshError::DegenerateComparator { .. } => 4,
                    MeshError::UnsupportedSide { .. } => 5,
                    MeshError::EmptySchedule => 6,
                    MeshError::MixedBatchSides { .. } => 7,
                    MeshError::InvalidFaultRate { .. } => 8,
                    MeshError::ScheduleShapeMismatch { .. } => 9,
                }
            }
            Error::Verify(e) => {
                200 + match e {
                    VerifyError::CycleLengthMismatch { .. } => 0,
                    VerifyError::IndexOutOfBounds { .. } => 1,
                    VerifyError::DegenerateComparator { .. } => 2,
                    VerifyError::DuplicateCell { .. } => 3,
                    VerifyError::NotMeshAdjacent { .. } => 4,
                    VerifyError::WrapNotAllowed { .. } => 5,
                    VerifyError::DirectionInconsistent { .. } => 6,
                    VerifyError::IrMissingComparator { .. } => 7,
                    VerifyError::IrExtraComparator { .. } => 8,
                    VerifyError::IrComparisonCountMismatch { .. } => 9,
                }
            }
            Error::Optimizer(e) => {
                300 + match e {
                    OptError::Mesh(_) => 0,
                    OptError::UnprovableConvergence { .. } => 1,
                    OptError::StrippedSetMismatch { .. } => 2,
                    OptError::StrippedWireLive { .. } => 3,
                    OptError::Structural(_) => 4,
                    OptError::IrConformance(_) => 5,
                    OptError::SortedNotFixedPoint { .. } => 6,
                    OptError::BoundMismatch { .. } => 7,
                    OptError::BoundExceedsBudget { .. } => 8,
                    OptError::Lift(_) => 9,
                    OptError::LiftUnverifiable => 10,
                }
            }
            Error::InvalidJob { .. } => 400,
            Error::QueueFull { .. } => 503,
            Error::DeadlineExceeded { .. } => 504,
        }
    }

    /// Short machine-friendly label of the error family, for log lines
    /// and metrics route keys.
    pub fn family(&self) -> &'static str {
        match self {
            Error::Mesh(_) => "mesh",
            Error::Verify(_) => "verify",
            Error::Optimizer(_) => "optimizer",
            Error::InvalidJob { .. } => "invalid-job",
            Error::QueueFull { .. } => "queue-full",
            Error::DeadlineExceeded { .. } => "deadline",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Mesh(e) => write!(f, "{e}"),
            Error::Verify(e) => write!(f, "{e}"),
            Error::Optimizer(e) => write!(f, "{e}"),
            Error::InvalidJob { reason } => write!(f, "invalid sort job: {reason}"),
            Error::QueueFull { capacity } => {
                write!(f, "service queue full (capacity {capacity}); retry with backoff")
            }
            Error::DeadlineExceeded { deadline_ms, waited_ms } => {
                write!(
                    f,
                    "deadline exceeded: {deadline_ms} ms budget, waited {waited_ms} ms before \
                     execution could start"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Mesh(e) => Some(e),
            Error::Verify(e) => Some(e),
            Error::Optimizer(e) => Some(e),
            Error::InvalidJob { .. } | Error::QueueFull { .. } | Error::DeadlineExceeded { .. } => {
                None
            }
        }
    }
}

/// Unwraps the [`Error::Mesh`] case for the deprecated legacy shims,
/// whose signatures still return bare [`MeshError`]s. The shims only
/// build jobs that cannot produce any other family (sides come from the
/// grids themselves), so anything else is a shim bug.
///
/// # Panics
///
/// If `err` is not [`Error::Mesh`].
pub(crate) fn demote_to_mesh(err: Error) -> MeshError {
    match err {
        Error::Mesh(e) => e,
        other => unreachable!("legacy shim surfaced a non-mesh error: {other}"),
    }
}

impl From<MeshError> for Error {
    fn from(e: MeshError) -> Self {
        Error::Mesh(e)
    }
}

impl From<VerifyError> for Error {
    fn from(e: VerifyError) -> Self {
        Error::Verify(e)
    }
}

impl From<OptError> for Error {
    fn from(e: OptError) -> Self {
        Error::Optimizer(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        // The wire protocol serializes these; the pairs below are frozen.
        assert_eq!(Error::Mesh(MeshError::BadDimensions { side: 2, len: 3 }).code(), 100);
        assert_eq!(Error::Mesh(MeshError::ZeroSide).code(), 101);
        assert_eq!(
            Error::Mesh(MeshError::UnsupportedSide { side: 3, requirement: "even" }).code(),
            105
        );
        assert_eq!(Error::Mesh(MeshError::MixedBatchSides { expected: 4, found: 8 }).code(), 107);
        assert_eq!(
            Error::Verify(VerifyError::CycleLengthMismatch { expected: 4, got: 3 }).code(),
            200
        );
        assert_eq!(
            Error::Verify(VerifyError::IrComparisonCountMismatch { step: 0, plan: 1, compiled: 2 })
                .code(),
            209
        );
        assert_eq!(Error::Optimizer(OptError::Mesh(MeshError::ZeroSide)).code(), 300);
        assert_eq!(Error::Optimizer(OptError::UnprovableConvergence { missing: 1 }).code(), 301);
        assert_eq!(
            Error::Optimizer(OptError::BoundExceedsBudget { bound: 9, budget: 8 }).code(),
            308
        );
        assert_eq!(Error::InvalidJob { reason: String::new() }.code(), 400);
        assert_eq!(Error::QueueFull { capacity: 64 }.code(), 503);
        assert_eq!(Error::DeadlineExceeded { deadline_ms: 10, waited_ms: 12 }.code(), 504);
    }

    #[test]
    fn codes_are_unique_per_variant() {
        let mesh = [
            MeshError::BadDimensions { side: 2, len: 3 },
            MeshError::ZeroSide,
            MeshError::IndexOutOfRange { index: 0, cells: 0 },
            MeshError::OverlappingComparators { index: 0 },
            MeshError::DegenerateComparator { index: 0 },
            MeshError::UnsupportedSide { side: 3, requirement: "even" },
            MeshError::EmptySchedule,
            MeshError::MixedBatchSides { expected: 4, found: 8 },
            MeshError::InvalidFaultRate { param: "drop_rate" },
            MeshError::ScheduleShapeMismatch { plans: 1, compiled: 2 },
        ];
        let mut seen = std::collections::BTreeSet::new();
        for e in mesh {
            let code = Error::from(e).code();
            assert!((100..200).contains(&code));
            assert!(seen.insert(code), "duplicate code {code}");
        }
    }

    #[test]
    fn from_impls_preserve_the_source() {
        let e = Error::from(MeshError::ZeroSide);
        assert_eq!(e, Error::Mesh(MeshError::ZeroSide));
        let v = VerifyError::CycleLengthMismatch { expected: 4, got: 3 };
        assert_eq!(Error::from(v.clone()), Error::Verify(v));
        let o = OptError::UnprovableConvergence { missing: 2 };
        assert_eq!(Error::from(o.clone()), Error::Optimizer(o));
    }

    #[test]
    fn display_and_source_chain() {
        let e = Error::Mesh(MeshError::ZeroSide);
        assert!(e.to_string().contains("at least 1"));
        assert!(std::error::Error::source(&e).is_some());
        let q = Error::QueueFull { capacity: 16 };
        assert!(q.to_string().contains("capacity 16"));
        assert!(std::error::Error::source(&q).is_none());
        assert_eq!(q.family(), "queue-full");
        let j = Error::InvalidJob { reason: "side 0".into() };
        assert!(j.to_string().contains("side 0"));
        assert_eq!(j.family(), "invalid-job");
        let d = Error::DeadlineExceeded { deadline_ms: 50, waited_ms: 80 };
        assert!(d.to_string().contains("50 ms budget"));
        assert!(d.to_string().contains("waited 80 ms"));
        assert_eq!(d.family(), "deadline");
        assert!(std::error::Error::source(&d).is_none());
    }
}
