//! Process-wide schedule cache.
//!
//! Compiling an algorithm's cycle ([`AlgorithmId::schedule`]) builds the
//! step plans *and* lowers each to its branchless
//! [`meshsort_mesh::CompiledPlan`] segment IR. That cost is pure overhead
//! when repeated: every Monte-Carlo trial of an experiment sweeps the same
//! `(algorithm, side)` pairs, and the batched engine shards one logical
//! batch across worker threads that all step the *same* plan. This module
//! memoizes the compiled [`CycleSchedule`]s behind `Arc`s keyed by
//! `(algorithm, side)`, so every runner entry point shares one immutable
//! compiled plan per geometry for the lifetime of the process.
//!
//! Schedules are immutable after construction and the cache never evicts:
//! the universe of keys is five algorithms × the handful of sides a
//! process touches, a few kilobytes each.

use crate::algorithm::AlgorithmId;
use meshsort_mesh::{CycleSchedule, MeshError};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

type PlanCache = HashMap<(AlgorithmId, usize), Arc<CycleSchedule>>;

static CACHE: OnceLock<Mutex<PlanCache>> = OnceLock::new();

/// Returns the shared compiled schedule for `(algorithm, side)`, compiling
/// and caching it on first use. Subsequent calls for the same key return a
/// clone of the same `Arc` — never a recompilation (pinned by tests and
/// measured by `bench_plan_cache`).
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] when the algorithm is not defined for
/// `side` (row-major algorithms on odd sides). Errors are not cached; a
/// failing key re-validates on each call.
pub fn schedule_for(algorithm: AlgorithmId, side: usize) -> Result<Arc<CycleSchedule>, MeshError> {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    match map.entry((algorithm, side)) {
        Entry::Occupied(e) => Ok(Arc::clone(e.get())),
        Entry::Vacant(v) => {
            let schedule = Arc::new(algorithm.schedule(side)?);
            Ok(Arc::clone(v.insert(schedule)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_shared_plan() {
        let a = schedule_for(AlgorithmId::SnakeAlternating, 6).unwrap();
        let b = schedule_for(AlgorithmId::SnakeAlternating, 6).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must not recompile");
        assert_eq!(*a, AlgorithmId::SnakeAlternating.schedule(6).unwrap());
    }

    #[test]
    fn cache_keys_are_per_algorithm_and_side() {
        let a = schedule_for(AlgorithmId::SnakeAlternating, 4).unwrap();
        let b = schedule_for(AlgorithmId::SnakePhaseAligned, 4).unwrap();
        let c = schedule_for(AlgorithmId::SnakeAlternating, 8).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn unsupported_side_is_not_cached() {
        for _ in 0..2 {
            assert!(matches!(
                schedule_for(AlgorithmId::RowMajorRowFirst, 5),
                Err(MeshError::UnsupportedSide { side: 5, .. })
            ));
        }
    }
}
