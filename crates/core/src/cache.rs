//! Process-wide schedule cache.
//!
//! Compiling an algorithm's cycle ([`AlgorithmId::schedule`]) builds the
//! step plans *and* lowers each to its branchless
//! [`meshsort_mesh::CompiledPlan`] segment IR. That cost is pure overhead
//! when repeated: every Monte-Carlo trial of an experiment sweeps the same
//! `(algorithm, side)` pairs, and the batched engine shards one logical
//! batch across worker threads that all step the *same* plan. This module
//! memoizes the compiled [`CycleSchedule`]s behind `Arc`s keyed by
//! `(algorithm, side)`, so every runner entry point shares one immutable
//! compiled plan per geometry for the lifetime of the process.
//!
//! Schedules are immutable after construction and the cache never evicts:
//! the universe of keys is five algorithms × the handful of sides a
//! process touches, a few kilobytes each.

use crate::algorithm::AlgorithmId;
use meshsort_mesh::absint::lift;
use meshsort_mesh::{opt, CycleSchedule, MeshError, OptimizedPlan};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

type PlanCache = HashMap<(AlgorithmId, usize), Arc<CycleSchedule>>;

static CACHE: OnceLock<Mutex<PlanCache>> = OnceLock::new();

type OptCache = HashMap<(AlgorithmId, usize), Arc<OptimizedPlan>>;

static OPT_CACHE: OnceLock<Mutex<OptCache>> = OnceLock::new();

type BoundCache = HashMap<(AlgorithmId, usize), u64>;

static BOUND_CACHE: OnceLock<Mutex<BoundCache>> = OnceLock::new();

/// Returns the shared compiled schedule for `(algorithm, side)`, compiling
/// and caching it on first use. Subsequent calls for the same key return a
/// clone of the same `Arc` — never a recompilation (pinned by tests and
/// measured by `bench_plan_cache`).
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] when the algorithm is not defined for
/// `side` (row-major algorithms on odd sides). Errors are not cached; a
/// failing key re-validates on each call.
pub fn schedule_for(algorithm: AlgorithmId, side: usize) -> Result<Arc<CycleSchedule>, MeshError> {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    match map.entry((algorithm, side)) {
        Entry::Occupied(e) => Ok(Arc::clone(e.get())),
        Entry::Vacant(v) => {
            let schedule = Arc::new(algorithm.schedule(side)?);
            Ok(Arc::clone(v.insert(schedule)))
        }
    }
}

/// Returns the shared dead-wire-stripped [`OptimizedPlan`] for
/// `(algorithm, side)`, deriving it from the raw cached schedule via
/// [`opt::optimize`] on first use. As with [`schedule_for`], every later
/// call returns a clone of the same `Arc`.
///
/// The optimizer's output is *claimed* correct; `meshsort-analyze`'s
/// `optimizer_equivalence` pass certifies the claim for the canonical
/// algorithms (CI gates sides 4, 5, 8), and the differential suite pins
/// optimized runs bit-identical to raw runs.
///
/// # Errors
///
/// [`MeshError::UnsupportedSide`] as for [`schedule_for`]. Errors are not
/// cached.
///
/// # Panics
///
/// If optimization fails — impossible for the five canonical schedules,
/// whose static convergence the dataflow pass certifies.
pub fn optimized_for(algorithm: AlgorithmId, side: usize) -> Result<Arc<OptimizedPlan>, MeshError> {
    let cache = OPT_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    match map.entry((algorithm, side)) {
        Entry::Occupied(e) => Ok(Arc::clone(e.get())),
        Entry::Vacant(v) => {
            algorithm.schedule(side)?;
            let optimized =
                opt::optimize_with_family(&|s| algorithm.schedule(s), algorithm.order(), side)
                    .expect(
                        "canonical schedules optimize: convergence certified by the dataflow pass",
                    );
            Ok(Arc::clone(v.insert(Arc::new(optimized))))
        }
    }
}

/// Returns the statically proven convergence bound of the **raw**
/// schedule for `(algorithm, side)` — the first step at which the
/// dataflow fixpoint proves every input sorted — computing and caching it
/// on first use. Optimized runs are step-for-step identical to raw runs,
/// so the same bound caps both.
///
/// Up to [`opt::exact_bound_max_side`] the bound is the exact worklist
/// fixpoint; above it, up to
/// [`meshsort_mesh::absint::lift::LIFT_MAX_SIDE`], it is the lifted bound
/// of a periodicity certificate re-verified here before being cached —
/// no lifted bound ships unproven.
///
/// `None` when the algorithm does not support the side, when the side
/// exceeds the liftable range, or when convergence is unprovable (and
/// lifting unavailable); callers fall back to the Θ(N) budget.
pub fn static_bound_for(algorithm: AlgorithmId, side: usize) -> Option<u64> {
    if side > lift::LIFT_MAX_SIDE || !algorithm.supports_side(side) {
        return None;
    }
    let cache = BOUND_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    match map.entry((algorithm, side)) {
        Entry::Occupied(e) => Some(*e.get()),
        Entry::Vacant(v) => {
            let bound = if side <= opt::exact_bound_max_side() {
                let schedule = algorithm.schedule(side).ok()?;
                let summary = meshsort_mesh::absint::analyze_schedule_worklist(
                    &schedule,
                    algorithm.order(),
                    side,
                );
                summary.converged_step?
            } else {
                let family = |s: usize| algorithm.schedule(s);
                let cert = lift::lift_schedule(&family, algorithm.order(), side).ok()?;
                lift::verify_certificate(&family, algorithm.order(), &cert).ok()?;
                cert.bound
            };
            Some(*v.insert(bound))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_shared_plan() {
        let a = schedule_for(AlgorithmId::SnakeAlternating, 6).unwrap();
        let b = schedule_for(AlgorithmId::SnakeAlternating, 6).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must not recompile");
        assert_eq!(*a, AlgorithmId::SnakeAlternating.schedule(6).unwrap());
    }

    #[test]
    fn cache_keys_are_per_algorithm_and_side() {
        let a = schedule_for(AlgorithmId::SnakeAlternating, 4).unwrap();
        let b = schedule_for(AlgorithmId::SnakePhaseAligned, 4).unwrap();
        let c = schedule_for(AlgorithmId::SnakeAlternating, 8).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn optimized_cache_returns_shared_plan() {
        let a = optimized_for(AlgorithmId::SnakePhaseAligned, 8).unwrap();
        let b = optimized_for(AlgorithmId::SnakePhaseAligned, 8).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must not re-optimize");
        assert_eq!(a.stripped.len(), 21, "S3 side 8 strips 21 dead wires");
        assert!(matches!(
            optimized_for(AlgorithmId::RowMajorColFirst, 5),
            Err(MeshError::UnsupportedSide { side: 5, .. })
        ));
    }

    #[test]
    fn static_bound_gates_and_caches() {
        let bound = static_bound_for(AlgorithmId::SnakePhaseAligned, 8).unwrap();
        assert_eq!(bound, 127, "pinned by the dataflow fixpoint");
        assert_eq!(static_bound_for(AlgorithmId::SnakePhaseAligned, 8), Some(bound));
        // Above the liftable range and on unsupported sides: no bound.
        assert_eq!(static_bound_for(AlgorithmId::SnakePhaseAligned, 512), None);
        assert_eq!(static_bound_for(AlgorithmId::RowMajorRowFirst, 5), None);
    }

    #[test]
    fn static_bound_lifts_above_the_exact_gate() {
        // Side 64 sits above the exact-fixpoint cutoff: the bound comes
        // from a verified periodicity certificate. S3's lifted quadratic
        // is exact: 2·64² − 1.
        let bound = static_bound_for(AlgorithmId::SnakePhaseAligned, 64).unwrap();
        assert_eq!(bound, 8191, "pinned by the lifted closed form 2s^2 - 1");
        let plan = optimized_for(AlgorithmId::SnakePhaseAligned, 64).unwrap();
        let cert = plan.lift.as_ref().expect("bound above the gate must carry a certificate");
        assert_eq!(cert.bound, plan.static_bound);
    }

    #[test]
    fn unsupported_side_is_not_cached() {
        for _ in 0..2 {
            assert!(matches!(
                schedule_for(AlgorithmId::RowMajorRowFirst, 5),
                Err(MeshError::UnsupportedSide { side: 5, .. })
            ));
        }
    }
}
