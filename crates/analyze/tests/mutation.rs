//! Mutation tests: corrupt a valid schedule and assert `meshcheck`
//! rejects each corruption with the *specific* diagnostic, never a
//! generic failure. This is the negative half of the certification — the
//! positive half (all five algorithms pass) lives in the crate tests and
//! `meshsort analyze`.
//!
//! Mutations operate on raw comparator lists via `verify_step` /
//! `verify_ir`, because `StepPlan::new` and `CycleSchedule::new` already
//! refuse the grossest corruptions at construction time; the verifier
//! must catch them independently so it can vet schedules from *any*
//! source (deserialized, generated, fault-injected).

use meshsort_analyze::{dataflow_pass, optimizer_equivalence_pass, PassOutcome};
use meshsort_core::AlgorithmId;
use meshsort_mesh::verify::{self, VerifyError};
use meshsort_mesh::{
    opt, Comparator, CompiledPlan, CycleSchedule, DeadWire, OptimizedPlan, StepPlan,
};

/// Tiny deterministic LCG (Numerical Recipes constants) so the mutation
/// sites vary across steps/comparators without a `rand` dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next() % n as u64) as usize
    }
}

/// Every (algorithm, side) pair the suite mutates: even and odd sides,
/// all five algorithms where defined.
fn subjects() -> Vec<(AlgorithmId, usize, CycleSchedule)> {
    let mut out = Vec::new();
    for a in AlgorithmId::ALL {
        for side in [4, 5, 6] {
            if a.supports_side(side) {
                out.push((a, side, a.schedule(side).unwrap()));
            }
        }
    }
    out
}

/// Picks a step that has at least one comparator.
fn nonempty_step(rng: &mut Lcg, schedule: &CycleSchedule) -> usize {
    loop {
        let s = rng.below(schedule.cycle_len());
        if !schedule.plans()[s].is_empty() {
            return s;
        }
    }
}

#[test]
fn unmutated_schedules_pass() {
    for (a, side, schedule) in subjects() {
        let policy = a.schedule_policy(side);
        verify::verify_schedule(&schedule, &policy)
            .unwrap_or_else(|e| panic!("{a} side {side}: {e}"));
    }
}

#[test]
fn duplicate_cell_rejected() {
    let mut rng = Lcg(0xD0_01);
    for (a, side, schedule) in subjects() {
        let policy = a.schedule_policy(side);
        let step = nonempty_step(&mut rng, &schedule);
        let mut comparators = schedule.plans()[step].comparators().to_vec();
        // Re-adding an existing comparator touches both its cells twice.
        let dup = comparators[rng.below(comparators.len())];
        comparators.push(dup);
        match verify::verify_step(step, &comparators, &policy) {
            Err(VerifyError::DuplicateCell { step: s, cell }) => {
                assert_eq!(s, step, "{a} side {side}");
                assert!(
                    cell == dup.keep_min || cell == dup.keep_max,
                    "{a} side {side}: reported cell {cell} is not part of the duplicate"
                );
            }
            other => panic!("{a} side {side}: expected DuplicateCell, got {other:?}"),
        }
    }
}

#[test]
fn out_of_bounds_index_rejected() {
    let mut rng = Lcg(0xD0_02);
    for (a, side, schedule) in subjects() {
        let policy = a.schedule_policy(side);
        let cells = side * side;
        let step = nonempty_step(&mut rng, &schedule);
        let mut comparators = schedule.plans()[step].comparators().to_vec();
        let victim = rng.below(comparators.len());
        comparators[victim].keep_max = cells as u32; // one past the end
        match verify::verify_step(step, &comparators, &policy) {
            Err(VerifyError::IndexOutOfBounds { step: s, index, cells: c }) => {
                assert_eq!(s, step, "{a} side {side}");
                assert_eq!(index, cells as u32);
                assert_eq!(c, cells);
            }
            other => panic!("{a} side {side}: expected IndexOutOfBounds, got {other:?}"),
        }
    }
}

#[test]
fn degenerate_comparator_rejected() {
    for (a, side, schedule) in subjects() {
        let policy = a.schedule_policy(side);
        let step = 0;
        let mut comparators = schedule.plans()[step].comparators().to_vec();
        let cell = comparators[0].keep_min;
        comparators[0].keep_max = cell;
        match verify::verify_step(step, &comparators, &policy) {
            Err(VerifyError::DegenerateComparator { step: 0, cell: c }) => {
                assert_eq!(c, cell, "{a} side {side}");
            }
            other => panic!("{a} side {side}: expected DegenerateComparator, got {other:?}"),
        }
    }
}

#[test]
fn non_neighbor_pair_rejected() {
    for (a, side, _) in subjects() {
        let policy = a.schedule_policy(side);
        // A lone comparator spanning two rows vertically-but-not-adjacent:
        // (0,0) and (2,0) — manhattan distance 2, not a wrap pair either.
        let far = (2 * side) as u32;
        let comparators = [Comparator::new(0, far)];
        match verify::verify_step(0, &comparators, &policy) {
            Err(VerifyError::NotMeshAdjacent { step: 0, keep_min: 0, keep_max }) => {
                assert_eq!(keep_max, far, "{a} side {side}");
            }
            other => panic!("{a} side {side}: expected NotMeshAdjacent, got {other:?}"),
        }
    }
}

#[test]
fn flipped_direction_rejected() {
    // The direction invariant is universal: flipping ANY comparator of ANY
    // step of ANY of the five schedules must trip DirectionInconsistent,
    // because every legal wire keeps the minimum at the lower target rank.
    for (a, side, schedule) in subjects() {
        let policy = a.schedule_policy(side);
        for step in 0..schedule.cycle_len() {
            let original = schedule.plans()[step].comparators();
            for victim in 0..original.len() {
                let mut comparators = original.to_vec();
                let c = comparators[victim];
                comparators[victim] = Comparator::new(c.keep_max, c.keep_min);
                match verify::verify_step(step, &comparators, &policy) {
                    Err(VerifyError::DirectionInconsistent { step: s, keep_min, keep_max }) => {
                        assert_eq!(s, step);
                        assert_eq!(
                            (keep_min, keep_max),
                            (c.keep_max, c.keep_min),
                            "{a} side {side}"
                        );
                    }
                    other => panic!(
                        "{a} side {side} step {step} comparator {victim}: \
                         expected DirectionInconsistent, got {other:?}"
                    ),
                }
            }
        }
    }
}

#[test]
fn wrap_wire_on_mesh_only_step_rejected() {
    // Move R1/R2's wrap-carrying plan to a step whose policy admits only
    // mesh edges: the wrap wire itself must be named in the diagnostic.
    for a in AlgorithmId::ROW_MAJOR {
        let side = 6;
        let schedule = a.schedule(side).unwrap();
        let policy = a.schedule_policy(side);
        let wrap_step = a.wrap_step_index().unwrap();
        let mesh_only_step = (wrap_step + 1) % schedule.cycle_len();
        let comparators = schedule.plans()[wrap_step].comparators();
        match verify::verify_step(mesh_only_step, comparators, &policy) {
            Err(VerifyError::WrapNotAllowed { step, keep_min, keep_max }) => {
                assert_eq!(step, mesh_only_step, "{a}");
                // The named wire really is a wrap pair: consecutive flat
                // indices across a row boundary.
                let (lo, hi) = (keep_min.min(keep_max), keep_min.max(keep_max));
                assert_eq!(hi, lo + 1, "{a}");
                assert_eq!(lo as usize % side, side - 1, "{a}");
            }
            other => panic!("{a}: expected WrapNotAllowed, got {other:?}"),
        }
    }
}

#[test]
fn dropped_ir_segment_rejected() {
    let mut rng = Lcg(0xD0_03);
    for (a, side, schedule) in subjects() {
        let step = nonempty_step(&mut rng, &schedule);
        let plan = &schedule.plans()[step];
        let mut reduced = plan.comparators().to_vec();
        let dropped = reduced.remove(rng.below(reduced.len()));
        let reduced_plan = StepPlan::new(reduced).unwrap();
        let corrupted_ir = CompiledPlan::compile(&reduced_plan);
        match verify::verify_ir(step, plan, &corrupted_ir) {
            Err(VerifyError::IrMissingComparator { step: s, keep_min, keep_max }) => {
                assert_eq!(s, step, "{a} side {side}");
                assert_eq!((keep_min, keep_max), (dropped.keep_min, dropped.keep_max));
            }
            other => panic!("{a} side {side}: expected IrMissingComparator, got {other:?}"),
        }
    }
}

#[test]
fn extra_ir_comparator_rejected() {
    let mut rng = Lcg(0xD0_04);
    for (a, side, schedule) in subjects() {
        let step = nonempty_step(&mut rng, &schedule);
        let plan = &schedule.plans()[step];
        if plan.len() < 2 {
            continue;
        }
        // The IR carries one comparator more than the (reduced) plan.
        let mut reduced = plan.comparators().to_vec();
        let extra = reduced.remove(rng.below(reduced.len()));
        let reduced_plan = StepPlan::new(reduced).unwrap();
        let full_ir = CompiledPlan::compile(plan);
        match verify::verify_ir(step, &reduced_plan, &full_ir) {
            Err(VerifyError::IrExtraComparator { step: s, keep_min, keep_max }) => {
                assert_eq!(s, step, "{a} side {side}");
                assert_eq!((keep_min, keep_max), (extra.keep_min, extra.keep_max));
            }
            other => panic!("{a} side {side}: expected IrExtraComparator, got {other:?}"),
        }
    }
}

#[test]
fn ir_direction_flip_rejected() {
    // A flipped comparator inside the IR is both "missing" (the original)
    // and "extra" (the flip); the dual-walk reports the first divergence
    // in (keep_min, keep_max) order — either way the step must fail.
    let mut rng = Lcg(0xD0_05);
    for (a, side, schedule) in subjects() {
        let step = nonempty_step(&mut rng, &schedule);
        let plan = &schedule.plans()[step];
        let mut flipped = plan.comparators().to_vec();
        let victim = rng.below(flipped.len());
        let c = flipped[victim];
        flipped[victim] = Comparator::new(c.keep_max, c.keep_min);
        let flipped_plan = StepPlan::new(flipped).unwrap();
        let flipped_ir = CompiledPlan::compile(&flipped_plan);
        let err = verify::verify_ir(step, plan, &flipped_ir)
            .expect_err("flipped IR comparator must be rejected");
        assert!(
            matches!(
                err,
                VerifyError::IrMissingComparator { .. } | VerifyError::IrExtraComparator { .. }
            ),
            "{a} side {side}: got {err:?}"
        );
    }
}

#[test]
fn randomized_single_mutations_always_rejected() {
    // Sweep: many random (subject, step, comparator, mutation-kind)
    // draws; every single mutation must be rejected while the pristine
    // step continues to pass.
    let mut rng = Lcg(0x5EED);
    let subjects = subjects();
    for _ in 0..400 {
        let (a, side, schedule) = &subjects[rng.below(subjects.len())];
        let policy = a.schedule_policy(*side);
        let step = nonempty_step(&mut rng, schedule);
        let pristine = schedule.plans()[step].comparators();
        verify::verify_step(step, pristine, &policy).expect("pristine step must pass");
        let mut comparators = pristine.to_vec();
        let victim = rng.below(comparators.len());
        let kind = rng.below(4);
        match kind {
            0 => comparators.push(comparators[victim]),
            1 => comparators[victim].keep_max = (side * side) as u32 + rng.next() as u32 % 7,
            2 => {
                let c = comparators[victim];
                comparators[victim] = Comparator::new(c.keep_max, c.keep_min);
            }
            _ => {
                let c = comparators[victim].keep_min;
                comparators[victim].keep_max = c;
            }
        }
        let err = verify::verify_step(step, &comparators, &policy)
            .expect_err("mutated step must be rejected");
        let expected = match kind {
            0 => matches!(err, VerifyError::DuplicateCell { .. }),
            1 => matches!(err, VerifyError::IndexOutOfBounds { .. }),
            2 => matches!(err, VerifyError::DirectionInconsistent { .. }),
            _ => matches!(err, VerifyError::DegenerateComparator { .. }),
        };
        assert!(expected, "{a} side {side} step {step} mutation {kind}: got {err:?}");
    }
}

/// A wire joining flat-adjacent cells of the same row (never a vertical
/// or wrap pair).
fn is_row_wire(c: Comparator, side: usize) -> bool {
    let (lo, hi) = (c.keep_min.min(c.keep_max) as usize, c.keep_min.max(c.keep_max) as usize);
    hi == lo + 1 && lo % side != side - 1
}

#[test]
fn injected_dead_comparator_caught_by_dataflow() {
    // Re-executing a step-0 comparator on step 1 (evicting the step-1
    // wires that touch its cells) keeps every pass-1 invariant the
    // structural verifier checks — in-bounds, disjoint, mesh-adjacent,
    // direction-consistent — but the wire can never swap: step 0 just
    // established its ordering fact. Only the dataflow pass sees it.
    for (a, side, schedule) in subjects() {
        let injected = schedule.plans()[0].comparators()[0];
        let mut plans = schedule.plans().to_vec();
        let mut survivors: Vec<Comparator> = plans[1]
            .comparators()
            .iter()
            .copied()
            .filter(|c| {
                c.keep_min != injected.keep_min
                    && c.keep_min != injected.keep_max
                    && c.keep_max != injected.keep_min
                    && c.keep_max != injected.keep_max
            })
            .collect();
        survivors.push(injected);
        plans[1] = StepPlan::new(survivors).unwrap();
        let mutated = CycleSchedule::new(plans, side * side).unwrap();
        match dataflow_pass(a, side, &mutated) {
            PassOutcome::Failed { diagnostic } => {
                assert!(diagnostic.contains("is dead"), "{a} side {side}: {diagnostic}");
                assert!(diagnostic.contains("not predicted"), "{a} side {side}: {diagnostic}");
                assert!(
                    diagnostic.contains(&format!("{}->{}", injected.keep_min, injected.keep_max)),
                    "{a} side {side}: {diagnostic}"
                );
            }
            other => panic!("{a} side {side}: expected dead-comparator failure, got {other}"),
        }
    }
}

#[test]
fn flipped_direction_caught_by_dataflow_as_sorted_fixed_point_break() {
    // The structural pass rejects flips syntactically (direction table);
    // the dataflow pass must catch the same corruption *semantically* —
    // the sorted state stops being a fixed point — so it still protects
    // schedules vetted under a policy that missed the flip.
    let mut rng = Lcg(0xD0_06);
    for (a, side, schedule) in subjects() {
        let step = nonempty_step(&mut rng, &schedule);
        let mut plans = schedule.plans().to_vec();
        let mut comparators = plans[step].comparators().to_vec();
        let victim = rng.below(comparators.len());
        let c = comparators[victim];
        comparators[victim] = Comparator::new(c.keep_max, c.keep_min);
        plans[step] = StepPlan::new(comparators).unwrap();
        let mutated = CycleSchedule::new(plans, side * side).unwrap();
        match dataflow_pass(a, side, &mutated) {
            PassOutcome::Failed { diagnostic } => {
                assert!(
                    diagnostic.contains("can swap on a sorted grid"),
                    "{a} side {side}: {diagnostic}"
                );
                assert!(
                    diagnostic.contains(&format!("step {step}")),
                    "{a} side {side}: {diagnostic}"
                );
                assert!(
                    diagnostic.contains(&format!("{}->{}", c.keep_max, c.keep_min)),
                    "{a} side {side}: {diagnostic}"
                );
            }
            other => panic!("{a} side {side}: expected sorted-fixed-point break, got {other}"),
        }
    }
}

#[test]
fn truncated_column_phases_caught_by_dataflow() {
    // Keeping only the row phases of a snake schedule truncates the
    // column phases entirely: rows sort but never merge, and the
    // fixpoint cannot prove the target-order chain.
    for a in AlgorithmId::SNAKE {
        for side in [4, 5] {
            let schedule = a.schedule(side).unwrap();
            let rows_only: Vec<StepPlan> = schedule
                .plans()
                .iter()
                .filter(|p| p.comparators().iter().all(|&c| is_row_wire(c, side)))
                .cloned()
                .collect();
            assert!(!rows_only.is_empty() && rows_only.len() < schedule.cycle_len());
            let truncated = CycleSchedule::new(rows_only, side * side).unwrap();
            match dataflow_pass(a, side, &truncated) {
                PassOutcome::Failed { diagnostic } => {
                    assert!(
                        diagnostic.contains("convergence unprovable"),
                        "{a} side {side}: {diagnostic}"
                    );
                    assert!(
                        diagnostic.contains("chain links unproven"),
                        "{a} side {side}: {diagnostic}"
                    );
                }
                other => panic!("{a} side {side}: expected unprovable convergence, got {other}"),
            }
        }
    }
}

#[test]
fn pristine_schedules_pass_dataflow() {
    // The negative tests above are meaningful only if the unmutated
    // schedules sail through the same pass.
    for (a, side, schedule) in subjects() {
        match dataflow_pass(a, side, &schedule) {
            PassOutcome::Passed { .. } => {}
            other => panic!("{a} side {side}: {other}"),
        }
    }
}

/// S3 at side 4: the smallest canonical schedule with dead wires (3 on
/// the repeat column step), so optimizer corruptions have live *and*
/// stripped comparators to aim at, and the equivalence pass still runs
/// its exhaustive 0-1 sweep.
fn optimizer_subject() -> (AlgorithmId, usize, CycleSchedule, OptimizedPlan) {
    let a = AlgorithmId::SnakePhaseAligned;
    let side = 4;
    let raw = a.schedule(side).unwrap();
    let optimized = opt::optimize(&raw, a.order(), side).unwrap();
    assert_eq!(optimized.stripped.len(), 3, "S3 side 4 strips 3 dead wires");
    (a, side, raw, optimized)
}

#[test]
fn pristine_optimized_plan_passes_equivalence() {
    // The negative optimizer tests below are meaningful only if the
    // honest plan sails through the same pass.
    let (a, side, raw, optimized) = optimizer_subject();
    match optimizer_equivalence_pass(a, side, &raw, &optimized) {
        PassOutcome::Passed { detail } => {
            assert!(detail.contains("3 dead comparators stripped"), "{detail}");
        }
        other => panic!("expected pass, got {other}"),
    }
}

#[test]
fn optimizer_live_wire_wrongly_stripped_caught() {
    // Strip a genuinely live step-0 comparator and claim it dead. The
    // comparator multiset accounting still balances (the wire is in the
    // stripped list), so only the deadness re-proof on the raw schedule
    // can catch the lie.
    let (a, side, raw, optimized) = optimizer_subject();
    let victim = raw.plans()[0].comparators()[0];
    let mut plans = optimized.schedule.plans().to_vec();
    let survivors: Vec<Comparator> =
        plans[0].comparators().iter().copied().filter(|c| *c != victim).collect();
    plans[0] = StepPlan::new(survivors).unwrap();
    let mut compiled = optimized.schedule.compiled_plans().to_vec();
    compiled[0] = CompiledPlan::compile_with_min_run(&plans[0], opt::OPT_MIN_RUN);
    let schedule = CycleSchedule::from_parts(plans, compiled, side * side).unwrap();
    let mut stripped = optimized.stripped.clone();
    stripped.push(DeadWire { step: 0, comparator: victim });
    let corrupted =
        OptimizedPlan { schedule, stripped, static_bound: optimized.static_bound, lift: None };
    match optimizer_equivalence_pass(a, side, &raw, &corrupted) {
        PassOutcome::Failed { diagnostic } => {
            assert!(diagnostic.contains("is live"), "{diagnostic}");
            assert!(diagnostic.contains("step 0"), "{diagnostic}");
        }
        other => panic!("expected live-wire rejection, got {other}"),
    }
}

#[test]
fn optimizer_mis_fused_stride_run_caught() {
    // Recompile one step's segment IR from a doctored plan missing its
    // first comparator: the step plans (and hence the structural pass
    // and the accounting) are untouched, but the IR no longer expands to
    // the plan's comparator multiset.
    let (a, side, raw, optimized) = optimizer_subject();
    let plans = optimized.schedule.plans().to_vec();
    let mut compiled = optimized.schedule.compiled_plans().to_vec();
    let doctored = StepPlan::new(plans[3].comparators()[1..].to_vec()).unwrap();
    compiled[3] = CompiledPlan::compile_with_min_run(&doctored, opt::OPT_MIN_RUN);
    let schedule = CycleSchedule::from_parts(plans, compiled, side * side).unwrap();
    let corrupted = OptimizedPlan {
        schedule,
        stripped: optimized.stripped.clone(),
        static_bound: optimized.static_bound,
        lift: None,
    };
    match optimizer_equivalence_pass(a, side, &raw, &corrupted) {
        PassOutcome::Failed { diagnostic } => {
            assert!(diagnostic.contains("mis-fused"), "{diagnostic}");
        }
        other => panic!("expected mis-fused-IR rejection, got {other}"),
    }
}

#[test]
fn optimizer_inflated_static_bound_caught() {
    // Claim a looser bound than the fixpoint re-derivation proves: the
    // certificate must reject the stale claim even though every run
    // would still finish inside it.
    let (a, side, raw, mut optimized) = optimizer_subject();
    optimized.static_bound += 4;
    match optimizer_equivalence_pass(a, side, &raw, &optimized) {
        PassOutcome::Failed { diagnostic } => {
            assert!(diagnostic.contains("inflated or stale"), "{diagnostic}");
        }
        other => panic!("expected inflated-bound rejection, got {other}"),
    }
}

/// Picks a step-0 comparator whose cells sit at least two periods from
/// every boundary, so both of its ±(2,0)/(0,2) translates are in-bounds
/// and — by the pristine schedule's periodicity — present in the step.
fn interior_comparator(schedule: &CycleSchedule, side: usize) -> Comparator {
    let interior = |cell: u32| {
        let (r, c) = (cell as usize / side, cell as usize % side);
        (4..side - 4).contains(&r) && (4..side - 4).contains(&c)
    };
    schedule.plans()[0]
        .comparators()
        .iter()
        .copied()
        .find(|c| interior(c.keep_min) && interior(c.keep_max))
        .expect("step 0 has an interior comparator at side 12")
}

#[test]
fn broken_period_schedule_rejected_by_lifting() {
    // Removing one interior comparator keeps the schedule structurally
    // legal (steps may be sparse) but breaks translation invariance: its
    // surviving translate, shifted back by one period, now lands on
    // nothing. The period check must name the violation rather than
    // silently fitting a window to a non-periodic family.
    use meshsort_mesh::absint::lift;
    let side = 12;
    for a in AlgorithmId::ALL {
        let pristine = a.schedule(side).unwrap();
        let victim = interior_comparator(&pristine, side);
        let mut plans = pristine.plans().to_vec();
        let survivors: Vec<Comparator> =
            plans[0].comparators().iter().copied().filter(|c| *c != victim).collect();
        plans[0] = StepPlan::new(survivors).unwrap();
        let mutated = CycleSchedule::new(plans, side * side).unwrap();
        let family =
            |s: usize| if s == side { Ok(mutated.clone()) } else { a.schedule(s) };
        match lift::lift_schedule(&family, a.order(), side) {
            Err(lift::LiftError::PeriodBroken { side: s, step, .. }) => {
                assert_eq!((s, step), (side, 0), "{a}");
            }
            other => panic!("{a}: expected PeriodBroken, got {other:?}"),
        }
    }
}

#[test]
fn forged_lift_bound_caught() {
    // A certificate whose bound is one step below the model's value is
    // unsound if accepted: a run could legally take the extra step. The
    // re-verifier must evaluate the fit itself, never trust the field.
    use meshsort_mesh::absint::lift;
    let a = AlgorithmId::SnakePhaseAligned;
    let family = |s: usize| a.schedule(s);
    let mut cert = lift::lift_schedule(&family, a.order(), 32).unwrap();
    assert_eq!(cert.bound, 2047, "S3's lifted closed form 2s^2 - 1 at side 32");
    cert.bound -= 1;
    let err = lift::verify_certificate(&family, a.order(), &cert)
        .expect_err("forged bound must be rejected");
    assert!(
        matches!(err, lift::LiftError::BoundMismatch { claimed: 2046, evaluated: 2047 }),
        "expected BoundMismatch, got {err:?}"
    );
    assert!(err.to_string().contains("lifted bound forged"), "{err}");
}

#[test]
fn forged_window_dead_set_caught() {
    // Dropping a boundary wire from one window sample would let a
    // corrupted certificate under-report dead wires at the small sides
    // the fit extrapolates from. The window recomputation must notice
    // the sample no longer matches its proven dead-wire set.
    use meshsort_mesh::absint::lift;
    let a = AlgorithmId::SnakePhaseAligned;
    let family = |s: usize| a.schedule(s);
    let mut cert = lift::lift_schedule(&family, a.order(), 16).unwrap();
    let sample = cert
        .window
        .iter_mut()
        .find(|w| !w.dead.is_empty())
        .expect("S3's window has dead wires from side 4 up");
    let window_side = sample.side;
    sample.dead.pop();
    let err = lift::verify_certificate(&family, a.order(), &cert)
        .expect_err("forged window dead set must be rejected");
    assert!(
        matches!(
            err,
            lift::LiftError::WindowDeadMismatch { window_side: ws, missing: 1, extra: 0 }
                if ws == window_side
        ),
        "expected WindowDeadMismatch at side {window_side}, got {err:?}"
    );
    assert!(
        err.to_string()
            .contains(&format!("window dead-wire set forged at side {window_side}")),
        "{err}"
    );
}

#[test]
fn cycle_length_mismatch_rejected() {
    let a = AlgorithmId::SnakeAlternating;
    let side = 4;
    let schedule = a.schedule(side).unwrap();
    // A policy describing a 5-step cycle must reject the 4-step schedule.
    let policy = verify::SchedulePolicy::mesh_only(side, a.order(), 5);
    match verify::verify_schedule_structural(&schedule, &policy) {
        Err(VerifyError::CycleLengthMismatch { expected: 5, got: 4 }) => {}
        other => panic!("expected CycleLengthMismatch, got {other:?}"),
    }
}
