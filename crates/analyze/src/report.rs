//! Report types for `meshcheck` and their machine-readable JSON form.
//!
//! The JSON is emitted by hand: the report shape is small, flat, and
//! stable, and keeping the emitter local means the certification tool has
//! no dependencies beyond the crates it certifies. Strings are escaped per
//! RFC 8259 (quote, backslash, and control characters).

use meshsort_core::AlgorithmId;
use std::fmt;

/// Outcome of one verification pass on one (algorithm, side) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassOutcome {
    /// The pass ran and the schedule satisfied it.
    Passed {
        /// Human-readable evidence, e.g. comparator counts or the number
        /// of 0-1 placements that converged.
        detail: String,
    },
    /// The pass does not apply to this pair (unsupported side, or a mesh
    /// too large for exhaustive 0-1 enumeration). Not a failure.
    Skipped {
        /// Why the pass did not run.
        reason: String,
    },
    /// The pass ran and found a violation.
    Failed {
        /// The specific diagnostic, e.g. a [`meshsort_mesh::VerifyError`]
        /// rendering.
        diagnostic: String,
    },
}

impl PassOutcome {
    /// `true` only for [`PassOutcome::Failed`].
    pub fn is_failure(&self) -> bool {
        matches!(self, PassOutcome::Failed { .. })
    }

    /// The JSON `status` string: `"passed"`, `"skipped"`, or `"failed"`.
    pub fn status(&self) -> &'static str {
        match self {
            PassOutcome::Passed { .. } => "passed",
            PassOutcome::Skipped { .. } => "skipped",
            PassOutcome::Failed { .. } => "failed",
        }
    }

    /// The accompanying detail / reason / diagnostic text.
    pub fn note(&self) -> &str {
        match self {
            PassOutcome::Passed { detail } => detail,
            PassOutcome::Skipped { reason } => reason,
            PassOutcome::Failed { diagnostic } => diagnostic,
        }
    }
}

impl fmt::Display for PassOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.status(), self.note())
    }
}

/// The eight `meshcheck` passes for one algorithm at one side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgorithmReport {
    /// Which of the five algorithms was analysed.
    pub algorithm: AlgorithmId,
    /// Mesh side the schedule was compiled for.
    pub side: usize,
    /// Provably dead comparators in the schedule's first cycle (the set
    /// the optimizer strips), or `None` when the schedule does not
    /// compile for this side.
    pub dead_wires: Option<usize>,
    /// The statically proven convergence bound of the schedule, or
    /// `None` when unavailable (unsupported side, or side above the
    /// exact-fixpoint gate where runners fall back to the Θ(N) budget).
    pub static_bound: Option<u64>,
    /// Structural pass: bounds, disjointness, adjacency, wrap policy,
    /// order-consistent comparator directions.
    pub structural: PassOutcome,
    /// IR conformance pass: `CompiledPlan::expand()` reproduces each
    /// `StepPlan` comparator multiset.
    pub ir: PassOutcome,
    /// Dataflow pass: 0-1 abstract interpretation proves convergence
    /// within the step budget, finds exactly the predicted dead
    /// comparators, and checks the phase-invariant catalog.
    pub dataflow: PassOutcome,
    /// Lifted-dataflow pass: the periodicity-lifting certificate
    /// (`meshsort_mesh::absint::lift`) is derived and re-verified, and
    /// cross-checked against the exact fixpoint on every side where both
    /// are affordable (equality for exact-model fits, domination for
    /// envelope fits).
    pub dataflow_lifted: PassOutcome,
    /// 0-1 certification pass: every 0-1 placement converges to the
    /// target order within the step cap (scalar engine).
    pub zero_one: PassOutcome,
    /// Bit-parallel symbolic 0-1 pass: exhaustive up to side 5, sampled
    /// at larger sides.
    pub zero_one_symbolic: PassOutcome,
    /// Fault-model pass: a fault-free `FaultPlan` is a behavioural no-op
    /// and a faulty plan replays bit-identically.
    pub fault: PassOutcome,
    /// Optimizer equivalence pass: the dead-wire-stripped, re-fused plan
    /// carries a valid certificate (`meshsort_mesh::opt::certify`) and is
    /// behaviourally identical to the raw schedule on 0-1 lanes
    /// (exhaustive at small sides, seeded sampling above).
    pub optimizer: PassOutcome,
}

impl AlgorithmReport {
    /// `true` when no pass failed (skipped passes do not count against).
    pub fn passed(&self) -> bool {
        self.passes().iter().all(|(_, outcome)| !outcome.is_failure())
    }

    /// The passes as `(name, outcome)` pairs, in report order.
    pub fn passes(&self) -> [(&'static str, &PassOutcome); 8] {
        [
            ("structural", &self.structural),
            ("ir_conformance", &self.ir),
            ("dataflow", &self.dataflow),
            ("dataflow_lifted", &self.dataflow_lifted),
            ("zero_one", &self.zero_one),
            ("zero_one_symbolic", &self.zero_one_symbolic),
            ("fault_model", &self.fault),
            ("optimizer_equivalence", &self.optimizer),
        ]
    }
}

/// Full `meshcheck` report over a set of sides × all five algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// The sides that were analysed, in request order.
    pub sides: Vec<usize>,
    /// One entry per (side, algorithm), sides outermost, paper order
    /// within a side.
    pub entries: Vec<AlgorithmReport>,
}

impl AnalysisReport {
    /// `true` when every entry passed (skips allowed, failures not).
    pub fn all_passed(&self) -> bool {
        self.entries.iter().all(AlgorithmReport::passed)
    }

    /// The entries that have at least one failing pass.
    pub fn failures(&self) -> impl Iterator<Item = &AlgorithmReport> {
        self.entries.iter().filter(|e| !e.passed())
    }

    /// Renders the machine-readable JSON report (pretty-printed, stable
    /// key order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.entries.len() * 256);
        out.push_str("{\n  \"tool\": \"meshcheck\",\n  \"sides\": [");
        for (i, side) in self.sides.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&side.to_string());
        }
        out.push_str("],\n  \"all_passed\": ");
        out.push_str(if self.all_passed() { "true" } else { "false" });
        out.push_str(",\n  \"algorithms\": [");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"algorithm\": ");
            push_json_string(&mut out, entry.algorithm.name());
            out.push_str(",\n      \"side\": ");
            out.push_str(&entry.side.to_string());
            out.push_str(",\n      \"dead_wires\": ");
            match entry.dead_wires {
                Some(n) => out.push_str(&n.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\n      \"static_bound\": ");
            match entry.static_bound {
                Some(n) => out.push_str(&n.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\n      \"passed\": ");
            out.push_str(if entry.passed() { "true" } else { "false" });
            out.push_str(",\n      \"passes\": {");
            for (j, (name, outcome)) in entry.passes().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        ");
                push_json_string(&mut out, name);
                out.push_str(": {\"status\": ");
                push_json_string(&mut out, outcome.status());
                out.push_str(", \"note\": ");
                push_json_string(&mut out, outcome.note());
                out.push('}');
            }
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Appends `s` as a JSON string literal (RFC 8259 escaping).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(passed: bool) -> AlgorithmReport {
        AlgorithmReport {
            algorithm: AlgorithmId::RowMajorRowFirst,
            side: 4,
            dead_wires: Some(0),
            static_bound: Some(23),
            structural: PassOutcome::Passed { detail: "24 comparators".into() },
            ir: if passed {
                PassOutcome::Passed { detail: "4 steps conform".into() }
            } else {
                PassOutcome::Failed { diagnostic: "step 1: IR missing comparator".into() }
            },
            dataflow: PassOutcome::Passed { detail: "converges by step 23".into() },
            dataflow_lifted: PassOutcome::Passed { detail: "lifted bound equals exact".into() },
            zero_one: PassOutcome::Skipped { reason: "side > 4".into() },
            zero_one_symbolic: PassOutcome::Passed { detail: "2^16 placements".into() },
            fault: PassOutcome::Passed { detail: "no-op + bit-identical replay".into() },
            optimizer: PassOutcome::Passed { detail: "identity plan certified".into() },
        }
    }

    #[test]
    fn pass_outcome_accessors() {
        let p = PassOutcome::Passed { detail: "ok".into() };
        assert_eq!(p.status(), "passed");
        assert_eq!(p.note(), "ok");
        assert!(!p.is_failure());
        let f = PassOutcome::Failed { diagnostic: "bad".into() };
        assert_eq!(f.status(), "failed");
        assert!(f.is_failure());
        assert_eq!(f.to_string(), "failed: bad");
        let s = PassOutcome::Skipped { reason: "n/a".into() };
        assert_eq!(s.status(), "skipped");
        assert!(!s.is_failure());
    }

    #[test]
    fn skip_is_not_failure_at_report_level() {
        let r = sample_entry(true);
        assert!(r.passed(), "a skipped pass must not fail the report");
    }

    #[test]
    fn failure_propagates() {
        let report = AnalysisReport {
            sides: vec![4],
            entries: vec![sample_entry(true), sample_entry(false)],
        };
        assert!(!report.all_passed());
        assert_eq!(report.failures().count(), 1);
    }

    #[test]
    fn json_shape() {
        let report = AnalysisReport { sides: vec![4, 5], entries: vec![sample_entry(true)] };
        let json = report.to_json();
        assert!(json.contains("\"tool\": \"meshcheck\""));
        assert!(json.contains("\"sides\": [4, 5]"));
        assert!(json.contains("\"all_passed\": true"));
        assert!(json.contains("\"algorithm\": \"row-major/row-first\""));
        assert!(json.contains("\"structural\": {\"status\": \"passed\""));
        assert!(json.contains("\"ir_conformance\""));
        assert!(json.contains("\"dataflow\": {\"status\": \"passed\""));
        assert!(json.contains("\"dataflow_lifted\": {\"status\": \"passed\""));
        assert!(json.contains("\"zero_one\": {\"status\": \"skipped\""));
        assert!(json.contains("\"zero_one_symbolic\": {\"status\": \"passed\""));
        assert!(json.contains("\"fault_model\": {\"status\": \"passed\""));
        assert!(json.contains("\"optimizer_equivalence\": {\"status\": \"passed\""));
        assert!(json.contains("\"dead_wires\": 0"));
        assert!(json.contains("\"static_bound\": 23"));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_nulls_for_uncompiled_entries() {
        let mut e = sample_entry(true);
        e.dead_wires = None;
        e.static_bound = None;
        let json = AnalysisReport { sides: vec![4], entries: vec![e] }.to_json();
        assert!(json.contains("\"dead_wires\": null"));
        assert!(json.contains("\"static_bound\": null"));
    }

    #[test]
    fn json_escaping() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\te\u{1}f");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }
}
